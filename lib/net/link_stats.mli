(** Per-directed-edge traffic accounting.

    Tracks, for each ordered pair (src, dst) of neighbors: cumulative
    sends, deliveries and drops, the in-flight high-water mark of the
    undirected edge (the paper bounds this by 4), and the last send
    time. Everything is stored in flat arrays indexed by the graph's
    dense directed-slot / edge-id / kind indices, so recording a send is
    allocation-free. Message kinds are dense indices into a
    caller-supplied name table so experiments can break traffic down by
    ping/ack/request/fork.

    The arrays are laid out single-writer for sharded stepping
    ({!Sim.Engine.set_sharding}): per-slot counters are written only by
    the slot's source (sends) or destination (deliveries/drops), and
    aggregates that used to be running scalars are derived from them at
    query time. The undirected-edge in-flight counters genuinely take
    writes from both endpoints; {!set_sharding} makes cross-shard
    updates to them stage per shard and apply at the engine's step merge
    in canonical rank order, so every count is independent of the shard
    split. *)

type t

val create : graph:Cgraph.Graph.t -> ?kinds:string array -> ?metrics:Obs.Metrics.t -> unit -> t
(** [kinds] — names of the message kinds; [record_send ~kind:k] indexes
    this table (default [[|"msg"|]], a single anonymous kind).
    [metrics] — registry to register the [net.sent] / [net.delivered] /
    [net.dropped] counters into (default: a private registry). Several
    overlays sharing one registry aggregate into the same counters. *)

val record_send : t -> src:int -> dst:int -> kind:int -> at:Sim.Time.t -> unit
val record_delivery : t -> src:int -> dst:int -> kind:int -> at:Sim.Time.t -> unit

val record_drop : t -> src:int -> dst:int -> kind:int -> at:Sim.Time.t -> unit
(** A message absorbed because its destination crashed: removed from the
    in-flight count without a delivery. *)

val sent : t -> src:int -> dst:int -> int
val delivered : t -> src:int -> dst:int -> int
val in_flight : t -> src:int -> dst:int -> int

val edge_in_flight : t -> int -> int -> int
(** Current in-flight count on the undirected edge, both directions. *)

val edge_watermark : t -> int -> int -> int
(** Historical maximum of {!edge_in_flight} for this edge. *)

val max_edge_watermark : t -> int
(** Maximum of {!edge_watermark} over all edges that ever carried
    traffic. O(edges): derived from the per-edge table at query time so
    the send path stays single-writer. *)

val per_edge_watermarks : t -> ((int * int) * int) list
(** Every edge that ever carried traffic with its in-flight watermark,
    sorted by edge key [(min, max)]. *)

val max_edge_watermark_by_kind : t -> (string * int) list
(** For each message kind that ever carried traffic, the maximum
    per-edge in-flight watermark of messages of that kind alone, sorted
    by kind name. *)

val last_send_involving : t -> int -> Sim.Time.t option
(** Latest time any message was sent to or from the given process. *)

val last_send_to : t -> int -> Sim.Time.t option
(** Latest time any message was sent to the given process. *)

val watch_dst : t -> int -> unit
(** Start retaining individual send timestamps for messages addressed to
    this process (needed by the windowed queries below). Quiescence
    experiments watch the processes they are about to crash; unwatched
    destinations only keep O(1) counters. Not available in sharded
    mode. *)

val sends_to_in_window : t -> dst:int -> from_t:Sim.Time.t -> to_t:Sim.Time.t -> int
(** Number of messages addressed to [dst] sent in [\[from_t, to_t)].
    Raises [Invalid_argument] unless [dst] is watched. *)

val sends_to_after : t -> dst:int -> after:Sim.Time.t -> int
(** Number of messages addressed to [dst] sent strictly after [after].
    Raises [Invalid_argument] unless [dst] is watched. *)

val total_sent : t -> int
val total_sends_to : t -> dst:int -> int
val total_delivered : t -> int
val total_dropped : t -> int

(** {2 Sharded mode}

    Wired up by [Net.Network.create ~shard_safe:true]; tests may drive
    it directly. *)

val set_sharding :
  t ->
  shards:int ->
  shard_of:(int -> int) ->
  fire_rank:(unit -> int) ->
  fire_shard:(unit -> int) ->
  unit
(** Switch cross-shard edge-counter updates to per-shard staging.
    [shard_of] maps a pid to its shard; [fire_rank] / [fire_shard] probe
    the engine's current fire context (see {!Sim.Engine.fire_rank}).
    Live metrics bumps are disabled — call {!sync_metrics} at report
    time. Raises [Invalid_argument] if any destination is watched. *)

val flush_staged : t -> unit
(** Apply the staged cross-shard edge updates, merged over shards in
    canonical rank order. Register via {!Sim.Engine.add_step_hook}; a
    no-op when nothing is staged or sharding is off. *)

val sync_metrics : t -> unit
(** Level the [net.*] counters up to the derived totals (sharded mode
    skips the per-event bumps because metrics cells are not
    shard-safe). *)
