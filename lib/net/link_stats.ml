(* All counters live in flat arrays indexed by the graph's dense
   directed-slot / edge-id / kind indices, so a record_send on the hot
   path touches a handful of int cells and allocates nothing. The only
   remaining hashtable holds the (rare, experiment-driven) watched
   destinations.

   The layout is organized for sharded stepping (Sim.Engine): every
   directed-slot array is single-writer — d_sent / d_last_send are only
   written by the slot's source (at send time), d_delivered / d_dropped
   only by its destination (at settle time) — so shard-parallel firing
   can update them in place. The per-process and global aggregates that
   used to be running scalars (total sent, per-dst sent, last-send
   times, per-slot in-flight, worst watermark) are instead derived from
   those arrays at query time: reads are report-rate, sends are not.
   Only the undirected-edge in-flight counters and their watermarks
   genuinely need both endpoints to write one cell in event order;
   in sharded mode, updates to edges that cross a shard boundary are
   buffered per shard and applied at the engine's step merge, in the
   same canonical order every shard count produces. *)

type op = { o_rank : int; o_key : int } (* key = (edge * kc + kind) * 2 + send? *)

type opvec = { mutable oa : op array; mutable on : int }

type t = {
  graph : Cgraph.Graph.t;
  kinds : string array; (* kind names; record_* take indices into this *)
  off : int array; (* CSR row offsets (graph-owned) *)
  rev : int array; (* directed slot -> reverse slot *)
  (* Per directed slot; see the single-writer note above. *)
  d_sent : int array;
  d_delivered : int array;
  d_dropped : int array;
  d_last_send : Sim.Time.t array; (* -1 = never (times are >= 0) *)
  (* Per undirected edge id (and per (edge, kind): edge * kind_count +
     kind): written by both endpoints, staged when they are on
     different shards. *)
  e_in_flight : int array;
  e_watermark : int array;
  k_in_flight : int array;
  k_watermark : int array;
  watched : (int, Sim.Time.t list ref) Hashtbl.t; (* dst -> send times, newest first *)
  (* Registered in the world's metrics registry (or a private one when
     the caller passes none): a counter bump per send/delivery/drop.
     In sharded mode the live bumps are off (worker domains must not
     race on the cells); {!sync_metrics} levels them from the derived
     totals instead. *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  (* Sharded mode (0 = off): probes into the engine's fire context. *)
  mutable shards : int;
  mutable shard_of : int -> int;
  mutable fire_rank : unit -> int;
  mutable fire_shard : unit -> int;
  mutable op_staging : opvec array; (* per shard *)
}

let create ~graph ?(kinds = [| "msg" |]) ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let dirs = Cgraph.Graph.dir_count graph in
  let m = Cgraph.Graph.edge_count graph in
  let kc = Array.length kinds in
  let off = Cgraph.Graph.csr_offsets graph in
  let tgt = Cgraph.Graph.csr_targets graph in
  let rev = Array.make dirs 0 in
  for i = 0 to Cgraph.Graph.n graph - 1 do
    for s = off.(i) to off.(i + 1) - 1 do
      rev.(s) <- Cgraph.Graph.dir_index graph tgt.(s) i
    done
  done;
  {
    graph;
    kinds;
    off;
    rev;
    d_sent = Array.make dirs 0;
    d_delivered = Array.make dirs 0;
    d_dropped = Array.make dirs 0;
    d_last_send = Array.make dirs (-1);
    e_in_flight = Array.make m 0;
    e_watermark = Array.make m 0;
    k_in_flight = Array.make (m * kc) 0;
    k_watermark = Array.make (m * kc) 0;
    watched = Hashtbl.create 4;
    m_sent = Obs.Metrics.counter metrics "net.sent";
    m_delivered = Obs.Metrics.counter metrics "net.delivered";
    m_dropped = Obs.Metrics.counter metrics "net.dropped";
    shards = 0;
    shard_of = (fun _ -> 0);
    fire_rank = (fun () -> -1);
    fire_shard = (fun () -> -1);
    op_staging = [||];
  }

let kind_count t = Array.length t.kinds

let set_sharding t ~shards ~shard_of ~fire_rank ~fire_shard =
  if shards < 1 then invalid_arg "Link_stats.set_sharding: shards must be >= 1";
  if Hashtbl.length t.watched > 0 then
    invalid_arg "Link_stats.set_sharding: watched destinations are not shard-safe";
  t.shards <- shards;
  t.shard_of <- shard_of;
  t.fire_rank <- fire_rank;
  t.fire_shard <- fire_shard;
  t.op_staging <- Array.init shards (fun _ -> { oa = [||]; on = 0 })

let slot t src dst =
  let s = Cgraph.Graph.dir_index_opt t.graph src dst in
  if s < 0 then
    invalid_arg (Printf.sprintf "Link_stats: %d and %d are not neighbors" src dst);
  s

let check_kind t kind =
  if kind < 0 || kind >= kind_count t then
    invalid_arg (Printf.sprintf "Link_stats: bad kind index %d" kind)

let watch_dst t dst =
  if t.shards > 0 then invalid_arg "Link_stats.watch_dst: not shard-safe";
  if not (Hashtbl.mem t.watched dst) then Hashtbl.add t.watched dst (ref [])

(* The one place edge/kind in-flight counters and watermarks move; in
   sharded mode cross-shard ops arrive here via {!flush_staged}, in
   canonical rank order. *)
let[@lint.hot] apply_edge t ~e ~ke ~send =
  if send then begin
    t.e_in_flight.(e) <- t.e_in_flight.(e) + 1;
    if t.e_in_flight.(e) > t.e_watermark.(e) then t.e_watermark.(e) <- t.e_in_flight.(e);
    t.k_in_flight.(ke) <- t.k_in_flight.(ke) + 1;
    if t.k_in_flight.(ke) > t.k_watermark.(ke) then t.k_watermark.(ke) <- t.k_in_flight.(ke)
  end
  else begin
    t.e_in_flight.(e) <- t.e_in_flight.(e) - 1;
    t.k_in_flight.(ke) <- t.k_in_flight.(ke) - 1
  end

let stage_op t ~key =
  let sh = t.fire_shard () in
  let sh = if sh >= 0 then sh else 0 in
  let v = t.op_staging.(sh) in
  let o = { o_rank = t.fire_rank (); o_key = key } in
  if v.on >= Array.length v.oa then begin
    let na = Array.make (max 8 (2 * Array.length v.oa)) o in
    Array.blit v.oa 0 na 0 v.on;
    v.oa <- na
  end;
  v.oa.(v.on) <- o;
  v.on <- v.on + 1

let edge_update t ~src ~dst ~e ~ke ~send =
  if t.shards = 0 || t.shard_of src = t.shard_of dst then apply_edge t ~e ~ke ~send
  else stage_op t ~key:((ke lsl 1) lor if send then 1 else 0)

let flush_staged t =
  if t.shards > 0 then begin
    let total = Array.fold_left (fun acc v -> acc + v.on) 0 t.op_staging in
    if total > 0 then begin
      let bufs =
        Array.map
          (fun v ->
            let a = Array.sub v.oa 0 v.on in
            v.on <- 0;
            a)
          t.op_staging
      in
      let merged = Exec.Pool.merge_by ~rank:(fun o -> o.o_rank) bufs in
      let kc = kind_count t in
      Array.iter
        (fun o ->
          let ke = o.o_key lsr 1 in
          apply_edge t ~e:(ke / kc) ~ke ~send:(o.o_key land 1 = 1))
        merged
    end
  end

let[@lint.hot] record_send t ~src ~dst ~kind ~at =
  if t.shards = 0 then Obs.Metrics.incr t.m_sent;
  check_kind t kind;
  let s = slot t src dst in
  t.d_sent.(s) <- t.d_sent.(s) + 1;
  t.d_last_send.(s) <- at;
  let e = Cgraph.Graph.slot_edge_id t.graph s in
  edge_update t ~src ~dst ~e ~ke:((e * kind_count t) + kind) ~send:true;
  match Hashtbl.find_opt t.watched dst with
  (* Watched destinations are a rare, experiment-only probe; the cons
     is the probe's storage and only happens for watched dsts. *)
  | Some times -> times := (at :: !times [@lint.allow "hot-path-alloc"])
  | None -> ()

let[@lint.hot] record_delivery t ~src ~dst ~kind ~at:_ =
  if t.shards = 0 then Obs.Metrics.incr t.m_delivered;
  check_kind t kind;
  let s = slot t src dst in
  t.d_delivered.(s) <- t.d_delivered.(s) + 1;
  let e = Cgraph.Graph.slot_edge_id t.graph s in
  edge_update t ~src ~dst ~e ~ke:((e * kind_count t) + kind) ~send:false

let record_drop t ~src ~dst ~kind ~at:_ =
  if t.shards = 0 then Obs.Metrics.incr t.m_dropped;
  check_kind t kind;
  let s = slot t src dst in
  t.d_dropped.(s) <- t.d_dropped.(s) + 1;
  let e = Cgraph.Graph.slot_edge_id t.graph s in
  edge_update t ~src ~dst ~e ~ke:((e * kind_count t) + kind) ~send:false

(* Query accessors tolerate non-edges (returning 0): callers probe
   arbitrary pairs when summarizing. *)

let dir_get arr t src dst =
  let s = Cgraph.Graph.dir_index_opt t.graph src dst in
  if s < 0 then 0 else arr.(s)

let sent t ~src ~dst = dir_get t.d_sent t src dst
let delivered t ~src ~dst = dir_get t.d_delivered t src dst

let in_flight t ~src ~dst =
  let s = Cgraph.Graph.dir_index_opt t.graph src dst in
  if s < 0 then 0 else t.d_sent.(s) - t.d_delivered.(s) - t.d_dropped.(s)

let edge_id_opt t a b =
  let s = Cgraph.Graph.dir_index_opt t.graph a b in
  if s < 0 then -1 else Cgraph.Graph.slot_edge_id t.graph s

let edge_in_flight t a b =
  let e = edge_id_opt t a b in
  if e < 0 then 0 else t.e_in_flight.(e)

let edge_watermark t a b =
  let e = edge_id_opt t a b in
  if e < 0 then 0 else t.e_watermark.(e)

let max_edge_watermark t = Array.fold_left max 0 t.e_watermark

let per_edge_watermarks t =
  (* Edge ids are already in canonical sorted order, so folding right
     to left yields the list sorted by (min, max) endpoint key. *)
  let acc = ref [] in
  for e = Cgraph.Graph.edge_count t.graph - 1 downto 0 do
    if t.e_watermark.(e) > 0 then
      acc := (Cgraph.Graph.edge_endpoints t.graph e, t.e_watermark.(e)) :: !acc
  done;
  !acc

let max_edge_watermark_by_kind t =
  let kc = kind_count t in
  let m = Cgraph.Graph.edge_count t.graph in
  let acc = ref [] in
  for k = 0 to kc - 1 do
    let worst = ref 0 in
    for e = 0 to m - 1 do
      let kw = t.k_watermark.((e * kc) + k) in
      if kw > !worst then worst := kw
    done;
    if !worst > 0 then acc := (t.kinds.(k), !worst) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* Last-send times per process, derived from the per-slot stamps: stamps
   are non-decreasing per slot, so the row maximum is the latest send. *)

let row_max arr t pid =
  if pid < 0 || pid + 1 >= Array.length t.off then -1
  else begin
    let best = ref (-1) in
    for s = t.off.(pid) to t.off.(pid + 1) - 1 do
      if arr.(s) > !best then best := arr.(s)
    done;
    !best
  end

let in_row_max arr t pid =
  if pid < 0 || pid + 1 >= Array.length t.off then -1
  else begin
    let best = ref (-1) in
    for s = t.off.(pid) to t.off.(pid + 1) - 1 do
      let r = t.rev.(s) in
      if arr.(r) > !best then best := arr.(r)
    done;
    !best
  end

let last_send_to t pid =
  let v = in_row_max t.d_last_send t pid in
  if v < 0 then None else Some v

let last_send_involving t pid =
  let v = max (in_row_max t.d_last_send t pid) (row_max t.d_last_send t pid) in
  if v < 0 then None else Some v

let watched_times t dst =
  match Hashtbl.find_opt t.watched dst with
  | Some times -> !times
  | None -> invalid_arg (Printf.sprintf "Link_stats: dst %d is not watched" dst)

let sends_to_in_window t ~dst ~from_t ~to_t =
  List.length (List.filter (fun at -> at >= from_t && at < to_t) (watched_times t dst))

let sends_to_after t ~dst ~after =
  List.length (List.filter (fun at -> at > after) (watched_times t dst))

let total_sent t = Array.fold_left ( + ) 0 t.d_sent

let total_sends_to t ~dst =
  let acc = ref 0 in
  if dst >= 0 && dst + 1 < Array.length t.off then
    for s = t.off.(dst) to t.off.(dst + 1) - 1 do
      acc := !acc + t.d_sent.(t.rev.(s))
    done;
  !acc

let total_delivered t = Array.fold_left ( + ) 0 t.d_delivered
let total_dropped t = Array.fold_left ( + ) 0 t.d_dropped

let sync_metrics t =
  let level c v =
    let cur = Obs.Metrics.counter_value c in
    if v > cur then Obs.Metrics.incr ~by:(v - cur) c
  in
  level t.m_sent (total_sent t);
  level t.m_delivered (total_delivered t);
  level t.m_dropped (total_dropped t)
