type dir_counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable in_flight : int;
  mutable last_send : Sim.Time.t option;
}

type edge_counters = {
  mutable e_in_flight : int;
  mutable e_watermark : int;
  by_kind : (string, int * int) Hashtbl.t; (* kind -> (in_flight, watermark) *)
}

type t = {
  n : int;
  dirs : (int * int, dir_counters) Hashtbl.t;
  edges : (int * int, edge_counters) Hashtbl.t;
  mutable worst_watermark : int; (* running max over all edge watermarks *)
  mutable total_sent : int;
  per_dst_sent : int array;
  last_send_to : Sim.Time.t option array;
  last_send_from : Sim.Time.t option array;
  watched : (int, Sim.Time.t list ref) Hashtbl.t; (* dst -> send times, newest first *)
  (* Registered in the world's metrics registry (or a private one when
     the caller passes none): a counter bump per send/delivery/drop. *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
}

let create ~n ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    n;
    dirs = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    worst_watermark = 0;
    total_sent = 0;
    per_dst_sent = Array.make n 0;
    last_send_to = Array.make n None;
    last_send_from = Array.make n None;
    watched = Hashtbl.create 4;
    m_sent = Obs.Metrics.counter metrics "net.sent";
    m_delivered = Obs.Metrics.counter metrics "net.delivered";
    m_dropped = Obs.Metrics.counter metrics "net.dropped";
  }

let dir t src dst =
  match Hashtbl.find_opt t.dirs (src, dst) with
  | Some c -> c
  | None ->
      let c = { sent = 0; delivered = 0; in_flight = 0; last_send = None } in
      Hashtbl.add t.dirs (src, dst) c;
      c

let edge_key a b = (min a b, max a b)

let edge t a b =
  let key = edge_key a b in
  match Hashtbl.find_opt t.edges key with
  | Some e -> e
  | None ->
      let e = { e_in_flight = 0; e_watermark = 0; by_kind = Hashtbl.create 4 } in
      Hashtbl.add t.edges key e;
      e

let watch_dst t dst =
  if not (Hashtbl.mem t.watched dst) then Hashtbl.add t.watched dst (ref [])

let record_send t ~src ~dst ~kind ~at =
  Obs.Metrics.incr t.m_sent;
  let d = dir t src dst in
  d.sent <- d.sent + 1;
  d.in_flight <- d.in_flight + 1;
  d.last_send <- Some at;
  t.total_sent <- t.total_sent + 1;
  t.per_dst_sent.(dst) <- t.per_dst_sent.(dst) + 1;
  t.last_send_to.(dst) <- Some at;
  t.last_send_from.(src) <- Some at;
  let e = edge t src dst in
  e.e_in_flight <- e.e_in_flight + 1;
  if e.e_in_flight > e.e_watermark then begin
    e.e_watermark <- e.e_in_flight;
    if e.e_watermark > t.worst_watermark then t.worst_watermark <- e.e_watermark
  end;
  let kf, kw = Option.value (Hashtbl.find_opt e.by_kind kind) ~default:(0, 0) in
  let kf = kf + 1 in
  Hashtbl.replace e.by_kind kind (kf, max kw kf);
  match Hashtbl.find_opt t.watched dst with
  | Some times -> times := at :: !times
  | None -> ()

let settle t ~src ~dst ~kind =
  let d = dir t src dst in
  d.in_flight <- d.in_flight - 1;
  let e = edge t src dst in
  e.e_in_flight <- e.e_in_flight - 1;
  let kf, kw = Option.value (Hashtbl.find_opt e.by_kind kind) ~default:(0, 0) in
  Hashtbl.replace e.by_kind kind (kf - 1, kw)

let record_delivery t ~src ~dst ~kind ~at:_ =
  Obs.Metrics.incr t.m_delivered;
  let d = dir t src dst in
  d.delivered <- d.delivered + 1;
  settle t ~src ~dst ~kind

let record_drop t ~src ~dst ~kind ~at:_ =
  Obs.Metrics.incr t.m_dropped;
  settle t ~src ~dst ~kind

let sent t ~src ~dst = (dir t src dst).sent
let delivered t ~src ~dst = (dir t src dst).delivered
let in_flight t ~src ~dst = (dir t src dst).in_flight
let edge_in_flight t a b = (edge t a b).e_in_flight
let edge_watermark t a b = (edge t a b).e_watermark

let max_edge_watermark t = t.worst_watermark

(* Deterministic snapshot of a hashtable: bindings sorted by key, so
   nothing downstream ever sees hash order. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let per_edge_watermarks t =
  sorted_bindings t.edges |> List.map (fun (key, e) -> (key, e.e_watermark))

let max_edge_watermark_by_kind t =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (_, e) ->
      List.iter
        (fun (kind, (_, kw)) ->
          let cur = Option.value (Hashtbl.find_opt acc kind) ~default:0 in
          Hashtbl.replace acc kind (max cur kw))
        (sorted_bindings e.by_kind))
    (sorted_bindings t.edges);
  sorted_bindings acc

let last_send_to t pid = t.last_send_to.(pid)

let last_send_involving t pid =
  match (t.last_send_to.(pid), t.last_send_from.(pid)) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Sim.Time.max a b)

let watched_times t dst =
  match Hashtbl.find_opt t.watched dst with
  | Some times -> !times
  | None -> invalid_arg (Printf.sprintf "Link_stats: dst %d is not watched" dst)

let sends_to_in_window t ~dst ~from_t ~to_t =
  List.length (List.filter (fun at -> at >= from_t && at < to_t) (watched_times t dst))

let sends_to_after t ~dst ~after =
  List.length (List.filter (fun at -> at > after) (watched_times t dst))

let total_sent t = t.total_sent
let total_sends_to t ~dst = t.per_dst_sent.(dst)
