(* All counters live in flat arrays indexed by the graph's dense
   directed-slot / edge-id / kind indices, so a record_send on the hot
   path touches a handful of int cells and allocates nothing. The only
   remaining hashtable holds the (rare, experiment-driven) watched
   destinations. *)

type t = {
  graph : Cgraph.Graph.t;
  kinds : string array; (* kind names; record_* take indices into this *)
  (* Per directed slot. *)
  d_sent : int array;
  d_delivered : int array;
  d_in_flight : int array;
  (* Per undirected edge id. *)
  e_in_flight : int array;
  e_watermark : int array;
  (* Per (edge, kind): edge * kind_count + kind. *)
  k_in_flight : int array;
  k_watermark : int array;
  mutable worst_watermark : int; (* running max over all edge watermarks *)
  mutable total_sent : int;
  per_dst_sent : int array;
  (* Last send times per process; -1 = never (times are >= 0). *)
  last_send_to : int array;
  last_send_from : int array;
  watched : (int, Sim.Time.t list ref) Hashtbl.t; (* dst -> send times, newest first *)
  (* Registered in the world's metrics registry (or a private one when
     the caller passes none): a counter bump per send/delivery/drop. *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
}

let create ~graph ?(kinds = [| "msg" |]) ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let n = Cgraph.Graph.n graph in
  let dirs = Cgraph.Graph.dir_count graph in
  let m = Cgraph.Graph.edge_count graph in
  let kc = Array.length kinds in
  {
    graph;
    kinds;
    d_sent = Array.make dirs 0;
    d_delivered = Array.make dirs 0;
    d_in_flight = Array.make dirs 0;
    e_in_flight = Array.make m 0;
    e_watermark = Array.make m 0;
    k_in_flight = Array.make (m * kc) 0;
    k_watermark = Array.make (m * kc) 0;
    worst_watermark = 0;
    total_sent = 0;
    per_dst_sent = Array.make n 0;
    last_send_to = Array.make n (-1);
    last_send_from = Array.make n (-1);
    watched = Hashtbl.create 4;
    m_sent = Obs.Metrics.counter metrics "net.sent";
    m_delivered = Obs.Metrics.counter metrics "net.delivered";
    m_dropped = Obs.Metrics.counter metrics "net.dropped";
  }

let kind_count t = Array.length t.kinds

let slot t src dst =
  let s = Cgraph.Graph.dir_index_opt t.graph src dst in
  if s < 0 then
    invalid_arg (Printf.sprintf "Link_stats: %d and %d are not neighbors" src dst);
  s

let check_kind t kind =
  if kind < 0 || kind >= kind_count t then
    invalid_arg (Printf.sprintf "Link_stats: bad kind index %d" kind)

let watch_dst t dst =
  if not (Hashtbl.mem t.watched dst) then Hashtbl.add t.watched dst (ref [])

let[@lint.hot] record_send t ~src ~dst ~kind ~at =
  Obs.Metrics.incr t.m_sent;
  check_kind t kind;
  let s = slot t src dst in
  t.d_sent.(s) <- t.d_sent.(s) + 1;
  t.d_in_flight.(s) <- t.d_in_flight.(s) + 1;
  t.total_sent <- t.total_sent + 1;
  t.per_dst_sent.(dst) <- t.per_dst_sent.(dst) + 1;
  t.last_send_to.(dst) <- at;
  t.last_send_from.(src) <- at;
  let e = Cgraph.Graph.slot_edge_id t.graph s in
  t.e_in_flight.(e) <- t.e_in_flight.(e) + 1;
  if t.e_in_flight.(e) > t.e_watermark.(e) then begin
    t.e_watermark.(e) <- t.e_in_flight.(e);
    if t.e_watermark.(e) > t.worst_watermark then t.worst_watermark <- t.e_watermark.(e)
  end;
  let ke = (e * kind_count t) + kind in
  t.k_in_flight.(ke) <- t.k_in_flight.(ke) + 1;
  if t.k_in_flight.(ke) > t.k_watermark.(ke) then t.k_watermark.(ke) <- t.k_in_flight.(ke);
  match Hashtbl.find_opt t.watched dst with
  (* Watched destinations are a rare, experiment-only probe; the cons
     is the probe's storage and only happens for watched dsts. *)
  | Some times -> times := (at :: !times [@lint.allow "hot-path-alloc"])
  | None -> ()

let settle t ~src ~dst ~kind =
  check_kind t kind;
  let s = slot t src dst in
  t.d_in_flight.(s) <- t.d_in_flight.(s) - 1;
  let e = Cgraph.Graph.slot_edge_id t.graph s in
  t.e_in_flight.(e) <- t.e_in_flight.(e) - 1;
  let ke = (e * kind_count t) + kind in
  t.k_in_flight.(ke) <- t.k_in_flight.(ke) - 1

let record_delivery t ~src ~dst ~kind ~at:_ =
  Obs.Metrics.incr t.m_delivered;
  let s = slot t src dst in
  t.d_delivered.(s) <- t.d_delivered.(s) + 1;
  settle t ~src ~dst ~kind

let record_drop t ~src ~dst ~kind ~at:_ =
  Obs.Metrics.incr t.m_dropped;
  settle t ~src ~dst ~kind

(* Query accessors tolerate non-edges (returning 0): callers probe
   arbitrary pairs when summarizing. *)

let dir_get arr t src dst =
  let s = Cgraph.Graph.dir_index_opt t.graph src dst in
  if s < 0 then 0 else arr.(s)

let sent t ~src ~dst = dir_get t.d_sent t src dst
let delivered t ~src ~dst = dir_get t.d_delivered t src dst
let in_flight t ~src ~dst = dir_get t.d_in_flight t src dst

let edge_id_opt t a b =
  let s = Cgraph.Graph.dir_index_opt t.graph a b in
  if s < 0 then -1 else Cgraph.Graph.slot_edge_id t.graph s

let edge_in_flight t a b =
  let e = edge_id_opt t a b in
  if e < 0 then 0 else t.e_in_flight.(e)

let edge_watermark t a b =
  let e = edge_id_opt t a b in
  if e < 0 then 0 else t.e_watermark.(e)

let max_edge_watermark t = t.worst_watermark

let per_edge_watermarks t =
  (* Edge ids are already in canonical sorted order, so folding right
     to left yields the list sorted by (min, max) endpoint key. *)
  let acc = ref [] in
  for e = Cgraph.Graph.edge_count t.graph - 1 downto 0 do
    if t.e_watermark.(e) > 0 then
      acc := (Cgraph.Graph.edge_endpoints t.graph e, t.e_watermark.(e)) :: !acc
  done;
  !acc

let max_edge_watermark_by_kind t =
  let kc = kind_count t in
  let m = Cgraph.Graph.edge_count t.graph in
  let acc = ref [] in
  for k = 0 to kc - 1 do
    let worst = ref 0 in
    for e = 0 to m - 1 do
      let kw = t.k_watermark.((e * kc) + k) in
      if kw > !worst then worst := kw
    done;
    if !worst > 0 then acc := (t.kinds.(k), !worst) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let last_send_to t pid =
  if t.last_send_to.(pid) < 0 then None else Some t.last_send_to.(pid)

let last_send_involving t pid =
  let a = t.last_send_to.(pid) and b = t.last_send_from.(pid) in
  let latest = max a b in
  if latest < 0 then None else Some latest

let watched_times t dst =
  match Hashtbl.find_opt t.watched dst with
  | Some times -> !times
  | None -> invalid_arg (Printf.sprintf "Link_stats: dst %d is not watched" dst)

let sends_to_in_window t ~dst ~from_t ~to_t =
  List.length (List.filter (fun at -> at >= from_t && at < to_t) (watched_times t dst))

let sends_to_after t ~dst ~after =
  List.length (List.filter (fun at -> at > after) (watched_times t dst))

let total_sent t = t.total_sent
let total_sends_to t ~dst = t.per_dst_sent.(dst)
