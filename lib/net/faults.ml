type t = {
  engine : Sim.Engine.t;
  crash_at : Sim.Time.t array;
  (* The one live engine event per pending crash: rescheduling a crash
     to an earlier time cancels the superseded event, so listeners
     observe exactly one crash per pid. *)
  pending : Sim.Engine.event_id option array;
  mutable listeners : (int -> unit) list; (* newest first; fired in subscription order *)
}

let create engine ~n =
  if n <= 0 then invalid_arg "Faults.create: n must be positive";
  { engine; crash_at = Array.make n Sim.Time.infinity; pending = Array.make n None; listeners = [] }

let n t = Array.length t.crash_at

let schedule_crash t ~pid ~at =
  if pid < 0 || pid >= n t then invalid_arg "Faults.schedule_crash: bad pid";
  if at < Sim.Engine.now t.engine then invalid_arg "Faults.schedule_crash: in the past";
  if at < t.crash_at.(pid) then begin
    Option.iter (Sim.Engine.cancel t.engine) t.pending.(pid);
    t.crash_at.(pid) <- at;
    t.pending.(pid) <-
      Some
        (Sim.Engine.schedule t.engine ~owner:pid ~at (fun () ->
             t.pending.(pid) <- None;
             Obs.Recorder.crash (Sim.Engine.recorder t.engine) ~time:at ~pid;
             List.iter (fun f -> f pid) (List.rev t.listeners)))
  end

let crash_time t pid = t.crash_at.(pid)
let is_crashed t pid = t.crash_at.(pid) <= Sim.Engine.now t.engine
let correct t pid = t.crash_at.(pid) = Sim.Time.infinity

let crashed_by t time =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    if t.crash_at.(pid) <= time then acc := pid :: !acc
  done;
  !acc

let on_crash t f = t.listeners <- f :: t.listeners
