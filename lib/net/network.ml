type 'msg t = {
  engine : Sim.Engine.t;
  graph : Cgraph.Graph.t;
  delay : Delay.t;
  faults : Faults.t;
  rng : Sim.Rng.t; (* shared stream (legacy mode) *)
  src_rngs : Sim.Rng.t array; (* per-source streams (shard-safe mode) *)
  kind : 'msg -> string;
  kind_index : 'msg -> int;
  on_drop : src:int -> dst:int -> 'msg -> unit;
  handler : dst:int -> src:int -> 'msg -> unit;
  stats : Link_stats.t;
  recorder : Obs.Recorder.t;
  tracing : bool ref; (* the recorder's live full-tracing flag *)
  (* FIFO enforcement: per directed slot, the latest delivery time
     handed out so far; later sends never deliver earlier. The slot
     belongs to the source's CSR row, so the array is single-writer
     under sharded stepping. *)
  last_delivery : Sim.Time.t array;
}

let create ~engine ~graph ~delay ~faults ~rng ?(kind = fun _ -> "msg")
    ?(kind_index = fun _ -> 0) ?(kind_names = [| "msg" |])
    ?(on_drop = fun ~src:_ ~dst:_ _ -> ()) ?metrics ?(shard_safe = false) ~handler () =
  let stats = Link_stats.create ~graph ~kinds:kind_names ?metrics () in
  let src_rngs =
    if not shard_safe then [||]
    else
      (* One delay stream per source: delay draws then depend only on a
         source's own send sequence, never on how sends from different
         shards interleave. *)
      Array.init (Cgraph.Graph.n graph) (fun i ->
          Sim.Rng.split_named rng ("src-" ^ string_of_int i))
  in
  if shard_safe && Sim.Engine.shards engine > 1 then begin
    Link_stats.set_sharding stats ~shards:(Sim.Engine.shards engine)
      ~shard_of:(Sim.Engine.shard_of engine)
      ~fire_rank:(fun () -> Sim.Engine.fire_rank engine)
      ~fire_shard:(fun () -> Sim.Engine.fire_shard engine);
    Sim.Engine.add_step_hook engine (fun () -> Link_stats.flush_staged stats)
  end;
  {
    engine;
    graph;
    delay;
    faults;
    rng;
    src_rngs;
    kind;
    kind_index;
    on_drop;
    handler;
    stats;
    recorder = Sim.Engine.recorder engine;
    tracing = Obs.Recorder.tracing_flag (Sim.Engine.recorder engine);
    last_delivery = Array.make (Cgraph.Graph.dir_count graph) Sim.Time.zero;
  }

let send t ~src ~dst msg =
  let slot = Cgraph.Graph.dir_index_opt t.graph src dst in
  if slot < 0 then
    invalid_arg (Printf.sprintf "Network.send: %d and %d are not neighbors" src dst);
  if not (Faults.is_crashed t.faults src) then begin
    let now = Sim.Engine.now t.engine in
    let kind = t.kind_index msg in
    Link_stats.record_send t.stats ~src ~dst ~kind ~at:now;
    let rng = if Array.length t.src_rngs = 0 then t.rng else t.src_rngs.(src) in
    let raw = Sim.Time.add now (Delay.sample t.delay rng ~now) in
    let at = Sim.Time.max raw t.last_delivery.(slot) in
    t.last_delivery.(slot) <- at;
    if !(t.tracing) then
      Obs.Recorder.send t.recorder ~time:now ~src ~dst ~tag:(t.kind msg) ~deliver_at:at;
    ignore
      (Sim.Engine.schedule t.engine ~owner:dst ~at (fun () ->
           if Faults.is_crashed t.faults dst then begin
             Link_stats.record_drop t.stats ~src ~dst ~kind ~at;
             if !(t.tracing) then
               Obs.Recorder.drop t.recorder ~time:at ~src ~dst ~tag:(t.kind msg);
             t.on_drop ~src ~dst msg
           end
           else begin
             Link_stats.record_delivery t.stats ~src ~dst ~kind ~at;
             if !(t.tracing) then
               Obs.Recorder.deliver t.recorder ~time:at ~src ~dst ~tag:(t.kind msg);
             t.handler ~dst ~src msg
           end))
  end

let stats t = t.stats
let graph t = t.graph
let faults t = t.faults
let engine t = t.engine
