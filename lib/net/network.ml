type 'msg t = {
  engine : Sim.Engine.t;
  graph : Cgraph.Graph.t;
  delay : Delay.t;
  faults : Faults.t;
  rng : Sim.Rng.t;
  kind : 'msg -> string;
  on_drop : src:int -> dst:int -> 'msg -> unit;
  handler : dst:int -> src:int -> 'msg -> unit;
  stats : Link_stats.t;
  recorder : Obs.Recorder.t;
  tracing : bool ref; (* the recorder's live full-tracing flag *)
  (* FIFO enforcement: per directed channel, the latest delivery time
     handed out so far; later sends never deliver earlier. *)
  last_delivery : (int * int, Sim.Time.t) Hashtbl.t;
}

let create ~engine ~graph ~delay ~faults ~rng ?(kind = fun _ -> "msg")
    ?(on_drop = fun ~src:_ ~dst:_ _ -> ()) ?metrics ~handler () =
  {
    engine;
    graph;
    delay;
    faults;
    rng;
    kind;
    on_drop;
    handler;
    stats = Link_stats.create ~n:(Cgraph.Graph.n graph) ?metrics ();
    recorder = Sim.Engine.recorder engine;
    tracing = Obs.Recorder.tracing_flag (Sim.Engine.recorder engine);
    last_delivery = Hashtbl.create 64;
  }

let send t ~src ~dst msg =
  if not (Cgraph.Graph.is_edge t.graph src dst) then
    invalid_arg (Printf.sprintf "Network.send: %d and %d are not neighbors" src dst);
  if not (Faults.is_crashed t.faults src) then begin
    let now = Sim.Engine.now t.engine in
    let kind = t.kind msg in
    Link_stats.record_send t.stats ~src ~dst ~kind ~at:now;
    let raw = Sim.Time.add now (Delay.sample t.delay t.rng ~now) in
    let floor = Option.value (Hashtbl.find_opt t.last_delivery (src, dst)) ~default:Sim.Time.zero in
    let at = Sim.Time.max raw floor in
    Hashtbl.replace t.last_delivery (src, dst) at;
    if !(t.tracing) then Obs.Recorder.send t.recorder ~time:now ~src ~dst ~tag:kind ~deliver_at:at;
    ignore
      (Sim.Engine.schedule t.engine ~at (fun () ->
           if Faults.is_crashed t.faults dst then begin
             Link_stats.record_drop t.stats ~src ~dst ~kind ~at;
             if !(t.tracing) then Obs.Recorder.drop t.recorder ~time:at ~src ~dst ~tag:kind;
             t.on_drop ~src ~dst msg
           end
           else begin
             Link_stats.record_delivery t.stats ~src ~dst ~kind ~at;
             if !(t.tracing) then Obs.Recorder.deliver t.recorder ~time:at ~src ~dst ~tag:kind;
             t.handler ~dst ~src msg
           end))
  end

let stats t = t.stats
let graph t = t.graph
let faults t = t.faults
let engine t = t.engine
