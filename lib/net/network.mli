(** Reliable FIFO message-passing overlay on the simulation engine.

    One ['msg t] carries one protocol's traffic (the dining layer and the
    heartbeat failure detector each create their own overlay, sharing the
    engine, crash plan and optionally the delay model). Guarantees, per the
    paper's channel assumptions:

    - messages between live processes are delivered exactly once, in
      per-channel FIFO order, after a delay drawn from the delay model;
    - messages are never lost, duplicated or corrupted;
    - messages addressed to a crashed process are silently absorbed (the
      channel still exists; there is just no one left to receive);
    - a crashed process sends nothing ([send] from a crashed source is
      ignored — by then the process has ceased executing anyway).

    Delivery of each message invokes the overlay's handler with the
    destination, source and payload. *)

type 'msg t

val create :
  engine:Sim.Engine.t ->
  graph:Cgraph.Graph.t ->
  delay:Delay.t ->
  faults:Faults.t ->
  rng:Sim.Rng.t ->
  ?kind:('msg -> string) ->
  ?kind_index:('msg -> int) ->
  ?kind_names:string array ->
  ?on_drop:(src:int -> dst:int -> 'msg -> unit) ->
  ?metrics:Obs.Metrics.t ->
  ?shard_safe:bool ->
  handler:(dst:int -> src:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [kind] labels messages in traces; [kind_index]/[kind_names] give the
    dense kind numbering used by {!Link_stats} breakdowns — [kind_index]
    must return an index into [kind_names], and the name tables should
    agree ([kind] defaults to a single ["msg"] kind, [kind_index] to
    [fun _ -> 0]). The handler runs at the message's virtual
    delivery time. [on_drop] is invoked instead of [handler] when a message
    reaches a crashed destination and is absorbed — protocols that must
    conserve resources carried by messages (forks, tokens) account for the
    loss there. [metrics] is forwarded to the overlay's {!Link_stats} so
    its traffic counters land in the world's registry; overlays sharing a
    registry aggregate into the same [net.*] counters. Under full tracing
    (see {!Obs.Recorder}) every send, delivery and drop is recorded in the
    engine's recorder.

    [shard_safe] (default false) prepares the overlay for shard-parallel
    firing under {!Sim.Engine.set_sharding}: delay samples draw from a
    per-source split of [rng] (so the draw sequence is independent of
    cross-source interleaving — note this changes delivery times relative
    to the default shared stream), and when the engine is sharded the
    overlay's {!Link_stats} stages cross-shard edge-counter updates and
    flushes them at the engine's step merge. Delivery events are owned by
    their destination either way, so a sharded engine fires them on the
    destination's shard. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Asynchronously send a message. [src] and [dst] must be adjacent in the
    conflict graph (every neighboring pair is connected by a reliable FIFO
    channel; no other channels exist). *)

val stats : 'msg t -> Link_stats.t
val graph : 'msg t -> Cgraph.Graph.t
val faults : 'msg t -> Faults.t
val engine : 'msg t -> Sim.Engine.t
