(** Crash-fault injection.

    The paper's fault model is crash-stop: a faulty process ceases
    execution without warning and never recovers. A [Faults.t] holds the
    (virtual-time) crash schedule for a run; the network and every protocol
    layer consult it before executing a step on behalf of a process. *)

type t

val create : Sim.Engine.t -> n:int -> t
(** Fault-free plan for processes [0 .. n-1]. *)

val schedule_crash : t -> pid:int -> at:Sim.Time.t -> unit
(** Arrange for [pid] to crash at time [at] (idempotent; the earliest
    scheduled time wins). Must be called before the engine reaches [at]. *)

val is_crashed : t -> int -> bool
(** Whether the process has crashed at the engine's current time. *)

val crash_time : t -> int -> Sim.Time.t
(** Scheduled crash time, or [Time.infinity] for correct processes. *)

val correct : t -> int -> bool
(** Whether the process never crashes in this run (correct in the paper's
    sense), i.e. no crash is scheduled. *)

val crashed_by : t -> Sim.Time.t -> int list
(** Processes whose crash time is [<= t], ascending pid. *)

val n : t -> int

val on_crash : t -> (int -> unit) -> unit
(** Register a callback invoked (in virtual time, at the crash instant)
    whenever a process crashes. Used by oracles and monitors. Callbacks
    fire in registration order, exactly once per crashed pid — even when
    the crash was rescheduled to an earlier time. *)
