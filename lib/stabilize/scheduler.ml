type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  rng : Sim.Rng.t;
  protocol : Protocol.t;
  instance : Dining.Instance.t;
  states : int array;
  step_duration : int * int;
  reaction_delay : int * int;
  in_cs : bool array;
  mutable steps_executed : int;
  mutable overlap_races : int;
  mutable error_log : (Sim.Time.t * int) list; (* newest first *)
}

type outcome = {
  converged_at : Sim.Time.t option;
  final_error : int;
  steps_executed : int;
  error_series : (float * float) list;
  overlap_races : int;
}

let sample rng (lo, hi) = if lo >= hi then lo else Sim.Rng.int_in rng lo hi
let alive t pid = not (Net.Faults.is_crashed t.faults pid)

let view t pid =
  {
    Protocol.self = pid;
    state = t.states.(pid);
    neighbors = Array.map (fun j -> (j, t.states.(j))) (Cgraph.Graph.neighbors t.graph pid);
  }

let error_now t = t.protocol.Protocol.error t.graph t.states (alive t)
let log_error t = t.error_log <- (Sim.Engine.now t.engine, error_now t) :: t.error_log

(* A process asks to be scheduled whenever it has an enabled command. The
   enabledness is re-checked when the delayed request fires, because a
   neighbor's step may have disabled it meanwhile. *)
let consider t pid =
  if
    alive t pid
    && t.instance.phase pid = Dining.Types.Thinking
    && t.protocol.Protocol.enabled (view t pid)
  then
    ignore
      (Sim.Engine.schedule_after t.engine ~owner:pid ~delay:(sample t.rng t.reaction_delay)
         (fun () ->
           if
             alive t pid
             && t.instance.phase pid = Dining.Types.Thinking
             && t.protocol.Protocol.enabled (view t pid)
           then t.instance.become_hungry pid))

let consider_neighborhood t pid =
  consider t pid;
  Array.iter (consider t) (Cgraph.Graph.neighbors t.graph pid)

let attach ~engine ~faults ~graph ~rng ~protocol ?(step_duration = (5, 20))
    ?(reaction_delay = (1, 10)) (instance : Dining.Instance.t) =
  let n = Cgraph.Graph.n graph in
  let t =
    {
      engine;
      faults;
      graph;
      rng;
      protocol;
      instance;
      states = Array.init n (fun pid -> protocol.Protocol.init rng pid);
      step_duration;
      reaction_delay;
      in_cs = Array.make n false;
      steps_executed = 0;
      overlap_races = 0;
      error_log = [];
    }
  in
  log_error t;
  instance.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Eating ->
          (* Critical section: snapshot now, write at the end. Overlapping
             neighbors (pre-convergence scheduling mistakes) both read
             stale snapshots — the sharing violation the paper tolerates. *)
          t.in_cs.(pid) <- true;
          if Array.exists (fun j -> t.in_cs.(j)) (Cgraph.Graph.neighbors graph pid) then
            t.overlap_races <- t.overlap_races + 1;
          let snapshot = view t pid in
          ignore
            (Sim.Engine.schedule_after engine ~owner:pid ~delay:(sample t.rng step_duration)
               (fun () ->
                 if alive t pid && instance.phase pid = Dining.Types.Eating then begin
                   if t.protocol.Protocol.enabled snapshot then begin
                     let next = t.protocol.Protocol.step snapshot in
                     if next <> t.states.(pid) then begin
                       t.states.(pid) <- next;
                       t.steps_executed <- t.steps_executed + 1;
                       log_error t
                     end
                   end;
                   t.in_cs.(pid) <- false;
                   instance.stop_eating pid
                 end))
      | Dining.Types.Thinking ->
          t.in_cs.(pid) <- false;
          (* The write just landed (or the CS was a no-op); the writer and
             its neighbors may have become enabled or disabled. *)
          consider_neighborhood t pid
      | Dining.Types.Hungry -> ());
  Net.Faults.on_crash faults (fun pid ->
      t.in_cs.(pid) <- false;
      log_error t;
      (* A crash freezes a state; neighbors may now be (still) enabled. *)
      consider_neighborhood t pid);
  for pid = 0 to n - 1 do
    consider t pid
  done;
  t

let inject_fault t ~victims =
  let n = Array.length t.states in
  let live = Array.of_list (List.filter (alive t) (List.init n Fun.id)) in
  if Array.length live > 0 then begin
    Sim.Rng.shuffle t.rng live;
    let hit = min victims (Array.length live) in
    for k = 0 to hit - 1 do
      let pid = live.(k) in
      t.states.(pid) <- t.protocol.Protocol.corrupt t.rng pid
    done;
    log_error t;
    for k = 0 to hit - 1 do
      consider_neighborhood t live.(k)
    done
  end

let schedule_faults t ~at ~victims =
  List.iter
    (fun time ->
      ignore (Sim.Engine.schedule t.engine ~at:time (fun () -> inject_fault t ~victims)))
    at

let states t = t.states

let outcome t =
  let final_error = error_now t in
  let log = List.rev t.error_log in
  (* converged_at: the time of the last transition into error = 0 that was
     never followed by a non-zero error. *)
  let converged_at =
    if final_error <> 0 then None
    else begin
      let rec scan last = function
        | [] -> last
        | (time, err) :: rest ->
            if err = 0 then scan (match last with None -> Some time | s -> s) rest
            else scan None rest
      in
      scan None log
    end
  in
  {
    converged_at;
    final_error;
    steps_executed = t.steps_executed;
    error_series = List.map (fun (time, err) -> (float_of_int time, float_of_int err)) log;
    overlap_races = t.overlap_races;
  }
