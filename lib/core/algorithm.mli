(** Algorithm 1 of Song & Pike (DSN 2007): the wait-free, eventually
    2-bounded-waiting dining daemon for eventual weak exclusion.

    Structure, following the paper:

    - {b Phase 1 (asynchronous doorway, Actions 2–5).} A hungry process
      pings every neighbor and enters the doorway once it holds, for each
      neighbor, either a doorway ack or a suspicion from ◇P₁. A neighbor
      grants at most one ack per hungry session (the [replied] bit), which
      is what sharpens the doorway into {e eventual 2-bounded waiting}.
    - {b Phase 2 (fork collection, Actions 6–8).} Inside the doorway, the
      process requests every missing fork by sending the edge's token.
      Conflicts between two insiders are settled by static color priority;
      outsiders always yield. The process eats (Action 9) once it holds,
      for each neighbor, either the shared fork or a suspicion.
    - {b Exit (Action 10).} On leaving the critical section the process
      exits the doorway and grants every deferred fork request and
      deferred ack.

    The implementation is event-driven: guards are re-evaluated exactly
    when a message arrives, a phase changes, or the detector's local output
    changes (the detector's [subscribe] hook), which realises "every
    correct process takes infinitely many steps" without polling.

    Proven lemmas of the paper are carried as executable invariants, which
    {!check_invariants} verifies over the global state:

    - Lemma 1.1/1.2 — per-edge fork (and token) conservation: exactly one
      fork per edge, counting holders, in-flight messages, and messages
      absorbed by crashed processes; a fork-request recipient holds the
      requested fork.
    - Lemma 2.2 — at most one pending ping per ordered neighbor pair: the
      [pinged] bit matches the pipeline state (ping in flight, deferred at
      the peer, or ack in flight).
    - Section 7 — at most 4 dining messages in transit per edge. *)

type t

val create :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  delay:Net.Delay.t ->
  rng:Sim.Rng.t ->
  detector:Fd.Detector.t ->
  ?colors:int array ->
  ?trace:Sim.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?acks_per_session:int ->
  unit ->
  t
(** [metrics] is forwarded to the dining overlay's link statistics so its
    traffic lands in the world's registry. [colors] must be a proper
    coloring of [graph] (defaults to
    {!Cgraph.Coloring.greedy}); higher color = higher priority, per the
    paper. [acks_per_session] is the doorway fairness knob: a hungry
    process grants at most that many acks to each neighbor per hungry
    session. The paper's Algorithm 1 is the default 1, which yields
    eventual 2-bounded waiting; a budget of m yields eventual
    (m+1)-bounded waiting, trading fairness for doorway throughput
    (experiment E11). Creates the dining layer's own network overlay. *)

val become_hungry : t -> Types.pid -> unit
val stop_eating : t -> Types.pid -> unit

val phase : t -> Types.pid -> Types.phase
val inside_doorway : t -> Types.pid -> bool
val color : t -> Types.pid -> int
val holds_fork : t -> Types.pid -> Types.pid -> bool
val holds_token : t -> Types.pid -> Types.pid -> bool
val eat_count : t -> Types.pid -> int
val total_eats : t -> int

val add_listener : t -> (Types.pid -> Types.phase -> unit) -> unit

val check_invariants : t -> unit
(** Raises {!Types.Invariant_violation} on any violated executable lemma;
    see the module description for the list. *)

val network_stats : t -> Net.Link_stats.t
(** Channel statistics of the dining overlay (excludes any failure
    detector traffic). *)

val footprint_bits : t -> Types.pid -> int
(** Logical size of a process's dining state in bits:
    2 (phase) + 1 (doorway) + ceil(log2 colors) + 6 * degree — the paper's
    log2(delta) + 6*delta + c bound. *)

val instance : t -> Instance.t
(** The uniform daemon handle for this instance. *)

val pp_process : t -> Format.formatter -> Types.pid -> unit
(** One-line debug dump of a process: phase, doorway, and per-neighbor
    pinged/ack/replied/deferred/fork/token bits, e.g.
    [p2 hungry inside c=1 | 0:PF 3:at]. Upper-case letters mark set bits
    (P pinged, A ack, R replied, D deferred, F fork, T token). *)

val pp_global : t -> Format.formatter -> unit -> unit
(** Multi-line dump of every process (for traces and failing tests). *)

val max_message_bits : t -> int
(** Largest payload, in bits, of any message type this instance can send
    (per {!Types.message_bits}). *)
