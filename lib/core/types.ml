type pid = int
type phase = Thinking | Hungry | Eating
type message = Ping | Ack | Request of int | Fork

let phase_to_string = function
  | Thinking -> "thinking"
  | Hungry -> "hungry"
  | Eating -> "eating"

let pp_phase ppf p = Format.pp_print_string ppf (phase_to_string p)
let equal_phase (a : phase) b = a = b

let message_kind = function
  | Ping -> "ping"
  | Ack -> "ack"
  | Request _ -> "request"
  | Fork -> "fork"

let message_kind_count = 4

let message_kind_index = function Ping -> 0 | Ack -> 1 | Request _ -> 2 | Fork -> 3

let message_kind_name = function
  | 0 -> "ping"
  | 1 -> "ack"
  | 2 -> "request"
  | 3 -> "fork"
  | k -> invalid_arg (Printf.sprintf "Types.message_kind_name: %d" k)

let bits_needed x =
  let rec go acc v = if v <= 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 x

let message_bits ~n msg =
  let id_bits = bits_needed (n - 1) in
  match msg with
  | Ping | Ack -> id_bits
  | Request color -> id_bits + bits_needed color
  | Fork -> id_bits

exception Invariant_violation of string
