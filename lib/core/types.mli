(** Shared vocabulary of the dining layer. *)

type pid = int

type phase = Thinking | Hungry | Eating
(** The three abstract diner states: executing independently, requesting
    shared resources, and inside the critical section. *)

type message =
  | Ping            (** doorway ack request (phase 1) *)
  | Ack             (** doorway permission *)
  | Request of int  (** fork request carrying the sender's color (phase 2) *)
  | Fork            (** the shared fork itself *)

val phase_to_string : phase -> string
val pp_phase : Format.formatter -> phase -> unit
val equal_phase : phase -> phase -> bool

val message_kind : message -> string
(** Stable label used for per-kind channel statistics:
    ["ping"], ["ack"], ["request"], ["fork"]. *)

val message_kind_count : int
(** Number of distinct message kinds (4). *)

val message_kind_index : message -> int
(** Dense allocation-free kind index (ping 0, ack 1, request 2, fork 3),
    used to index flat per-kind counter arrays on the hot path. *)

val message_kind_name : int -> string
(** Inverse of {!message_kind_index} for snapshots and reports. *)

val message_bits : n:int -> message -> int
(** Size of a message's payload in bits for an n-process system, per the
    paper's O(log2 n) bound: sender ids and colors need [log2 n] bits. *)

exception Invariant_violation of string
(** Raised by executable-lemma checks when a proven invariant of
    Algorithm 1 fails at runtime (which would indicate an implementation
    bug, never expected in a run). *)
