open Types

(* Process and per-edge state lives in a struct-of-arrays process table:
   per-process scalars are flat arrays indexed by pid, per-neighbor
   variables are flat arrays indexed by the graph's directed slot (the
   paper's subscript "ij" becomes an index into the CSR row of i, with
   Cgraph.Graph.slot_dst giving j). The single-bit per-neighbor
   variables share one byte per slot. The layout keeps the per-step work
   allocation-free: evaluating guards, sending and receiving touch only
   ints and bytes, never tuples or hash tables. *)

let pinged_bit = 1
let ack_bit = 2
let deferred_bit = 4
let fork_bit = 8
let token_bit = 16

(* Phases as byte codes; the constructors themselves are immediate, so
   decoding allocates nothing. *)
let phase_code = function Thinking -> 0 | Hungry -> 1 | Eating -> 2
let code_phase = function 0 -> Thinking | 1 -> Hungry | _ -> Eating

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  detector : Fd.Detector.t;
  n : int;
  off : int array; (* CSR offsets, owned by the graph *)
  nbr : pid array; (* CSR targets, owned by the graph *)
  rev : int array; (* slot (i,j) -> slot (j,i) *)
  color : int array;
  phase_a : Bytes.t; (* pid -> phase code *)
  inside_a : Bytes.t; (* pid -> 0/1 *)
  flags : Bytes.t; (* slot -> pinged/ack/deferred/fork/token bits *)
  granted : int array; (* slot -> doorway acks granted this session *)
  eats : int array;
  (* Message accounting per (directed slot, kind), used only by the
     executable-lemma checks. Send counts index the sender's slot and
     receive/absorb counts the receiver's reverse slot, so every write
     lands in the writing process's own CSR row (single-writer under
     sharded stepping); the in-flight count is the difference, taken at
     check time. *)
  fly_out : int array; (* sends, at slot (src, dst) * 4 + kind_index *)
  fly_in : int array; (* receipts, at slot (dst, src) * 4 + kind_index *)
  absorbed_in : int array; (* crash absorptions, at slot (dst, src) * 4 + kind_index *)
  mutable net : message Net.Network.t option; (* set once in create *)
  mutable listeners : (pid -> phase -> unit) list;
  trace : Sim.Trace.t;
  acks_per_session : int;
}

let net t = match t.net with Some n -> n | None -> assert false
let now t = Sim.Engine.now t.engine
let phase t i = code_phase (Char.code (Bytes.get t.phase_a i))
let set_phase t i p = Bytes.set t.phase_a i (Char.chr (phase_code p))
let inside t i = Bytes.get t.inside_a i <> '\000'
let set_inside t i b = Bytes.set t.inside_a i (if b then '\001' else '\000')
let flag t s bit = Char.code (Bytes.get t.flags s) land bit <> 0

let set_flag t s bit on =
  let cur = Char.code (Bytes.get t.flags s) in
  Bytes.set t.flags s (Char.unsafe_chr (if on then cur lor bit else cur land lnot bit))

let emit t i tag detail = Sim.Trace.emit t.trace ~time:(now t) ~subject:i ~tag detail

(* [slot] is the directed slot of (src, dst) — the caller always has it
   in hand, either from its CSR iteration or via [rev]. *)
let send t ~slot ~src ~dst msg =
  let w = (slot * message_kind_count) + message_kind_index msg in
  t.fly_out.(w) <- t.fly_out.(w) + 1;
  Net.Network.send (net t) ~src ~dst msg

let notify_phase t i =
  let p = phase t i in
  Obs.Recorder.phase t.trace ~time:(now t) ~pid:i ~phase:(Types.phase_to_string p);
  List.iter (fun f -> f i p) t.listeners

(* ------------------------------------------------------------------ *)
(* Guarded internal actions (Actions 2, 5, 6, 9).                      *)
(* ------------------------------------------------------------------ *)

let suspects t i j = t.detector.Fd.Detector.suspects ~observer:i ~target:j

(* Evaluate all enabled internal actions of [i]. Idempotent: every send is
   gated by a flag it sets, and each phase transition fires at most once
   per hungry session, so re-evaluation on every event is safe. *)
let try_actions t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    if phase t i = Hungry then begin
      let lo = t.off.(i) and hi = t.off.(i + 1) in
      if not (inside t i) then begin
        (* Action 2: request acks from neighbors with no ack and no
           pending ping. *)
        for s = lo to hi - 1 do
          if not (flag t s (pinged_bit lor ack_bit)) then begin
            set_flag t s pinged_bit true;
            send t ~slot:s ~src:i ~dst:t.nbr.(s) Ping
          end
        done;
        (* Action 5: enter the doorway once every neighbor granted an ack
           or is suspected. *)
        let may_enter = ref true in
        for s = lo to hi - 1 do
          if not (flag t s ack_bit || suspects t i t.nbr.(s)) then may_enter := false
        done;
        if !may_enter then begin
          set_inside t i true;
          for s = lo to hi - 1 do
            set_flag t s ack_bit false;
            t.granted.(s) <- 0
          done;
          emit t i "enter_doorway" ""
        end
      end;
      if inside t i then begin
        (* Action 6: request each missing fork by surrendering the edge
           token, carrying our color. *)
        for s = lo to hi - 1 do
          if flag t s token_bit && not (flag t s fork_bit) then begin
            set_flag t s token_bit false;
            send t ~slot:s ~src:i ~dst:t.nbr.(s) (Request t.color.(i))
          end
        done;
        (* Action 9: eat once every neighbor's fork is held or the
           neighbor is suspected. *)
        let may_eat = ref true in
        for s = lo to hi - 1 do
          if not (flag t s fork_bit || suspects t i t.nbr.(s)) then may_eat := false
        done;
        if !may_eat then begin
          set_phase t i Eating;
          t.eats.(i) <- t.eats.(i) + 1;
          notify_phase t i
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Message handlers (Actions 3, 4, 7, 8). [k] is the directed slot of  *)
(* (i, j): the receiver's row position for the sender, which is also   *)
(* the send slot for any reply.                                        *)
(* ------------------------------------------------------------------ *)

(* Action 3: grant or defer a doorway ack. The paper grants at most one
   ack per neighbor per hungry session (yielding eventual 2-bounded
   waiting, Theorem 3); [acks_per_session] generalises that budget to m,
   yielding eventual (m+1)-bounded waiting — the fairness knob studied by
   experiment E11. Thinking processes grant unconditionally, as in the
   paper. *)
let receive_ping t i ~from:j ~k =
  if inside t i || (phase t i = Hungry && t.granted.(k) >= t.acks_per_session) then
    set_flag t k deferred_bit true
  else begin
    send t ~slot:k ~src:i ~dst:j Ack;
    if phase t i = Hungry then t.granted.(k) <- t.granted.(k) + 1
  end

(* Action 4: record a received ack. *)
let receive_ack t i ~from:_ ~k =
  set_flag t k ack_bit (phase t i = Hungry && not (inside t i));
  set_flag t k pinged_bit false;
  try_actions t i

(* Action 7: receive a fork request (the edge token) and grant or defer. *)
let receive_request t i ~from:j ~k ~color:color_j =
  (* Lemma 1.1: the recipient of a fork request holds the requested fork. *)
  if not (flag t k fork_bit) then
    raise
      (Invariant_violation
         (Printf.sprintf "Lemma 1.1: %d received a fork request from %d without the fork" i j));
  set_flag t k token_bit true;
  if (not (inside t i)) || (phase t i = Hungry && t.color.(i) < color_j) then begin
    set_flag t k fork_bit false;
    send t ~slot:k ~src:i ~dst:j Fork
  end;
  (* Losing a fork while hungry inside re-enables Action 6. *)
  try_actions t i

(* Action 8: receive a fork. *)
let receive_fork t i ~from:j ~k =
  (* Per the proof of Lemma 1.1: a fork recipient cannot hold the token. *)
  if flag t k token_bit then
    raise
      (Invariant_violation
         (Printf.sprintf "Lemma 1.1: %d received the fork from %d while holding the token" i j));
  if flag t k fork_bit then
    raise (Invariant_violation (Printf.sprintf "Lemma 1.2: duplicated fork on edge (%d,%d)" i j));
  set_flag t k fork_bit true;
  try_actions t i

let dispatch t ~dst ~src msg =
  let sd = Cgraph.Graph.dir_index t.graph src dst in
  let k = t.rev.(sd) in
  let w = (k * message_kind_count) + message_kind_index msg in
  t.fly_in.(w) <- t.fly_in.(w) + 1;
  match msg with
  | Ping -> receive_ping t dst ~from:src ~k
  | Ack -> receive_ack t dst ~from:src ~k
  | Request color -> receive_request t dst ~from:src ~k ~color
  | Fork -> receive_fork t dst ~from:src ~k

(* ------------------------------------------------------------------ *)
(* External actions (Actions 1 and 10).                                *)
(* ------------------------------------------------------------------ *)

let become_hungry t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    if phase t i = Thinking then begin
      set_phase t i Hungry;
      notify_phase t i;
      try_actions t i
    end
  end

(* Action 10: exit the critical section and the doorway; grant all
   deferred fork requests and deferred acks. *)
let stop_eating t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    if phase t i = Eating then begin
      set_inside t i false;
      set_phase t i Thinking;
      let lo = t.off.(i) and hi = t.off.(i + 1) in
      for s = lo to hi - 1 do
        if flag t s token_bit && flag t s fork_bit then begin
          set_flag t s fork_bit false;
          send t ~slot:s ~src:i ~dst:t.nbr.(s) Fork
        end
      done;
      for s = lo to hi - 1 do
        if flag t s deferred_bit then begin
          set_flag t s deferred_bit false;
          send t ~slot:s ~src:i ~dst:t.nbr.(s) Ack
        end
      done;
      notify_phase t i
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)
(* ------------------------------------------------------------------ *)

let create ~engine ~faults ~graph ~delay ~rng ~detector ?colors ?(trace = Sim.Trace.create ())
    ?metrics ?(acks_per_session = 1) () =
  if acks_per_session < 1 then invalid_arg "Algorithm.create: acks_per_session must be >= 1";
  let n = Cgraph.Graph.n graph in
  let colors =
    match colors with
    | Some c ->
        if not (Cgraph.Coloring.is_proper graph c) then
          invalid_arg "Algorithm.create: colors must be a proper coloring";
        c
    | None -> Cgraph.Coloring.greedy graph
  in
  let off = Cgraph.Graph.csr_offsets graph in
  let nbr = Cgraph.Graph.csr_targets graph in
  let slots = Cgraph.Graph.dir_count graph in
  let rev = Array.make slots 0 in
  let flags = Bytes.make slots '\000' in
  for i = 0 to n - 1 do
    for s = off.(i) to off.(i + 1) - 1 do
      let j = nbr.(s) in
      rev.(s) <- Cgraph.Graph.dir_index graph j i;
      (* The fork starts at the higher-colored endpoint, the token at
         the lower-colored one. *)
      let bits =
        (if colors.(i) > colors.(j) then fork_bit else 0)
        lor if colors.(i) < colors.(j) then token_bit else 0
      in
      Bytes.set flags s (Char.chr bits)
    done
  done;
  let t =
    {
      engine;
      faults;
      graph;
      detector;
      n;
      off;
      nbr;
      rev;
      color = colors;
      phase_a = Bytes.make n '\000';
      inside_a = Bytes.make n '\000';
      flags;
      granted = Array.make slots 0;
      eats = Array.make n 0;
      fly_out = Array.make (slots * message_kind_count) 0;
      fly_in = Array.make (slots * message_kind_count) 0;
      absorbed_in = Array.make (slots * message_kind_count) 0;
      net = None;
      listeners = [];
      trace;
      acks_per_session;
    }
  in
  let network =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng ~kind:message_kind
      ~kind_index:message_kind_index ~kind_names:[| "ping"; "ack"; "request"; "fork" |]
      ~on_drop:(fun ~src ~dst msg ->
        let sd = Cgraph.Graph.dir_index t.graph src dst in
        let w = (t.rev.(sd) * message_kind_count) + message_kind_index msg in
        t.absorbed_in.(w) <- t.absorbed_in.(w) + 1)
      ?metrics
      ~handler:(fun ~dst ~src msg -> dispatch t ~dst ~src msg)
      ()
  in
  t.net <- Some network;
  detector.Fd.Detector.subscribe (fun observer ->
      if observer >= 0 && observer < n then try_actions t observer);
  t

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)
(* ------------------------------------------------------------------ *)

let inside_doorway t i = inside t i
let color t i = t.color.(i)
let holds_fork t i j = flag t (Cgraph.Graph.dir_index t.graph i j) fork_bit
let holds_token t i j = flag t (Cgraph.Graph.dir_index t.graph i j) token_bit
let eat_count t i = t.eats.(i)
let total_eats t = Array.fold_left ( + ) 0 t.eats
let add_listener t f = t.listeners <- t.listeners @ [ f ]
let network_stats t = Net.Network.stats (net t)

let max_color t =
  let best = ref 0 in
  for i = 0 to t.n - 1 do
    if t.color.(i) > !best then best := t.color.(i)
  done;
  !best

let footprint_bits t i =
  let rec bits acc v = if v <= 0 then max acc 1 else bits (acc + 1) (v lsr 1) in
  2 + 1 + bits 0 (max_color t) + (6 * Cgraph.Graph.degree t.graph i)

let max_message_bits t =
  List.fold_left
    (fun acc m -> max acc (message_bits ~n:t.n m))
    0
    [ Ping; Ack; Request (max_color t); Fork ]

(* ------------------------------------------------------------------ *)
(* Executable lemmas.                                                  *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> raise (Invariant_violation s)) fmt in
  let absorbed s kind = t.absorbed_in.((t.rev.(s) * message_kind_count) + kind) in
  let flying s kind =
    t.fly_out.((s * message_kind_count) + kind)
    - t.fly_in.((t.rev.(s) * message_kind_count) + kind)
    - absorbed s kind
  in
  let ping_k = 0 and ack_k = 1 and request_k = 2 and fork_k = 3 in
  for i = 0 to t.n - 1 do
    if phase t i = Eating && not (inside t i) then fail "process %d eats outside the doorway" i;
    for s = t.off.(i) to t.off.(i + 1) - 1 do
      if flag t s ack_bit && not (phase t i = Hungry && not (inside t i)) then
        fail "process %d holds an ack while not hungry-outside" i
    done
  done;
  Cgraph.Graph.iter_edges t.graph (fun i j ->
      let si = Cgraph.Graph.dir_index t.graph i j in
      let sj = t.rev.(si) in
      (* Lemma 1.2 for forks, extended to crash absorption: exactly one
         fork per edge, wherever it is. *)
      let forks =
        (if flag t si fork_bit then 1 else 0)
        + (if flag t sj fork_bit then 1 else 0)
        + flying si fork_k + flying sj fork_k + absorbed si fork_k + absorbed sj fork_k
      in
      if forks <> 1 then fail "edge (%d,%d): %d forks (expected exactly 1)" i j forks;
      (* Same conservation for the edge token. *)
      let tokens =
        (if flag t si token_bit then 1 else 0)
        + (if flag t sj token_bit then 1 else 0)
        + flying si request_k + flying sj request_k
        + absorbed si request_k + absorbed sj request_k
      in
      if tokens <> 1 then fail "edge (%d,%d): %d tokens (expected exactly 1)" i j tokens;
      (* Lemma 2.2: [pinged] reflects exactly one pending ping. [sa] is
         the slot (a, b) and [sb] its reverse. *)
      let check_ping a b sa sb =
        let pending =
          flying sa ping_k + absorbed sa ping_k
          + (if flag t sb deferred_bit then 1 else 0)
          + flying sb ack_k + absorbed sb ack_k
        in
        let expected = if flag t sa pinged_bit then 1 else 0 in
        if pending <> expected then
          fail "pair (%d,%d): pinged=%b but %d pending ping/ack artifacts" a b
            (flag t sa pinged_bit) pending
      in
      check_ping i j si sj;
      check_ping j i sj si;
      (* Section 7: at most 4 dining messages in transit per edge. *)
      let in_transit = ref 0 in
      for kind = 0 to message_kind_count - 1 do
        in_transit := !in_transit + flying si kind + flying sj kind
      done;
      if !in_transit > 4 then fail "edge (%d,%d): %d messages in transit (> 4)" i j !in_transit)

let pp_process t ppf i =
  Format.fprintf ppf "p%d %s%s c=%d |" i
    (Types.phase_to_string (phase t i))
    (if inside t i then " inside" else "")
    t.color.(i);
  for s = t.off.(i) to t.off.(i + 1) - 1 do
    let bit b ch = if b then Char.uppercase_ascii ch else ch in
    Format.fprintf ppf " %d:%c%c%c%c%c%c" t.nbr.(s)
      (bit (flag t s pinged_bit) 'p')
      (bit (flag t s ack_bit) 'a')
      (bit (t.granted.(s) > 0) 'r')
      (bit (flag t s deferred_bit) 'd')
      (bit (flag t s fork_bit) 'f')
      (bit (flag t s token_bit) 't')
  done

let pp_global t ppf () =
  for i = 0 to t.n - 1 do
    pp_process t ppf i;
    if Net.Faults.is_crashed t.faults i then Format.pp_print_string ppf "  [crashed]";
    Format.pp_print_newline ppf ()
  done

let instance t =
  {
    Instance.name = "song-pike-" ^ t.detector.Fd.Detector.name;
    become_hungry = become_hungry t;
    stop_eating = stop_eating t;
    phase = phase t;
    add_listener = add_listener t;
    check_invariants = (fun () -> check_invariants t);
  }
