open Types

(* Per-process local state. All per-neighbor variables are arrays indexed
   by the position of the neighbor in [nbrs] (the paper's subscript "ij"
   becomes [field.(k)] with [nbrs.(k) = j]). *)
type proc = {
  pid : pid;
  color : int;
  nbrs : pid array;
  index_of : (pid, int) Hashtbl.t;
  mutable phase : phase;
  mutable inside : bool;
  pinged : bool array;
  ack : bool array;
  granted : int array; (* doorway acks granted to this neighbor this session *)
  deferred : bool array;
  fork : bool array;
  token : bool array;
  mutable eats : int;
}

(* In-flight / absorbed message accounting per directed pair and kind,
   used only by the executable-lemma checks. *)
type wire = { mutable flying : int; mutable absorbed : int }

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  detector : Fd.Detector.t;
  procs : proc array;
  mutable net : message Net.Network.t option; (* set once in create *)
  mutable listeners : (pid -> phase -> unit) list;
  wires : (pid * pid * string, wire) Hashtbl.t;
  trace : Sim.Trace.t;
  acks_per_session : int;
}

let net t = match t.net with Some n -> n | None -> assert false
let now t = Sim.Engine.now t.engine
let proc t i = t.procs.(i)

let nbr_index p j =
  match Hashtbl.find_opt p.index_of j with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "dining: %d is not a neighbor of %d" j p.pid)

let wire t src dst kind =
  let key = (src, dst, kind) in
  match Hashtbl.find_opt t.wires key with
  | Some w -> w
  | None ->
      let w = { flying = 0; absorbed = 0 } in
      Hashtbl.add t.wires key w;
      w

let emit t i tag detail = Sim.Trace.emit t.trace ~time:(now t) ~subject:i ~tag detail

let send t ~src ~dst msg =
  let w = wire t src dst (message_kind msg) in
  w.flying <- w.flying + 1;
  Net.Network.send (net t) ~src ~dst msg

let notify_phase t i =
  let p = proc t i in
  Obs.Recorder.phase t.trace ~time:(now t) ~pid:i ~phase:(Types.phase_to_string p.phase);
  List.iter (fun f -> f i p.phase) t.listeners

(* ------------------------------------------------------------------ *)
(* Guarded internal actions (Actions 2, 5, 6, 9).                      *)
(* ------------------------------------------------------------------ *)

let suspects t i j = t.detector.Fd.Detector.suspects ~observer:i ~target:j

(* Evaluate all enabled internal actions of [i]. Idempotent: every send is
   gated by a flag it sets, and each phase transition fires at most once
   per hungry session, so re-evaluation on every event is safe. *)
let try_actions t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Hungry then begin
      if not p.inside then begin
        (* Action 2: request acks from neighbors with no ack and no
           pending ping. *)
        Array.iteri
          (fun k j ->
            if (not p.pinged.(k)) && not p.ack.(k) then begin
              p.pinged.(k) <- true;
              send t ~src:i ~dst:j Ping
            end)
          p.nbrs;
        (* Action 5: enter the doorway once every neighbor granted an ack
           or is suspected. *)
        let may_enter = ref true in
        Array.iteri
          (fun k j -> if not (p.ack.(k) || suspects t i j) then may_enter := false)
          p.nbrs;
        if !may_enter then begin
          p.inside <- true;
          Array.fill p.ack 0 (Array.length p.ack) false;
          Array.fill p.granted 0 (Array.length p.granted) 0;
          emit t i "enter_doorway" ""
        end
      end;
      if p.inside then begin
        (* Action 6: request each missing fork by surrendering the edge
           token, carrying our color. *)
        Array.iteri
          (fun k j ->
            if p.token.(k) && not p.fork.(k) then begin
              p.token.(k) <- false;
              send t ~src:i ~dst:j (Request p.color)
            end)
          p.nbrs;
        (* Action 9: eat once every neighbor's fork is held or the
           neighbor is suspected. *)
        let may_eat = ref true in
        Array.iteri
          (fun k j -> if not (p.fork.(k) || suspects t i j) then may_eat := false)
          p.nbrs;
        if !may_eat then begin
          p.phase <- Eating;
          p.eats <- p.eats + 1;
          notify_phase t i
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Message handlers (Actions 3, 4, 7, 8).                              *)
(* ------------------------------------------------------------------ *)

(* Action 3: grant or defer a doorway ack. The paper grants at most one
   ack per neighbor per hungry session (yielding eventual 2-bounded
   waiting, Theorem 3); [acks_per_session] generalises that budget to m,
   yielding eventual (m+1)-bounded waiting — the fairness knob studied by
   experiment E11. Thinking processes grant unconditionally, as in the
   paper. *)
let receive_ping t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if p.inside || (p.phase = Hungry && p.granted.(k) >= t.acks_per_session) then
    p.deferred.(k) <- true
  else begin
    send t ~src:i ~dst:j Ack;
    if p.phase = Hungry then p.granted.(k) <- p.granted.(k) + 1
  end

(* Action 4: record a received ack. *)
let receive_ack t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  p.ack.(k) <- p.phase = Hungry && not p.inside;
  p.pinged.(k) <- false;
  try_actions t i

(* Action 7: receive a fork request (the edge token) and grant or defer. *)
let receive_request t i ~from:j ~color:color_j =
  let p = proc t i in
  let k = nbr_index p j in
  (* Lemma 1.1: the recipient of a fork request holds the requested fork. *)
  if not p.fork.(k) then
    raise
      (Invariant_violation
         (Printf.sprintf "Lemma 1.1: %d received a fork request from %d without the fork" i j));
  p.token.(k) <- true;
  if (not p.inside) || (p.phase = Hungry && p.color < color_j) then begin
    p.fork.(k) <- false;
    send t ~src:i ~dst:j Fork
  end;
  (* Losing a fork while hungry inside re-enables Action 6. *)
  try_actions t i

(* Action 8: receive a fork. *)
let receive_fork t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  (* Per the proof of Lemma 1.1: a fork recipient cannot hold the token. *)
  if p.token.(k) then
    raise
      (Invariant_violation
         (Printf.sprintf "Lemma 1.1: %d received the fork from %d while holding the token" i j));
  if p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "Lemma 1.2: duplicated fork on edge (%d,%d)" i j));
  p.fork.(k) <- true;
  try_actions t i

let dispatch t ~dst ~src msg =
  let w = wire t src dst (message_kind msg) in
  w.flying <- w.flying - 1;
  match msg with
  | Ping -> receive_ping t dst ~from:src
  | Ack -> receive_ack t dst ~from:src
  | Request color -> receive_request t dst ~from:src ~color
  | Fork -> receive_fork t dst ~from:src

(* ------------------------------------------------------------------ *)
(* External actions (Actions 1 and 10).                                *)
(* ------------------------------------------------------------------ *)

let become_hungry t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Thinking then begin
      p.phase <- Hungry;
      notify_phase t i;
      try_actions t i
    end
  end

(* Action 10: exit the critical section and the doorway; grant all
   deferred fork requests and deferred acks. *)
let stop_eating t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Eating then begin
      p.inside <- false;
      p.phase <- Thinking;
      Array.iteri
        (fun k j ->
          if p.token.(k) && p.fork.(k) then begin
            p.fork.(k) <- false;
            send t ~src:i ~dst:j Fork
          end)
        p.nbrs;
      Array.iteri
        (fun k j ->
          if p.deferred.(k) then begin
            p.deferred.(k) <- false;
            send t ~src:i ~dst:j Ack
          end)
        p.nbrs;
      notify_phase t i
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)
(* ------------------------------------------------------------------ *)

let create ~engine ~faults ~graph ~delay ~rng ~detector ?colors ?(trace = Sim.Trace.create ())
    ?metrics ?(acks_per_session = 1) () =
  if acks_per_session < 1 then invalid_arg "Algorithm.create: acks_per_session must be >= 1";
  let n = Cgraph.Graph.n graph in
  let colors =
    match colors with
    | Some c ->
        if not (Cgraph.Coloring.is_proper graph c) then
          invalid_arg "Algorithm.create: colors must be a proper coloring";
        c
    | None -> Cgraph.Coloring.greedy graph
  in
  let procs =
    Array.init n (fun i ->
        let nbrs = Cgraph.Graph.neighbors graph i in
        let deg = Array.length nbrs in
        let index_of = Hashtbl.create (max 1 deg) in
        Array.iteri (fun k j -> Hashtbl.add index_of j k) nbrs;
        {
          pid = i;
          color = colors.(i);
          nbrs;
          index_of;
          phase = Thinking;
          inside = false;
          pinged = Array.make deg false;
          ack = Array.make deg false;
          granted = Array.make deg 0;
          deferred = Array.make deg false;
          (* The fork starts at the higher-colored endpoint, the token at
             the lower-colored one. *)
          fork = Array.map (fun j -> colors.(i) > colors.(j)) nbrs;
          token = Array.map (fun j -> colors.(i) < colors.(j)) nbrs;
          eats = 0;
        })
  in
  let t =
    {
      engine;
      faults;
      graph;
      detector;
      procs;
      net = None;
      listeners = [];
      wires = Hashtbl.create 64;
      trace;
      acks_per_session;
    }
  in
  let network =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng ~kind:message_kind
      ~on_drop:(fun ~src ~dst msg ->
        let w = wire t src dst (message_kind msg) in
        w.flying <- w.flying - 1;
        w.absorbed <- w.absorbed + 1)
      ?metrics
      ~handler:(fun ~dst ~src msg -> dispatch t ~dst ~src msg)
      ()
  in
  t.net <- Some network;
  detector.Fd.Detector.subscribe (fun observer ->
      if observer >= 0 && observer < n then try_actions t observer);
  t

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)
(* ------------------------------------------------------------------ *)

let phase t i = (proc t i).phase
let inside_doorway t i = (proc t i).inside
let color t i = (proc t i).color
let holds_fork t i j = (proc t i).fork.(nbr_index (proc t i) j)
let holds_token t i j = (proc t i).token.(nbr_index (proc t i) j)
let eat_count t i = (proc t i).eats
let total_eats t = Array.fold_left (fun acc p -> acc + p.eats) 0 t.procs
let add_listener t f = t.listeners <- t.listeners @ [ f ]
let network_stats t = Net.Network.stats (net t)

let footprint_bits t i =
  let p = proc t i in
  let max_color = Array.fold_left (fun acc q -> max acc q.color) 0 t.procs in
  let rec bits acc v = if v <= 0 then max acc 1 else bits (acc + 1) (v lsr 1) in
  2 + 1 + bits 0 max_color + (6 * Array.length p.nbrs)

let max_message_bits t =
  let n = Array.length t.procs in
  let max_color = Array.fold_left (fun acc q -> max acc q.color) 0 t.procs in
  List.fold_left
    (fun acc m -> max acc (message_bits ~n m))
    0
    [ Ping; Ack; Request max_color; Fork ]

(* ------------------------------------------------------------------ *)
(* Executable lemmas.                                                  *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> raise (Invariant_violation s)) fmt in
  let flying src dst kind =
    match Hashtbl.find_opt t.wires (src, dst, kind) with Some w -> w.flying | None -> 0
  in
  let absorbed src dst kind =
    match Hashtbl.find_opt t.wires (src, dst, kind) with Some w -> w.absorbed | None -> 0
  in
  Array.iter
    (fun p ->
      if p.phase = Eating && not p.inside then
        fail "process %d eats outside the doorway" p.pid;
      Array.iteri
        (fun k _j ->
          if p.ack.(k) && not (p.phase = Hungry && not p.inside) then
            fail "process %d holds an ack while not hungry-outside" p.pid)
        p.nbrs)
    t.procs;
  Cgraph.Graph.iter_edges t.graph (fun i j ->
      let pi = proc t i and pj = proc t j in
      let ki = nbr_index pi j and kj = nbr_index pj i in
      (* Lemma 1.2 for forks, extended to crash absorption: exactly one
         fork per edge, wherever it is. *)
      let forks =
        (if pi.fork.(ki) then 1 else 0)
        + (if pj.fork.(kj) then 1 else 0)
        + flying i j "fork" + flying j i "fork"
        + absorbed i j "fork" + absorbed j i "fork"
      in
      if forks <> 1 then fail "edge (%d,%d): %d forks (expected exactly 1)" i j forks;
      (* Same conservation for the edge token. *)
      let tokens =
        (if pi.token.(ki) then 1 else 0)
        + (if pj.token.(kj) then 1 else 0)
        + flying i j "request" + flying j i "request"
        + absorbed i j "request" + absorbed j i "request"
      in
      if tokens <> 1 then fail "edge (%d,%d): %d tokens (expected exactly 1)" i j tokens;
      (* Lemma 2.2: [pinged] reflects exactly one pending ping. *)
      let check_ping a b (pa : proc) (pb : proc) ka kb =
        let pending =
          flying a b "ping" + absorbed a b "ping"
          + (if pb.deferred.(kb) then 1 else 0)
          + flying b a "ack" + absorbed b a "ack"
        in
        let expected = if pa.pinged.(ka) then 1 else 0 in
        if pending <> expected then
          fail "pair (%d,%d): pinged=%b but %d pending ping/ack artifacts" a b pa.pinged.(ka)
            pending
      in
      check_ping i j pi pj ki kj;
      check_ping j i pj pi kj ki;
      (* Section 7: at most 4 dining messages in transit per edge. *)
      let in_transit =
        List.fold_left
          (fun acc kind -> acc + flying i j kind + flying j i kind)
          0 [ "ping"; "ack"; "request"; "fork" ]
      in
      if in_transit > 4 then fail "edge (%d,%d): %d messages in transit (> 4)" i j in_transit)

let pp_process t ppf i =
  let p = proc t i in
  Format.fprintf ppf "p%d %s%s c=%d |" i
    (Types.phase_to_string p.phase)
    (if p.inside then " inside" else "")
    p.color;
  Array.iteri
    (fun k j ->
      let bit b ch = if b then Char.uppercase_ascii ch else ch in
      Format.fprintf ppf " %d:%c%c%c%c%c%c" j
        (bit p.pinged.(k) 'p')
        (bit p.ack.(k) 'a')
        (bit (p.granted.(k) > 0) 'r')
        (bit p.deferred.(k) 'd')
        (bit p.fork.(k) 'f')
        (bit p.token.(k) 't'))
    p.nbrs

let pp_global t ppf () =
  Array.iter
    (fun p ->
      pp_process t ppf p.pid;
      if Net.Faults.is_crashed t.faults p.pid then Format.pp_print_string ppf "  [crashed]";
      Format.pp_print_newline ppf ())
    t.procs

let instance t =
  {
    Instance.name = "song-pike-" ^ t.detector.Fd.Detector.name;
    become_hungry = become_hungry t;
    stop_eating = stop_eating t;
    phase = phase t;
    add_listener = add_listener t;
    check_invariants = (fun () -> check_invariants t);
  }
