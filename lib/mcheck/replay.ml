(* Deterministic counterexample replay: drive the model along a recorded
   schedule (a list of transition labels) and report whether the same
   violation reappears. Because [Model.successors] is a pure function of
   the state and labels identify transitions uniquely at each state, a
   schedule exported by an exploration replays to the identical state
   sequence on every run. *)

type outcome =
  | Reproduced of { step : int; message : string; state : string }
  | Clean of int
  | Stuck of { step : int; label : string; available : string list }

let run ?check cfg labels =
  let check = match check with Some f -> f | None -> Model.check in
  let rec go step state = function
    | [] -> Clean step
    | label :: rest -> (
        match Model.successors cfg state with
        | exception Model.Model_violation msg ->
            Reproduced { step; message = msg; state = "(during delivery)" }
        | succs -> (
            match List.assoc_opt label succs with
            | None -> Stuck { step; label; available = List.map fst succs }
            | Some next -> (
                match check cfg next with
                | Some msg ->
                    Reproduced
                      { step = step + 1; message = msg; state = Model.describe next }
                | None -> go (step + 1) next rest)))
  in
  let init = Model.initial cfg in
  match check cfg init with
  | Some msg -> Reproduced { step = 0; message = msg; state = Model.describe init }
  | None -> go 0 init labels

(* Schedules travel as Obs JSONL traces: one Mark record per step, with
   the transition label in [detail] and the step index as both seq and
   virtual time. [# ...] header lines carry human-readable context and
   are skipped by [of_jsonl] (and by Obs.Diff). *)

let step_tag = "mcheck.step"

let to_jsonl ?header labels =
  let buf = Buffer.create 256 in
  (match header with
  | Some h -> Buffer.add_string buf ("# " ^ h ^ "\n")
  | None -> ());
  List.iteri
    (fun i label ->
      Obs.Jsonl.append buf
        {
          Obs.Record.seq = i;
          time = i;
          kind = Obs.Record.Mark { subject = -1; tag = step_tag; detail = label };
        })
    labels;
  Buffer.contents buf

let of_jsonl contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match Obs.Jsonl.field_string line "tag" with
           | Some tag when tag = step_tag -> Obs.Jsonl.field_string line "detail"
           | _ -> None)

let pp_outcome ppf = function
  | Reproduced { step; message; state } ->
      Format.fprintf ppf "reproduced at step %d: %s in [%s]" step message state
  | Clean n -> Format.fprintf ppf "clean after %d steps (no violation)" n
  | Stuck { step; label; available } ->
      Format.fprintf ppf "stuck at step %d: no transition %S here (available: %s)" step
        label
        (String.concat ", " available)
