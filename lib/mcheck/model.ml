type config = {
  graph : Cgraph.Graph.t;
  colors : int array;
  sessions : int;
  crash_budget : int;
  fp_budget : int;
}

type msg = P | A | R of int | F

type pstate = {
  phase : int; (* 0 = thinking, 1 = hungry, 2 = eating *)
  inside : bool;
  pinged : bool array;
  ack : bool array;
  replied : bool array;
  deferred : bool array;
  fork : bool array;
  token : bool array;
  sessions_left : int;
}

(* absorbed message counts per directed pair, by kind *)
type absorbed = { ab_p : int; ab_a : int; ab_r : int; ab_f : int }

type state = {
  procs : pstate array;
  chans : msg list array array; (* chans.(i).(k) = queue i -> its k-th neighbor *)
  susp : bool array array;      (* susp.(i).(k) = i suspects its k-th neighbor *)
  crashed : bool array;
  crash_budget_left : int;
  fp_budget_left : int;
  absorbed : absorbed array array; (* absorbed.(i).(k): dropped on channel i -> k-th nbr *)
}

let no_absorbed = { ab_p = 0; ab_a = 0; ab_r = 0; ab_f = 0 }

let copy_p p =
  {
    p with
    pinged = Array.copy p.pinged;
    ack = Array.copy p.ack;
    replied = Array.copy p.replied;
    deferred = Array.copy p.deferred;
    fork = Array.copy p.fork;
    token = Array.copy p.token;
  }

let copy_state s =
  {
    procs = Array.map copy_p s.procs;
    chans = Array.map (fun row -> Array.copy row) s.chans;
    susp = Array.map Array.copy s.susp;
    crashed = Array.copy s.crashed;
    crash_budget_left = s.crash_budget_left;
    fp_budget_left = s.fp_budget_left;
    absorbed = Array.map Array.copy s.absorbed;
  }

let nbrs cfg i = Cgraph.Graph.neighbors cfg.graph i

let nbr_index cfg i j =
  let row = nbrs cfg i in
  let rec go k = if row.(k) = j then k else go (k + 1) in
  go 0

let initial cfg =
  let n = Cgraph.Graph.n cfg.graph in
  if not (Cgraph.Coloring.is_proper cfg.graph cfg.colors) then
    invalid_arg "Mcheck: colors must be proper";
  {
    procs =
      Array.init n (fun i ->
          let row = nbrs cfg i in
          let deg = Array.length row in
          {
            phase = 0;
            inside = false;
            pinged = Array.make deg false;
            ack = Array.make deg false;
            replied = Array.make deg false;
            deferred = Array.make deg false;
            fork = Array.map (fun j -> cfg.colors.(i) > cfg.colors.(j)) row;
            token = Array.map (fun j -> cfg.colors.(i) < cfg.colors.(j)) row;
            sessions_left = cfg.sessions;
          });
    chans = Array.init n (fun i -> Array.make (Array.length (nbrs cfg i)) []);
    susp = Array.init n (fun i -> Array.make (Array.length (nbrs cfg i)) false);
    crashed = Array.make n false;
    crash_budget_left = cfg.crash_budget;
    fp_budget_left = cfg.fp_budget;
    absorbed = Array.init n (fun i -> Array.make (Array.length (nbrs cfg i)) no_absorbed);
  }

let push cfg s ~src ~dst m =
  let k = nbr_index cfg src dst in
  s.chans.(src).(k) <- s.chans.(src).(k) @ [ m ]

(* ------------------------------------------------------------------ *)
(* Delivery handlers (Actions 3, 4, 7, 8), mutating a fresh copy.      *)
(* ------------------------------------------------------------------ *)

exception Model_violation of string

let handle cfg s ~dst ~src m =
  let p = s.procs.(dst) in
  let k = nbr_index cfg dst src in
  match m with
  | P ->
      if p.inside || p.replied.(k) then p.deferred.(k) <- true
      else begin
        push cfg s ~src:dst ~dst:src A;
        p.replied.(k) <- p.phase = 1
      end
  | A ->
      p.ack.(k) <- p.phase = 1 && not p.inside;
      p.pinged.(k) <- false
  | R c ->
      if not p.fork.(k) then
        raise (Model_violation (Printf.sprintf "Lemma 1.1: %d requested fork %d lacks" src dst));
      p.token.(k) <- true;
      if (not p.inside) || (p.phase = 1 && cfg.colors.(dst) < c) then begin
        p.fork.(k) <- false;
        push cfg s ~src:dst ~dst:src F
      end
  | F ->
      if p.token.(k) then
        raise (Model_violation (Printf.sprintf "Lemma 1.1: %d got fork holding token" dst));
      if p.fork.(k) then
        raise (Model_violation (Printf.sprintf "Lemma 1.2: duplicated fork at %d" dst));
      p.fork.(k) <- true

(* ------------------------------------------------------------------ *)
(* Transition enumeration.                                             *)
(* ------------------------------------------------------------------ *)

type action =
  | Act_local of { pid : int; tag : string }
  | Act_deliver of { src : int; dst : int }
  | Act_drop of { src : int; dst : int }
  | Act_crash of { pid : int }
  | Act_detect of { observer : int; target : int }
  | Act_fp of { observer : int; target : int }

let successors_tagged cfg s =
  let n = Array.length s.procs in
  let out = ref [] in
  let add act label next = out := (act, label, next) :: !out in
  let fresh () = copy_state s in
  for i = 0 to n - 1 do
    let p = s.procs.(i) in
    let row = nbrs cfg i in
    let deg = Array.length row in
    if not s.crashed.(i) then begin
      (* Action 1: become hungry (budgeted). *)
      if p.phase = 0 && p.sessions_left > 0 then begin
        let s' = fresh () in
        s'.procs.(i) <-
          { (s'.procs.(i)) with phase = 1; sessions_left = p.sessions_left - 1 };
        add (Act_local { pid = i; tag = "hungry" }) (Printf.sprintf "hungry(%d)" i) s'
      end;
      if p.phase = 1 && not p.inside then begin
        (* Action 2: ping neighbors lacking an ack and a pending ping. *)
        let targets = ref [] in
        for k = 0 to deg - 1 do
          if (not p.pinged.(k)) && not p.ack.(k) then targets := k :: !targets
        done;
        if !targets <> [] then begin
          let s' = fresh () in
          let p' = s'.procs.(i) in
          List.iter
            (fun k ->
              p'.pinged.(k) <- true;
              push cfg s' ~src:i ~dst:row.(k) P)
            !targets;
          add (Act_local { pid = i; tag = "a2" }) (Printf.sprintf "a2(%d)" i) s'
        end;
        (* Action 5: enter the doorway. *)
        let ok = ref true in
        for k = 0 to deg - 1 do
          if not (p.ack.(k) || s.susp.(i).(k)) then ok := false
        done;
        if !ok then begin
          let s' = fresh () in
          let p' = s'.procs.(i) in
          Array.fill p'.ack 0 deg false;
          Array.fill p'.replied 0 deg false;
          s'.procs.(i) <- { p' with inside = true };
          add (Act_local { pid = i; tag = "a5" }) (Printf.sprintf "a5(%d)" i) s'
        end
      end;
      if p.phase = 1 && p.inside then begin
        (* Action 6: request missing forks. *)
        let targets = ref [] in
        for k = 0 to deg - 1 do
          if p.token.(k) && not p.fork.(k) then targets := k :: !targets
        done;
        if !targets <> [] then begin
          let s' = fresh () in
          let p' = s'.procs.(i) in
          List.iter
            (fun k ->
              p'.token.(k) <- false;
              push cfg s' ~src:i ~dst:row.(k) (R cfg.colors.(i)))
            !targets;
          add (Act_local { pid = i; tag = "a6" }) (Printf.sprintf "a6(%d)" i) s'
        end;
        (* Action 9: eat. *)
        let ok = ref true in
        for k = 0 to deg - 1 do
          if not (p.fork.(k) || s.susp.(i).(k)) then ok := false
        done;
        if !ok then begin
          let s' = fresh () in
          s'.procs.(i) <- { (s'.procs.(i)) with phase = 2 };
          add (Act_local { pid = i; tag = "a9" }) (Printf.sprintf "a9(%d)" i) s'
        end
      end;
      (* Action 10: exit. *)
      if p.phase = 2 then begin
        let s' = fresh () in
        let p' = s'.procs.(i) in
        for k = 0 to deg - 1 do
          if p'.token.(k) && p'.fork.(k) then begin
            p'.fork.(k) <- false;
            push cfg s' ~src:i ~dst:row.(k) F
          end
        done;
        for k = 0 to deg - 1 do
          if p'.deferred.(k) then begin
            p'.deferred.(k) <- false;
            push cfg s' ~src:i ~dst:row.(k) A
          end
        done;
        s'.procs.(i) <- { p' with phase = 0; inside = false };
        add (Act_local { pid = i; tag = "a10" }) (Printf.sprintf "a10(%d)" i) s'
      end;
      (* Crash fault. *)
      if s.crash_budget_left > 0 then begin
        let s' = fresh () in
        s'.crashed.(i) <- true;
        add (Act_crash { pid = i })
          (Printf.sprintf "crash(%d)" i)
          { s' with crash_budget_left = s.crash_budget_left - 1 }
      end;
      (* Oracle output changes at observer i. *)
      for k = 0 to deg - 1 do
        let j = row.(k) in
        if s.crashed.(j) then begin
          if not s.susp.(i).(k) then begin
            (* Completeness: suspicion of a crashed neighbor can switch on
               (and, being justified, never off). *)
            let s' = fresh () in
            s'.susp.(i).(k) <- true;
            add (Act_detect { observer = i; target = j }) (Printf.sprintf "detect(%d,%d)" i j) s'
          end
        end
        else if s.fp_budget_left > 0 then begin
          let s' = fresh () in
          s'.susp.(i).(k) <- not s.susp.(i).(k);
          add
              (Act_fp { observer = i; target = j })
              (Printf.sprintf "fp(%d,%d)" i j)
              { s' with fp_budget_left = s.fp_budget_left - 1 }
        end
      done
    end;
    (* Message deliveries on channels i -> each neighbor. *)
    for k = 0 to deg - 1 do
      match s.chans.(i).(k) with
      | [] -> ()
      | m :: rest -> (
          let j = row.(k) in
          let s' = fresh () in
          s'.chans.(i).(k) <- rest;
          if s.crashed.(j) then begin
            let ab = s'.absorbed.(i).(k) in
            s'.absorbed.(i).(k) <-
              (match m with
              | P -> { ab with ab_p = ab.ab_p + 1 }
              | A -> { ab with ab_a = ab.ab_a + 1 }
              | R _ -> { ab with ab_r = ab.ab_r + 1 }
              | F -> { ab with ab_f = ab.ab_f + 1 });
            add (Act_drop { src = i; dst = j }) (Printf.sprintf "drop(%d->%d)" i j) s'
          end
          else begin
            handle cfg s' ~dst:j ~src:i m;
            add (Act_deliver { src = i; dst = j }) (Printf.sprintf "deliver(%d->%d)" i j) s'
          end)
    done
  done;
  List.rev !out

let successors cfg s =
  List.map (fun (_act, label, next) -> (label, next)) (successors_tagged cfg s)

let proc_of = function
  | Act_local { pid; _ } | Act_crash { pid } -> pid
  | Act_deliver { dst; _ } | Act_drop { dst; _ } -> dst
  | Act_detect { observer; _ } | Act_fp { observer; _ } -> observer

(* The process set an action reads or writes, as an (a, b) pair with
   b = -1 for single-process actions. *)
let touches = function
  | Act_local { pid; _ } | Act_crash { pid } -> (pid, -1)
  | Act_deliver { src; dst } | Act_drop { src; dst } -> (src, dst)
  | Act_detect { observer; target } | Act_fp { observer; target } -> (observer, target)

(* Whole-process actions: their effect (a phase change, a live->crashed
   flip, messages pushed onto every incident out-channel) is read by the
   invariant footprint of every incident edge, so two of them must be
   non-adjacent to have provably disjoint footprints. Channel actions
   only write the footprint of their own edge; oracle flips write no
   invariant footprint at all. *)
let proc_wide = function
  | Act_local _ | Act_crash _ -> true
  | Act_deliver _ | Act_drop _ | Act_detect _ | Act_fp _ -> false

let independent cfg a b =
  let mem x (p, q) = x >= 0 && (x = p || x = q) in
  let disjoint (p, q) pb = not (mem p pb || mem q pb) in
  let adjacent_sets (p, q) (p', q') =
    let adj x y = x >= 0 && y >= 0 && Cgraph.Graph.is_edge cfg.graph x y in
    adj p p' || adj p q' || adj q p' || adj q q'
  in
  let ta = touches a and tb = touches b in
  match (a, b) with
  (* Shared-budget siblings: executing one can disable the other. *)
  | Act_crash _, Act_crash _ | Act_fp _, Act_fp _ -> false
  (* Channel actions confine reads and writes to their own edge. *)
  | (Act_deliver _ | Act_drop _), (Act_deliver _ | Act_drop _) -> disjoint ta tb
  | _ ->
      disjoint ta tb
      && ((not (proc_wide a && proc_wide b)) || not (adjacent_sets ta tb))

(* ------------------------------------------------------------------ *)
(* Invariants.                                                          *)
(* ------------------------------------------------------------------ *)

let count_kind pred queue = List.length (List.filter pred queue)

let check cfg s =
  let violation = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !violation = None then violation := Some m) fmt in
  let n = Array.length s.procs in
  (* Eating implies inside. *)
  for i = 0 to n - 1 do
    let p = s.procs.(i) in
    if p.phase = 2 && not p.inside then fail "p%d eats outside doorway" i
  done;
  (* Weak exclusion among live neighbors holds outright when the oracle
     never lies (fp budget 0 in the whole run). *)
  if cfg.fp_budget = 0 then
    Cgraph.Graph.iter_edges cfg.graph (fun i j ->
        if
          s.procs.(i).phase = 2 && s.procs.(j).phase = 2
          && (not s.crashed.(i))
          && not s.crashed.(j)
        then fail "exclusion: %d and %d eat simultaneously" i j);
  Cgraph.Graph.iter_edges cfg.graph (fun i j ->
      let ki = nbr_index cfg i j and kj = nbr_index cfg j i in
      let ci = s.chans.(i).(ki) and cj = s.chans.(j).(kj) in
      let abi = s.absorbed.(i).(ki) and abj = s.absorbed.(j).(kj) in
      (* Fork conservation (Lemma 1.2 + crash absorption). *)
      let forks =
        (if s.procs.(i).fork.(ki) then 1 else 0)
        + (if s.procs.(j).fork.(kj) then 1 else 0)
        + count_kind (fun m -> m = F) ci
        + count_kind (fun m -> m = F) cj
        + abi.ab_f + abj.ab_f
      in
      if forks <> 1 then fail "edge(%d,%d): %d forks" i j forks;
      (* Token conservation. *)
      let tokens =
        (if s.procs.(i).token.(ki) then 1 else 0)
        + (if s.procs.(j).token.(kj) then 1 else 0)
        + count_kind (function R _ -> true | _ -> false) ci
        + count_kind (function R _ -> true | _ -> false) cj
        + abi.ab_r + abj.ab_r
      in
      if tokens <> 1 then fail "edge(%d,%d): %d tokens" i j tokens;
      (* Lemma 2.2 (ping-pipeline consistency), in both directions. *)
      let ping_pipeline a b ka kb ca cb ab_a ab_b =
        let artifacts =
          count_kind (fun m -> m = P) ca
          + ab_a.ab_p
          + (if s.procs.(b).deferred.(kb) then 1 else 0)
          + count_kind (fun m -> m = A) cb
          + ab_b.ab_a
        in
        let expected = if s.procs.(a).pinged.(ka) then 1 else 0 in
        if artifacts <> expected then
          fail "pair(%d,%d): pinged=%b with %d ping artifacts" a b s.procs.(a).pinged.(ka)
            artifacts
      in
      ping_pipeline i j ki kj ci cj abi abj;
      ping_pipeline j i kj ki cj ci abj abi;
      (* Section 7: channel capacity. *)
      let in_transit = List.length ci + List.length cj in
      if in_transit > 4 then fail "edge(%d,%d): %d messages in transit" i j in_transit);
  !violation

(* Canonical key: a compact byte encoding driven purely by structure,
   iterated in a fixed order (process, then neighbor index), with
   explicit length prefixes so the encoding is injective. [Marshal]
   output depends on in-memory sharing, which both risks duplicate
   visited-set entries for structurally equal states and costs ~10x the
   bytes. *)
let add_bits b arr =
  let n = Array.length arr in
  let byte = ref 0 and nb = ref 0 in
  for k = 0 to n - 1 do
    if arr.(k) then byte := !byte lor (1 lsl !nb);
    incr nb;
    if !nb = 8 then begin
      Buffer.add_uint8 b !byte;
      byte := 0;
      nb := 0
    end
  done;
  if !nb > 0 then Buffer.add_uint8 b !byte

let add_msg b = function
  | P -> Buffer.add_uint8 b 0
  | A -> Buffer.add_uint8 b 1
  | F -> Buffer.add_uint8 b 2
  | R c ->
      Buffer.add_uint8 b 3;
      Buffer.add_uint16_le b c

let key s =
  let b = Buffer.create 64 in
  Buffer.add_uint16_le b s.crash_budget_left;
  Buffer.add_uint16_le b s.fp_budget_left;
  add_bits b s.crashed;
  Array.iter
    (fun p ->
      (* phase (2 bits) and inside share a byte; sessions_left is small. *)
      Buffer.add_uint8 b (p.phase lor if p.inside then 4 else 0);
      Buffer.add_uint16_le b p.sessions_left;
      add_bits b p.pinged;
      add_bits b p.ack;
      add_bits b p.replied;
      add_bits b p.deferred;
      add_bits b p.fork;
      add_bits b p.token)
    s.procs;
  Array.iter (fun row -> add_bits b row) s.susp;
  Array.iter
    (fun row ->
      Array.iter
        (fun q ->
          Buffer.add_uint8 b (List.length q);
          List.iter (add_msg b) q)
        row)
    s.chans;
  Array.iter
    (fun row ->
      Array.iter
        (fun ab ->
          Buffer.add_uint16_le b ab.ab_p;
          Buffer.add_uint16_le b ab.ab_a;
          Buffer.add_uint16_le b ab.ab_r;
          Buffer.add_uint16_le b ab.ab_f)
        row)
    s.absorbed;
  Buffer.contents b

let hungry_live_process _cfg s =
  let found = ref None in
  Array.iteri
    (fun i p -> if !found = None && p.phase = 1 && not s.crashed.(i) then found := Some i)
    s.procs;
  !found

let phase s i =
  match s.procs.(i).phase with 0 -> `Thinking | 1 -> `Hungry | _ -> `Eating

let inside s i = s.procs.(i).inside
let crashed s i = s.crashed.(i)

let describe s =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf "p%d:%s%s%s " i
           (match p.phase with 0 -> "T" | 1 -> "H" | _ -> "E")
           (if p.inside then "+in" else "")
           (if s.crashed.(i) then "+crashed" else "")))
    s.procs;
  Buffer.contents b
