(** Deterministic replay of counterexample schedules.

    An exploration that finds a violation exports the schedule — the
    list of transition labels from the initial state — via {!to_jsonl};
    {!run} drives the model along it and reports whether the violation
    reappears. {!Model.successors} is pure and labels are unique per
    state, so a replay is deterministic: same config, same schedule,
    same outcome, every time. *)

type outcome =
  | Reproduced of { step : int; message : string; state : string }
      (** The invariant violation reappeared after [step] transitions.
          [step = 0] means the initial state itself violates. *)
  | Clean of int
      (** The whole schedule ran (that many steps) without violating —
          the counterexample did {e not} reproduce. *)
  | Stuck of { step : int; label : string; available : string list }
      (** The schedule names a transition that does not exist at the
          state reached after [step] steps — config mismatch or a
          corrupted trace. *)

val run :
  ?check:(Model.config -> Model.state -> string option) ->
  Model.config ->
  string list ->
  outcome
(** Replay the labels in order from {!Model.initial}, checking each
    visited state (including the initial one) with [check] (default
    {!Model.check}). *)

val to_jsonl : ?header:string -> string list -> string
(** Export a schedule as an {!Obs.Jsonl} trace: one [Mark] record per
    step, tag ["mcheck.step"], the label in [detail], the step index as
    seq and time. [?header] prepends a [# ...] comment line. *)

val of_jsonl : string -> string list
(** Parse a {!to_jsonl} export back into a schedule, ignoring header
    lines and any records that are not ["mcheck.step"] marks. *)

val pp_outcome : Format.formatter -> outcome -> unit
