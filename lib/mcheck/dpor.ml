(* Depth-first exploration with sleep-set partial-order reduction and
   optional preemption-bounded scheduling, in the dejafu / Godefroid
   mold.

   Sleep sets: when sibling transitions [t1; t2] at a state are
   independent, the subtree below [t2] need not re-explore [t1] first —
   [t1;t2] and [t2;t1] lead to the same state, and the [t1]-first order
   was already taken. Exploring [t2], the child inherits a sleep set
   holding every already-explored sibling (and inherited sleeper) that
   is independent of [t2]; sleeping transitions are skipped when their
   turn comes. With a valid independence relation this prunes only
   redundant interleavings: every reachable state is still visited (the
   classic result that sleep sets alone reduce transitions, not states),
   so per-state invariant checking loses nothing.

   State matching is Godefroid's stored-sleep-set variant (the sound
   form of sleep sets + state caching): each visited state remembers
   which of its transitions are still unexplored — exactly those slept
   on every visit so far. Revisiting with sleep set [c], only
   [stored \ c] is (re-)explored and the memo shrinks to [stored ∩ c];
   revisits with nothing new to wake are pruned outright. The
   to-explore sets of successive visits are disjoint, so every
   transition out of a state executes at most once across the whole
   search: the DPOR transition count is bounded by the BFS one, and is
   strictly smaller as soon as any sleep survives to the end.

   Preemption bounding: dejafu-style schedule bounding. Executing a
   transition of process [q] directly after one of process [p <> q]
   while [p] still has an enabled transition costs one preemption;
   schedules exceeding the budget are pruned and the result is marked
   incomplete. Sound for bug-finding within the bound, not exhaustive. *)

module Sset = Set.Make (String)

type frame = {
  label_in : string; (* incoming transition label, "" at the root *)
  proc_in : int; (* process of the incoming transition, -1 at the root *)
  preempts : int; (* preemptions spent reaching this state *)
  enabled_procs : int list; (* processes with an enabled transition here *)
  mutable pending : (Model.action * string * Model.state) list;
      (* transitions still to run on THIS visit (the wake set) *)
  mutable sleep : (Model.action * string) list;
      (* working sleep set: inherited sleepers plus taken siblings;
         children inherit its independent subset *)
}

let explore ?(max_states = 200_000) ?(max_depth = max_int) ?preemption_bound ?check cfg =
  let check = match check with Some f -> f | None -> Model.check in
  let interned = Intern.create () in
  (* id -> labels of this state's transitions never yet explored (slept
     on every visit so far). Absent id = never expanded. *)
  let unexplored : (int, Sset.t) Hashtbl.t = Hashtbl.create 4096 in
  let transitions = ref 0 in
  let max_stack = ref 0 in
  let violation = ref None in
  let vio_trace = ref None in
  let truncated = ref false in
  let bound_hit = ref false in
  let deadlocks = ref 0 in
  let stack = ref [] in
  let stack_trace frames =
    List.rev
      (List.filter_map (fun f -> if f.label_in = "" then None else Some f.label_in) frames)
  in
  (* Enter [state], reached via [label_in] under sleep set [sleep].
     Interns and invariant-checks fresh states; decides the wake set
     from the memo; pushes a frame when anything is left to run. *)
  let push ~state ~label_in ~proc_in ~preempts ~sleep =
    let k = Model.key state in
    let depth = List.length !stack in
    let fresh, id_opt =
      match Intern.find_opt interned k with
      | Some id -> (false, Some id)
      | None ->
          if Intern.count interned >= max_states then begin
            truncated := true;
            (false, None)
          end
          else begin
            let id = match Intern.add interned k with `New id | `Seen id -> id in
            (match check cfg state with
            | Some msg ->
                violation := Some (msg, Model.describe state);
                vio_trace :=
                  Some (stack_trace !stack @ if label_in = "" then [] else [ label_in ])
            | None -> ());
            (true, Some id)
          end
    in
    if !violation = None then
      match id_opt with
      | None -> () (* capped out above *)
      | Some id ->
          if depth > max_depth then truncated := true
          else begin
            match Model.successors_tagged cfg state with
            | exception Model.Model_violation msg ->
                violation := Some (msg, "(during delivery)");
                vio_trace :=
                  Some (stack_trace !stack @ if label_in = "" then [] else [ label_in ])
            | [] ->
                if fresh && Model.hungry_live_process cfg state <> None then incr deadlocks
            | succs ->
                let sleeping = Sset.of_list (List.map snd sleep) in
                let wake =
                  match Hashtbl.find_opt unexplored id with
                  | None ->
                      (* first expansion: run everything not slept;
                         remember the slept remainder *)
                      let slept, wake =
                        List.partition (fun (_, l, _) -> Sset.mem l sleeping) succs
                      in
                      Hashtbl.replace unexplored id
                        (Sset.of_list (List.map (fun (_, l, _) -> l) slept));
                      wake
                  | Some stored ->
                      (* revisit: wake only what every earlier visit
                         slept on and this one does not *)
                      let wake =
                        List.filter
                          (fun (_, l, _) ->
                            Sset.mem l stored && not (Sset.mem l sleeping))
                          succs
                      in
                      Hashtbl.replace unexplored id (Sset.inter stored sleeping);
                      wake
                in
                if wake <> [] then begin
                  let enabled_procs =
                    List.sort_uniq compare (List.map (fun (a, _, _) -> Model.proc_of a) succs)
                  in
                  stack :=
                    { label_in; proc_in; preempts; enabled_procs; pending = wake; sleep }
                    :: !stack;
                  if depth + 1 > !max_stack then max_stack := depth + 1
                end
          end
  in
  push ~state:(Model.initial cfg) ~label_in:"" ~proc_in:(-1) ~preempts:0 ~sleep:[];
  while !stack <> [] && !violation = None do
    match !stack with
    | [] -> ()
    | f :: rest -> (
        match f.pending with
        | [] -> stack := rest
        | (act, label, next) :: pending ->
            f.pending <- pending;
            let cost =
              if
                f.proc_in >= 0
                && Model.proc_of act <> f.proc_in
                && List.mem f.proc_in f.enabled_procs
              then 1
              else 0
            in
            let over_bound =
              match preemption_bound with
              | Some b -> f.preempts + cost > b
              | None -> false
            in
            if over_bound then bound_hit := true
            else begin
              incr transitions;
              let child_sleep =
                List.filter (fun (a, _l) -> Model.independent cfg a act) f.sleep
              in
              f.sleep <- (act, label) :: f.sleep;
              push ~state:next ~label_in:label ~proc_in:(Model.proc_of act)
                ~preempts:(f.preempts + cost) ~sleep:child_sleep
            end)
  done;
  {
    Explore.states = Intern.count interned;
    transitions = !transitions;
    depth = !max_stack;
    complete = (not !truncated) && (not !bound_hit) && !violation = None;
    violation = !violation;
    deadlocks = !deadlocks;
    trace = !vio_trace;
  }
