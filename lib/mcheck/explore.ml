type result = {
  states : int;
  transitions : int;
  depth : int;
  complete : bool;
  violation : (string * string) option;
  deadlocks : int;
  trace : string list option;
}

(* Walk parent pointers (id -> parent id * incoming label) back to the
   root and return the schedule root -> violating state. *)
let rebuild_trace parents id =
  let rec go id acc =
    match Hashtbl.find_opt parents id with
    | None -> acc
    | Some (parent, label) -> go parent (label :: acc)
  in
  go id []

let bfs ?(max_states = 200_000) ?(max_depth = max_int) ?check cfg =
  let check = match check with Some f -> f | None -> Model.check in
  let interned = Intern.create () in
  let parents : (int, int * string) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let depth = ref 0 in
  let violation = ref None in
  let vio_id = ref (-1) in
  let truncated = ref false in
  let deadlocks = ref 0 in
  let enqueue d parent label state =
    let k = Model.key state in
    if not (Intern.mem interned k) then begin
      if Intern.count interned >= max_states then truncated := true
      else
        match Intern.add interned k with
        | `Seen _ -> ()
        | `New id ->
            if parent >= 0 then Hashtbl.add parents id (parent, label);
            if d > !depth then depth := d;
            (match check cfg state with
            | Some msg ->
                violation := Some (msg, Model.describe state);
                vio_id := id
            | None -> ());
            Queue.add (state, id, d) queue
    end
  in
  enqueue 0 (-1) "" (Model.initial cfg);
  while (not (Queue.is_empty queue)) && !violation = None do
    let state, id, d = Queue.pop queue in
    match Model.successors cfg state with
    | exception Model.Model_violation msg ->
        violation := Some (msg, "(during delivery)");
        vio_id := id
    | [] -> if Model.hungry_live_process cfg state <> None then incr deadlocks
    | succs ->
        if d < max_depth then
          List.iter
            (fun (label, next) ->
              incr transitions;
              if !violation = None then enqueue (d + 1) id label next)
            succs
        else
          (* At the depth cap: expand only to learn whether anything
             unexplored lies beyond it. A state whose successors are all
             already visited does not make the search incomplete. *)
          List.iter
            (fun (_label, next) ->
              incr transitions;
              if not (Intern.mem interned (Model.key next)) then truncated := true)
            succs
  done;
  {
    states = Intern.count interned;
    transitions = !transitions;
    depth = !depth;
    complete = (not !truncated) && !violation = None;
    violation = !violation;
    deadlocks = !deadlocks;
    trace = (if !vio_id >= 0 then Some (rebuild_trace parents !vio_id) else None);
  }

type reach_result = Found of int | Unreachable | Truncated

let reach ?(max_states = 200_000) ?(max_depth = max_int) ~pred cfg =
  let interned = Intern.create () in
  let queue = Queue.create () in
  let found = ref None in
  let truncated = ref false in
  let enqueue d state =
    if !found = None && pred state then found := Some d
    else begin
      let k = Model.key state in
      if not (Intern.mem interned k) then begin
        if Intern.count interned >= max_states then truncated := true
        else begin
          ignore (Intern.add interned k);
          Queue.add (state, d) queue
        end
      end
    end
  in
  enqueue 0 (Model.initial cfg);
  while (not (Queue.is_empty queue)) && !found = None do
    let state, d = Queue.pop queue in
    let succs = Model.successors cfg state in
    if d < max_depth then List.iter (fun (_label, next) -> enqueue (d + 1) next) succs
    else
      (* Depth-capped frontier: anything unexplored beyond it means a
         negative answer cannot be trusted. *)
      List.iter
        (fun (_label, next) ->
          if not (Intern.mem interned (Model.key next)) then truncated := true)
        succs
  done;
  match !found with
  | Some d -> Found d
  | None -> if !truncated then Truncated else Unreachable

type progress_result = {
  reachable : int;
  hungry_states : int;
  stuck_states : int;
  progress_complete : bool;
}

let progress ?(max_states = 200_000) ~pid cfg =
  (* Forward pass: enumerate the reachable graph with dense integer state
     ids. Ids are interned in BFS order, and every later pass iterates
     arrays in id order — the intern table is only ever probed for
     membership, so no result depends on its iteration order. *)
  let ids = Intern.create () in
  let succs_acc = ref [] in (* (id, successor ids), newest first *)
  let hungry_acc = ref [] and eating_acc = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let intern state =
    let k = Model.key state in
    match Intern.find_opt ids k with
    | Some id -> Some id
    | None ->
        if Intern.count ids >= max_states then begin
          truncated := true;
          None
        end
        else
          match Intern.add ids k with
          | `Seen id -> Some id
          | `New id ->
              if not (Model.crashed state pid) then begin
                if Model.phase state pid = `Hungry then hungry_acc := id :: !hungry_acc;
                if Model.phase state pid = `Eating then eating_acc := id :: !eating_acc
              end;
              Queue.add (state, id) queue;
              Some id
  in
  ignore (intern (Model.initial cfg));
  while not (Queue.is_empty queue) do
    let state, id = Queue.pop queue in
    let succ_ids =
      List.filter_map (fun (_label, next) -> intern next) (Model.successors cfg state)
    in
    succs_acc := (id, succ_ids) :: !succs_acc
  done;
  let n = Intern.count ids in
  let succs_of = Array.make n [] in
  List.iter (fun (id, succ_ids) -> succs_of.(id) <- succ_ids) !succs_acc;
  let hungry = Array.make n false and eating = Array.make n false in
  List.iter (fun id -> hungry.(id) <- true) !hungry_acc;
  List.iter (fun id -> eating.(id) <- true) !eating_acc;
  (* Backward pass: which states can still lead to [pid] eating? *)
  let preds = Array.make n [] in
  Array.iteri
    (fun id succ_ids -> List.iter (fun s -> preds.(s) <- id :: preds.(s)) succ_ids)
    succs_of;
  let can_eat = Array.make n false in
  let back = Queue.create () in
  for id = 0 to n - 1 do
    if eating.(id) then begin
      can_eat.(id) <- true;
      Queue.add id back
    end
  done;
  while not (Queue.is_empty back) do
    let id = Queue.pop back in
    List.iter
      (fun p ->
        if not can_eat.(p) then begin
          can_eat.(p) <- true;
          Queue.add p back
        end)
      preds.(id)
  done;
  let hungry_count = ref 0 and stuck = ref 0 in
  for id = 0 to n - 1 do
    if hungry.(id) then begin
      incr hungry_count;
      if not can_eat.(id) then incr stuck
    end
  done;
  {
    reachable = n;
    hungry_states = !hungry_count;
    stuck_states = !stuck;
    progress_complete = not !truncated;
  }

type walk_result = {
  walks_done : int;
  steps_taken : int;
  walk_violation : (string * string) option;
}

let random_walk ?(walks = 64) ?(steps = 400) ?check ~seed cfg =
  let check = match check with Some f -> f | None -> Model.check in
  let rng = Sim.Rng.create seed in
  let steps_taken = ref 0 in
  let violation = ref None in
  let walks_done = ref 0 in
  (* The initial state is on every walk; check it once (BFS checks it
     via its depth-0 enqueue — a walker that skips it would silently
     miss a violation in [Model.initial]). *)
  let init = Model.initial cfg in
  (match check cfg init with
  | Some msg -> violation := Some (msg, Model.describe init)
  | None -> ());
  (try
     while !walks_done < walks && !violation = None do
       incr walks_done;
       let state = ref init in
       let continue = ref true in
       let remaining = ref steps in
       while !continue && !remaining > 0 && !violation = None do
         decr remaining;
         match Model.successors cfg !state with
         | [] -> continue := false
         | succs ->
             let _, next = List.nth succs (Sim.Rng.int rng (List.length succs)) in
             incr steps_taken;
             (match check cfg next with
             | Some msg -> violation := Some (msg, Model.describe next)
             | None -> ());
             state := next
       done
     done
   with Model.Model_violation msg -> violation := Some (msg, "(during delivery)"));
  { walks_done = !walks_done; steps_taken = !steps_taken; walk_violation = !violation }

let pp_result ppf r =
  Format.fprintf ppf "states=%d transitions=%d depth=%d complete=%b deadlocks=%d %s" r.states
    r.transitions r.depth r.complete r.deadlocks
    (match r.violation with
    | None -> "no violation"
    | Some (msg, state) ->
        Printf.sprintf "VIOLATION: %s in [%s]%s" msg state
          (match r.trace with
          | Some t -> Printf.sprintf " after %d steps" (List.length t)
          | None -> ""))
