type result = {
  states : int;
  transitions : int;
  depth : int;
  complete : bool;
  violation : (string * string) option;
  deadlocks : int;
}

let bfs ?(max_states = 200_000) ?(max_depth = max_int) cfg =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let depth = ref 0 in
  let violation = ref None in
  let truncated = ref false in
  let deadlocks = ref 0 in
  let enqueue d state =
    let k = Model.key state in
    if not (Hashtbl.mem visited k) then begin
      if Hashtbl.length visited >= max_states then truncated := true
      else begin
        Hashtbl.add visited k ();
        incr states;
        if d > !depth then depth := d;
        (match Model.check cfg state with
        | Some msg -> violation := Some (msg, Model.describe state)
        | None -> ());
        Queue.add (state, d) queue
      end
    end
  in
  enqueue 0 (Model.initial cfg);
  (try
     while (not (Queue.is_empty queue)) && !violation = None do
       let state, d = Queue.pop queue in
       if d < max_depth then begin
         let succs = Model.successors cfg state in
         if succs = [] && Model.hungry_live_process cfg state <> None then incr deadlocks;
         List.iter
           (fun (_label, next) ->
             incr transitions;
             if !violation = None then enqueue (d + 1) next)
           succs
       end
       else truncated := true
     done
   with Model.Model_violation msg -> violation := Some (msg, "(during delivery)"));
  {
    states = !states;
    transitions = !transitions;
    depth = !depth;
    complete = (not !truncated) && !violation = None;
    violation = !violation;
    deadlocks = !deadlocks;
  }

let reach ?(max_states = 200_000) ?(max_depth = max_int) ~pred cfg =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let found = ref None in
  let enqueue d state =
    if !found = None && pred state then found := Some d
    else begin
      let k = Model.key state in
      if (not (Hashtbl.mem visited k)) && Hashtbl.length visited < max_states then begin
        Hashtbl.add visited k ();
        Queue.add (state, d) queue
      end
    end
  in
  enqueue 0 (Model.initial cfg);
  while (not (Queue.is_empty queue)) && !found = None do
    let state, d = Queue.pop queue in
    if d < max_depth then
      List.iter (fun (_label, next) -> enqueue (d + 1) next) (Model.successors cfg state)
  done;
  !found

type progress_result = {
  reachable : int;
  hungry_states : int;
  stuck_states : int;
  progress_complete : bool;
}

let progress ?(max_states = 200_000) ~pid cfg =
  (* Forward pass: enumerate the reachable graph with dense integer state
     ids. Ids are interned in BFS order, and every later pass iterates
     arrays in id order — the hash table is only ever probed for
     membership, so no result depends on its iteration order. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let succs_acc = ref [] in (* (id, successor ids), newest first *)
  let hungry_acc = ref [] and eating_acc = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let intern state =
    let k = Model.key state in
    match Hashtbl.find_opt ids k with
    | Some id -> Some id
    | None ->
        if Hashtbl.length ids >= max_states then begin
          truncated := true;
          None
        end
        else begin
          let id = Hashtbl.length ids in
          Hashtbl.add ids k id;
          if not (Model.crashed state pid) then begin
            if Model.phase state pid = `Hungry then hungry_acc := id :: !hungry_acc;
            if Model.phase state pid = `Eating then eating_acc := id :: !eating_acc
          end;
          Queue.add (state, id) queue;
          Some id
        end
  in
  ignore (intern (Model.initial cfg));
  while not (Queue.is_empty queue) do
    let state, id = Queue.pop queue in
    let succ_ids =
      List.filter_map (fun (_label, next) -> intern next) (Model.successors cfg state)
    in
    succs_acc := (id, succ_ids) :: !succs_acc
  done;
  let n = Hashtbl.length ids in
  let succs_of = Array.make n [] in
  List.iter (fun (id, succ_ids) -> succs_of.(id) <- succ_ids) !succs_acc;
  let hungry = Array.make n false and eating = Array.make n false in
  List.iter (fun id -> hungry.(id) <- true) !hungry_acc;
  List.iter (fun id -> eating.(id) <- true) !eating_acc;
  (* Backward pass: which states can still lead to [pid] eating? *)
  let preds = Array.make n [] in
  Array.iteri
    (fun id succ_ids -> List.iter (fun s -> preds.(s) <- id :: preds.(s)) succ_ids)
    succs_of;
  let can_eat = Array.make n false in
  let back = Queue.create () in
  for id = 0 to n - 1 do
    if eating.(id) then begin
      can_eat.(id) <- true;
      Queue.add id back
    end
  done;
  while not (Queue.is_empty back) do
    let id = Queue.pop back in
    List.iter
      (fun p ->
        if not can_eat.(p) then begin
          can_eat.(p) <- true;
          Queue.add p back
        end)
      preds.(id)
  done;
  let hungry_count = ref 0 and stuck = ref 0 in
  for id = 0 to n - 1 do
    if hungry.(id) then begin
      incr hungry_count;
      if not can_eat.(id) then incr stuck
    end
  done;
  {
    reachable = n;
    hungry_states = !hungry_count;
    stuck_states = !stuck;
    progress_complete = not !truncated;
  }

type walk_result = {
  walks_done : int;
  steps_taken : int;
  walk_violation : (string * string) option;
}

let random_walk ?(walks = 64) ?(steps = 400) ~seed cfg =
  let rng = Sim.Rng.create seed in
  let steps_taken = ref 0 in
  let violation = ref None in
  let walks_done = ref 0 in
  (try
     while !walks_done < walks && !violation = None do
       incr walks_done;
       let state = ref (Model.initial cfg) in
       let continue = ref true in
       let remaining = ref steps in
       while !continue && !remaining > 0 && !violation = None do
         decr remaining;
         match Model.successors cfg !state with
         | [] -> continue := false
         | succs ->
             let _, next = List.nth succs (Sim.Rng.int rng (List.length succs)) in
             incr steps_taken;
             (match Model.check cfg next with
             | Some msg -> violation := Some (msg, Model.describe next)
             | None -> ());
             state := next
       done
     done
   with Model.Model_violation msg -> violation := Some (msg, "(during delivery)"));
  { walks_done = !walks_done; steps_taken = !steps_taken; walk_violation = !violation }

let pp_result ppf r =
  Format.fprintf ppf "states=%d transitions=%d depth=%d complete=%b deadlocks=%d %s" r.states
    r.transitions r.depth r.complete r.deadlocks
    (match r.violation with
    | None -> "no violation"
    | Some (msg, state) -> Printf.sprintf "VIOLATION: %s in [%s]" msg state)
