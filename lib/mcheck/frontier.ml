(* Level-synchronous BFS with the expansion step fanned out across an
   Exec.Pool. Determinism is by construction:

   - each level is an array of (state, id) in discovery order; it is
     split into contiguous chunks, and chunk expansion is pure (fresh
     state copies, no shared mutable data);
   - Exec.Pool.init returns chunk results in chunk-index order, so
     concatenating them re-creates exactly the successor stream a
     sequential expansion of the level would produce;
   - interning, parent recording, invariant verdicts and truncation all
     happen in the sequential merge over that stream.

   Hence states, transitions, depth, deadlocks, the chosen violation and
   its schedule are bit-identical for any [domains], and — on runs
   without a violation — identical to [Explore.bfs] field for field
   (with a violation, BFS stops mid-level while the frontier finishes
   merging its level, so only the verdict is shared). *)

type expansion =
  | Poisoned of int * string (* parent id, Model_violation message *)
  | Expanded of int * bool * (string * Model.state * string * string option) list
      (* parent id, parent-is-hungry-live-terminal,
         (label, successor, key, invariant verdict) per successor *)

let chunk_bounds len chunks =
  (* contiguous, in-order slices covering [0, len) *)
  let base = len / chunks and extra = len mod chunks in
  List.init chunks (fun c ->
      let lo = (c * base) + min c extra in
      let hi = lo + base + if c < extra then 1 else 0 in
      (lo, hi))

let explore ?(max_states = 200_000) ?(max_depth = max_int) ?(domains = 1) ?check cfg =
  let check = match check with Some f -> f | None -> Model.check in
  Exec.Pool.with_pool ~domains (fun pool ->
      let interned = Intern.create () in
      let parents : (int, int * string) Hashtbl.t = Hashtbl.create 4096 in
      let transitions = ref 0 in
      let depth = ref 0 in
      let violation = ref None in
      let vio_id = ref (-1) in
      let truncated = ref false in
      let deadlocks = ref 0 in
      let init = Model.initial cfg in
      ignore (Intern.add interned (Model.key init));
      (match check cfg init with
      | Some msg ->
          violation := Some (msg, Model.describe init);
          vio_id := 0
      | None -> ());
      let level = ref [| (init, 0) |] in
      let d = ref 0 in
      while Array.length !level > 0 && !violation = None do
        let arr = !level in
        let nchunks = max 1 (min (Array.length arr) (Exec.Pool.size pool)) in
        let bounds = Array.of_list (chunk_bounds (Array.length arr) nchunks) in
        (* Parallel part: successor generation, canonical keys and
           invariant checks — everything per-state and pure. *)
        let chunks =
          Exec.Pool.init pool nchunks (fun c ->
              let lo, hi = bounds.(c) in
              let out = ref [] in
              for i = hi - 1 downto lo do
                let state, id = arr.(i) in
                let item =
                  match Model.successors_tagged cfg state with
                  | exception Model.Model_violation msg -> Poisoned (id, msg)
                  | [] ->
                      Expanded (id, Model.hungry_live_process cfg state <> None, [])
                  | succs ->
                      Expanded
                        ( id,
                          false,
                          List.map
                            (fun (_act, label, next) ->
                              (label, next, Model.key next, check cfg next))
                            succs )
                in
                out := item :: !out
              done;
              !out)
        in
        (* Sequential merge, in canonical order. *)
        let next_level = ref [] in
        Array.iter
          (fun chunk ->
            List.iter
              (fun item ->
                match item with
                | Poisoned (id, msg) ->
                    if !violation = None then begin
                      violation := Some (msg, "(during delivery)");
                      vio_id := id
                    end
                | Expanded (_, true, _) -> incr deadlocks
                | Expanded (id, false, succs) ->
                    List.iter
                      (fun (label, next, k, verdict) ->
                        incr transitions;
                        if !d < max_depth then begin
                          if not (Intern.mem interned k) then begin
                            if Intern.count interned >= max_states then truncated := true
                            else
                              match Intern.add interned k with
                              | `Seen _ -> ()
                              | `New nid ->
                                  Hashtbl.add parents nid (id, label);
                                  next_level := (next, nid) :: !next_level;
                                  (match verdict with
                                  | Some msg ->
                                      if !violation = None then begin
                                        violation := Some (msg, Model.describe next);
                                        vio_id := nid
                                      end
                                  | None -> ())
                          end
                        end
                        else if not (Intern.mem interned k) then truncated := true)
                      succs)
              chunk)
          chunks;
        let next = Array.of_list (List.rev !next_level) in
        if Array.length next > 0 then begin
          incr d;
          depth := !d
        end;
        level := next
      done;
      {
        Explore.states = Intern.count interned;
        transitions = !transitions;
        depth = !depth;
        complete = (not !truncated) && !violation = None;
        violation = !violation;
        deadlocks = !deadlocks;
        trace =
          (if !vio_id >= 0 then Some (Explore.rebuild_trace parents !vio_id) else None);
      })
