(** Pure-functional explicit-state model of Algorithm 1.

    This is a second, independent encoding of the paper's pseudocode —
    immutable states, explicit per-channel FIFO queues, and one transition
    per guarded command — used to verify the algorithm's proven lemmas
    exhaustively on small instances (the simulator samples schedules; the
    model checker enumerates them).

    Sources of nondeterminism, each budgeted to keep the state space
    finite:
    - processes become hungry at most [sessions] times each;
    - at most [crash_budget] processes crash, at any point;
    - the ◇P₁ oracle makes at most [fp_budget] false-suspicion output
      changes (each set/clear of a live neighbor's suspicion consumes
      one); suspicion of a crashed neighbor can always be switched on
      (completeness) and never off again;
    - message delivery and every internal action interleave arbitrarily.

    With [fp_budget = 0] the detector is perpetually accurate, so the
    checker additionally asserts weak exclusion (no two live neighbors
    simultaneously eating — perpetual, per the paper's Theorem 1 argument
    specialised to a converged oracle). Structural lemmas (fork/token
    conservation, Lemma 1.1, Lemma 2.2, the 4-messages-per-edge bound) are
    asserted in {e every} mode. *)

type config = {
  graph : Cgraph.Graph.t;
  colors : int array;
  sessions : int;       (** hungry sessions per process *)
  crash_budget : int;
  fp_budget : int;
}

type state

val initial : config -> state

exception Model_violation of string
(** Raised when a delivery handler itself detects a violated lemma (a
    fork request arriving at a non-holder, a duplicated fork). *)

val successors : config -> state -> (string * state) list
(** All one-step successor states with human-readable transition labels.
    May raise {!Model_violation}; state-level invariants are found by
    {!check}. *)

type action =
  | Act_local of { pid : int; tag : string }
      (** Internal guarded command at [pid]: one of
          [hungry], [a2], [a5], [a6], [a9], [a10]. *)
  | Act_deliver of { src : int; dst : int }
      (** Head-of-queue delivery on the directed channel (src, dst). *)
  | Act_drop of { src : int; dst : int }
      (** Absorption of the head message: [dst] has crashed. *)
  | Act_crash of { pid : int }
  | Act_detect of { observer : int; target : int }
      (** Justified suspicion of a crashed neighbor switches on. *)
  | Act_fp of { observer : int; target : int }
      (** Budgeted false-suspicion output flip at a live neighbor. *)

val successors_tagged : config -> state -> (action * string * state) list
(** {!successors} with each transition's structural action attached.
    The label list is identical to {!successors}. *)

val proc_of : action -> int
(** The process "taking the step" — the acting process for internal
    actions, the destination for deliveries/drops, the observer for
    oracle output changes. Used for preemption accounting. *)

val independent : config -> action -> action -> bool
(** A sound (conservative, symmetric) independence relation: if
    [independent cfg a b] then in every state where both are enabled,
    executing them in either order reaches the same state, neither
    enables or disables the other, and no single per-edge invariant
    footprint is written by both. Concretely:
    - deliveries/drops on edges with disjoint endpoint sets commute;
    - otherwise the actions must touch disjoint process sets, two
      whole-process actions (internal steps, crashes) must additionally
      be non-adjacent, and two crashes (shared crash budget) or two
      false-positive flips (shared fp budget) are never independent. *)

val check : config -> state -> string option
(** First violated invariant of the state, if any. *)

val key : state -> string
(** Canonical compact byte encoding for visited-set hashing:
    structurally equal states yield equal keys regardless of how they
    were built (unlike [Marshal], whose output depends on in-memory
    sharing), and the encoding is injective, so distinct states never
    collide. Roughly half the size of a marshalled state on the smallest
    instances and shrinking relative to it as [n] grows (bools are
    bit-packed, no per-block headers) — the interning substrate for
    large explorations. *)

val hungry_live_process : config -> state -> int option
(** Some live process currently hungry, if any (deadlock detection in
    terminal states). *)

val phase : state -> int -> [ `Thinking | `Hungry | `Eating ]
val inside : state -> int -> bool
val crashed : state -> int -> bool
(** Accessors for reachability predicates. *)

val describe : state -> string
(** Compact human-readable dump (for violation reports). *)
