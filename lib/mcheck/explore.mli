(** Breadth-first exhaustive exploration of the {!Model} state space. *)

type result = {
  states : int;        (** distinct states visited *)
  transitions : int;   (** transitions expanded *)
  depth : int;         (** deepest level reached *)
  complete : bool;     (** the reachable space was exhausted within bounds *)
  violation : (string * string) option;
      (** (invariant message, state description), if any reachable state
          violates an invariant. A sound run of Algorithm 1 yields [None]. *)
  deadlocks : int;
      (** Terminal states (no outgoing transitions) in which some live
          process is still hungry — a stuck diner no event can ever wake.
          Wait-freedom predicts 0; a terminal state where everyone is
          thinking is just a finished run, not a deadlock. *)
  trace : string list option;
      (** When a violation was found: the schedule (transition labels)
          from the initial state to the violating state, replayable with
          {!Replay.run}. For a violation raised inside a delivery
          handler the trace leads to the state being expanded. *)
}

val rebuild_trace : (int, int * string) Hashtbl.t -> int -> string list
(** Walk parent pointers (state id -> parent id * incoming label) back to
    the root: the schedule from the initial state to [id]. Shared by the
    exploration engines ({!bfs}, {!Frontier.explore}). *)

val bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ?check:(Model.config -> Model.state -> string option) ->
  Model.config ->
  result
(** Defaults: [max_states = 200_000], [max_depth = max_int]. Exploration
    stops early on the first violation. A state popped at the depth cap
    only marks the search incomplete when it actually has unexplored
    successors, so a model whose diameter equals [max_depth] is still
    reported complete. [?check] substitutes the per-state invariant
    (default {!Model.check}) — used to inject target predicates as
    violations for counterexample/replay testing. *)

val pp_result : Format.formatter -> result -> unit

type reach_result =
  | Found of int  (** a state satisfying the predicate exists at this depth *)
  | Unreachable
      (** the {e fully explored} reachable space contains no such state —
          trustworthy, the search was not cut short *)
  | Truncated
      (** the search hit [max_states]/[max_depth] first; absence of the
          target is unknown. A capped search must never report
          [Unreachable]. *)

val reach :
  ?max_states:int ->
  ?max_depth:int ->
  pred:(Model.state -> bool) ->
  Model.config ->
  reach_result
(** BFS until a state satisfying [pred] is found; returns its depth. *)

type progress_result = {
  reachable : int;       (** states in the explored graph *)
  hungry_states : int;   (** states where the probed process is hungry and live *)
  stuck_states : int;    (** hungry-live states with NO continuation in which the
                             process ever eats — a liveness bug; expect 0 *)
  progress_complete : bool; (** the graph was fully explored within the cap *)
}

val progress : ?max_states:int -> pid:int -> Model.config -> progress_result
(** Theorem 2 in possibility form, checked exhaustively: builds the full
    reachable state graph and verifies (by backward reachability from the
    process's eating states) that from {e every} reachable state in which
    [pid] is hungry and live, some execution continues to [pid] eating.
    Adversarial crashes of other processes and oracle lies are part of the
    graph; paths that crash [pid] itself do not count as progress. *)

type walk_result = {
  walks_done : int;
  steps_taken : int;   (** transitions executed across all walks *)
  walk_violation : (string * string) option;
}

val random_walk :
  ?walks:int ->
  ?steps:int ->
  ?check:(Model.config -> Model.state -> string option) ->
  seed:int64 ->
  Model.config ->
  walk_result
(** Monte-Carlo exploration for instances too large for exhaustive BFS:
    [walks] (default 64) independent uniformly random paths of up to
    [steps] (default 400) transitions each, checking every visited state
    — including the initial one, which every walk shares. Sound for
    bug-finding (any reported violation is real), not complete. *)
