(** Level-synchronous parallel BFS over {!Exec.Pool}.

    Each BFS level is split into contiguous chunks expanded in parallel
    (successor generation, canonical keys, invariant checks); the merge
    back into the visited set is sequential and in chunk order, which is
    exactly the order a sequential expansion of the level would produce.
    Every field of the result — states, transitions, depth, deadlocks,
    verdict, counterexample schedule — is therefore bit-identical for
    any [domains], and on violation-free runs identical field-for-field
    to {!Explore.bfs}. On a violating run the frontier finishes merging
    the current level before stopping (BFS stops mid-level), so the two
    agree on the verdict, the violating state and the schedule, but not
    necessarily on the counters. *)

val explore :
  ?max_states:int ->
  ?max_depth:int ->
  ?domains:int ->
  ?check:(Model.config -> Model.state -> string option) ->
  Model.config ->
  Explore.result
(** Defaults: [max_states = 200_000], [max_depth = max_int],
    [domains = 1] (sequential, no domains spawned),
    [check = Model.check]. *)
