(** Interning of canonical state keys to dense integer ids.

    Ids are assigned in first-seen order (0, 1, 2, ...), so an
    exploration that probes states in a deterministic order gets a
    deterministic id assignment — the substrate for parent-pointer
    counterexample reconstruction and for array-indexed passes. *)

type t

val create : ?expected:int -> unit -> t

val add : t -> string -> [ `New of int | `Seen of int ]
(** Intern a key: [`New id] on first sight (ids are dense, in call
    order), [`Seen id] afterwards. *)

val mem : t -> string -> bool
val find_opt : t -> string -> int option

val count : t -> int
(** Number of distinct keys interned so far. *)
