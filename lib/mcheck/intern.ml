(* Dense interning of canonical state keys. The hash table is only ever
   probed for membership / id lookup, never iterated, so no result can
   depend on its ordering. *)

type t = { tbl : (string, int) Hashtbl.t }

let create ?(expected = 4096) () = { tbl = Hashtbl.create expected }

let add t k =
  match Hashtbl.find_opt t.tbl k with
  | Some id -> `Seen id
  | None ->
      let id = Hashtbl.length t.tbl in
      Hashtbl.add t.tbl k id;
      `New id

let mem t k = Hashtbl.mem t.tbl k
let find_opt t k = Hashtbl.find_opt t.tbl k
let count t = Hashtbl.length t.tbl
