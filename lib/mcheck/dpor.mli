(** Depth-first exploration with sleep-set partial-order reduction and
    dejafu-style preemption bounding.

    Equivalent interleavings — schedules that differ only in the order
    of {!Model.independent} adjacent transitions — are explored once:
    after taking sibling [t1], the sibling [t2]'s subtree inherits [t1]
    in its {e sleep set} and never re-executes it first. Sleep sets
    prune redundant transitions, not states: every reachable state is
    still visited and checked, so the verdict (violation / deadlock /
    state count) matches {!Explore.bfs} exactly while the transition
    count shrinks by the number of commuting pairs collapsed. Revisits
    of an interned state re-expand unless a previous expansion used a
    subset sleep set (the sound form of sleep sets + state caching).

    [preemption_bound] additionally prunes schedules with more than the
    given number of preemptions (switching away from a process that
    still has an enabled transition), à la dejafu's schedule bounding —
    a bug-finding mode: if the bound prunes anything the result is
    reported incomplete.

    [max_depth] bounds the schedule length (the DFS path), not the BFS
    level; a depth-pruned search is reported incomplete. *)

val explore :
  ?max_states:int ->
  ?max_depth:int ->
  ?preemption_bound:int ->
  ?check:(Model.config -> Model.state -> string option) ->
  Model.config ->
  Explore.result
(** Defaults: [max_states = 200_000], [max_depth = max_int], no
    preemption bound, [check = Model.check]. On a violation, [trace]
    carries the offending schedule (the DFS path). *)
