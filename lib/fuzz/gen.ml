type profile = Sound | Hostile

let profile_name = function Sound -> "sound" | Hostile -> "hostile"

let profile_of_name = function
  | "sound" -> Some Sound
  | "hostile" -> Some Hostile
  | _ -> None

let topology rng : Cgraph.Topology.spec =
  match Sim.Rng.int rng 11 with
  | 0 -> Cgraph.Topology.Ring (4 + Sim.Rng.int rng 7)
  | 1 -> Cgraph.Topology.Path (3 + Sim.Rng.int rng 6)
  | 2 -> Cgraph.Topology.Clique (3 + Sim.Rng.int rng 4)
  | 3 -> Cgraph.Topology.Star (4 + Sim.Rng.int rng 5)
  | 4 -> Cgraph.Topology.Grid (2 + Sim.Rng.int rng 2, 2 + Sim.Rng.int rng 3)
  | 5 -> Cgraph.Topology.Torus (3, 3 + Sim.Rng.int rng 2)
  | 6 -> Cgraph.Topology.Binary_tree (4 + Sim.Rng.int rng 7)
  | 7 -> Cgraph.Topology.Hypercube (2 + Sim.Rng.int rng 2)
  | 8 -> Cgraph.Topology.Wheel (5 + Sim.Rng.int rng 4)
  | 9 -> Cgraph.Topology.Bipartite (2 + Sim.Rng.int rng 2, 2 + Sim.Rng.int rng 2)
  | _ ->
      (* Probabilities in 0.15 .. 0.45 step 0.05: short decimal strings
         that survive the reproducer's text round-trip exactly. *)
      Cgraph.Topology.Random_gnp
        (6 + Sim.Rng.int rng 7, 0.15 +. (0.05 *. float_of_int (Sim.Rng.int rng 7)),
         Sim.Rng.bits64 rng)

let delay rng ~horizon : Net.Delay.t =
  match Sim.Rng.int rng 4 with
  | 0 -> Net.Delay.Fixed (1 + Sim.Rng.int rng 5)
  | 1 -> Net.Delay.Uniform (1, 4 + Sim.Rng.int rng 16)
  | 2 ->
      (* Integer-valued means round-trip exactly through the codec. *)
      Net.Delay.Exponential (float_of_int (2 + Sim.Rng.int rng 7), 20 + Sim.Rng.int rng 20)
  | _ ->
      Net.Delay.Partial_synchrony
        {
          gst = horizon / 4;
          pre = (1, 30 + Sim.Rng.int rng 30);
          post = (1, 4 + Sim.Rng.int rng 5);
        }

let workload rng : Harness.Scenario.workload =
  match Sim.Rng.int rng 4 with
  | 0 -> Harness.Scenario.default_workload
  | 1 -> Harness.Scenario.contended_workload
  | 2 -> { think = (0, 120); eat = (5, 35) }
  | _ -> { think = (10, 10 + Sim.Rng.int_in rng 50 250); eat = (5, 5 + Sim.Rng.int_in rng 10 40) }

(* Detectors inside the eventually-perfect class (plus the trivially
   sound Never when nothing crashes): the sound profile's pool. *)
let sound_detector rng ~horizon ~crashes : Harness.Scenario.detector_kind =
  match Sim.Rng.int rng (if crashes = 0 then 4 else 3) with
  | 0 ->
      Harness.Scenario.Oracle
        {
          detection_delay = 20 + Sim.Rng.int rng 60;
          fp_per_edge = Sim.Rng.int rng 3;
          fp_window = horizon / 3;
          fp_max_len = 50 + Sim.Rng.int rng 150;
        }
  | 1 ->
      Harness.Scenario.Heartbeat
        {
          period = 10 + Sim.Rng.int rng 20;
          initial_timeout = 20 + Sim.Rng.int rng 30;
          bump = 10 + Sim.Rng.int rng 20;
        }
  | 2 -> Harness.Scenario.Perfect
  | _ -> Harness.Scenario.Never

let hostile_detector rng ~horizon ~crashes : Harness.Scenario.detector_kind =
  match Sim.Rng.int rng 3 with
  | 0 -> Harness.Scenario.Never
  | 1 ->
      Harness.Scenario.Unreliable
        { period = 800 + (100 * Sim.Rng.int rng 8); duration = 80 + Sim.Rng.int rng 80 }
  | _ -> sound_detector rng ~horizon ~crashes

let scenario ~profile ~campaign_seed ~case : Harness.Scenario.t =
  let rng =
    Sim.Rng.split_named (Sim.Rng.create campaign_seed) (Printf.sprintf "case-%d" case)
  in
  let horizon = 8_000 + (1_000 * Sim.Rng.int rng 9) in
  let topology = topology rng in
  let n = Cgraph.Graph.n (Cgraph.Topology.build topology) in
  let crash_count =
    let cap = max 0 (min 2 (n - 2)) in
    Sim.Rng.int rng (cap + 1)
  in
  let crashes =
    if crash_count = 0 then Harness.Scenario.No_crashes
    else
      Harness.Scenario.Random_crashes
        { count = crash_count; from_t = horizon / 8; to_t = horizon / 2 }
  in
  let detector =
    match profile with
    | Sound -> sound_detector rng ~horizon ~crashes:crash_count
    | Hostile -> hostile_detector rng ~horizon ~crashes:crash_count
  in
  let algo =
    match profile with
    | Sound -> Harness.Scenario.Song_pike
    | Hostile -> (
        match Sim.Rng.int rng 5 with
        | 0 -> Harness.Scenario.Fork_only
        | 1 -> Harness.Scenario.Chandy_misra
        | 2 -> Harness.Scenario.Ordered
        | _ -> Harness.Scenario.Song_pike)
  in
  let acks_per_session = match Sim.Rng.int rng 5 with 0 -> 2 | 1 -> 3 | _ -> 1 in
  {
    Harness.Scenario.name = Printf.sprintf "fuzz-%Ld-%d" campaign_seed case;
    topology;
    seed = Sim.Rng.bits64 rng;
    delay = delay rng ~horizon;
    detector;
    algo;
    workload = workload rng;
    crashes;
    horizon;
    check_every = Some (match Sim.Rng.int rng 3 with 0 -> 97 | 1 -> 199 | _ -> 499);
    acks_per_session;
  }
