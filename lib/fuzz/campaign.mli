(** Parallel fuzzing campaigns.

    Cases fan out across an {!Exec.Pool} (each case is one share-nothing
    {!Harness.World}); results come back in case order, and every
    aggregate is folded in that order, so a campaign report is
    bit-identical for any [?domains] — the same determinism contract as
    {!Harness.Batch}. *)

type failure = {
  case : int;
  property : string;  (** The violated oracle's {!Property.name}. *)
  message : string;  (** The oracle's account on the original scenario. *)
  scenario : Harness.Scenario.t;  (** As generated. *)
  shrunk : Harness.Scenario.t;
      (** The minimized reproducer (= [scenario] when shrinking was off
          or this was not the case's first failing property). *)
  shrink_steps : int;
  shrink_attempts : int;
  shrunk_message : string;  (** The oracle's account on the reproducer. *)
}

type report = {
  seed : int64;
  profile : Gen.profile;
  cases : int;
  checked : (string * int) list;
      (** Oracle name -> number of cases it was checked on, in
          {!Property.all} order. *)
  failures : failure list;  (** Ascending case number. *)
  total_eats : int;  (** Summed over all cases — campaign workload proxy. *)
  total_events : int;  (** Engine events summed over all cases. *)
}

val run :
  ?domains:int ->
  ?profile:Gen.profile ->
  ?properties:Property.t list ->
  ?shrink:bool ->
  seed:int64 ->
  cases:int ->
  unit ->
  report
(** Generate and execute [cases] scenarios from [seed], checking each
    against [properties] (default {!Property.all}) — restricted to the
    applicable subset per scenario under {!Gen.Sound}, hypotheses
    ignored under {!Gen.Hostile}. The first failing property of a case
    is minimized with {!Shrink.minimize} when [shrink] (default true).
    Deterministic in everything but [domains], which only buys wall
    clock. *)

val pp : Format.formatter -> report -> unit
(** Render the report: header, per-oracle check counts, totals, then one
    block per failure with the original and shrunken scenarios. *)
