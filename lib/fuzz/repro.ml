(* Text codec for every scenario component. Encodings reuse the CLI's
   [Topology.parse] syntax where one exists and mirror it elsewhere;
   floats are printed with %.17g so decode (float_of_string) is exact. *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let encode_topology (t : Cgraph.Topology.spec) =
  match t with
  | Cgraph.Topology.Ring n -> Printf.sprintf "ring:%d" n
  | Cgraph.Topology.Path n -> Printf.sprintf "path:%d" n
  | Cgraph.Topology.Clique n -> Printf.sprintf "clique:%d" n
  | Cgraph.Topology.Star n -> Printf.sprintf "star:%d" n
  | Cgraph.Topology.Grid (r, c) -> Printf.sprintf "grid:%dx%d" r c
  | Cgraph.Topology.Torus (r, c) -> Printf.sprintf "torus:%dx%d" r c
  | Cgraph.Topology.Binary_tree n -> Printf.sprintf "tree:%d" n
  | Cgraph.Topology.Hypercube d -> Printf.sprintf "cube:%d" d
  | Cgraph.Topology.Wheel n -> Printf.sprintf "wheel:%d" n
  | Cgraph.Topology.Bipartite (a, b) -> Printf.sprintf "bipartite:%dx%d" a b
  | Cgraph.Topology.Random_gnp (n, p, seed) -> Printf.sprintf "gnp:%d:%.17g:%Ld" n p seed
  | Cgraph.Topology.Scale_free (n, m, seed) -> Printf.sprintf "sf:%d:%d:%Ld" n m seed

let decode_topology s =
  match Cgraph.Topology.parse s with Ok t -> t | Error e -> fail "topology: %s" e

let int_field what s =
  match int_of_string_opt s with Some n -> n | None -> fail "%s: not an integer %S" what s

let float_field what s =
  match float_of_string_opt s with Some f -> f | None -> fail "%s: not a float %S" what s

let int64_field what s =
  match Int64.of_string_opt s with Some n -> n | None -> fail "%s: not an int64 %S" what s

let encode_delay (d : Net.Delay.t) =
  match d with
  | Net.Delay.Fixed d -> Printf.sprintf "fixed:%d" d
  | Net.Delay.Uniform (lo, hi) -> Printf.sprintf "uniform:%d:%d" lo hi
  | Net.Delay.Exponential (mean, cap) -> Printf.sprintf "exp:%.17g:%d" mean cap
  | Net.Delay.Partial_synchrony { gst; pre = plo, phi; post = qlo, qhi } ->
      Printf.sprintf "psync:%d:%d:%d:%d:%d" gst plo phi qlo qhi

let decode_delay s : Net.Delay.t =
  match String.split_on_char ':' s with
  | [ "fixed"; d ] -> Net.Delay.Fixed (int_field "delay" d)
  | [ "uniform"; lo; hi ] -> Net.Delay.Uniform (int_field "delay" lo, int_field "delay" hi)
  | [ "exp"; mean; cap ] ->
      Net.Delay.Exponential (float_field "delay" mean, int_field "delay" cap)
  | [ "psync"; gst; plo; phi; qlo; qhi ] ->
      Net.Delay.Partial_synchrony
        {
          gst = int_field "delay" gst;
          pre = (int_field "delay" plo, int_field "delay" phi);
          post = (int_field "delay" qlo, int_field "delay" qhi);
        }
  | _ -> fail "delay: cannot parse %S" s

let encode_detector (d : Harness.Scenario.detector_kind) =
  match d with
  | Harness.Scenario.Never -> "never"
  | Harness.Scenario.Perfect -> "perfect"
  | Harness.Scenario.Oracle { detection_delay; fp_per_edge; fp_window; fp_max_len } ->
      Printf.sprintf "oracle:%d:%d:%d:%d" detection_delay fp_per_edge fp_window fp_max_len
  | Harness.Scenario.Heartbeat { period; initial_timeout; bump } ->
      Printf.sprintf "heartbeat:%d:%d:%d" period initial_timeout bump
  | Harness.Scenario.Unreliable { period; duration } ->
      Printf.sprintf "unreliable:%d:%d" period duration

let decode_detector s : Harness.Scenario.detector_kind =
  match String.split_on_char ':' s with
  | [ "never" ] -> Harness.Scenario.Never
  | [ "perfect" ] -> Harness.Scenario.Perfect
  | [ "oracle"; dd; fpe; fpw; fpl ] ->
      Harness.Scenario.Oracle
        {
          detection_delay = int_field "detector" dd;
          fp_per_edge = int_field "detector" fpe;
          fp_window = int_field "detector" fpw;
          fp_max_len = int_field "detector" fpl;
        }
  | [ "heartbeat"; p; it; b ] ->
      Harness.Scenario.Heartbeat
        {
          period = int_field "detector" p;
          initial_timeout = int_field "detector" it;
          bump = int_field "detector" b;
        }
  | [ "unreliable"; p; d ] ->
      Harness.Scenario.Unreliable
        { period = int_field "detector" p; duration = int_field "detector" d }
  | _ -> fail "detector: cannot parse %S" s

let decode_algo s : Harness.Scenario.algo_kind =
  match s with
  | "song-pike" -> Harness.Scenario.Song_pike
  | "fork-only" -> Harness.Scenario.Fork_only
  | "chandy-misra" -> Harness.Scenario.Chandy_misra
  | "ordered" -> Harness.Scenario.Ordered
  | _ -> fail "algo: unknown %S" s

let encode_workload (w : Harness.Scenario.workload) =
  let tlo, thi = w.think and elo, ehi = w.eat in
  Printf.sprintf "%d:%d:%d:%d" tlo thi elo ehi

let decode_workload s : Harness.Scenario.workload =
  match String.split_on_char ':' s with
  | [ tlo; thi; elo; ehi ] ->
      {
        think = (int_field "workload" tlo, int_field "workload" thi);
        eat = (int_field "workload" elo, int_field "workload" ehi);
      }
  | _ -> fail "workload: cannot parse %S" s

let encode_crashes (c : Harness.Scenario.crash_plan) =
  match c with
  | Harness.Scenario.No_crashes -> "none"
  | Harness.Scenario.Crash_at l ->
      "at:"
      ^ String.concat "," (List.map (fun (p, t) -> Printf.sprintf "%d@%d" p t) l)
  | Harness.Scenario.Random_crashes { count; from_t; to_t } ->
      Printf.sprintf "random:%d:%d:%d" count from_t to_t

let decode_crashes s : Harness.Scenario.crash_plan =
  match String.split_on_char ':' s with
  | [ "none" ] -> Harness.Scenario.No_crashes
  | [ "at"; l ] ->
      let entry e =
        match String.split_on_char '@' e with
        | [ p; t ] -> (int_field "crashes" p, int_field "crashes" t)
        | _ -> fail "crashes: cannot parse entry %S" e
      in
      Harness.Scenario.Crash_at
        (if l = "" then [] else List.map entry (String.split_on_char ',' l))
  | [ "random"; count; from_t; to_t ] ->
      Harness.Scenario.Random_crashes
        {
          count = int_field "crashes" count;
          from_t = int_field "crashes" from_t;
          to_t = int_field "crashes" to_t;
        }
  | _ -> fail "crashes: cannot parse %S" s

let encode_check_every = function None -> "none" | Some k -> string_of_int k

let decode_check_every s =
  if s = "none" then None else Some (int_field "check-every" s)

(* Fixed field order; describe and to_jsonl share it so reproducers and
   campaign reports read the same way. *)
let fields (s : Harness.Scenario.t) =
  [
    ("name", s.name);
    ("topology", encode_topology s.topology);
    ("seed", Printf.sprintf "%Ld" s.seed);
    ("delay", encode_delay s.delay);
    ("detector", encode_detector s.detector);
    ("algo", Harness.Scenario.algo_name s.algo);
    ("workload", encode_workload s.workload);
    ("crashes", encode_crashes s.crashes);
    ("horizon", string_of_int s.horizon);
    ("check-every", encode_check_every s.check_every);
    ("acks", string_of_int s.acks_per_session);
  ]

let describe s =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) (fields s))

let to_jsonl ?header ~property ~message s =
  let buf = Buffer.create 1024 in
  (match header with None -> () | Some h -> Buffer.add_string buf ("# " ^ h ^ "\n"));
  let seq = ref 0 in
  let mark k v =
    Obs.Jsonl.append buf
      {
        Obs.Record.seq = !seq;
        time = 0;
        kind = Obs.Record.Mark { subject = -1; tag = "fuzz.scenario"; detail = k ^ "=" ^ v };
      };
    incr seq
  in
  List.iter (fun (k, v) -> mark k v) (fields s);
  mark "property" property;
  mark "message" message;
  Buffer.contents buf

let of_jsonl contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  let entries =
    List.filter_map
      (fun line ->
        match Obs.Jsonl.field_string line "tag" with
        | Some "fuzz.scenario" -> (
            match Obs.Jsonl.field_string line "detail" with
            | Some detail -> (
                match String.index_opt detail '=' with
                | Some i ->
                    Some
                      ( String.sub detail 0 i,
                        String.sub detail (i + 1) (String.length detail - i - 1) )
                | None -> None)
            | None -> None)
        | _ -> None)
      lines
  in
  let get what =
    match List.assoc_opt what entries with
    | Some v -> v
    | None -> fail "missing field %S" what
  in
  match
    let s : Harness.Scenario.t =
      {
        name = get "name";
        topology = decode_topology (get "topology");
        seed = int64_field "seed" (get "seed");
        delay = decode_delay (get "delay");
        detector = decode_detector (get "detector");
        algo = decode_algo (get "algo");
        workload = decode_workload (get "workload");
        crashes = decode_crashes (get "crashes");
        horizon = int_field "horizon" (get "horizon");
        check_every = decode_check_every (get "check-every");
        acks_per_session = int_field "acks" (get "acks");
      }
    in
    (s, get "property")
  with
  | result -> Ok result
  | exception Parse msg -> Error msg

type outcome =
  | Reproduced of { property : string; message : string }
  | Clean of { property : string }

let replay (p : Property.t) s =
  let r = Harness.Run.run s in
  match p.check r with
  | Some message -> Reproduced { property = p.name; message }
  | None -> Clean { property = p.name }

let pp_outcome ppf = function
  | Reproduced { property; message } ->
      Format.fprintf ppf "reproduced: %s — %s" property message
  | Clean { property } -> Format.fprintf ppf "clean: %s held on replay" property
