(** Replayable reproducers for failing scenarios.

    A run is a pure function of its scenario, so the reproducer {e is}
    the scenario: {!to_jsonl} exports every field as one
    [fuzz.scenario] mark record in an {!Obs.Jsonl} trace (plus the
    violated property's name), and {!of_jsonl} parses it back
    losslessly. {!replay} then re-runs the scenario and re-checks the
    property — same scenario, same verdict, every time. *)

val describe : Harness.Scenario.t -> string
(** One-line [key=value] rendering of every scenario field, in fixed
    field order — the campaign report's scenario syntax. *)

val to_jsonl : ?header:string -> property:string -> message:string -> Harness.Scenario.t -> string
(** Export scenario + violated property (+ the observed violation
    message, informational) as mark records, one field per line.
    [?header] prepends a [# ...] comment line. *)

val of_jsonl : string -> (Harness.Scenario.t * string, string) result
(** Parse a {!to_jsonl} export back into (scenario, property name).
    [Error] describes the first malformed field. Header lines and
    non-[fuzz.scenario] records are ignored. *)

type outcome =
  | Reproduced of { property : string; message : string }
      (** The property fired again on the replayed run. *)
  | Clean of { property : string }
      (** The property held — the reproducer did {e not} reproduce. *)

val replay : Property.t -> Harness.Scenario.t -> outcome
(** Run the scenario to its horizon and re-check the property. *)

val pp_outcome : Format.formatter -> outcome -> unit
