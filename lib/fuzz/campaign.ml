type failure = {
  case : int;
  property : string;
  message : string;
  scenario : Harness.Scenario.t;
  shrunk : Harness.Scenario.t;
  shrink_steps : int;
  shrink_attempts : int;
  shrunk_message : string;
}

type report = {
  seed : int64;
  profile : Gen.profile;
  cases : int;
  checked : (string * int) list;
  failures : failure list;
  total_eats : int;
  total_events : int;
}

(* Everything one case contributes to the report. Cases are evaluated in
   worker domains and merged in case order, so nothing here may depend
   on scheduling. *)
type case_result = {
  cr_checked : string list;
  cr_failures : failure list;
  cr_eats : int;
  cr_events : int;
}

let run ?(domains = 1) ?(profile = Gen.Sound) ?(properties = Property.all)
    ?(shrink = true) ~seed ~cases () =
  let run_case case =
    let s = Gen.scenario ~profile ~campaign_seed:seed ~case in
    let props =
      match profile with
      | Gen.Sound -> List.filter (fun (p : Property.t) -> p.applicable s) properties
      | Gen.Hostile -> properties
    in
    let r = Harness.Run.run s in
    let fails = Property.failures props r in
    let failures =
      (* Only the case's first failing property is minimized: under
         [Hostile] one bad scenario often trips several oracles at once,
         and one reproducer per case is what the report needs. *)
      List.mapi
        (fun i (name, message) ->
          let p = List.find (fun (p : Property.t) -> p.name = name) props in
          if shrink && i = 0 then (
            let still_failing s' =
              p.Property.check (Harness.Run.run s') <> None
            in
            let m = Shrink.minimize ~still_failing s in
            let shrunk_message =
              match p.Property.check (Harness.Run.run m.Shrink.scenario) with
              | Some msg -> msg
              | None -> message
            in
            {
              case;
              property = name;
              message;
              scenario = s;
              shrunk = m.Shrink.scenario;
              shrink_steps = m.Shrink.steps;
              shrink_attempts = m.Shrink.attempts;
              shrunk_message;
            })
          else
            {
              case;
              property = name;
              message;
              scenario = s;
              shrunk = s;
              shrink_steps = 0;
              shrink_attempts = 0;
              shrunk_message = message;
            })
        fails
    in
    {
      cr_checked = List.map (fun (p : Property.t) -> p.name) props;
      cr_failures = failures;
      cr_eats = r.Harness.Run.total_eats;
      cr_events = r.Harness.Run.events_processed;
    }
  in
  let results =
    Exec.Pool.with_pool ~domains (fun pool -> Exec.Pool.init pool cases run_case)
  in
  let rs = Array.to_list results in
  let checked =
    List.map
      (fun (p : Property.t) ->
        ( p.name,
          List.fold_left
            (fun acc cr -> if List.mem p.name cr.cr_checked then acc + 1 else acc)
            0 rs ))
      properties
  in
  {
    seed;
    profile;
    cases;
    checked;
    failures = List.concat_map (fun cr -> cr.cr_failures) rs;
    total_eats = List.fold_left (fun acc cr -> acc + cr.cr_eats) 0 rs;
    total_events = List.fold_left (fun acc cr -> acc + cr.cr_events) 0 rs;
  }

let pp ppf (r : report) =
  Format.fprintf ppf "campaign seed=%Ld profile=%s cases=%d@." r.seed
    (Gen.profile_name r.profile) r.cases;
  Format.fprintf ppf "checked:@.";
  List.iter
    (fun (name, n) -> Format.fprintf ppf "  %-16s %d cases@." name n)
    r.checked;
  Format.fprintf ppf "totals: eats=%d events=%d@." r.total_eats r.total_events;
  Format.fprintf ppf "failures: %d@." (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.case %d violates %s@.  %s@." f.case f.property
        f.message;
      Format.fprintf ppf "  scenario: %s@." (Repro.describe f.scenario);
      if f.shrink_steps > 0 || f.shrink_attempts > 0 then (
        Format.fprintf ppf "  shrunk (%d steps, %d attempts): %s@."
          f.shrink_steps f.shrink_attempts
          (Repro.describe f.shrunk);
        Format.fprintf ppf "  shrunk verdict: %s@." f.shrunk_message))
    r.failures
