(** Seeded generation of whole scenarios.

    One [int64] campaign seed fully determines every case: case [k]
    draws from [Sim.Rng.split_named (create seed) "case-k"], so cases
    are mutually independent streams and a campaign can be fanned out
    across domains (or re-run one case in isolation) without changing a
    single generated scenario. *)

type profile =
  | Sound
      (** Scenarios inside the theorems' hypotheses: Algorithm 1 under an
          eventually perfect detector class. Every applicable oracle is
          expected to pass; a failure is a real finding. *)
  | Hostile
      (** Out-of-hypothesis scenarios too: baseline daemons, the [Never]
          and [Unreliable] detectors. Oracles are checked regardless of
          hypotheses, so violations are expected — this profile exists to
          exercise the shrinking/replay pipeline on real failures. *)

val profile_name : profile -> string
val profile_of_name : string -> profile option

val scenario : profile:profile -> campaign_seed:int64 -> case:int -> Harness.Scenario.t
(** Deterministic in [(profile, campaign_seed, case)]. Generated
    scenarios keep instances small (n <= 12, horizon 8000..16000) so a
    thousand-case campaign stays cheap; crash windows close by half the
    horizon so the eventual properties have room to engage. *)
