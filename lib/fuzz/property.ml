type t = {
  name : string;
  claim : string;
  applicable : Harness.Scenario.t -> bool;
  check : Harness.Run.report -> string option;
}

(* ------------------------- hypothesis helpers ---------------------- *)

(* Eventually accurate: false suspicions stop. Never is trivially
   accurate (it never suspects anyone); Unreliable is the designed
   counterexample. *)
let eventually_accurate (s : Harness.Scenario.t) =
  match s.detector with
  | Harness.Scenario.Never | Harness.Scenario.Perfect | Harness.Scenario.Oracle _
  | Harness.Scenario.Heartbeat _ ->
      true
  | Harness.Scenario.Unreliable _ -> false

(* Complete: every crash is eventually suspected by every live neighbor.
   Never is the designed counterexample. *)
let complete (s : Harness.Scenario.t) =
  match s.detector with
  | Harness.Scenario.Perfect | Harness.Scenario.Oracle _ | Harness.Scenario.Heartbeat _
  | Harness.Scenario.Unreliable _ ->
      true
  | Harness.Scenario.Never -> false

let crash_free (s : Harness.Scenario.t) =
  match s.crashes with
  | Harness.Scenario.No_crashes -> true
  | Harness.Scenario.Crash_at l -> l = []
  | Harness.Scenario.Random_crashes { count; _ } -> count = 0

let song_pike (s : Harness.Scenario.t) = s.algo = Harness.Scenario.Song_pike

(* The time after which the eventual properties must hold on this run:
   the detector's convergence when it is settled inside the horizon, and
   the last third of the run otherwise (an Unreliable detector reports
   convergence at infinity — a sound run would still be clean in the
   tail, so a dirty tail is exactly the violation). Finite convergence
   gets a horizon/16 grace window: a false suspicion committed just
   before the detector settles still has its consequences (a yielded
   fork, a granted overlap) in flight, and the theorems only promise the
   properties eventually after settling. *)
let settle_cutoff (r : Harness.Run.report) =
  if Sim.Time.is_finite r.convergence && r.convergence < r.horizon then
    r.convergence + (r.horizon / 16)
  else 2 * r.horizon / 3

(* --------------------------- the oracles --------------------------- *)

let lemmas =
  {
    name = "lemmas";
    claim = "every executable lemma holds at every periodic check";
    applicable = (fun s -> s.check_every <> None);
    check =
      (fun r ->
        match r.invariant_error with
        | None -> None
        | Some msg -> Some (Printf.sprintf "invariant violated: %s" msg));
  }

let eventual_weak_exclusion =
  {
    name = "exclusion";
    claim = "Theorem 1: exclusion violations cease once the detector settles";
    applicable = (fun s -> song_pike s && eventually_accurate s);
    check =
      (fun r ->
        let cutoff = settle_cutoff r in
        match Monitor.Exclusion.count_after r.exclusion cutoff with
        | 0 -> None
        | late ->
            Some
              (Printf.sprintf
                 "%d exclusion violation(s) after t=%d (convergence %s, horizon %d)" late
                 cutoff
                 (Sim.Time.to_string r.convergence)
                 r.horizon));
  }

let wait_freedom =
  {
    name = "wait-freedom";
    claim = "Theorem 2: every live hungry process is eventually served";
    applicable =
      (fun s ->
        match s.algo with
        | Harness.Scenario.Song_pike -> complete s || crash_free s
        | Harness.Scenario.Chandy_misra | Harness.Scenario.Ordered -> crash_free s
        | Harness.Scenario.Fork_only -> false);
    check =
      (fun r ->
        let patience = max 1 (r.horizon / 4) in
        match Harness.Run.starved r ~older_than:patience with
        | [] -> None
        | pids ->
            Some
              (Printf.sprintf "starved (hungry > %d ticks at horizon): %s" patience
                 (String.concat "," (List.map string_of_int pids))));
  }

let bounded_waiting =
  {
    name = "bounded-waiting";
    claim = "Theorem 3/E11: at most acks_per_session+1 consecutive overtakes after settling";
    applicable =
      (fun s -> song_pike s && eventually_accurate s && (complete s || crash_free s));
    check =
      (fun r ->
        let bound = r.scenario.acks_per_session + 1 in
        (* Suffix form: overtakes occurring after the cutoff, whatever
           the victim's session start — a starved victim's one session
           spans the run and must not be exempt. *)
        let worst = Monitor.Fairness.max_consecutive_after r.fairness (settle_cutoff r) in
        if worst <= bound then None
        else
          Some
            (Printf.sprintf
               "%d consecutive overtakes of one waiting process after t=%d (bound %d)"
               worst (settle_cutoff r) bound));
  }

let channel_bound_with ~bound =
  {
    name = "channel-bound";
    claim = "Section 7: at most 4 messages in transit per conflict edge";
    applicable = (fun s -> song_pike s && s.acks_per_session = 1);
    check =
      (fun r ->
        let w = Net.Link_stats.max_edge_watermark r.link_stats in
        if w <= bound then None
        else
          Some (Printf.sprintf "edge in-flight watermark %d exceeds the bound %d" w bound));
  }

let channel_bound = channel_bound_with ~bound:4

let quiescence_grace = 5_000

let quiescence =
  {
    name = "quiescence";
    claim = "Section 7: crashed processes eventually receive no dining messages";
    applicable = (fun s -> song_pike s && complete s && eventually_accurate s);
    check =
      (fun r ->
        let noisy =
          List.filter_map
            (fun (pid, at) ->
              let n =
                Net.Link_stats.sends_to_after r.link_stats ~dst:pid
                  ~after:(Sim.Time.add at quiescence_grace)
              in
              if n = 0 then None else Some (Printf.sprintf "p%d (%d sends)" pid n))
            r.crashed
        in
        match noisy with
        | [] -> None
        | l ->
            Some
              (Printf.sprintf "messages still addressed to victims %d ticks after crash: %s"
                 quiescence_grace (String.concat ", " l)));
  }

let all =
  [ lemmas; eventual_weak_exclusion; wait_freedom; bounded_waiting; channel_bound; quiescence ]

let find name = List.find_opt (fun p -> p.name = name) all
let applicable s = List.filter (fun p -> p.applicable s) all

let failures props r =
  List.filter_map (fun p -> Option.map (fun msg -> (p.name, msg)) (p.check r)) props
