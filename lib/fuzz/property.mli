(** Machine-checkable oracles for the paper's guarantees.

    One value per claim: Theorem 1 (◇WX), Theorem 2 (wait-freedom),
    Theorem 3 (eventual (m+1)-bounded waiting), the Section 7 channel
    bound and quiescence, plus the executable-lemma watcher. Each oracle
    separates {e hypotheses} (which scenarios the theorem speaks about,
    [applicable]) from the {e verdict} ([check], which inspects any
    report regardless of hypotheses — that is what lets the negative
    self-tests aim an oracle at a scenario engineered to violate it and
    assert that it fires).

    The same predicates back [dune runtest] (soak matrix), the fuzzer
    ({!Campaign}) and [bench fuzz]: an oracle that silently always
    passes cannot hide in one copy while another copy stays honest. *)

type t = {
  name : string;  (** Stable id, used by [--property] and reproducers. *)
  claim : string;  (** One-line statement of the guarantee. *)
  applicable : Harness.Scenario.t -> bool;
      (** The theorem's hypotheses: does this scenario's (algo, detector,
          crash plan, ack budget) combination promise the property? *)
  check : Harness.Run.report -> string option;
      (** [None] = the property held on this run; [Some msg] = violated,
          with a human-readable account of the evidence. Total on any
          report, including out-of-hypothesis ones. *)
}

val lemmas : t
(** Executable-lemma watcher: [invariant_error = None]. Applicable
    whenever the scenario runs the periodic check ([check_every]). *)

val eventual_weak_exclusion : t
(** Theorem 1: exclusion violations cease once the detector's output is
    settled. Fails on any violation after the settle cutoff (the
    detector's convergence time plus a [horizon/16] grace window for
    in-flight consequences of the last mistake, or the last third of the
    run when the detector never converges — which is how it fires on
    [Unreliable]). *)

val wait_freedom : t
(** Theorem 2: no live process stays hungry forever — here, no open
    hungry session older than a quarter of the horizon at the end. *)

val bounded_waiting : t
(** Theorem 3 (generalised by E11): after the settle cutoff, no neighbor
    overtakes a waiting process more than [acks_per_session + 1]
    consecutive times — measured over overtakes {e occurring} in the
    suffix ({!Monitor.Fairness.max_consecutive_after}), so a starved
    victim's run-spanning session is not exempt. *)

val channel_bound : t
(** Section 7: at most 4 messages in transit per conflict edge
    (dining-layer channels, Algorithm 1 with the paper's ack budget). *)

val channel_bound_with : bound:int -> t
(** {!channel_bound} with an explicit bound — the negative self-test
    tightens the bound to prove the oracle reads real traffic data. *)

val quiescence : t
(** Section 7: crashed processes are eventually left alone — no
    dining-layer message is addressed to a victim from 5000 ticks after
    its crash. *)

val all : t list
(** Every oracle above, in stable report order. *)

val find : string -> t option
(** Look an oracle up by [name]. *)

val applicable : Harness.Scenario.t -> t list
(** The subset of {!all} whose hypotheses the scenario satisfies. *)

val failures : t list -> Harness.Run.report -> (string * string) list
(** [(name, message)] for every given oracle whose [check] fires on the
    report, in the given order. *)
