(** Delta-debugging minimization of a failing scenario.

    Greedy descent over a fixed candidate order: each step proposes a
    strictly simpler scenario (fewer processes, fewer crashes, shorter
    horizon, simpler delay model, default-ward parameters), keeps the
    first candidate on which the violated property still fires, and
    repeats until no candidate reproduces. Both the candidate order and
    the accept-first rule are deterministic, so a given (scenario,
    property) always shrinks to the same reproducer. *)

type result = {
  scenario : Harness.Scenario.t;  (** The minimized reproducer. *)
  steps : int;  (** Accepted shrink steps. *)
  attempts : int;  (** Candidate scenarios re-run (accepted + rejected). *)
  actions : string list;  (** Accepted transformations, oldest first. *)
}

val candidates : Harness.Scenario.t -> (string * Harness.Scenario.t) list
(** The labelled one-step simplifications of a scenario, most aggressive
    first. Exposed for tests. *)

val minimize :
  ?max_attempts:int ->
  still_failing:(Harness.Scenario.t -> bool) ->
  Harness.Scenario.t ->
  result
(** [minimize ~still_failing s] descends from [s] keeping [still_failing]
    true. A candidate that raises [Invalid_argument] (e.g. more crashes
    than its shrunken topology has processes) is rejected like a
    non-reproducing one. [max_attempts] (default 300) caps the number of
    candidate evaluations. *)
