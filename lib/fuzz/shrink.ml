type result = {
  scenario : Harness.Scenario.t;
  steps : int;
  attempts : int;
  actions : string list;
}

(* Jump to the family's minimal instance first (one accepted step skips
   the whole descent), then decrement. Random graphs also try the
   structured minimum, since a violation rarely needs the exact graph. *)
let shrink_topology (t : Cgraph.Topology.spec) : Cgraph.Topology.spec list =
  match t with
  | Cgraph.Topology.Ring n -> if n > 3 then [ Cgraph.Topology.Ring 3; Cgraph.Topology.Ring (n - 1) ] else []
  | Cgraph.Topology.Path n -> if n > 2 then [ Cgraph.Topology.Path 2; Cgraph.Topology.Path (n - 1) ] else []
  | Cgraph.Topology.Clique n ->
      if n > 2 then [ Cgraph.Topology.Clique 2; Cgraph.Topology.Clique (n - 1) ] else []
  | Cgraph.Topology.Star n -> if n > 2 then [ Cgraph.Topology.Star 2; Cgraph.Topology.Star (n - 1) ] else []
  | Cgraph.Topology.Grid (r, c) ->
      List.concat
        [
          (if r * c > 2 then [ Cgraph.Topology.Grid (1, 2) ] else []);
          (if r > 1 && (r - 1) * c >= 2 then [ Cgraph.Topology.Grid (r - 1, c) ] else []);
          (if c > 1 && r * (c - 1) >= 2 then [ Cgraph.Topology.Grid (r, c - 1) ] else []);
        ]
  | Cgraph.Topology.Torus (r, c) ->
      List.concat
        [
          (if r > 3 || c > 3 then [ Cgraph.Topology.Torus (3, 3) ] else []);
          (if r > 3 then [ Cgraph.Topology.Torus (r - 1, c) ] else []);
          (if c > 3 then [ Cgraph.Topology.Torus (r, c - 1) ] else []);
        ]
  | Cgraph.Topology.Binary_tree n ->
      if n > 2 then [ Cgraph.Topology.Binary_tree 2; Cgraph.Topology.Binary_tree (n - 1) ] else []
  | Cgraph.Topology.Hypercube d ->
      if d > 1 then [ Cgraph.Topology.Hypercube 1; Cgraph.Topology.Hypercube (d - 1) ] else []
  | Cgraph.Topology.Wheel n -> if n > 4 then [ Cgraph.Topology.Wheel 4; Cgraph.Topology.Wheel (n - 1) ] else []
  | Cgraph.Topology.Bipartite (a, b) ->
      List.concat
        [
          (if a * b > 1 then [ Cgraph.Topology.Bipartite (1, 1) ] else []);
          (if a > 1 then [ Cgraph.Topology.Bipartite (a - 1, b) ] else []);
          (if b > 1 then [ Cgraph.Topology.Bipartite (a, b - 1) ] else []);
        ]
  | Cgraph.Topology.Random_gnp (n, p, seed) ->
      List.concat
        [
          [ Cgraph.Topology.Ring 3; Cgraph.Topology.Path 2 ];
          (if n > 2 then [ Cgraph.Topology.Random_gnp (n - 1, p, seed) ] else []);
        ]
  | Cgraph.Topology.Scale_free (n, m, seed) ->
      List.concat
        [
          [ Cgraph.Topology.Ring 3; Cgraph.Topology.Path 2 ];
          (if n > m + 1 then [ Cgraph.Topology.Scale_free (n - 1, m, seed) ] else []);
          (if m > 1 then [ Cgraph.Topology.Scale_free (n, m - 1, seed) ] else []);
        ]

let shrink_crashes (c : Harness.Scenario.crash_plan) :
    (string * Harness.Scenario.crash_plan) list =
  match c with
  | Harness.Scenario.No_crashes -> []
  | Harness.Scenario.Crash_at [] -> [ ("drop crash plan", Harness.Scenario.No_crashes) ]
  | Harness.Scenario.Crash_at l ->
      ("drop crash plan", Harness.Scenario.No_crashes)
      :: List.mapi
           (fun i _ ->
             ( Printf.sprintf "drop crash %d" i,
               Harness.Scenario.Crash_at (List.filteri (fun j _ -> j <> i) l) ))
           l
  | Harness.Scenario.Random_crashes r ->
      ("drop crash plan", Harness.Scenario.No_crashes)
      :: (if r.count > 1 then
            [
              ( "single crash",
                Harness.Scenario.Random_crashes { r with count = 1 } );
              ( "fewer crashes",
                Harness.Scenario.Random_crashes { r with count = r.count - 1 } );
            ]
          else [])

let candidates (s : Harness.Scenario.t) : (string * Harness.Scenario.t) list =
  let topo =
    List.map
      (fun t ->
        (Printf.sprintf "topology -> %s" (Cgraph.Topology.name t), { s with topology = t }))
      (shrink_topology s.topology)
  in
  let crashes = List.map (fun (l, c) -> (l, { s with crashes = c })) (shrink_crashes s.crashes) in
  let horizon =
    if s.horizon > 2_000 then
      [
        ( Printf.sprintf "horizon -> %d" (max 2_000 (s.horizon / 2)),
          { s with horizon = max 2_000 (s.horizon / 2) } );
        ( Printf.sprintf "horizon -> %d" (max 2_000 (s.horizon * 3 / 4)),
          { s with horizon = max 2_000 (s.horizon * 3 / 4) } );
      ]
    else []
  in
  (* Every candidate must differ from the current scenario, or the
     descent would accept a no-op step forever. *)
  let delay =
    match s.delay with
    | Net.Delay.Fixed 1 -> []
    | Net.Delay.Uniform (1, 8) -> [ ("delay -> fixed:1", { s with delay = Net.Delay.Fixed 1 }) ]
    | _ ->
        [
          ("delay -> fixed:1", { s with delay = Net.Delay.Fixed 1 });
          ("delay -> uniform:1:8", { s with delay = Net.Delay.Uniform (1, 8) });
        ]
  in
  let detector =
    match s.detector with
    | Harness.Scenario.Oracle o when o.fp_per_edge > 0 ->
        [
          ( "oracle without false positives",
            {
              s with
              detector =
                Harness.Scenario.Oracle
                  { o with fp_per_edge = 0; fp_window = 0; fp_max_len = 1 };
            } );
        ]
    | _ -> []
  in
  let workload =
    if s.workload = Harness.Scenario.default_workload then []
    else [ ("default workload", { s with workload = Harness.Scenario.default_workload }) ]
  in
  let acks =
    if s.acks_per_session > 1 then [ ("acks -> 1", { s with acks_per_session = 1 }) ]
    else []
  in
  List.concat [ topo; crashes; horizon; delay; detector; workload; acks ]

let minimize ?(max_attempts = 300) ~still_failing s0 =
  let attempts = ref 0 in
  let reproduces s =
    !attempts < max_attempts
    && begin
         incr attempts;
         match still_failing s with
         | verdict -> verdict
         | exception Invalid_argument _ -> false
       end
  in
  let rec descend s steps actions =
    match List.find_opt (fun (_, c) -> reproduces c) (candidates s) with
    | Some (label, c) -> descend c (steps + 1) (label :: actions)
    | None -> { scenario = s; steps; attempts = !attempts; actions = List.rev actions }
  in
  descend s0 0 []
