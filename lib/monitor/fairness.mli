(** Runtime measurement of k-bounded waiting (overtaking).

    An {e overtake} happens when process [j] starts eating while its
    neighbor [i] has been continuously hungry; the count is consecutive
    within one hungry session of the victim [i] and resets when [i] eats.
    Theorem 3 predicts that every run has a suffix in which no count
    exceeds 2 (for hungry sessions starting after detector convergence);
    doorway-less priority schemes have unbounded counts. *)

type overtake = {
  time : Sim.Time.t;
  overtaker : Dining.Types.pid;
  victim : Dining.Types.pid;
  session_start : Sim.Time.t;  (** start of the victim's hungry session *)
  count : int;  (** consecutive overtakes of this pair within the session, after this one *)
}

type t

val attach : Sim.Engine.t -> Cgraph.Graph.t -> Net.Faults.t -> Dining.Instance.t -> t

val overtakes : t -> overtake list
(** All overtake events, oldest first. *)

val max_consecutive : t -> int
(** Highest consecutive count observed anywhere in the run. *)

val max_consecutive_for_sessions_from : t -> Sim.Time.t -> int
(** Highest count among overtakes whose victim's hungry session started at
    or after the given time — the quantity Theorem 3 bounds by 2. *)

val max_consecutive_after : t -> Sim.Time.t -> int
(** Highest number of consecutive overtakes of one victim by one
    overtaker {e occurring} at or after the given time, within one
    hungry session of the victim. Unlike
    {!max_consecutive_for_sessions_from} this also sees sessions that
    started before the cutoff — a starved victim's only session spans
    the whole run, invisible to the sessions-from variant but unbounded
    in this one. The suffix form of Theorem 3's bound. *)

val windowed_max : t -> window:int -> horizon:Sim.Time.t -> (float * float) list
(** For figure F3: per time window \[w*window, (w+1)*window), the maximum
    consecutive count of overtakes occurring in that window (0 when none). *)
