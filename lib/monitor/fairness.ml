type overtake = {
  time : Sim.Time.t;
  overtaker : Dining.Types.pid;
  victim : Dining.Types.pid;
  session_start : Sim.Time.t;
  count : int;
}

type t = {
  engine : Sim.Engine.t;
  graph : Cgraph.Graph.t;
  faults : Net.Faults.t;
  hungry_since : Sim.Time.t option array;
  counts : (Dining.Types.pid * Dining.Types.pid, int) Hashtbl.t;
      (* (overtaker, victim) -> consecutive count in the victim's current session *)
  mutable log : overtake list; (* newest first *)
}

let attach engine graph faults (instance : Dining.Instance.t) =
  let n = Cgraph.Graph.n graph in
  let t =
    {
      engine;
      graph;
      faults;
      hungry_since = Array.make n None;
      counts = Hashtbl.create 64;
      log = [];
    }
  in
  instance.add_listener (fun pid phase ->
      let now = Sim.Engine.now engine in
      match phase with
      | Dining.Types.Hungry -> t.hungry_since.(pid) <- Some now
      | Dining.Types.Eating ->
          (* The eater's own hungry session ends: counts against it reset. *)
          t.hungry_since.(pid) <- None;
          Array.iter (fun j -> Hashtbl.remove t.counts (j, pid)) (Cgraph.Graph.neighbors graph pid);
          (* And it overtakes every currently hungry live neighbor. *)
          Array.iter
            (fun victim ->
              match t.hungry_since.(victim) with
              | Some session_start when not (Net.Faults.is_crashed t.faults victim) ->
                  let key = (pid, victim) in
                  let c = 1 + Option.value (Hashtbl.find_opt t.counts key) ~default:0 in
                  Hashtbl.replace t.counts key c;
                  t.log <-
                    { time = now; overtaker = pid; victim; session_start; count = c } :: t.log
              | _ -> ())
            (Cgraph.Graph.neighbors graph pid)
      | Dining.Types.Thinking -> t.hungry_since.(pid) <- None);
  t

let overtakes t = List.rev t.log

let max_consecutive t = List.fold_left (fun acc o -> max acc o.count) 0 t.log

let max_consecutive_for_sessions_from t time =
  List.fold_left (fun acc o -> if o.session_start >= time then max acc o.count else acc) 0 t.log

(* Suffix form: only overtake events at or after [time] count, but a
   victim's session may have started earlier (a starved victim's single
   session spans the whole run — exactly the case the sessions-from
   variant cannot see). Within one (overtaker, victim, session) group
   the events after the cutoff are consecutive by construction, so the
   group's post-cutoff cardinality is its consecutive count. *)
let max_consecutive_after t time =
  let key (o : overtake) = (o.overtaker, o.victim, o.session_start) in
  let post = List.filter (fun o -> o.time >= time) t.log in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) post in
  let rec go best current run = function
    | [] -> max best run
    | o :: rest ->
        if current = Some (key o) then go best current (run + 1) rest
        else go (max best run) (Some (key o)) 1 rest
  in
  go 0 None 0 sorted

let windowed_max t ~window ~horizon =
  if window <= 0 then invalid_arg "Fairness.windowed_max: window must be positive";
  let buckets = (horizon / window) + 1 in
  let maxima = Array.make buckets 0 in
  List.iter
    (fun o ->
      if o.time <= horizon then begin
        let b = o.time / window in
        if o.count > maxima.(b) then maxima.(b) <- o.count
      end)
    t.log;
  Array.to_list (Array.mapi (fun b m -> (float_of_int (b * window), float_of_int m)) maxima)
