(** Where does a hungry session's waiting time go?

    Algorithm 1 splits a hungry session into phase 1 (outside the doorway,
    collecting acks) and phase 2 (inside, collecting forks). This monitor
    splits every completed session's latency at the doorway-entry event
    (which the algorithm emits on its trace) into a {e doorway wait} and a
    {e fork wait} — the data behind experiment E12's breakdown of what the
    doorway costs on each topology.

    Only daemons that emit ["enter_doorway"] trace records (the Song-Pike
    core) produce samples; on other daemons both sample sets stay empty. *)

type t

val attach : ?metrics:Obs.Metrics.t -> Sim.Engine.t -> Sim.Trace.t -> Dining.Instance.t -> t
(** Subscribes to the instance's transitions and the trace. Attaching
    enables the trace's light channel. Every completed wait is also
    observed into the [daemon.doorway_wait] / [daemon.fork_wait]
    histograms of [metrics] (default: a private registry). *)

val doorway_waits : t -> int list
(** Hungry -> doorway-entry latencies of completed phases, in ticks. *)

val fork_waits : t -> int list
(** Doorway-entry -> eating latencies, in ticks. *)

val doorway_summary : t -> Stats.Summary.t
val fork_summary : t -> Stats.Summary.t
