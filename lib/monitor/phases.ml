type t = {
  engine : Sim.Engine.t;
  hungry_at : (int, Sim.Time.t) Hashtbl.t;
  entered_at : (int, Sim.Time.t) Hashtbl.t;
  mutable doorway : int list;
  mutable fork : int list;
  h_doorway : Obs.Metrics.histogram;
  h_fork : Obs.Metrics.histogram;
}

let attach ?metrics engine trace (instance : Dining.Instance.t) =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let t =
    {
      engine;
      hungry_at = Hashtbl.create 16;
      entered_at = Hashtbl.create 16;
      doorway = [];
      fork = [];
      h_doorway = Obs.Metrics.histogram metrics "daemon.doorway_wait";
      h_fork = Obs.Metrics.histogram metrics "daemon.fork_wait";
    }
  in
  Sim.Trace.on_record trace (fun r ->
      if r.Sim.Trace.tag = "enter_doorway" then begin
        match Hashtbl.find_opt t.hungry_at r.subject with
        | Some started ->
            Hashtbl.replace t.entered_at r.subject r.time;
            t.doorway <- (r.time - started) :: t.doorway;
            Obs.Metrics.observe t.h_doorway (r.time - started)
        | None -> ()
      end);
  instance.add_listener (fun pid phase ->
      let now = Sim.Engine.now engine in
      match phase with
      | Dining.Types.Hungry -> Hashtbl.replace t.hungry_at pid now
      | Dining.Types.Eating -> (
          Hashtbl.remove t.hungry_at pid;
          match Hashtbl.find_opt t.entered_at pid with
          | Some entered ->
              Hashtbl.remove t.entered_at pid;
              t.fork <- (now - entered) :: t.fork;
              Obs.Metrics.observe t.h_fork (now - entered)
          | None -> ())
      | Dining.Types.Thinking ->
          Hashtbl.remove t.hungry_at pid;
          Hashtbl.remove t.entered_at pid);
  t

let doorway_waits t = List.rev t.doorway
let fork_waits t = List.rev t.fork
let doorway_summary t = Stats.Summary.of_ints t.doorway
let fork_summary t = Stats.Summary.of_ints t.fork
