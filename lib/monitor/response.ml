type session = { pid : Dining.Types.pid; started : Sim.Time.t; served : Sim.Time.t }

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  open_since : (Dining.Types.pid, Sim.Time.t) Hashtbl.t;
  mutable completed : session list; (* newest first *)
}

let attach engine faults (instance : Dining.Instance.t) =
  let t = { engine; faults; open_since = Hashtbl.create 16; completed = [] } in
  instance.add_listener (fun pid phase ->
      let now = Sim.Engine.now engine in
      match phase with
      | Dining.Types.Hungry -> Hashtbl.replace t.open_since pid now
      | Dining.Types.Eating -> (
          match Hashtbl.find_opt t.open_since pid with
          | Some started ->
              Hashtbl.remove t.open_since pid;
              t.completed <- { pid; started; served = now } :: t.completed
          | None -> ())
      | Dining.Types.Thinking -> ());
  t

let completed t = List.rev t.completed
let durations t = List.rev_map (fun s -> s.served - s.started) t.completed
let summary t = Stats.Summary.of_ints (durations t)

let open_sessions t =
  (* The sort is load-bearing: the fold enumerates in hash order. *)
  Hashtbl.fold
    (fun pid started acc ->
      if Net.Faults.is_crashed t.faults pid then acc else (pid, started) :: acc)
    t.open_since []
  |> List.sort compare

let starved t ~older_than =
  let now = Sim.Engine.now t.engine in
  List.filter_map
    (fun (pid, started) -> if now - started > older_than then Some pid else None)
    (open_sessions t)

let served_count t = List.length t.completed

let response_series t ~bucket =
  if bucket <= 0 then invalid_arg "Response.response_series: bucket must be positive";
  let sums = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let b = s.served / bucket in
      let total, count = Option.value (Hashtbl.find_opt sums b) ~default:(0, 0) in
      Hashtbl.replace sums b (total + (s.served - s.started), count + 1))
    t.completed;
  (* The sort is load-bearing: the fold enumerates buckets in hash order. *)
  Hashtbl.fold
    (fun b (total, count) acc ->
      (float_of_int (b * bucket), float_of_int total /. float_of_int count) :: acc)
    sums []
  |> List.sort compare
