open Dining.Types

type msg = Req of int | Fk

type proc = {
  pid : pid;
  color : int;
  nbrs : pid array;
  index_of : (pid, int) Hashtbl.t;
  mutable phase : phase;
  fork : bool array;
  token : bool array;
}

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  detector : Fd.Detector.t;
  procs : proc array;
  mutable net : msg Net.Network.t option;
  mutable listeners : (pid -> phase -> unit) list;
}

let net t = match t.net with Some n -> n | None -> assert false
let proc t i = t.procs.(i)

let nbr_index p j =
  match Hashtbl.find_opt p.index_of j with
  | Some k -> k
  | None -> invalid_arg "fork_only: not a neighbor"

let notify t i =
  let p = proc t i in
  List.iter (fun f -> f i p.phase) t.listeners

let suspects t i j = t.detector.Fd.Detector.suspects ~observer:i ~target:j

let try_actions t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Hungry then begin
      Array.iteri
        (fun k j ->
          if p.token.(k) && not p.fork.(k) then begin
            p.token.(k) <- false;
            Net.Network.send (net t) ~src:i ~dst:j (Req p.color)
          end)
        p.nbrs;
      let may_eat = ref true in
      Array.iteri
        (fun k j -> if not (p.fork.(k) || suspects t i j) then may_eat := false)
        p.nbrs;
      if !may_eat then begin
        p.phase <- Eating;
        notify t i
      end
    end
  end

let receive_request t i ~from:j ~color:color_j =
  let p = proc t i in
  let k = nbr_index p j in
  if not p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "fork_only: %d requested a fork %d lacks" j i));
  p.token.(k) <- true;
  (* Defer only while eating, or while hungry with strictly higher
     priority; otherwise yield immediately. *)
  let defer = p.phase = Eating || (p.phase = Hungry && p.color > color_j) in
  if not defer then begin
    p.fork.(k) <- false;
    Net.Network.send (net t) ~src:i ~dst:j Fk
  end;
  try_actions t i

let receive_fork t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "fork_only: duplicated fork (%d,%d)" i j));
  p.fork.(k) <- true;
  try_actions t i

let become_hungry t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Thinking then begin
      p.phase <- Hungry;
      notify t i;
      try_actions t i
    end
  end

let stop_eating t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Eating then begin
      p.phase <- Thinking;
      Array.iteri
        (fun k j ->
          if p.token.(k) && p.fork.(k) then begin
            p.fork.(k) <- false;
            Net.Network.send (net t) ~src:i ~dst:j Fk
          end)
        p.nbrs;
      notify t i
    end
  end

let create ~engine ~faults ~graph ~delay ~rng ~detector ?colors () =
  let colors =
    match colors with
    | Some c ->
        if not (Cgraph.Coloring.is_proper graph c) then
          invalid_arg "Fork_only.create: colors must be a proper coloring";
        c
    | None -> Cgraph.Coloring.greedy graph
  in
  let procs =
    Array.init (Cgraph.Graph.n graph) (fun i ->
        let nbrs = Cgraph.Graph.neighbors graph i in
        let index_of = Hashtbl.create (max 1 (Array.length nbrs)) in
        Array.iteri (fun k j -> Hashtbl.add index_of j k) nbrs;
        {
          pid = i;
          color = colors.(i);
          nbrs;
          index_of;
          phase = Thinking;
          fork = Array.map (fun j -> colors.(i) > colors.(j)) nbrs;
          token = Array.map (fun j -> colors.(i) < colors.(j)) nbrs;
        })
  in
  let t = { engine; faults; graph; detector; procs; net = None; listeners = [] } in
  let network =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng
      ~kind:(function Req _ -> "request" | Fk -> "fork")
      ~kind_index:(function Req _ -> 0 | Fk -> 1)
      ~kind_names:[| "request"; "fork" |]
      ~handler:(fun ~dst ~src msg ->
        match msg with
        | Req color -> receive_request t dst ~from:src ~color
        | Fk -> receive_fork t dst ~from:src)
      ()
  in
  t.net <- Some network;
  detector.Fd.Detector.subscribe (fun observer ->
      if observer >= 0 && observer < Array.length t.procs then try_actions t observer);
  t

let network_stats t = Net.Network.stats (net t)

let check_invariants t =
  Cgraph.Graph.iter_edges t.graph (fun i j ->
      let pi = proc t i and pj = proc t j in
      if pi.fork.(nbr_index pi j) && pj.fork.(nbr_index pj i) then
        raise (Invariant_violation (Printf.sprintf "fork_only: two forks on edge (%d,%d)" i j)))

let instance t =
  {
    Dining.Instance.name = "fork-only-" ^ t.detector.Fd.Detector.name;
    become_hungry = become_hungry t;
    stop_eating = stop_eating t;
    phase = (fun i -> (proc t i).phase);
    add_listener = (fun f -> t.listeners <- t.listeners @ [ f ]);
    check_invariants = (fun () -> check_invariants t);
  }
