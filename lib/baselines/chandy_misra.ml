open Dining.Types

type msg = Req | Fk

type proc = {
  pid : pid;
  nbrs : pid array;
  index_of : (pid, int) Hashtbl.t;
  mutable phase : phase;
  fork : bool array;
  clean : bool array; (* meaningful only while fork.(k) or the fork is in transit *)
  token : bool array; (* request token, as in Chandy-Misra *)
}

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  detector : Fd.Detector.t;
  procs : proc array;
  mutable net : msg Net.Network.t option;
  mutable listeners : (pid -> phase -> unit) list;
}

let net t = match t.net with Some n -> n | None -> assert false
let proc t i = t.procs.(i)

let nbr_index p j =
  match Hashtbl.find_opt p.index_of j with
  | Some k -> k
  | None -> invalid_arg "chandy_misra: not a neighbor"

let notify t i =
  let p = proc t i in
  List.iter (fun f -> f i p.phase) t.listeners

let suspects t i j = t.detector.Fd.Detector.suspects ~observer:i ~target:j

let try_actions t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Hungry then begin
      (* Request each missing fork with the request token. *)
      Array.iteri
        (fun k j ->
          if p.token.(k) && not p.fork.(k) then begin
            p.token.(k) <- false;
            Net.Network.send (net t) ~src:i ~dst:j Req
          end)
        p.nbrs;
      let may_eat = ref true in
      Array.iteri
        (fun k j -> if not (p.fork.(k) || suspects t i j) then may_eat := false)
        p.nbrs;
      if !may_eat then begin
        p.phase <- Eating;
        (* Eating soils every held fork. *)
        Array.iteri (fun k _ -> if p.fork.(k) then p.clean.(k) <- false) p.nbrs;
        notify t i
      end
    end
  end

let receive_request t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if not p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "chandy_misra: %d requested a fork %d lacks" j i));
  p.token.(k) <- true;
  (* Hygienic rule: yield iff the fork is dirty and we are not eating. *)
  let defer = p.phase = Eating || (p.phase = Hungry && p.clean.(k)) in
  if not defer then begin
    p.fork.(k) <- false;
    p.clean.(k) <- true; (* the fork is cleaned as it is sent *)
    Net.Network.send (net t) ~src:i ~dst:j Fk
  end;
  try_actions t i

let receive_fork t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "chandy_misra: duplicated fork (%d,%d)" i j));
  p.fork.(k) <- true;
  p.clean.(k) <- true;
  try_actions t i

let become_hungry t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Thinking then begin
      p.phase <- Hungry;
      notify t i;
      try_actions t i
    end
  end

let stop_eating t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Eating then begin
      p.phase <- Thinking;
      (* Grant deferred requests; the forks were dirtied by eating. *)
      Array.iteri
        (fun k j ->
          if p.token.(k) && p.fork.(k) then begin
            p.fork.(k) <- false;
            p.clean.(k) <- true;
            Net.Network.send (net t) ~src:i ~dst:j Fk
          end)
        p.nbrs;
      notify t i
    end
  end

let create ~engine ~faults ~graph ~delay ~rng ~detector () =
  let procs =
    Array.init (Cgraph.Graph.n graph) (fun i ->
        let nbrs = Cgraph.Graph.neighbors graph i in
        let deg = Array.length nbrs in
        let index_of = Hashtbl.create (max 1 deg) in
        Array.iteri (fun k j -> Hashtbl.add index_of j k) nbrs;
        {
          pid = i;
          nbrs;
          index_of;
          phase = Thinking;
          (* Dirty forks at the lower-id endpoint: the initial precedence
             graph (edges toward fork holders) is acyclic. *)
          fork = Array.map (fun j -> i < j) nbrs;
          clean = Array.make deg false;
          token = Array.map (fun j -> i > j) nbrs;
        })
  in
  let t = { engine; faults; graph; detector; procs; net = None; listeners = [] } in
  let network =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng
      ~kind:(function Req -> "request" | Fk -> "fork")
      ~kind_index:(function Req -> 0 | Fk -> 1)
      ~kind_names:[| "request"; "fork" |]
      ~handler:(fun ~dst ~src msg ->
        match msg with
        | Req -> receive_request t dst ~from:src
        | Fk -> receive_fork t dst ~from:src)
      ()
  in
  t.net <- Some network;
  detector.Fd.Detector.subscribe (fun observer ->
      if observer >= 0 && observer < Array.length t.procs then try_actions t observer);
  t

let network_stats t = Net.Network.stats (net t)
let holds_fork t i j = (proc t i).fork.(nbr_index (proc t i) j)
let fork_clean t i j = (proc t i).clean.(nbr_index (proc t i) j)

let check_invariants t =
  Cgraph.Graph.iter_edges t.graph (fun i j ->
      let pi = proc t i and pj = proc t j in
      if pi.fork.(nbr_index pi j) && pj.fork.(nbr_index pj i) then
        raise (Invariant_violation (Printf.sprintf "chandy_misra: two forks on edge (%d,%d)" i j)))

let instance t =
  {
    Dining.Instance.name = "chandy-misra-" ^ t.detector.Fd.Detector.name;
    become_hungry = become_hungry t;
    stop_eating = stop_eating t;
    phase = (fun i -> (proc t i).phase);
    add_listener = (fun f -> t.listeners <- t.listeners @ [ f ]);
    check_invariants = (fun () -> check_invariants t);
  }
