open Dining.Types

type msg = Req | Fk

type proc = {
  pid : pid;
  order : pid array; (* neighbors sorted by ascending edge rank *)
  index_of : (pid, int) Hashtbl.t; (* neighbor pid -> position in [order] *)
  mutable phase : phase;
  fork : bool array; (* indexed like [order] *)
  token : bool array;
  mutable progress : int; (* locked ascending prefix of [order] *)
}

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  detector : Fd.Detector.t;
  procs : proc array;
  mutable net : msg Net.Network.t option;
  mutable listeners : (pid -> phase -> unit) list;
}

let net t = match t.net with Some n -> n | None -> assert false
let proc t i = t.procs.(i)

let nbr_index p j =
  match Hashtbl.find_opt p.index_of j with
  | Some k -> k
  | None -> invalid_arg "ordered: not a neighbor"

let edge_rank i j = (min i j, max i j)

let notify t i =
  let p = proc t i in
  List.iter (fun f -> f i p.phase) t.listeners

let suspects t i j = t.detector.Fd.Detector.suspects ~observer:i ~target:j

(* Advance the locked prefix past held (or suspected) forks; request the
   first missing one; eat when the prefix covers every edge. *)
let try_actions t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Hungry then begin
      let deg = Array.length p.order in
      while p.progress < deg && (p.fork.(p.progress) || suspects t i p.order.(p.progress)) do
        p.progress <- p.progress + 1
      done;
      if p.progress < deg then begin
        let k = p.progress in
        if p.token.(k) && not p.fork.(k) then begin
          p.token.(k) <- false;
          Net.Network.send (net t) ~src:i ~dst:p.order.(k) Req
        end
      end
      else begin
        p.phase <- Eating;
        notify t i
      end
    end
  end

let receive_request t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if not p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "ordered: %d requested a fork %d lacks" j i));
  p.token.(k) <- true;
  (* Defer only while eating, or while the fork sits in the locked
     ascending prefix of an in-progress acquisition. *)
  let locked = p.phase = Hungry && k < p.progress in
  if p.phase <> Eating && not locked then begin
    p.fork.(k) <- false;
    Net.Network.send (net t) ~src:i ~dst:j Fk
  end;
  try_actions t i

let receive_fork t i ~from:j =
  let p = proc t i in
  let k = nbr_index p j in
  if p.fork.(k) then
    raise (Invariant_violation (Printf.sprintf "ordered: duplicated fork (%d,%d)" i j));
  p.fork.(k) <- true;
  try_actions t i

let become_hungry t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Thinking then begin
      p.phase <- Hungry;
      p.progress <- 0;
      notify t i;
      try_actions t i
    end
  end

let stop_eating t i =
  if not (Net.Faults.is_crashed t.faults i) then begin
    let p = proc t i in
    if p.phase = Eating then begin
      p.phase <- Thinking;
      p.progress <- 0;
      Array.iteri
        (fun k j ->
          if p.token.(k) && p.fork.(k) then begin
            p.fork.(k) <- false;
            Net.Network.send (net t) ~src:i ~dst:j Fk
          end)
        p.order;
      notify t i
    end
  end

let create ~engine ~faults ~graph ~delay ~rng ~detector () =
  let procs =
    Array.init (Cgraph.Graph.n graph) (fun i ->
        let order = Array.copy (Cgraph.Graph.neighbors graph i) in
        Array.sort (fun a b -> compare (edge_rank i a) (edge_rank i b)) order;
        let index_of = Hashtbl.create (max 1 (Array.length order)) in
        Array.iteri (fun k j -> Hashtbl.add index_of j k) order;
        {
          pid = i;
          order;
          index_of;
          phase = Thinking;
          (* Forks start at the lower endpoint of each edge (any fixed
             placement works; locks, not placement, give deadlock
             freedom). *)
          fork = Array.map (fun j -> i < j) order;
          token = Array.map (fun j -> i > j) order;
          progress = 0;
        })
  in
  let t = { engine; faults; graph; detector; procs; net = None; listeners = [] } in
  let network =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng
      ~kind:(function Req -> "request" | Fk -> "fork")
      ~kind_index:(function Req -> 0 | Fk -> 1)
      ~kind_names:[| "request"; "fork" |]
      ~handler:(fun ~dst ~src msg ->
        match msg with
        | Req -> receive_request t dst ~from:src
        | Fk -> receive_fork t dst ~from:src)
      ()
  in
  t.net <- Some network;
  detector.Fd.Detector.subscribe (fun observer ->
      if observer >= 0 && observer < Array.length t.procs then try_actions t observer);
  t

let network_stats t = Net.Network.stats (net t)
let progress t i = (proc t i).progress

let check_invariants t =
  Cgraph.Graph.iter_edges t.graph (fun i j ->
      let pi = proc t i and pj = proc t j in
      if pi.fork.(nbr_index pi j) && pj.fork.(nbr_index pj i) then
        raise (Invariant_violation (Printf.sprintf "ordered: two forks on edge (%d,%d)" i j)))

let instance t =
  {
    Dining.Instance.name = "ordered-" ^ t.detector.Fd.Detector.name;
    become_hungry = become_hungry t;
    stop_eating = stop_eating t;
    phase = (fun i -> (proc t i).phase);
    add_listener = (fun f -> t.listeners <- t.listeners @ [ f ]);
    check_invariants = (fun () -> check_invariants t);
  }
