(* Per-(observer, target) timer state lives in flat arrays indexed by
   the graph's dense directed slots — observer's CSR row, slot for
   target — mirroring Net.Link_stats. The per-message hot path (a
   heartbeat arriving) is then two binary searches worth of int reads
   and writes; the previous Hashtbl keyed on an (observer, target)
   tuple allocated the key on every lookup. *)

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  (* Per directed slot (observer -> target). *)
  hb_last : Sim.Time.t array; (* last heartbeat arrival (creation time if none) *)
  hb_timeout : int array; (* current adaptive timeout *)
  hb_suspected : Bytes.t; (* 0 / 1 *)
  mutable last_mistake : Sim.Time.t option;
  mutable mistakes : int;
  listeners : (int -> unit) list ref;
}

let[@lint.hot] slot t observer target =
  let s = Cgraph.Graph.dir_index_opt t.graph observer target in
  if s < 0 then invalid_arg "Heartbeat: not a neighbor pair";
  s

let suspected t s = Bytes.unsafe_get t.hb_suspected s <> '\000'

let create ~engine ~faults ~graph ~delay ~rng ?(period = 20) ?(initial_timeout = 30)
    ?(bump = 25) ?metrics () =
  if period <= 0 || initial_timeout <= 0 || bump <= 0 then
    invalid_arg "Heartbeat.create: parameters must be positive";
  let dirs = Cgraph.Graph.dir_count graph in
  (* All first beats and checks are offset from the creation time: a
     detector built on a pre-advanced engine (restarts, staged
     experiments) must not schedule into the past. *)
  let now0 = Sim.Engine.now engine in
  let t =
    {
      engine;
      faults;
      graph;
      hb_last = Array.make dirs now0;
      hb_timeout = Array.make dirs initial_timeout;
      hb_suspected = Bytes.make dirs '\000';
      last_mistake = None;
      mistakes = 0;
      listeners = ref [];
    }
  in
  let n = Cgraph.Graph.n graph in
  (* Monitoring side: while [observer] does not suspect [target], exactly one
     check event is pending; a suspicion freezes checking until a heartbeat
     arrives and resets it. *)
  let rec schedule_check observer target at =
    ignore
      (Sim.Engine.schedule engine ~owner:observer ~at (fun () ->
           if not (Net.Faults.is_crashed faults observer) then begin
             let s = slot t observer target in
             if not (suspected t s) then begin
               let deadline = Sim.Time.add t.hb_last.(s) t.hb_timeout.(s) in
               let now = Sim.Engine.now engine in
               if now >= deadline then begin
                 Bytes.unsafe_set t.hb_suspected s '\001';
                 if not (Net.Faults.is_crashed faults target) then begin
                   t.mistakes <- t.mistakes + 1;
                   t.last_mistake <- Some now
                 end;
                 Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:now ~observer
                   ~target ~on:true;
                 Detector.notify t.listeners observer
               end
               else schedule_check observer target deadline
             end
           end))
  in
  let[@lint.hot] handler ~dst ~src () =
    let s = slot t dst src in
    t.hb_last.(s) <- Sim.Engine.now engine;
    if suspected t s then begin
      Bytes.unsafe_set t.hb_suspected s '\000';
      t.hb_timeout.(s) <- t.hb_timeout.(s) + bump;
      Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:t.hb_last.(s) ~observer:dst
        ~target:src ~on:false;
      Detector.notify t.listeners dst;
      schedule_check dst src (Sim.Time.add t.hb_last.(s) t.hb_timeout.(s))
    end
  in
  let net =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng
      ~kind:(fun () -> "heartbeat")
      ~kind_names:[| "heartbeat" |] ?metrics ~handler ()
  in
  (* Sending side: each process broadcasts a heartbeat to its neighborhood
     every [period] ticks, with a per-process phase jitter. *)
  for i = 0 to n - 1 do
    let rec beat () =
      if not (Net.Faults.is_crashed faults i) then begin
        Array.iter (fun j -> Net.Network.send net ~src:i ~dst:j ()) (Cgraph.Graph.neighbors graph i);
        ignore (Sim.Engine.schedule_after engine ~owner:i ~delay:period beat)
      end
    in
    ignore (Sim.Engine.schedule_after engine ~owner:i ~delay:(Sim.Rng.int rng period) beat);
    Array.iter
      (fun j -> schedule_check i j (Sim.Time.add now0 initial_timeout))
      (Cgraph.Graph.neighbors graph i)
  done;
  let detector =
    {
      Detector.name = "heartbeat-evp";
      suspects = (fun ~observer ~target -> suspected t (slot t observer target));
      subscribe = (fun f -> t.listeners := f :: !(t.listeners));
    }
  in
  (t, detector)

let last_mistake t = t.last_mistake
let mistakes t = t.mistakes
let timeout t ~observer ~target = t.hb_timeout.(slot t observer target)
