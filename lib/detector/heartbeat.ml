type cell = {
  mutable last_hb : Sim.Time.t;
  mutable timeout : int;
  mutable suspected : bool;
}

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  cells : (int * int, cell) Hashtbl.t; (* (observer, target) *)
  mutable last_mistake : Sim.Time.t option;
  mutable mistakes : int;
  listeners : (int -> unit) list ref;
}

let cell t observer target =
  match Hashtbl.find_opt t.cells (observer, target) with
  | Some c -> c
  | None -> invalid_arg "Heartbeat: not a neighbor pair"

let create ~engine ~faults ~graph ~delay ~rng ?(period = 20) ?(initial_timeout = 30)
    ?(bump = 25) ?metrics () =
  if period <= 0 || initial_timeout <= 0 || bump <= 0 then
    invalid_arg "Heartbeat.create: parameters must be positive";
  let t =
    {
      engine;
      faults;
      cells = Hashtbl.create 64;
      last_mistake = None;
      mistakes = 0;
      listeners = ref [];
    }
  in
  let n = Cgraph.Graph.n graph in
  for i = 0 to n - 1 do
    Array.iter
      (fun j ->
        Hashtbl.add t.cells (i, j)
          { last_hb = Sim.Time.zero; timeout = initial_timeout; suspected = false })
      (Cgraph.Graph.neighbors graph i)
  done;
  (* Monitoring side: while [observer] does not suspect [target], exactly one
     check event is pending; a suspicion freezes checking until a heartbeat
     arrives and resets it. *)
  let rec schedule_check observer target at =
    ignore
      (Sim.Engine.schedule engine ~at (fun () ->
           if not (Net.Faults.is_crashed faults observer) then begin
             let c = cell t observer target in
             if not c.suspected then begin
               let deadline = Sim.Time.add c.last_hb c.timeout in
               let now = Sim.Engine.now engine in
               if now >= deadline then begin
                 c.suspected <- true;
                 if not (Net.Faults.is_crashed faults target) then begin
                   t.mistakes <- t.mistakes + 1;
                   t.last_mistake <- Some now
                 end;
                 Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:now ~observer
                   ~target ~on:true;
                 Detector.notify t.listeners observer
               end
               else schedule_check observer target deadline
             end
           end))
  in
  let handler ~dst ~src () =
    let c = cell t dst src in
    c.last_hb <- Sim.Engine.now engine;
    if c.suspected then begin
      c.suspected <- false;
      c.timeout <- c.timeout + bump;
      Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:c.last_hb ~observer:dst
        ~target:src ~on:false;
      Detector.notify t.listeners dst;
      schedule_check dst src (Sim.Time.add c.last_hb c.timeout)
    end
  in
  let net =
    Net.Network.create ~engine ~graph ~delay ~faults ~rng
      ~kind:(fun () -> "heartbeat")
      ~kind_names:[| "heartbeat" |] ?metrics ~handler ()
  in
  (* Sending side: each process broadcasts a heartbeat to its neighborhood
     every [period] ticks, with a per-process phase jitter. *)
  for i = 0 to n - 1 do
    let rec beat () =
      if not (Net.Faults.is_crashed faults i) then begin
        Array.iter (fun j -> Net.Network.send net ~src:i ~dst:j ()) (Cgraph.Graph.neighbors graph i);
        ignore (Sim.Engine.schedule_after engine ~delay:period beat)
      end
    in
    ignore (Sim.Engine.schedule engine ~at:(Sim.Rng.int rng period) beat);
    Array.iter (fun j -> schedule_check i j initial_timeout) (Cgraph.Graph.neighbors graph i)
  done;
  let detector =
    {
      Detector.name = "heartbeat-evp";
      suspects = (fun ~observer ~target -> (cell t observer target).suspected);
      subscribe = (fun f -> t.listeners := f :: !(t.listeners));
    }
  in
  (t, detector)

let last_mistake t = t.last_mistake
let mistakes t = t.mistakes
let timeout t ~observer ~target = (cell t observer target).timeout
