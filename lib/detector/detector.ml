type t = {
  name : string;
  suspects : observer:int -> target:int -> bool;
  subscribe : (int -> unit) -> unit;
}

(* Listeners are stored newest-first (O(1) subscribe); reverse at fire so
   callbacks run in registration order. *)
let notify listeners observer = List.iter (fun f -> f observer) (List.rev !listeners)
