let create engine faults graph rng ?(detection_delay = 50) ?(period = 2_000) ?(duration = 150)
    ~horizon () =
  if period <= 0 || duration <= 0 || duration >= period then
    invalid_arg "Unreliable.create: need 0 < duration < period";
  let listeners = ref [] in
  let fp_active : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let permanent : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let set key v =
    let cur = Option.value (Hashtbl.find_opt fp_active key) ~default:false in
    if cur <> v then begin
      Hashtbl.replace fp_active key v;
      if not (Hashtbl.mem permanent key) then begin
        Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:(Sim.Engine.now engine)
          ~observer:(fst key) ~target:(snd key) ~on:v;
        Detector.notify listeners (fst key)
      end
    end
  in
  (* Recurrent false suspicion of every directed neighbor pair, forever
     (up to the horizon), with a per-pair phase. *)
  Cgraph.Graph.iter_edges graph (fun a b ->
      List.iter
        (fun (observer, target) ->
          let phase = Sim.Rng.int rng period in
          let rec wave start =
            if start <= horizon then begin
              ignore
                (Sim.Engine.schedule engine ~owner:observer ~at:start (fun () ->
                     if not (Net.Faults.is_crashed faults observer) then
                       set (observer, target) true));
              ignore
                (Sim.Engine.schedule engine ~owner:observer
                   ~at:(Sim.Time.add start duration)
                   (fun () -> set (observer, target) false));
              wave (Sim.Time.add start period)
            end
          in
          wave phase)
        [ (a, b); (b, a) ]);
  (* Completeness, as in the scripted oracle. *)
  Net.Faults.on_crash faults (fun crashed ->
      Array.iter
        (fun neighbor ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:neighbor ~delay:detection_delay (fun () ->
                 if not (Net.Faults.is_crashed faults neighbor) then begin
                   let key = (neighbor, crashed) in
                   if not (Hashtbl.mem permanent key) then begin
                     let before = Option.value (Hashtbl.find_opt fp_active key) ~default:false in
                     Hashtbl.add permanent key ();
                     if not before then begin
                       Obs.Recorder.suspect (Sim.Engine.recorder engine)
                         ~time:(Sim.Engine.now engine) ~observer:neighbor ~target:crashed
                         ~on:true;
                       Detector.notify listeners neighbor
                     end
                   end
                 end)))
        (Cgraph.Graph.neighbors graph crashed));
  {
    Detector.name = "unreliable-forever";
    suspects =
      (fun ~observer ~target ->
        Hashtbl.mem permanent (observer, target)
        || Option.value (Hashtbl.find_opt fp_active (observer, target)) ~default:false);
    subscribe = (fun f -> listeners := f :: !listeners);
  }
