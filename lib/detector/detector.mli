(** Failure-detector interface.

    A detector is a distributed oracle: each process [i] can query the set
    of neighbors it currently suspects of having crashed. The dining
    algorithm is written against this interface only, so the same code runs
    with the paper's assumed eventually-perfect detector ◇P₁
    ({!module:Oracle}, {!module:Heartbeat}), a perpetually perfect one
    ({!module:Perfect}), or none at all ({!module:Never} — which recovers
    the crash-intolerant Choy–Singh baseline). *)

type t = {
  name : string;
  suspects : observer:int -> target:int -> bool;
      (** Does [observer]'s local module currently suspect [target]? Only
          meaningful for neighbors in the conflict graph (◇P₁ is locally
          scope-restricted). *)
  subscribe : (int -> unit) -> unit;
      (** Register a callback fired with an observer's pid whenever that
          observer's suspicion output changes. This is how "suspicion can
          substitute for a missing message" wakes up blocked guards without
          polling. *)
}

val notify : (int -> unit) list ref -> int -> unit
(** Helper for implementations: invoke all listeners for an observer, in
    registration order. The list is expected to be maintained newest-first
    (prepend on subscribe); [notify] reverses before firing. *)
