let create _engine faults graph =
  let listeners = ref [] in
  Net.Faults.on_crash faults (fun crashed ->
      Array.iter
        (fun neighbor ->
          if not (Net.Faults.is_crashed faults neighbor) then
            Detector.notify listeners neighbor)
        (Cgraph.Graph.neighbors graph crashed));
  {
    Detector.name = "perfect";
    suspects = (fun ~observer:_ ~target -> Net.Faults.is_crashed faults target);
    subscribe = (fun f -> listeners := f :: !listeners);
  }
