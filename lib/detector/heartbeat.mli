(** Message-based implementation of ◇P₁ by heartbeats with adaptive
    timeouts, running over the simulated network.

    Every correct process sends a heartbeat to each neighbor every
    [period] ticks. An observer suspects a neighbor when no heartbeat has
    arrived for its current per-neighbor timeout; if a heartbeat from a
    suspected neighbor later arrives (a false positive was made), the
    neighbor is unsuspected and the timeout is increased by [bump].

    Under the partial-synchrony delay model this satisfies ◇P₁:
    completeness because a crashed neighbor stops sending and the timeout
    eventually fires for good, and eventual accuracy because after finitely
    many mistakes the timeout exceeds [period + Delta] (the post-GST delay
    bound), after which no further false positives occur.

    The heartbeat traffic runs on its own network overlay so that
    dining-layer channel statistics (Section 7 bounds) are unaffected. *)

type t

val create :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  delay:Net.Delay.t ->
  rng:Sim.Rng.t ->
  ?period:int ->
  ?initial_timeout:int ->
  ?bump:int ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t * Detector.t
(** Defaults: [period = 20], [initial_timeout = 30], [bump = 25]. May be
    created at any virtual time: first beats and timeout checks are
    offset from [Engine.now] at creation. [metrics] is forwarded to the
    heartbeat overlay's link statistics (heartbeat and dining overlays
    sharing a registry aggregate into the same [net.*] counters). *)

val last_mistake : t -> Sim.Time.t option
(** Start time of the most recent false suspicion (target had not crashed
    when suspected), if any. After a run, this is a lower bound on the
    detector's convergence time. *)

val mistakes : t -> int
(** Total number of false suspicions committed so far. *)

val timeout : t -> observer:int -> target:int -> int
(** Current adaptive timeout for a pair (for introspection in tests). *)
