type fp = { observer : int; target : int; from_t : Sim.Time.t; till_t : Sim.Time.t }

type t = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  detection_delay : int;
  false_positives : fp list;
  fp_active : (int * int, int) Hashtbl.t; (* (observer, target) -> open window count *)
  permanent : (int * int, unit) Hashtbl.t; (* completeness suspicions, never removed *)
  listeners : (int -> unit) list ref;
}

let suspects t ~observer ~target =
  Hashtbl.mem t.permanent (observer, target)
  || Option.value (Hashtbl.find_opt t.fp_active (observer, target)) ~default:0 > 0

let validate_fp graph fp =
  if fp.from_t >= fp.till_t then invalid_arg "Oracle: empty false-positive window";
  if not (Cgraph.Graph.is_edge graph fp.observer fp.target) then
    invalid_arg "Oracle: false positive between non-neighbors"

let create engine faults graph ?(detection_delay = 50) ?(false_positives = []) () =
  List.iter (validate_fp graph) false_positives;
  let t =
    {
      engine;
      faults;
      detection_delay;
      false_positives;
      fp_active = Hashtbl.create 16;
      permanent = Hashtbl.create 16;
      listeners = ref [];
    }
  in
  let bump key delta =
    let before = suspects t ~observer:(fst key) ~target:(snd key) in
    let count = Option.value (Hashtbl.find_opt t.fp_active key) ~default:0 in
    Hashtbl.replace t.fp_active key (count + delta);
    let after = suspects t ~observer:(fst key) ~target:(snd key) in
    if before <> after then begin
      Obs.Recorder.suspect (Sim.Engine.recorder engine) ~time:(Sim.Engine.now engine)
        ~observer:(fst key) ~target:(snd key) ~on:after;
      Detector.notify t.listeners (fst key)
    end
  in
  List.iter
    (fun fp ->
      let key = (fp.observer, fp.target) in
      ignore (Sim.Engine.schedule engine ~owner:fp.observer ~at:fp.from_t (fun () -> bump key 1));
      ignore (Sim.Engine.schedule engine ~owner:fp.observer ~at:fp.till_t (fun () -> bump key (-1))))
    false_positives;
  Net.Faults.on_crash faults (fun crashed ->
      Array.iter
        (fun neighbor ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:neighbor ~delay:detection_delay (fun () ->
                 if not (Net.Faults.is_crashed faults neighbor) then begin
                   let key = (neighbor, crashed) in
                   if not (Hashtbl.mem t.permanent key) then begin
                     let before = suspects t ~observer:neighbor ~target:crashed in
                     Hashtbl.add t.permanent key ();
                     if not before then begin
                       Obs.Recorder.suspect (Sim.Engine.recorder engine)
                         ~time:(Sim.Engine.now engine) ~observer:neighbor ~target:crashed
                         ~on:true;
                       Detector.notify t.listeners neighbor
                     end
                   end
                 end)))
        (Cgraph.Graph.neighbors graph crashed));
  let detector =
    {
      Detector.name = "oracle-evp";
      suspects = (fun ~observer ~target -> suspects t ~observer ~target);
      subscribe = (fun f -> t.listeners := f :: !(t.listeners));
    }
  in
  (t, detector)

let convergence_time t =
  let fp_end =
    List.fold_left (fun acc fp -> Sim.Time.max acc fp.till_t) Sim.Time.zero t.false_positives
  in
  let detect_end = ref Sim.Time.zero in
  for pid = 0 to Net.Faults.n t.faults - 1 do
    let ct = Net.Faults.crash_time t.faults pid in
    if Sim.Time.is_finite ct then
      detect_end := Sim.Time.max !detect_end (Sim.Time.add ct t.detection_delay)
  done;
  Sim.Time.max fp_end !detect_end

let random_false_positives rng graph ~before ~per_edge ~max_len =
  if before <= 0 then []
  else begin
    let acc = ref [] in
    Cgraph.Graph.iter_edges graph (fun a b ->
        List.iter
          (fun (observer, target) ->
            for _ = 1 to per_edge do
              let from_t = Sim.Rng.int rng before in
              let len = Sim.Rng.int_in rng 1 max_len in
              let till_t = min before (from_t + len) in
              if till_t > from_t then acc := { observer; target; from_t; till_t } :: !acc
            done)
          [ (a, b); (b, a) ]);
    !acc
  end
