(** File-level suppressions for intentional exceptions (the designated
    report printers). One entry per line: [<rule-id|*> <path>], [#]
    comments. Site-level suppressions use the [[@lint.allow "rule-id"]]
    attribute instead — prefer those; the allowlist is for files whose
    whole purpose violates a rule.

    Entries track whether they suppressed anything this run: the driver
    reports entries that silenced nothing as [stale-allowlist] errors,
    so suppressions cannot outlive the code they excused. *)

type entry = {
  rule : string;  (** rule id, or ["*"] for every rule *)
  path : string;
  line : int;  (** line in the allowlist file; 0 for {!of_list} entries *)
  mutable used : bool;  (** suppressed at least one finding this run *)
}

type t

val empty : t

val of_list : (string * string) list -> t
(** [(rule, path)] pairs; rule ["*"] allows every rule for that path. *)

val load : string -> t
(** Parse an allowlist file. Raises [Sys_error] if unreadable and
    [Invalid_argument] on a malformed line. *)

val allows : t -> rule:string -> file:string -> bool
(** A path entry matches the linted file either exactly or as a
    [/]-anchored suffix, so [lib/stats/table.ml] also matches
    [/abs/prefix/lib/stats/table.ml]. Every matching entry is marked
    used. *)

val path_matches : entry:entry -> file:string -> bool
(** The matching predicate of {!allows}, exposed so the driver can tell
    whether a stale entry's path was even scanned this run. *)

val entries : t -> entry list

val unused : t -> entry list
(** Entries that suppressed nothing (yet). *)
