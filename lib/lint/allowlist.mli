(** File-level suppressions for intentional exceptions (the designated
    report printers). One entry per line: [<rule-id|*> <path>], [#]
    comments. Site-level suppressions use the [[@lint.allow "rule-id"]]
    attribute instead — prefer those; the allowlist is for files whose
    whole purpose violates a rule. *)

type t

val empty : t

val of_list : (string * string) list -> t
(** [(rule, path)] pairs; rule ["*"] allows every rule for that path. *)

val load : string -> t
(** Parse an allowlist file. Raises [Sys_error] if unreadable and
    [Invalid_argument] on a malformed line. *)

val allows : t -> rule:string -> file:string -> bool
(** A path entry matches the linted file either exactly or as a
    [/]-anchored suffix, so [lib/stats/table.ml] also matches
    [/abs/prefix/lib/stats/table.ml]. *)
