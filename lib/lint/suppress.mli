(** The suppression ledger shared by the syntactic and typed passes.

    Registers every [[@lint.allow]] site the walkers encounter and
    records which ones actually silenced a finding, so the driver can
    flag suppressions that outlived the code they excused. Also hosts
    the scoped-emission context ({!ctx}) every pass reports through:
    emitting via {!emit} gives a pass attribute scoping, allowlist
    matching and use-tracking for free. *)

type site = {
  file : string;
  line : int;  (** 1-based, of the attribute *)
  col : int;
  rules : string list;  (** rule names; [["*"]] = every rule *)
  mutable used : bool;  (** silenced at least one would-be finding *)
}

type t

val create : unit -> t

val note_checked : t -> string list -> unit
(** Record that a pass checked these rules this run. {!unused} only
    reports a site when every rule it names was checked — an attribute
    for a typed rule is not stale just because only the syntactic pass
    ran. *)

val checked_rules : t -> string list
(** Rule names some pass has reported checking this run. *)

val register : t -> file:string -> loc:Location.t -> rules:string list -> site
(** Idempotent per (file, line, col): both passes may register the same
    attribute; they share one [used] flag. *)

val mark_used : site -> unit

val unused : t -> catalogue:string list -> site list
(** Sites that silenced nothing, restricted to those fully checked this
    run ([catalogue] is the expansion of a bare [[@lint.allow]]).
    Sorted by file, line, col. *)

val rules_of_attr : Parsetree.attribute -> string list option
(** [None] if the attribute is not [lint.allow]; [Some ["*"]] for a bare
    or malformed payload. *)

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule names allowed by the [lint.allow] attributes in the list. *)

(** {2 Scoped emission} *)

type ctx

val make_ctx :
  ?registry:t ->
  enabled:(string -> bool) ->
  allowlist:Allowlist.t ->
  file:string ->
  unit ->
  ctx

val with_attrs : ctx -> Parsetree.attributes -> (unit -> unit) -> unit
(** Push the [lint.allow] entries of [attrs] for the duration of the
    callback (registering their sites), restoring the scope after. *)

val emit : ctx -> loc:Location.t -> rule:string -> string -> unit
(** Record a finding unless a scope entry or allowlist entry suppresses
    it; suppressors are marked used. *)

val findings : ctx -> Finding.t list
(** Accumulated findings, sorted by {!Finding.compare}. *)
