(* The hot-path allocation guard.

   Functions annotated [@lint.hot] are the measured per-event paths of
   the simulator (Net.Link_stats.record_send, Sim.Wheel insert/cascade,
   the Sim.Engine fire loop, Cgraph.Graph.dir_index_opt): one call per
   simulated event at 10^5-10^6 scale, where a single allocation per
   call turns into GC pressure that dominates the profile. This pass is
   the static side of the BENCH_scale.json allocation gate: it flags
   every syntactically evident heap allocation in a hot body.

   Flagged: closure literals, tuples, records, array literals,
   argument-carrying constructors (including list cons) and polymorphic
   variants, lazy thunks, and calls to known allocating stdlib
   functions (ref, Array.make, Printf.sprintf, (@), (^), ...).

   Not seen (documented honesty): float boxing, closure allocation from
   partial application, and allocations inside callees — annotate the
   callee [@lint.hot] too if it is on the path. A deliberate allocation
   (e.g. the cons onto a watched-link history) is justified in place
   with [@lint.allow "hot-path-alloc"] and a comment. *)

open Typedtree

let rule_name = Rule.name Rule.Hot_path_alloc

let is_hot (attrs : attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "lint.hot") attrs

let scan_def ctx (d : Callgraph.def) =
  let emit ~loc what =
    Suppress.emit ctx ~loc ~rule:rule_name
      (Printf.sprintf
         "%s allocates in [@lint.hot] %s: one heap block per call on a per-event path; \
          hoist it, restructure, or justify with [@lint.allow \"hot-path-alloc\"]"
         what d.name)
  in
  let expr it e =
    Suppress.with_attrs ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_function _ -> emit ~loc:e.exp_loc "closure literal"
    | Texp_tuple _ -> emit ~loc:e.exp_loc "tuple construction"
    | Texp_record _ -> emit ~loc:e.exp_loc "record construction"
    | Texp_array _ -> emit ~loc:e.exp_loc "array literal"
    | Texp_construct (lid, _, _ :: _) ->
        let name = String.concat "." (Longident.flatten lid.txt) in
        emit ~loc:e.exp_loc
          (if name = "::" then "list cons (::)" else "constructor " ^ name)
    | Texp_variant (label, Some _) -> emit ~loc:e.exp_loc ("polymorphic variant `" ^ label)
    | Texp_lazy _ -> emit ~loc:e.exp_loc "lazy thunk"
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
        match Callgraph.allocating_fn (Callgraph.normalize_path p) with
        | Some f -> emit ~loc:e.exp_loc ("call to allocating " ^ f)
        | None -> ())
    | _ -> ());
    (* Descend everywhere, including into flagged nodes: a tuple of
       closures is two findings, not one. *)
    match e.exp_desc with
    | Texp_function _ ->
        (* the body of a nested closure still runs on the hot path only
           if called; the closure allocation itself was flagged above,
           and its body is typically the cold continuation — skip it. *)
        ()
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  Suppress.with_attrs ctx d.attrs @@ fun () -> it.expr it d.body

let run ?registry ?(allowlist = Allowlist.empty) (graph : Callgraph.t) =
  Option.iter (fun t -> Suppress.note_checked t [ rule_name ]) registry;
  let ctxs = Hashtbl.create 8 in
  let ctx_for file =
    match Hashtbl.find_opt ctxs file with
    | Some c -> c
    | None ->
        let c =
          Suppress.make_ctx ?registry ~enabled:(fun _ -> true) ~allowlist ~file ()
        in
        Hashtbl.add ctxs file c;
        c
  in
  List.iter
    (fun (d : Callgraph.def) -> if is_hot d.attrs then scan_def (ctx_for d.source) d)
    graph.defs;
  Hashtbl.fold (fun _ c acc -> Suppress.findings c @ acc) ctxs []
  |> List.sort_uniq Finding.compare
