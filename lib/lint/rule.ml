type id =
  | Nondet_iteration
  | Ambient_effects
  | Io_in_library
  | Physical_equality
  | Mutable_global
  | Exception_swallow

let all =
  [
    Nondet_iteration;
    Ambient_effects;
    Io_in_library;
    Physical_equality;
    Mutable_global;
    Exception_swallow;
  ]

let name = function
  | Nondet_iteration -> "nondet-iteration"
  | Ambient_effects -> "ambient-effects"
  | Io_in_library -> "io-in-library"
  | Physical_equality -> "physical-equality"
  | Mutable_global -> "mutable-global"
  | Exception_swallow -> "exception-swallow"

let of_name s = List.find_opt (fun r -> name r = s) all

let explanation = function
  | Nondet_iteration ->
      "Hashtbl.iter/fold enumerate bindings in unspecified hash order; a result that \
       escapes into ordered output breaks byte-identical replay. Sort the result (the \
       linter recognises `|> List.sort`) or annotate an order-insensitive reduction with \
       [@lint.allow \"nondet-iteration\"]."
  | Ambient_effects ->
      "Random.*, Unix.*, Sys.time and exit read or mutate ambient process state; runs \
       stop being a pure function of (scenario, seed). Thread Sim.Rng and engine time \
       through explicitly."
  | Io_in_library ->
      "printf/print_* from library code writes to the process-global stdout, which \
       interleaves nondeterministically across domains. Take a Format.formatter \
       parameter and let bin/ or bench/ choose the sink."
  | Physical_equality ->
      "== / != compare addresses, not values; on boxed data the answer depends on \
       allocation history, which parallel runs do not replay. Use = / <> or compare."
  | Mutable_global ->
      "A toplevel ref/Hashtbl/Buffer/... is shared by every run and every domain; \
       concurrent batches race on it and sequential batches leak state between runs. \
       Allocate per World/run instead."
  | Exception_swallow ->
      "`with _ ->` also swallows Stack_overflow, Out_of_memory and assertion failures, \
       turning hard bugs into silent divergence. Match the specific exceptions you mean \
       to handle."
