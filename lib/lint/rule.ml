type id =
  | Nondet_iteration
  | Ambient_effects
  | Io_in_library
  | Physical_equality
  | Mutable_global
  | Exception_swallow
  | Domain_escape
  | Hot_path_alloc
  | Stale_allowlist
  | Unused_allow

let syntactic =
  [
    Nondet_iteration;
    Ambient_effects;
    Io_in_library;
    Physical_equality;
    Mutable_global;
    Exception_swallow;
  ]

(* Rules that need type information (.cmt artifacts); run by the typed
   passes under `lint --typed`. Ambient_effects / Io_in_library /
   Mutable_global double as typed rules: the transitive effect pass
   emits under the same ids when a function reaches a violation through
   helpers. *)
let typed_only = [ Domain_escape; Hot_path_alloc ]

(* Hygiene meta-rules: emitted by the driver over the suppression
   ledger, not by any walker. *)
let meta = [ Stale_allowlist; Unused_allow ]

let all = syntactic @ typed_only @ meta

let name = function
  | Nondet_iteration -> "nondet-iteration"
  | Ambient_effects -> "ambient-effects"
  | Io_in_library -> "io-in-library"
  | Physical_equality -> "physical-equality"
  | Mutable_global -> "mutable-global"
  | Exception_swallow -> "exception-swallow"
  | Domain_escape -> "domain-escape"
  | Hot_path_alloc -> "hot-path-alloc"
  | Stale_allowlist -> "stale-allowlist"
  | Unused_allow -> "unused-allow"

let of_name s = List.find_opt (fun r -> name r = s) all

let explanation = function
  | Nondet_iteration ->
      "Hashtbl.iter/fold enumerate bindings in unspecified hash order; a result that \
       escapes into ordered output breaks byte-identical replay. Sort the result (the \
       linter recognises `|> List.sort`) or annotate an order-insensitive reduction with \
       [@lint.allow \"nondet-iteration\"]."
  | Ambient_effects ->
      "Random.*, Unix.*, Sys.time and exit read or mutate ambient process state; runs \
       stop being a pure function of (scenario, seed). Thread Sim.Rng and engine time \
       through explicitly. Under --typed this also fires on functions that reach such a \
       call through helpers (transitive effect inference over the call graph)."
  | Io_in_library ->
      "printf/print_* from library code writes to the process-global stdout, which \
       interleaves nondeterministically across domains. Take a Format.formatter \
       parameter and let bin/ or bench/ choose the sink. Under --typed this also fires \
       transitively on callers of printing helpers."
  | Physical_equality ->
      "== / != compare addresses, not values; on boxed data the answer depends on \
       allocation history, which parallel runs do not replay. Use = / <> or compare."
  | Mutable_global ->
      "A toplevel ref/Hashtbl/Buffer/... is shared by every run and every domain; \
       concurrent batches race on it and sequential batches leak state between runs. \
       Allocate per World/run instead. Under --typed this also fires on functions that \
       mutate toplevel state through helpers."
  | Exception_swallow ->
      "`with _ ->` also swallows Stack_overflow, Out_of_memory and assertion failures, \
       turning hard bugs into silent divergence. Match the specific exceptions you mean \
       to handle."
  | Domain_escape ->
      "A task body submitted to Exec.Pool (run_batch/init/map_array/map_list, directly \
       or through intermediate functions) captures mutable state — a ref, array, bytes, \
       Hashtbl/Buffer/Queue/Stack, or a record it mutates — that every domain in the \
       batch then races on. Allowed captures: values only read by the tasks (the \
       submitter blocks for the batch, so nobody writes concurrently) and arrays \
       accessed only at the task's own index parameter (disjoint shards). Typed pass \
       (--typed) only."
  | Hot_path_alloc ->
      "Functions annotated [@lint.hot] are the measured allocation-free hot paths \
       (Net.Link_stats.record_send, Sim.Wheel insert/cascade, the Sim.Engine fire loop, \
       Cgraph.Graph.dir_index_opt). Closures, tuples, records, array/constructor \
       allocations and known allocator calls in their bodies are flagged — the static \
       guard behind the BENCH_scale.json allocation gate. Justify a deliberate \
       allocation with [@lint.allow \"hot-path-alloc\"] and a comment. Typed pass \
       (--typed) only."
  | Stale_allowlist ->
      "A lint.allow entry suppressed nothing this run: the code it excused is gone. \
       Remove the entry — keeping it lets future violations in that file hide under it."
  | Unused_allow ->
      "A [@lint.allow] attribute suppressed nothing this run (all its rules were \
       checked). Remove it — keeping it lets future violations at that site hide under \
       it."
