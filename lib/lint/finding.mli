(** A single lint finding: a rule violation anchored at a source location. *)

type t = {
  file : string;  (** path as given to the engine *)
  line : int;     (** 1-based *)
  col : int;      (** 1-based *)
  rule : string;  (** rule id, e.g. ["nondet-iteration"] *)
  message : string;
}

val make : file:string -> loc:Location.t -> rule:string -> message:string -> t

val compare : t -> t -> int
(** Order by file, then line, col, rule — report order is deterministic. *)

val to_text : t -> string
(** [file:line:col: [rule] message]. *)

val to_github : t -> string
(** GitHub Actions workflow-command format ([::error file=...]) so CI
    findings show up as inline annotations. *)
