type t = { file : string; line : int; col : int; rule : string; message : string }

let make ~file ~loc ~rule ~message =
  let pos = loc.Location.loc_start in
  {
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
    rule;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_github f =
  Printf.sprintf "::error file=%s,line=%d,col=%d,title=%s::%s" f.file f.line f.col f.rule
    f.message
