open Parsetree

type report = { findings : Finding.t list; errors : (string * string) list }

let no_report = { findings = []; errors = [] }

let merge a b = { findings = a.findings @ b.findings; errors = a.errors @ b.errors }

(* ------------------------------------------------------------------ *)
(* Longident helpers.                                                  *)
(* ------------------------------------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let rec last2 = function
  | [] | [ _ ] -> None
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last2 tl

let ident_path e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (flatten txt) | _ -> None

(* ------------------------------------------------------------------ *)
(* Syntactic classifiers.                                              *)
(* ------------------------------------------------------------------ *)

(* Hashtbl.iter / Hashtbl.fold, also through functorised paths like
   Int_table.iter is NOT matched (a functor instance has its own
   comparison; order is still hash order, but we cannot tell a Hashtbl
   functor from a Map one syntactically). We match the stdlib module. *)
let hashtbl_iteration path =
  match last2 path with
  | Some ("Hashtbl", (("iter" | "fold") as f)) -> Some f
  | _ -> None

let sort_fn_path = function
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> true
  | _ -> false

let rec is_sort_fn e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> sort_fn_path (flatten txt)
  | Pexp_apply (f, _) -> is_sort_fn f
  | _ -> false

let ambient_effect path =
  match path with
  | "Random" :: _ :: _ -> Some "Random.*"
  | "Unix" :: _ -> Some "Unix.*"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "exit" ] | [ "Stdlib"; "exit" ] -> Some "exit"
  | _ -> None

let stdout_printer = function
  | "print_string" | "print_endline" | "print_newline" | "print_char" | "print_int"
  | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline" ->
      true
  | _ -> false

let io_effect path =
  match path with
  | [ p ] when stdout_printer p -> Some p
  | [ "Stdlib"; p ] when stdout_printer p -> Some ("Stdlib." ^ p)
  | [ "Printf"; (("printf" | "eprintf") as p) ] -> Some ("Printf." ^ p)
  | [ "Format"; (("printf" | "eprintf" | "print_string" | "print_newline" | "print_flush")
                as p) ] ->
      Some ("Format." ^ p)
  | _ -> None

(* Allocators of mutable state; a toplevel binding reaching one of these
   outside a function body is shared by every run and every domain. *)
let mutable_allocator path =
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ m; "create" ] when List.mem m [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Bytes" ] ->
      Some (m ^ ".create")
  | [ "Array"; (("make" | "create_float" | "init") as f) ] -> Some ("Array." ^ f)
  | [ "Bytes"; "make" ] -> Some "Bytes.make"
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | _ -> None

let immediate_constant e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The walker.                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  file : string;
  ctx : Suppress.ctx;            (* scoped emission + [@lint.allow] ledger *)
  mutable sorted : bool;         (* value flows into a List.sort *)
}

let emit st loc rule fmt =
  Printf.ksprintf
    (fun message -> Suppress.emit st.ctx ~loc ~rule:(Rule.name rule) message)
    fmt

(* The sim-local RNG wrapper is the one sanctioned home for Random. *)
let random_exempt file =
  Filename.basename file = "rng.ml"
  && Filename.basename (Filename.dirname file) = "sim"

let rec swallowing_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> swallowing_pattern a || swallowing_pattern b
  | _ -> false

(* Scan a toplevel binding's RHS for mutable allocations, stopping at
   function boundaries (allocation inside a closure happens per call). *)
let rec scan_mutable_global st e =
  Suppress.with_attrs st.ctx e.pexp_attributes @@ fun () ->
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
  | Pexp_apply (f, args) ->
      (match ident_path f with
      | Some path -> (
          match mutable_allocator path with
          | Some name ->
              emit st e.pexp_loc Rule.Mutable_global
                "toplevel %s creates mutable state shared across runs and domains; \
                 allocate it per run (e.g. inside Harness.World)"
                name
          | None -> ())
      | None -> ());
      List.iter (fun (_, a) -> scan_mutable_global st a) args
  | Pexp_tuple es | Pexp_array es -> List.iter (scan_mutable_global st) es
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> scan_mutable_global st e
  | Pexp_record (fields, base) ->
      List.iter (fun (_, e) -> scan_mutable_global st e) fields;
      Option.iter (scan_mutable_global st) base
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      scan_mutable_global st e
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> scan_mutable_global st vb.pvb_expr) vbs;
      scan_mutable_global st body
  | Pexp_sequence (a, b) -> List.iter (scan_mutable_global st) [ a; b ]
  | Pexp_ifthenelse (_, a, b) ->
      scan_mutable_global st a;
      Option.iter (scan_mutable_global st) b
  | _ -> ()

let check_ident st loc path =
  (match ambient_effect path with
  | Some name when not (random_exempt st.file) ->
      emit st loc Rule.Ambient_effects
        "%s is an ambient effect: runs stop being a pure function of (scenario, seed); \
         thread Sim.Rng / engine time through instead"
        name
  | _ -> ());
  match io_effect path with
  | Some name ->
      emit st loc Rule.Io_in_library
        "%s writes to a process-global channel from library code; take a \
         Format.formatter parameter and let the caller choose the sink"
        name
  | None -> ()

let iterator st =
  let open Ast_iterator in
  let expr it e =
    Suppress.with_attrs st.ctx e.pexp_attributes @@ fun () ->
    let saved_sorted = st.sorted in
    (* Per-node checks. *)
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident st e.pexp_loc (flatten txt)
    | Pexp_apply (f, args) -> (
        (match ident_path f with
        | Some path -> (
            (match hashtbl_iteration path with
            | Some fn when not st.sorted ->
                emit st e.pexp_loc Rule.Nondet_iteration
                  "Hashtbl.%s enumerates bindings in unspecified hash order; sort the \
                   result (|> List.sort ...) or mark an order-insensitive reduction \
                   with [@lint.allow \"nondet-iteration\"]"
                  fn
            | _ -> ());
            match path with
            | [ ("==" | "!=") as op ] when List.length args = 2 ->
                if not (List.exists (fun (_, a) -> immediate_constant a) args) then
                  emit st e.pexp_loc Rule.Physical_equality
                    "physical equality (%s) on possibly-boxed values depends on \
                     allocation history; use = / <> or compare"
                    op
            | _ -> ())
        | None -> ()))
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if c.pc_guard = None && swallowing_pattern c.pc_lhs then
              emit st c.pc_lhs.ppat_loc Rule.Exception_swallow
                "wildcard handler swallows every exception (including Stack_overflow \
                 and Assert_failure); match the exceptions you mean to handle")
          cases
    | _ -> ());
    (* Recursion, threading the sorted-context flag through the two
       pipeline shapes the sanitizer recognises. *)
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "|>"; _ }; _ },
          [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] )
      when is_sort_fn rhs ->
        st.sorted <- true;
        it.expr it lhs;
        st.sorted <- saved_sorted;
        it.expr it rhs
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ },
          [ (Asttypes.Nolabel, f); (Asttypes.Nolabel, arg) ] )
      when is_sort_fn f ->
        it.expr it f;
        st.sorted <- true;
        it.expr it arg
    | Pexp_apply (f, args) when is_sort_fn f ->
        it.expr it f;
        st.sorted <- true;
        List.iter (fun (_, a) -> it.expr it a) args
    | _ -> default_iterator.expr it e);
    st.sorted <- saved_sorted
  in
  let value_binding it vb =
    Suppress.with_attrs st.ctx vb.pvb_attributes @@ fun () ->
    default_iterator.value_binding it vb
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            Suppress.with_attrs st.ctx vb.pvb_attributes @@ fun () ->
            scan_mutable_global st vb.pvb_expr)
          vbs
    | _ -> ());
    default_iterator.structure_item it si
  in
  { default_iterator with expr; value_binding; structure_item }

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let lint_structure ?(rules = Rule.syntactic) ?(allowlist = Allowlist.empty) ?registry
    ~file structure =
  let rules = List.filter (fun r -> List.mem r Rule.syntactic) rules in
  Option.iter (fun t -> Suppress.note_checked t (List.map Rule.name rules)) registry;
  let enabled name = List.exists (fun r -> Rule.name r = name) rules in
  let ctx = Suppress.make_ctx ?registry ~enabled ~allowlist ~file () in
  let st = { file; ctx; sorted = false } in
  let it = iterator st in
  it.structure it structure;
  Suppress.findings ctx

let parse_lexbuf ~file lexbuf =
  Location.init lexbuf file;
  Parse.implementation lexbuf

let lint_source ?rules ?allowlist ?registry ~file source =
  match parse_lexbuf ~file (Lexing.from_string source) with
  | structure ->
      { findings = lint_structure ?rules ?allowlist ?registry ~file structure; errors = [] }
  | exception exn -> { findings = []; errors = [ (file, Printexc.to_string exn) ] }

let lint_file ?rules ?allowlist ?registry file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_lexbuf ~file (Lexing.from_channel ic))
  with
  | structure ->
      { findings = lint_structure ?rules ?allowlist ?registry ~file structure; errors = [] }
  | exception exn -> { findings = []; errors = [ (file, Printexc.to_string exn) ] }

let lint_files ?rules ?allowlist ?registry files =
  List.fold_left (fun acc f -> merge acc (lint_file ?rules ?allowlist ?registry f)) no_report files
