(* The domain-escape race detector.

   A task body handed to Exec.Pool (run_batch / init / map_array /
   map_list) runs concurrently on every domain of the pool. Any mutable
   value the body captures from its environment is therefore shared by
   the whole batch; if any task may write it, the batch races.

   The pass is interprocedural in two directions:

   - Sink discovery. The builtin sinks are the Pool entry points; a
     function that forwards one of its parameters into a sink position
     (directly or through further helpers) becomes a sink itself at
     that parameter. Computed as a fixpoint over the zone call graph,
     so `let go pool n body = Pool.run_batch pool n body` and its
     wrappers are all recognised.

   - Body resolution. At a sink call site the task argument may be a
     lambda literal, or a name bound by a local or structure-level let;
     named bodies are resolved through the definition table and their
     capture environment analysed at the call site.

   What is flagged: a captured value of mutable type (ref, array,
   bytes, Hashtbl/Buffer/Queue/Stack.t) that the body may write — via
   :=, incr, a known mutating stdlib call, a mutable-field assignment —
   or that it passes to a call we cannot resolve (conservative escape).
   A captured record is flagged only when the body assigns one of its
   mutable fields (usage-based; we do not expand type declarations).

   What is proven safe:
   - read-only captures: run_batch blocks the submitter until the batch
     drains and every task runs the same closure, so no-writer implies
     no-race;
   - shard-local arrays: when every access (read and write) to a
     captured array/bytes indexes it with exactly the task's own index
     parameter, slots are disjoint by construction (the Pool.init
     results pattern);
   - Atomic.t captures: the sanctioned cross-domain primitive.

   Known holes, on purpose: a body that receives the shared value as an
   argument rather than a capture; captures written only through an
   alias; mutable state reached through a captured closure. *)

open Typedtree

let rule_name = Rule.name Rule.Domain_escape

let builtin_sinks =
  [
    [ "Pool"; "run_batch" ];
    [ "Pool"; "init" ];
    [ "Pool"; "map_array" ];
    [ "Pool"; "map_list" ];
  ]

let is_builtin_sink segs =
  List.exists (fun s -> Callgraph.suffix_matches ~suffix:s segs) builtin_sinks

(* ------------------------------------------------------------------ *)
(* Sink-parameter fixpoint.                                            *)
(* ------------------------------------------------------------------ *)

(* def uid -> (param index -> chain of display names down to the pool) *)
type sinks = (string, (int, string list) Hashtbl.t) Hashtbl.t

let sink_table (sinks : sinks) uid =
  match Hashtbl.find_opt sinks uid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.add sinks uid tbl;
      tbl

let add_sink sinks (d : Callgraph.def) idx chain =
  let tbl = sink_table sinks d.uid in
  if Hashtbl.mem tbl idx then false
  else begin
    Hashtbl.add tbl idx chain;
    true
  end

let rec arrow_args ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> a :: arrow_args b
  | Types.Tpoly (ty, _) -> arrow_args ty
  | _ -> []

(* Seed: definitions that ARE the pool entry points. *)
let seed_sinks sinks (graph : Callgraph.t) =
  List.iter
    (fun (d : Callgraph.def) ->
      if d.toplevel && is_builtin_sink (Callgraph.segments_of_string d.key) then
        List.iteri
          (fun i ty -> if Callgraph.is_arrow ty then ignore (add_sink sinks d i [ d.key ]))
          (arrow_args d.full.exp_type))
    graph.defs

(* The task-body argument positions of a call, with the chain of
   functions the body will travel through to reach the pool. *)
let task_args sinks (graph : Callgraph.t) ~unit_name (c : Callgraph.call) =
  let positional = List.mapi (fun i (_, a) -> (i, a)) c.args in
  match Callgraph.resolve graph ~unit_name c.callee with
  | Some g -> (
      match Hashtbl.find_opt sinks g.uid with
      | Some tbl ->
          List.filter_map
            (fun (i, a) ->
              match (Hashtbl.find_opt tbl i, a) with
              | Some chain, Some a -> Some (a, chain)
              | _ -> None)
            positional
      | None -> [])
  | None ->
      let segs = Callgraph.normalize_path c.callee in
      if is_builtin_sink segs then
        List.filter_map
          (fun (_, a) ->
            match a with
            | Some a when Callgraph.is_arrow a.exp_type ->
                Some (a, [ Callgraph.display_path segs ])
            | _ -> None)
          positional
      else []

let param_index (d : Callgraph.def) id =
  let rec go i = function
    | [] -> None
    | p :: tl -> if Ident.same p id then Some i else go (i + 1) tl
  in
  go 0 d.params

let fixpoint sinks (graph : Callgraph.t) =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        List.iter
          (fun c ->
            List.iter
              (fun (arg, chain) ->
                match Callgraph.head_ident arg with
                | Some id -> (
                    match param_index d id with
                    | Some k ->
                        if add_sink sinks d k (d.key :: chain) then changed := true
                    | None -> ())
                | None -> ())
              (task_args sinks graph ~unit_name:d.unit_name c))
          (Callgraph.calls_in d.body))
      graph.defs
  done

(* ------------------------------------------------------------------ *)
(* Capture analysis of one task body.                                  *)
(* ------------------------------------------------------------------ *)

type usage =
  | Task_indexed of bool  (* array access at the task's own index; true = write *)
  | Read
  | Written of string
  | Escaped of string

let display segs =
  Callgraph.display_path (match segs with "Stdlib" :: tl -> tl | l -> l)

let indexed_access segs =
  match
    match segs with
    | [ "Stdlib"; m; f ] | [ m; f ] -> Some (m, f)
    | _ -> None
  with
  | Some (("Array" | "Bytes"), (("get" | "unsafe_get") as f)) -> Some (f, false)
  | Some (("Array" | "Bytes"), (("set" | "unsafe_set") as f)) -> Some (f, true)
  | _ -> None

(* Collect how the body uses each captured ident of interest. *)
let usages ~task_param ~interesting fn_expr =
  let tbl : (string, usage list ref) Hashtbl.t = Hashtbl.create 8 in
  let note id u =
    let k = Ident.unique_name id in
    if Hashtbl.mem interesting k then
      match Hashtbl.find_opt tbl k with
      | Some l -> l := u :: !l
      | None -> Hashtbl.add tbl k (ref [ u ])
  in
  let captured e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem interesting (Ident.unique_name id)
      ->
        Some id
    | _ -> None
  in
  let is_task_param e =
    match (task_param, e.exp_desc) with
    | Some p, Texp_ident (Path.Pident id, _, _) -> Ident.same p id
    | _ -> false
  in
  let rec expr it e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> note id Read
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let segs = Callgraph.normalize_path p in
        let visit_arg (_, a) =
          Option.iter (fun a -> if captured a = None then expr it a) a
        in
        match (indexed_access segs, args) with
        | Some (fname, write), (_, Some arr) :: (_, Some idx) :: rest
          when captured arr <> None ->
            let id = Option.get (captured arr) in
            if is_task_param idx then note id (Task_indexed write)
            else if write then note id (Written (Printf.sprintf "%s at a foreign index" fname))
            else note id Read;
            if captured idx = None then expr it idx;
            List.iter visit_arg rest
        | _ ->
            List.iter
              (fun (_, a) ->
                match Option.bind a captured with
                | Some id ->
                    if Callgraph.mutating_fn segs then note id (Written (display segs))
                    else if Callgraph.reading_fn segs then note id Read
                    else note id (Escaped (display segs))
                | None -> ())
              args;
            List.iter visit_arg args)
    | Texp_setfield (tgt, _, lbl, rhs) ->
        (match captured tgt with
        | Some id -> note id (Written ("<- on mutable field " ^ lbl.Types.lbl_name))
        | None -> expr it tgt);
        expr it rhs
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it fn_expr;
  tbl

let first_map f l = List.find_map f l

let verdict ~tyname us =
  let writes =
    first_map
      (function
        | Written w -> Some ("writes it via " ^ w)
        | Escaped f ->
            Some ("passes it to " ^ f ^ ", which the linter cannot prove read-only")
        | Task_indexed true ->
            Some "writes it at the task index while also touching other indices"
        | _ -> None)
      us
  in
  match writes with
  | None -> None (* read-only capture: the batch has no writer *)
  | Some why ->
      let shard_local =
        (tyname = "array" || tyname = "bytes")
        && List.for_all (function Task_indexed _ -> true | _ -> false) us
      in
      if shard_local then None else Some why

let analyze_body ctx (graph : Callgraph.t) ~enclosing_attrs ~report_loc ~chain fn_expr =
  let params, _ = Callgraph.peel_params fn_expr in
  let task_param = match params with p :: _ -> Some p | [] -> None in
  let free = Callgraph.free_ident_occurrences fn_expr in
  (* Distinct captured idents with a representative occurrence. *)
  let seen = Hashtbl.create 8 in
  let captures =
    List.filter
      (fun (id, (e : expression)) ->
        let k = Ident.unique_name id in
        (not (Hashtbl.mem seen k))
        && begin
             Hashtbl.add seen k ();
             (* Functions and zone definitions are not data captures. *)
             (not (Callgraph.is_arrow e.exp_type))
             && Hashtbl.find_opt graph.by_uid k = None
           end)
      free
  in
  let interesting = Hashtbl.create 8 in
  List.iter (fun (id, _) -> Hashtbl.replace interesting (Ident.unique_name id) ()) captures;
  let tbl = usages ~task_param ~interesting fn_expr in
  List.iter
    (fun (id, (e : expression)) ->
      let tyname =
        match Option.bind (Callgraph.type_head e.exp_type) Callgraph.mutable_type_name with
        | Some n -> n
        | None -> "" (* records etc.: flagged only via setfield below *)
      in
      let us =
        match Hashtbl.find_opt tbl (Ident.unique_name id) with
        | Some l -> List.rev !l
        | None -> []
      in
      let why =
        if tyname <> "" then verdict ~tyname us
        else
          (* not a known mutable type: flag only a direct mutable-field
             assignment observed in the body *)
          first_map
            (function
              | Written w when String.length w > 0 && w.[0] = '<' ->
                  Some ("writes it via " ^ w)
              | _ -> None)
            us
      in
      match why with
      | None -> ()
      | Some why ->
          let shown = if tyname = "" then "mutable record" else tyname in
          Suppress.with_attrs ctx enclosing_attrs @@ fun () ->
          Suppress.with_attrs ctx fn_expr.exp_attributes @@ fun () ->
          Suppress.emit ctx ~loc:report_loc ~rule:rule_name
            (Printf.sprintf
               "task body reaching %s captures `%s` (%s) and %s; every domain in the \
                batch shares it — make it shard-local (fresh per task, or indexed only \
                by the task's own index) or reduce after the batch"
               (String.concat " -> " chain) (Ident.name id) shown why))
    captures

(* ------------------------------------------------------------------ *)
(* Driving the detection over the zone.                                *)
(* ------------------------------------------------------------------ *)

let run ?registry ?(allowlist = Allowlist.empty) (graph : Callgraph.t) =
  Option.iter (fun t -> Suppress.note_checked t [ rule_name ]) registry;
  let sinks : sinks = Hashtbl.create 32 in
  seed_sinks sinks graph;
  fixpoint sinks graph;
  let ctxs = Hashtbl.create 8 in
  let ctx_for file =
    match Hashtbl.find_opt ctxs file with
    | Some c -> c
    | None ->
        let c =
          Suppress.make_ctx ?registry ~enabled:(fun _ -> true) ~allowlist ~file ()
        in
        Hashtbl.add ctxs file c;
        c
  in
  List.iter
    (fun (d : Callgraph.def) ->
      if d.toplevel then
        let ctx = ctx_for d.source in
        List.iter
          (fun (c : Callgraph.call) ->
            List.iter
              (fun (arg, chain) ->
                match arg.exp_desc with
                | Texp_function _ ->
                    analyze_body ctx graph ~enclosing_attrs:d.attrs
                      ~report_loc:arg.exp_loc ~chain arg
                | Texp_ident (p, _, _) -> (
                    match p with
                    | Path.Pident id when param_index d id <> None ->
                        () (* forwarded parameter: the fixpoint moved the
                              obligation to this function's callers *)
                    | _ -> (
                        match Callgraph.resolve graph ~unit_name:d.unit_name p with
                        | Some body_def ->
                            analyze_body ctx graph ~enclosing_attrs:d.attrs
                              ~report_loc:c.call_loc ~chain body_def.full
                        | None -> ()))
                | _ -> () (* partial application etc.: out of scope *))
              (task_args sinks graph ~unit_name:d.unit_name c))
          (Callgraph.calls_in d.body))
    graph.defs;
  Hashtbl.fold (fun _ c acc -> Suppress.findings c @ acc) ctxs []
  |> List.sort_uniq Finding.compare
