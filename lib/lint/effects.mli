(** Transitive effect inference (typed; reports under the existing
    [ambient-effects] / [io-in-library] / [mutable-global] ids).

    Computes a per-function effect summary — ambient state
    ([Random.*], [Unix.*], [Sys.time], [exit]), library IO, and
    non-local mutation — and propagates it over the zone call graph to
    a fixpoint, including through higher-order references like
    [List.iter f xs].

    Suppressed sources ([[@lint.allow]] at the site, allowlisted files,
    [sim/rng.ml]) do not seed and therefore do not taint callers. Only
    transitively-acquired effects are reported (at the defining
    binding, naming the callee chain): direct violations are the
    syntactic pass's job, so nothing is reported twice. *)

val run :
  ?registry:Suppress.t -> ?allowlist:Allowlist.t -> Callgraph.t -> Finding.t list
