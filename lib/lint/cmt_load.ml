(* Loading typed ASTs for the interprocedural passes.

   Two sources:
   - [.cmt] artifacts under [_build] (the normal driver path: `dune
     build @lint` depends on `@check`, which produces a .cmt per
     module, then runs `lint --typed` from the build directory);
   - in-process typechecking of a source string (the test path:
     fixtures are typechecked directly against the current switch's
     stdlib, no dune involved).

   A unit is one compilation unit: its module name (e.g. "Sim__Wheel"),
   the source file it came from, and its typed structure. *)

type unit_info = {
  modname : string;  (* compilation-unit name, e.g. "Sim__Wheel" *)
  source : string;   (* source path, for findings *)
  str : Typedtree.structure;
}

type result = { units : unit_info list; errors : (string * string) list }

let read_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_modname; cmt_sourcefile; _ } ->
      let source = Option.value cmt_sourcefile ~default:path in
      Ok (Some { modname = cmt_modname; source; str })
  | _ -> Ok None (* interface-only or partial cmt: nothing to analyse *)
  | exception exn -> Error (Printexc.to_string exn)

(* dune's module-alias shim (lib.ml-gen) is generated, not ours. *)
let generated_source u = Filename.check_suffix u.source ".ml-gen"

let scan_dir acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | names ->
      Array.sort String.compare names;
      Array.fold_left
        (fun (units, errors) name ->
          if Filename.check_suffix name ".cmt" then
            match read_cmt (Filename.concat dir name) with
            | Ok (Some u) when not (generated_source u) -> (u :: units, errors)
            | Ok _ -> (units, errors)
            | Error msg -> (units, (Filename.concat dir name, msg) :: errors)
          else (units, errors))
        acc names

(* A dune library lib/<dir>/ keeps its artifacts in
   lib/<dir>/.<libname>.objs/byte/<Unit>.cmt. We scan every *.objs
   under the given roots so a library whose name differs from its
   directory still resolves. *)
let objs_dirs root =
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             if Filename.check_suffix n ".objs" then
               let byte = Filename.concat (Filename.concat root n) "byte" in
               if Sys.file_exists byte && Sys.is_directory byte then Some byte else None
             else None)
      |> List.sort String.compare

let load_dirs dirs =
  let units, errors =
    List.fold_left
      (fun acc dir -> List.fold_left scan_dir acc (objs_dirs dir))
      ([], []) dirs
  in
  {
    units = List.sort (fun a b -> String.compare a.modname b.modname) units;
    errors = List.rev errors;
  }

(* ------------------------------------------------------------------ *)
(* In-process typechecking, for fixtures.                              *)
(* ------------------------------------------------------------------ *)

let env = ref None

let initial_env () =
  match !env with
  | Some e -> e
  | None ->
      (* stdlib sublibraries (unix, ...) trip the 5.x auto-include
         deprecation alert when referenced without -I; fixtures are
         allowed to mention them, so keep the output clean *)
      Warnings.parse_alert_option "-all";
      Compmisc.init_path ();
      let e = Compmisc.initial_env () in
      env := Some e;
      e

let typecheck_source ~file source =
  let e = initial_env () in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match
    let past = Parse.implementation lexbuf in
    Typemod.type_structure e past
  with
  | str, _, _, _, _ ->
      let modname =
        String.capitalize_ascii Filename.(remove_extension (basename file))
      in
      Ok { modname; source = file; str }
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> Printexc.to_string exn
      in
      Error msg
