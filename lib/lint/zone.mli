(** The deterministic zone — the directories whose [.ml] files the pass
    scans by default. *)

val default_dirs : string list
(** [lib/sim], [lib/core], [lib/net], [lib/detector], [lib/graph],
    [lib/harness], [lib/monitor], [lib/stabilize], [lib/baselines],
    [lib/mcheck], [lib/exec] and [lib/stats] — everything a simulation
    executes, relative to the repository root. *)

val files : ?dirs:string list -> unit -> string list
(** The [.ml] files directly under each directory, sorted within each
    directory. Missing directories contribute nothing ([Sys_error] is
    absorbed) so the linter can run from partial checkouts. *)
