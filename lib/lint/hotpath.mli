(** The hot-path allocation guard (rule [hot-path-alloc], typed).

    Flags syntactically evident heap allocations — closures, tuples,
    records, array literals, argument-carrying constructors (including
    list cons), polymorphic variants, lazy thunks, and calls to known
    allocating stdlib functions — inside functions annotated
    [[@lint.hot]]: the per-event paths behind the BENCH_scale.json
    allocation gate.

    Not seen: float boxing, partial-application closures, allocations
    inside callees (annotate the callee too). Justify a deliberate
    allocation in place with [[@lint.allow "hot-path-alloc"]]. *)

val run :
  ?registry:Suppress.t -> ?allowlist:Allowlist.t -> Callgraph.t -> Finding.t list
