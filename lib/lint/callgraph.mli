(** Shared typed-AST substrate for the interprocedural passes:
    normalization across dune's [Lib__Module] mangling, the zone-wide
    definition table, free-variable / call extraction, and the mutation
    and allocation classifiers {!Escape}, {!Effects} and {!Hotpath}
    agree on. *)

val split_dunder : string -> string list
(** ["Sim__Wheel"] -> [["Sim"; "Wheel"]]; single underscores survive. *)

val normalize_path : Path.t -> string list
val segments_of_string : string -> string list
val key_of_segments : string list -> string
val display_path : string list -> string

val suffix_matches : suffix:string list -> string list -> bool
(** Dot-boundary suffix: [["Pool"; "run_batch"]] matches
    [["Exec"; "Pool"; "run_batch"]]. *)

val type_head : Types.type_expr -> string list option
(** Normalized path of the outermost type constructor, if any. *)

val is_arrow : Types.type_expr -> bool

val mutable_type_name : string list -> string option
(** [ref] / [array] / [bytes] / [Hashtbl.t] / [Buffer.t] / [Queue.t] /
    [Stack.t] — type constructors whose values a parallel batch can
    race on. [Atomic.t] is deliberately exempt. *)

val mutating_fn : string list -> bool
(** Stdlib calls that write through an argument ([:=], [Array.set],
    [Hashtbl.replace], ...). Coarse: any argument position counts. *)

val reading_fn : string list -> bool
(** Stdlib calls that only read their arguments ([!], [Array.get], ...). *)

val allocating_fn : string list -> string option
(** Stdlib calls that allocate on every call ([ref], [Array.make],
    [Printf.sprintf], [(@)], ...), with a display name. *)

type def = {
  key : string;  (** normalized dotted path, e.g. ["Sim.Wheel.insert"] *)
  unit_name : string;
  uid : string;  (** unit-qualified ident stamp *)
  name : string;
  params : Ident.t list;  (** peeled [fun]-chain parameters *)
  body : Typedtree.expression;  (** after peeling *)
  full : Typedtree.expression;  (** the original bound expression *)
  attrs : Typedtree.attributes;
  loc : Location.t;
  source : string;
  toplevel : bool;  (** structure-level; [false] for local [let]s *)
}

type t = {
  defs : def list;  (** toplevel defs then local lets, traversal order *)
  by_key : (string, def) Hashtbl.t;  (** toplevel only *)
  by_uid : (string, def) Hashtbl.t;  (** toplevel + local lets *)
}

val peel_params : Typedtree.expression -> Ident.t list * Typedtree.expression
(** [fun x -> fun y -> body] ==> [([x; y], body)]; stops at a
    multi-case [function]. *)

val build : Cmt_load.unit_info list -> t
(** Collect every named binding at structure level (descending through
    nested modules, [module ... = struct], constraints and functor
    bodies) plus function-valued local lets (by uid only). *)

val resolve : t -> unit_name:string -> Path.t -> def option
(** Resolve a referenced path: local idents by per-unit stamp, global
    paths by exact normalized key, else unique dot-boundary suffix
    match in either direction. *)

val uid_of : unit_name:string -> Ident.t -> string

val free_ident_occurrences :
  Typedtree.expression -> (Ident.t * Typedtree.expression) list
(** [Texp_ident (Pident id)] occurrences whose binder is outside the
    expression — the capture environment of a closure. Exact within a
    unit (stamps are unique per unit). *)

type call = {
  callee : Path.t;
  args : (Asttypes.arg_label * Typedtree.expression option) list;
  call_loc : Location.t;
}

val calls_in : Typedtree.expression -> call list
(** Applications whose head is an identifier, outermost-first. *)

val ident_refs : Typedtree.expression -> (Path.t * Location.t) list
(** Every identifier reference, for effect propagation through
    higher-order use. *)

val head_ident : Typedtree.expression -> Ident.t option
