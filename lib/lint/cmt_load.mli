(** Typed-AST loading for the interprocedural passes: [.cmt] artifacts
    from [_build] (driver path) or in-process typechecking of fixture
    source (test path). *)

type unit_info = {
  modname : string;  (** compilation-unit name, e.g. ["Sim__Wheel"] *)
  source : string;  (** source path, used for findings *)
  str : Typedtree.structure;
}

type result = {
  units : unit_info list;  (** sorted by [modname] *)
  errors : (string * string) list;  (** (cmt path, unreadable reason) *)
}

val load_dirs : string list -> result
(** Scan each directory's [.*.objs/byte] subdirectories for [.cmt]
    implementation artifacts, e.g. [load_dirs ["lib/sim"; "lib/net"]]
    from the [_build/default] working directory that `dune build @lint`
    provides. Interface-only cmts and dune's generated module-alias
    shims ([.ml-gen]) are skipped. *)

val typecheck_source : file:string -> string -> (unit_info, string) Stdlib.result
(** Parse and typecheck [source] against the current switch's stdlib
    (no dune, no build dir). For fixtures: keep them self-contained —
    references to repo libraries will not resolve. *)
