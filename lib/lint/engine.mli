(** The syntactic pass: parse an [.ml] with compiler-libs, walk the
    Parsetree with [Ast_iterator], apply the syntactic {!Rule} subset.
    (The typed rules — domain-escape, hot-path-alloc, transitive
    effects — live in {!Escape}, {!Hotpath} and {!Effects}, driven over
    [.cmt] artifacts by [bin/lint.exe --typed].)

    Heuristics (the pass is syntactic — no type information):
    - {b nondet-iteration} recognises a fold piped straight into
      [List.sort] (via [|>], [@@] or direct application) as sanitized;
      anything else fires and must be sorted, restructured, or annotated.
    - {b physical-equality} skips comparisons where either operand is an
      integer or character literal (the idiomatic immediate-value cases).
    - {b ambient-effects} exempts [sim/rng.ml], the sanctioned wrapper.
    - {b mutable-global} only looks at structure-level bindings and stops
      scanning at function boundaries.

    Site suppression: attach [[@lint.allow "rule-id"]] to the offending
    expression or [[@@lint.allow "rule-id"]] to its binding; several ids
    may be comma-separated, and a bare [[@lint.allow]] allows all rules.
    Pass a [registry] to record every suppression site and which ones
    fired, for [unused-allow] hygiene reporting. *)

type report = {
  findings : Finding.t list;  (** sorted by {!Finding.compare} per file *)
  errors : (string * string) list;  (** (file, unreadable / syntax error) *)
}

val lint_file :
  ?rules:Rule.id list -> ?allowlist:Allowlist.t -> ?registry:Suppress.t -> string -> report
(** Lint one file. [rules] defaults to {!Rule.syntactic} (non-syntactic
    ids in the list are ignored). A file that cannot be read or parsed
    yields an entry in [errors], never an exception. *)

val lint_files :
  ?rules:Rule.id list ->
  ?allowlist:Allowlist.t ->
  ?registry:Suppress.t ->
  string list ->
  report
(** Lint files in order; findings concatenate in input order. *)

val lint_source :
  ?rules:Rule.id list ->
  ?allowlist:Allowlist.t ->
  ?registry:Suppress.t ->
  file:string ->
  string ->
  report
(** Lint source text directly (for tests); [file] is used for locations
    and allowlist matching. *)

(** {2 Classifiers shared with the typed passes}

    Both passes must agree on what counts as an ambient effect or
    library IO; {!Effects} reuses these over normalized typed paths. *)

val ambient_effect : string list -> string option
val io_effect : string list -> string option

val random_exempt : string -> bool
(** [sim/rng.ml], the sanctioned [Random] wrapper. *)
