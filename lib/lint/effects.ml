(* Transitive effect inference.

   The syntactic pass flags direct uses of ambient state (Random.*,
   Unix.*, Sys.time, exit), library IO and toplevel-mutable writes at
   the use site. This pass gives each zone function an effect summary —
   which of those three rule classes its body can reach — and
   propagates summaries over the call graph to a fixpoint, so a
   function that reaches a violation only through helpers is reported
   too, at its own binding, under the same rule ids.

   Two deliberate asymmetries keep the output useful:

   - Suppressed sources do not seed. An effect silenced at its site by
     [@lint.allow], by the allowlist (the designated report printers),
     or by the sim/rng.ml exemption is sanctioned; sanctioned effects
     must not taint every caller.

   - Only transitively-acquired effects are reported. If a function
     calls Unix.gettimeofday directly, the syntactic pass already
     points at that exact expression; re-reporting it here would
     duplicate every finding. A function is flagged only when its own
     body is clean but some callee chain is not, and the message names
     the chain. *)

open Typedtree

let ambient_rule = Rule.name Rule.Ambient_effects
let io_rule = Rule.name Rule.Io_in_library
let mutable_rule = Rule.name Rule.Mutable_global

let checked_rules = [ ambient_rule; io_rule; mutable_rule ]

let strip_stdlib = function "Stdlib" :: tl -> tl | segs -> segs

(* effect source: which rule, and a display name for the message *)
type source = { rule : string; what : string }

let classify segs =
  let segs = strip_stdlib segs in
  match Engine.ambient_effect segs with
  | Some what -> Some { rule = ambient_rule; what }
  | None -> (
      match Engine.io_effect segs with
      | Some what -> Some { rule = io_rule; what } | None -> None)

(* ------------------------------------------------------------------ *)
(* Own effects of a definition.                                        *)
(* ------------------------------------------------------------------ *)

(* Scope-sensitive scan: [@lint.allow] attributes encountered on the
   way down suppress matching sources (and are recorded in the
   registry); allowlisted files and sim/rng.ml do not seed at all. *)
let own_effects ?registry ~allowlist (graph : Callgraph.t) (d : Callgraph.def) =
  let out = ref [] in
  let free =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (id, _) -> Hashtbl.replace tbl (Ident.unique_name id) ())
      (Callgraph.free_ident_occurrences d.full);
    tbl
  in
  (* Scope entries carry their registry site so a suppression that
     stops a seed also counts as a used [@lint.allow]. *)
  let entries_of_attrs attrs =
    List.concat_map
      (fun (a : Parsetree.attribute) ->
        match Suppress.rules_of_attr a with
        | Some rules ->
            let site =
              Option.map
                (fun t -> Suppress.register t ~file:d.source ~loc:a.attr_loc ~rules)
                registry
            in
            List.map (fun r -> (r, site)) rules
        | None -> [])
      attrs
  in
  let allowed = ref (entries_of_attrs d.attrs) in
  let suppressed rule =
    match List.filter (fun (r, _) -> r = rule || r = "*") !allowed with
    | [] -> false
    | hits ->
        List.iter (fun (_, s) -> Option.iter Suppress.mark_used s) hits;
        true
  in
  let note rule what =
    if
      (not (suppressed rule))
      && not (Allowlist.allows allowlist ~rule ~file:d.source)
    then if not (List.exists (fun s -> s.rule = rule) !out) then out := { rule; what } :: !out
  in
  (* A mutation whose target lives outside this definition: a module
     path, or a local ident that is free in the whole definition. *)
  let nonlocal_target (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem free (Ident.unique_name id)
    | Texp_ident (_, _, _) -> true
    | _ -> false
  in
  let random_ok = Engine.random_exempt d.source in
  let expr it e =
    let saved = !allowed in
    allowed := entries_of_attrs e.exp_attributes @ saved;
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match classify (Callgraph.normalize_path p) with
        | Some { rule; what } when not (rule = ambient_rule && random_ok && String.length what >= 6 && String.sub what 0 6 = "Random") ->
            note rule what
        | _ -> ())
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let segs = strip_stdlib (Callgraph.normalize_path p) in
        if Callgraph.mutating_fn segs then
          (* the mutated value is the first mutable-typed argument
             (Array.sort's is the second: the comparator comes first) *)
          let target =
            List.find_map
              (fun (_, a) ->
                match a with
                | Some a
                  when Option.bind (Callgraph.type_head a.exp_type)
                         Callgraph.mutable_type_name
                       <> None ->
                    Some a
                | _ -> None)
              args
          in
          match target with
          | Some tgt when nonlocal_target tgt ->
              note mutable_rule
                (Printf.sprintf "%s on non-local mutable state"
                   (Callgraph.display_path segs))
          | _ -> ())
    | Texp_setfield (tgt, _, lbl, _) ->
        if nonlocal_target tgt then
          note mutable_rule
            (Printf.sprintf "assignment to mutable field %s of non-local state"
               lbl.Types.lbl_name)
    | _ -> ());
    Tast_iterator.default_iterator.expr it e;
    allowed := saved
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it d.full;
  ignore graph;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Fixpoint over the call graph.                                       *)
(* ------------------------------------------------------------------ *)

type acquired = { src : source; via : string list (* callee chain, [] = own *) }

let run ?registry ?(allowlist = Allowlist.empty) (graph : Callgraph.t) =
  Option.iter (fun t -> Suppress.note_checked t checked_rules) registry;
  (* uid -> rule -> acquired *)
  let eff : (string, (string, acquired) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let table uid =
    match Hashtbl.find_opt eff uid with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.add eff uid t;
        t
  in
  (* Local lets are not independent functions here: their bodies are
     textually part of the enclosing toplevel definition, so the
     enclosing def's own scan already covers them, and analysing them
     in isolation would mistake the enclosing function's locals for
     non-local state. The effect graph is toplevel-only. *)
  let toplevel = List.filter (fun (d : Callgraph.def) -> d.toplevel) graph.defs in
  let own : (string, source list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (d : Callgraph.def) ->
      let sources = own_effects ?registry ~allowlist graph d in
      Hashtbl.replace own d.uid sources;
      let t = table d.uid in
      List.iter (fun s -> Hashtbl.replace t s.rule { src = s; via = [] }) sources)
    toplevel;
  (* Resolved callees of each def, deduplicated, cached once. *)
  let callees =
    List.map
      (fun (d : Callgraph.def) ->
        let seen = Hashtbl.create 8 in
        let cs =
          List.filter_map
            (fun (p, _) ->
              match Callgraph.resolve graph ~unit_name:d.unit_name p with
              | Some g
                when g.toplevel && g.uid <> d.uid && not (Hashtbl.mem seen g.uid) ->
                  Hashtbl.add seen g.uid ();
                  Some g
              | _ -> None)
            (Callgraph.ident_refs d.body)
        in
        (d, cs))
      toplevel
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ((d : Callgraph.def), cs) ->
        let t = table d.uid in
        List.iter
          (fun (g : Callgraph.def) ->
            Hashtbl.iter
              (fun rule (a : acquired) ->
                if not (Hashtbl.mem t rule) then begin
                  Hashtbl.add t rule { src = a.src; via = g.key :: a.via };
                  changed := true
                end)
              (table g.uid))
          cs)
      callees
  done;
  (* Report transitively-acquired effects at the defining binding. *)
  let ctxs = Hashtbl.create 8 in
  let ctx_for file =
    match Hashtbl.find_opt ctxs file with
    | Some c -> c
    | None ->
        let c =
          Suppress.make_ctx ?registry ~enabled:(fun _ -> true) ~allowlist ~file ()
        in
        Hashtbl.add ctxs file c;
        c
  in
  List.iter
    (fun (d : Callgraph.def) ->
      if d.toplevel then
        let ctx = ctx_for d.source in
        let own_rules =
          match Hashtbl.find_opt own d.uid with Some l -> List.map (fun s -> s.rule) l | None -> []
        in
        Hashtbl.fold (fun rule a acc -> (rule, a) :: acc) (table d.uid) []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (rule, a) ->
               if a.via <> [] && not (List.mem rule own_rules) then
                 Suppress.with_attrs ctx d.attrs @@ fun () ->
                 Suppress.emit ctx ~loc:d.loc ~rule
                   (Printf.sprintf
                      "%s reaches %s through %s; the violation is inherited by every \
                       caller — push the effect to the edge of the zone or thread the \
                       dependency explicitly"
                      d.name a.src.what
                      (String.concat " -> " a.via))))
    graph.defs;
  Hashtbl.fold (fun _ c acc -> Suppress.findings c @ acc) ctxs []
  |> List.sort_uniq Finding.compare
