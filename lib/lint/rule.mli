(** The rule set of the determinism & domain-safety pass. *)

type id =
  | Nondet_iteration   (** Hashtbl.iter/fold escaping into ordered output *)
  | Ambient_effects    (** Random.* / Unix.* / Sys.time / exit in the zone *)
  | Io_in_library      (** printf / print_* outside bin/, bench/ and designated printers *)
  | Physical_equality  (** == / != on non-int operands *)
  | Mutable_global     (** toplevel mutable state shared across domains *)
  | Exception_swallow  (** [with _ ->] handlers *)
  | Domain_escape      (** mutable capture racing across an Exec.Pool batch *)
  | Hot_path_alloc     (** allocation inside a [[@lint.hot]] function *)
  | Stale_allowlist    (** lint.allow entry that suppressed nothing *)
  | Unused_allow       (** [[@lint.allow]] attribute that suppressed nothing *)

val all : id list

val syntactic : id list
(** Rules the Parsetree walker ({!Engine}) checks; the historical set. *)

val typed_only : id list
(** Rules that exist only in the typed (.cmt) passes. The typed effect
    pass additionally re-emits {!Ambient_effects} / {!Io_in_library} /
    {!Mutable_global} for transitive violations. *)

val meta : id list
(** Hygiene rules emitted by the driver over the suppression ledger. *)

val name : id -> string
val of_name : string -> id option

val explanation : id -> string
(** One-paragraph rationale, shown by [lint --list-rules]. *)
