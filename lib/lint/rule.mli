(** The rule set of the determinism & domain-safety pass. *)

type id =
  | Nondet_iteration   (** Hashtbl.iter/fold escaping into ordered output *)
  | Ambient_effects    (** Random.* / Unix.* / Sys.time / exit in the zone *)
  | Io_in_library      (** printf / print_* outside bin/, bench/ and designated printers *)
  | Physical_equality  (** == / != on non-int operands *)
  | Mutable_global     (** toplevel mutable state shared across domains *)
  | Exception_swallow  (** [with _ ->] handlers *)

val all : id list
val name : id -> string
val of_name : string -> id option

val explanation : id -> string
(** One-paragraph rationale, shown by [lint --list-rules]. *)
