type entry = { rule : string; path : string } (* rule = "*" allows every rule *)
type t = entry list

let empty = []

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let of_list entries = List.map (fun (rule, path) -> { rule; path = normalize path }) entries

let parse_line ~file ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ rule; path ] -> Some { rule; path = normalize path }
  | _ ->
      invalid_arg
        (Printf.sprintf "%s:%d: expected `<rule-id|*> <path>`, got %S" file lineno line)

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | line -> (
            match parse_line ~file ~lineno line with
            | Some e -> loop (lineno + 1) (e :: acc)
            | None -> loop (lineno + 1) acc)
        | exception End_of_file -> List.rev acc
      in
      loop 1 [])

let path_matches ~entry ~file =
  let file = normalize file in
  String.equal entry file
  ||
  let suffix = "/" ^ entry in
  let lf = String.length file and ls = String.length suffix in
  lf > ls && String.sub file (lf - ls) ls = suffix

let allows t ~rule ~file =
  List.exists
    (fun e -> (e.rule = "*" || e.rule = rule) && path_matches ~entry:e.path ~file)
    t
