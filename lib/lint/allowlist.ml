type entry = {
  rule : string; (* "*" allows every rule *)
  path : string;
  line : int; (* line in the allowlist file; 0 for of_list entries *)
  mutable used : bool; (* suppressed at least one finding this run *)
}

type t = entry list

let empty = []

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let of_list entries =
  List.map (fun (rule, path) -> { rule; path = normalize path; line = 0; used = false }) entries

let parse_line ~file ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ rule; path ] -> Some { rule; path = normalize path; line = lineno; used = false }
  | _ ->
      invalid_arg
        (Printf.sprintf "%s:%d: expected `<rule-id|*> <path>`, got %S" file lineno line)

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | line -> (
            match parse_line ~file ~lineno line with
            | Some e -> loop (lineno + 1) (e :: acc)
            | None -> loop (lineno + 1) acc)
        | exception End_of_file -> List.rev acc
      in
      loop 1 [])

let path_matches_entry ~entry ~file =
  let file = normalize file in
  String.equal entry file
  ||
  let suffix = "/" ^ entry in
  let lf = String.length file and ls = String.length suffix in
  lf > ls && String.sub file (lf - ls) ls = suffix

let path_matches ~entry ~file = path_matches_entry ~entry:entry.path ~file

let allows t ~rule ~file =
  (* Mark every matching entry used, not just the first: a redundant
     duplicate must not be reported stale because its twin won the
     lookup. *)
  List.fold_left
    (fun acc e ->
      if (e.rule = "*" || e.rule = rule) && path_matches ~entry:e ~file then begin
        e.used <- true;
        true
      end
      else acc)
    false t

let entries t = t

let unused t = List.filter (fun e -> not e.used) t
