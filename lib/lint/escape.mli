(** The domain-escape race detector (rule [domain-escape], typed).

    Finds task bodies reaching [Exec.Pool.run_batch] / [init] /
    [map_array] / [map_list] — directly or through functions that
    forward a parameter into a sink position (a fixpoint over the zone
    call graph) — and flags captured mutable state the body may write.

    Proven safe and not flagged: read-only captures (the submitter
    blocks for the batch; no writer, no race), arrays/bytes accessed
    only at the task's own index parameter (disjoint shards), and
    [Atomic.t]. A captured record is flagged only when the body assigns
    one of its mutable fields.

    Known holes: shared state received as an argument rather than a
    capture, writes through an alias, and mutable state reached through
    a captured closure. *)

val run :
  ?registry:Suppress.t -> ?allowlist:Allowlist.t -> Callgraph.t -> Finding.t list
(** Findings sorted by {!Finding.compare}; suppression via
    [[@lint.allow "domain-escape"]] on the closure or its binding, or
    the allowlist. *)
