(* The deterministic zone: every library that runs inside a simulation,
   batch or model-checking pass, and must therefore be a pure function of
   (scenario, seed). lib/stats is included because its tables/figures are
   the ordered output the other rules protect; its two stdout printers
   are allowlisted. lib/lint itself is host-side tooling and stays out.

   Directory granularity means new modules are covered automatically:
   the timing-wheel queue (lib/sim/wheel.ml) and the scale-free
   generator (lib/graph/topology.ml) fall under lib/sim and lib/graph —
   both must stay free of wall-clock, global RNG and unordered
   iteration, since either can silently break heap/wheel trace
   equality. bench/ stays out on purpose: it measures wall-clock. *)
let default_dirs =
  [
    "lib/obs";
    "lib/sim";
    "lib/core";
    "lib/net";
    "lib/detector";
    "lib/graph";
    "lib/harness";
    "lib/monitor";
    "lib/stabilize";
    "lib/baselines";
    "lib/mcheck";
    "lib/exec";
    "lib/stats";
    "lib/fuzz";
  ]

let is_ml f = Filename.check_suffix f ".ml"

let ml_files_in dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter is_ml
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
  | exception Sys_error _ -> []

let files ?(dirs = default_dirs) () = List.concat_map ml_files_in dirs
