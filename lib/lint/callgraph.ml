(* Shared typed-AST substrate for the interprocedural passes: path
   normalization across dune's module mangling, the per-zone function
   definition table, free-variable and call extraction, and the
   mutation / allocation classifiers Escape, Effects and Hotpath agree
   on.

   Normalization: dune compiles lib/sim/wheel.ml as the unit
   [Sim__Wheel], so the typed path of [Sim.Wheel.insert] seen from
   another library is [Exec__...]-style mangled. Every path is reduced
   to dot-separated segments with ["__"] treated as a module separator,
   so ["Sim__Wheel.insert"] and ["Sim.Wheel.insert"] are the same key. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Paths and normalization.                                            *)
(* ------------------------------------------------------------------ *)

(* Split on "__" (dune's module separator) while preserving single
   underscores: "Sim__Wheel" -> ["Sim"; "Wheel"], "run_batch" stays. *)
let split_dunder s =
  let n = String.length s in
  let rec go start i acc =
    if i + 1 >= n then String.sub s start (n - start) :: acc
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [] else List.rev (go 0 0 []) |> List.filter (fun x -> x <> "")

let rec raw_segments = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_segments p @ [ s ]
  | Path.Papply (p, _) -> raw_segments p
  | Path.Pextra_ty (p, _) -> raw_segments p

let normalize_path p = List.concat_map split_dunder (raw_segments p)

let segments_of_string s =
  String.split_on_char '.' s |> List.concat_map split_dunder

let key_of_segments = String.concat "."

let rec last2 = function
  | [] -> None
  | [ a ] -> Some ("", a)
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last2 tl

let suffix_matches ~suffix segs =
  let ls = List.length suffix and lg = List.length segs in
  ls <= lg
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (lg - ls) segs = suffix

let display_path segs = key_of_segments segs

(* ------------------------------------------------------------------ *)
(* Type classifiers.                                                   *)
(* ------------------------------------------------------------------ *)

let rec type_head ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (normalize_path p)
  | Types.Tpoly (ty, _) -> type_head ty
  | _ -> None

let is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (ty, _) -> (
      match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false)
  | _ -> false

(* Type constructors whose values carry mutable cells a parallel batch
   can race on. Atomic.t is exempt: it is the sanctioned cross-domain
   primitive. Mutable record fields are caught usage-based (setfield in
   the closure body), not by type inspection. *)
let mutable_type_name segs =
  match last2 segs with
  | Some (_, "ref") -> Some "ref"
  | Some (_, "array") -> Some "array"
  | Some (_, "bytes") -> Some "bytes"
  | Some ((("Hashtbl" | "Buffer" | "Queue" | "Stack") as m), "t") -> Some (m ^ ".t")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Mutation / allocation classifiers.                                  *)
(* ------------------------------------------------------------------ *)

(* Applications that write through one of their arguments. Coarse on
   purpose: a captured mutable value passed at any position of one of
   these counts as written (Array.blit reads src and writes dst; we do
   not distinguish). *)
let mutating_fn segs =
  match last2 segs with
  | Some (_, (":=" | "incr" | "decr")) -> true
  | Some ("Array", ("set" | "unsafe_set" | "fill" | "blit" | "sort" | "fast_sort" | "stable_sort"))
  | Some ("Bytes", ("set" | "unsafe_set" | "fill" | "blit" | "blit_string"))
  | Some
      ( "Hashtbl",
        ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") )
  | Some
      ( "Buffer",
        ( "add_char" | "add_string" | "add_bytes" | "add_substring" | "add_subbytes"
        | "add_buffer" | "add_channel" | "clear" | "reset" | "truncate" ) )
  | Some ("Queue", ("push" | "add" | "pop" | "take" | "take_opt" | "clear" | "transfer"))
  | Some ("Stack", ("push" | "pop" | "pop_opt" | "clear")) -> true
  | _ -> false

(* Applications that only read their arguments: passing a captured
   mutable value to one of these is not a write. *)
let reading_fn segs =
  match last2 segs with
  | Some (_, "!") -> true
  | Some ("Array", ("get" | "unsafe_get" | "length" | "to_list" | "copy" | "mem" | "exists"
                   | "for_all" | "iter" | "iteri" | "map" | "mapi" | "fold_left"
                   | "fold_right" | "sub" | "append" | "of_list"))
  | Some ("Bytes", ("get" | "unsafe_get" | "length" | "to_string" | "sub" | "copy"))
  | Some ("Hashtbl", ("find" | "find_opt" | "find_all" | "mem" | "length" | "fold" | "iter"
                     | "to_seq" | "copy"))
  | Some ("Buffer", ("contents" | "length" | "to_bytes" | "nth" | "sub"))
  | Some ("Queue", ("length" | "is_empty" | "peek" | "peek_opt" | "top" | "iter" | "fold"
                   | "copy"))
  | Some ("Stack", ("length" | "is_empty" | "top" | "top_opt" | "iter" | "fold" | "copy")) ->
      true
  | _ -> false

(* Heap-allocating calls, for the hot-path pass. *)
let allocating_fn segs =
  match last2 segs with
  | Some (_, "ref") -> Some "ref"
  | Some (("Array" as m), ("make" | "create_float" | "init" | "of_list" | "to_list"
                          | "sub" | "append" | "copy" | "concat" | "map" | "mapi" as f))
  | Some (("Bytes" as m), ("make" | "create" | "init" | "sub" | "copy" | "of_string"
                          | "to_string" | "cat" as f))
  | Some (("Hashtbl" as m), ("create" | "copy" as f))
  | Some (("Buffer" as m), ("create" | "contents" | "to_bytes" as f))
  | Some (("Queue" as m), ("create" | "copy" as f))
  | Some (("Stack" as m), ("create" | "copy" as f))
  | Some (("Atomic" as m), ("make" as f))
  | Some (("String" as m), ("make" | "init" | "sub" | "concat" | "cat" | "map"
                           | "split_on_char" as f))
  | Some (("List" as m), ("map" | "mapi" | "init" | "append" | "rev" | "concat"
                         | "concat_map" | "filter" | "filter_map" | "rev_append"
                         | "sort" | "stable_sort" | "sort_uniq" | "of_seq" as f))
  | Some (("Printf" as m), ("sprintf" as f))
  | Some (("Format" as m), ("asprintf" as f)) -> Some (m ^ "." ^ f)
  | Some (_, "@") -> Some "(@)"
  | Some (_, "^") -> Some "(^)"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Definitions.                                                        *)
(* ------------------------------------------------------------------ *)

type def = {
  key : string;  (* normalized dotted path, e.g. "Sim.Wheel.insert" *)
  unit_name : string;
  uid : string;  (* unit-qualified ident stamp; stamps are per-unit *)
  name : string;
  params : Ident.t list;
  body : expression;  (* after peeling the parameter lambdas *)
  full : expression;  (* the original bound expression *)
  attrs : attributes;
  loc : Location.t;
  source : string;
  toplevel : bool;  (* structure-level (incl. nested modules); local lets are false *)
}

type t = {
  defs : def list;  (* toplevel defs then local lets, traversal order *)
  by_key : (string, def) Hashtbl.t;  (* toplevel only *)
  by_uid : (string, def) Hashtbl.t;  (* toplevel + local lets *)
}

let uid_of ~unit_name id = unit_name ^ "/" ^ Ident.unique_name id

(* fun x -> fun y -> body  ==>  params [x; y], that body. Stops at a
   multi-case [function]: its scrutinee pattern is a real pattern
   match, not a named parameter. *)
let peel_params (e : expression) =
  let rec go acc e =
    match e.exp_desc with
    | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
        let id =
          match c_lhs.pat_desc with
          | Tpat_var (id, _) -> id
          | Tpat_alias (_, id, _) -> id
          | _ -> param
        in
        go (id :: acc) c_rhs
    | _ -> (List.rev acc, e)
  in
  go [] e

let make_def ~unit_name ~source ~prefix ~toplevel id vb =
  let params, body = peel_params vb.vb_expr in
  let name = Ident.name id in
  {
    key = key_of_segments (prefix @ [ name ]);
    unit_name;
    uid = uid_of ~unit_name id;
    name;
    params;
    body;
    full = vb.vb_expr;
    attrs = vb.vb_attributes;
    loc = vb.vb_loc;
    source;
    toplevel;
  }

let pat_var p =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

(* Local [let f x = ...] bindings inside a toplevel body: registered by
   uid so a lambda reaching a pool sink through a local name still
   resolves. Only function-valued bindings matter. *)
let collect_local_lets ~unit_name ~source ~prefix expr k =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match pat_var vb.vb_pat with
                  | Some id ->
                      let d = make_def ~unit_name ~source ~prefix ~toplevel:false id vb in
                      if d.params <> [] then k d
                  | None -> ())
                vbs
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr

let build (units : Cmt_load.unit_info list) =
  let defs = ref [] and locals = ref [] in
  let by_key = Hashtbl.create 256 and by_uid = Hashtbl.create 256 in
  let add_key d = if not (Hashtbl.mem by_key d.key) then Hashtbl.add by_key d.key d in
  let add_uid d = if not (Hashtbl.mem by_uid d.uid) then Hashtbl.add by_uid d.uid d in
  let add_local d =
    if not (Hashtbl.mem by_uid d.uid) then begin
      Hashtbl.add by_uid d.uid d;
      locals := d :: !locals
    end
  in
  let do_unit (u : Cmt_load.unit_info) =
    let unit_name = u.modname and source = u.source in
    let rec do_structure prefix str =
      List.iter
        (fun item ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match pat_var vb.vb_pat with
                  | Some id ->
                      let d = make_def ~unit_name ~source ~prefix ~toplevel:true id vb in
                      defs := d :: !defs;
                      add_key d;
                      add_uid d;
                      collect_local_lets ~unit_name ~source ~prefix:(prefix @ [ d.name ])
                        vb.vb_expr add_local
                  | None -> ())
                vbs
          | Tstr_module mb -> do_module prefix mb
          | Tstr_recmodule mbs -> List.iter (do_module prefix) mbs
          | _ -> ())
        str.str_items
    and do_module prefix mb =
      let prefix =
        match mb.mb_name.txt with
        | Some n -> prefix @ split_dunder n
        | None -> prefix
      in
      do_modexpr prefix mb.mb_expr
    and do_modexpr prefix me =
      match me.mod_desc with
      | Tmod_structure s -> do_structure prefix s
      | Tmod_constraint (me, _, _, _) -> do_modexpr prefix me
      | Tmod_functor (_, me) -> do_modexpr prefix me
      | _ -> ()
    in
    do_structure (split_dunder u.modname) u.str
  in
  List.iter do_unit units;
  { defs = List.rev !defs @ List.rev !locals; by_key; by_uid }

(* Resolve a referenced path to a definition in the zone: a local ident
   by its per-unit stamp, otherwise by normalized key — exact first,
   then unique dot-boundary suffix match in either direction (a path
   seen from outside carries the library prefix; one seen from inside
   does not). *)
let resolve t ~unit_name path =
  match path with
  | Path.Pident id -> Hashtbl.find_opt t.by_uid (uid_of ~unit_name id)
  | _ -> (
      let segs = normalize_path path in
      match Hashtbl.find_opt t.by_key (key_of_segments segs) with
      | Some d -> Some d
      | None -> (
          let candidates =
            List.filter
              (fun d ->
                d.toplevel
                &&
                let dsegs = segments_of_string d.key in
                suffix_matches ~suffix:segs dsegs || suffix_matches ~suffix:dsegs segs)
              t.defs
          in
          match candidates with [ d ] -> Some d | _ -> None))

(* ------------------------------------------------------------------ *)
(* Expression utilities.                                               *)
(* ------------------------------------------------------------------ *)

(* Occurrences of idents free in [e]: every [Texp_ident (Pident id)]
   whose binder is not inside [e]. Stamps are unique within a unit, so
   set subtraction is exact. *)
let free_ident_occurrences e =
  let bound = Hashtbl.create 16 in
  let occs = ref [] in
  let pat (type k) it (p : k general_pattern) =
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (pat_bound_idents p);
    Tast_iterator.default_iterator.pat it p
  in
  let expr it e =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> occs := (id, e) :: !occs
    | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | Texp_letop { param; _ } -> Hashtbl.replace bound (Ident.unique_name param) ()
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  List.rev !occs
  |> List.filter (fun (id, _) -> not (Hashtbl.mem bound (Ident.unique_name id)))

type call = {
  callee : Path.t;
  args : (Asttypes.arg_label * expression option) list;
  call_loc : Location.t;
}

(* Every application in [e] whose head is an identifier, plus every
   bare identifier reference (for effect propagation through
   higher-order use like [List.iter f xs]). *)
let calls_in e =
  let calls = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
              calls := { callee = p; args; call_loc = e.exp_loc } :: !calls
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !calls

let ident_refs e =
  let refs = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> refs := (p, e.exp_loc) :: !refs
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !refs

let head_ident e =
  match e.exp_desc with Texp_ident (Path.Pident id, _, _) -> Some id | _ -> None
