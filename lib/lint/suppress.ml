(* The suppression ledger shared by the syntactic and typed passes.

   Every [@lint.allow] attribute the walkers encounter is registered
   here as a [site]; when a would-be finding is silenced by one, the
   site is marked used. After all passes have run, a site that silenced
   nothing — and whose rules were all actually checked this run — is a
   stale suppression: the code it excused is gone, and keeping it around
   would let future violations hide under it. The driver reports those
   as `unused-allow` warnings (and stale lint.allow file entries, which
   Allowlist tracks the same way, as `stale-allowlist` errors). *)

open Parsetree

type site = {
  file : string;
  line : int;
  col : int;
  rules : string list; (* rule names; ["*"] = every rule *)
  mutable used : bool;
}

type t = {
  tbl : (string * int * int, site) Hashtbl.t;
  mutable checked : string list; (* rule names some pass actually checked *)
}

let create () = { tbl = Hashtbl.create 64; checked = [] }

let note_checked t names =
  List.iter (fun n -> if not (List.mem n t.checked) then t.checked <- n :: t.checked) names

let checked_rules t = t.checked

(* [@lint.allow "rule-a,rule-b"]; a bare [@lint.allow] allows every rule. *)
let rules_of_attr (a : attribute) =
  if a.attr_name.txt <> "lint.allow" then None
  else
    match a.attr_payload with
    | PStr [] -> Some [ "*" ]
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some
          (String.split_on_char ',' s
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun r -> r <> ""))
    | _ -> Some [ "*" ]

let allows_of_attrs attrs =
  List.concat_map (fun a -> Option.value (rules_of_attr a) ~default:[]) attrs

let register t ~file ~loc ~rules =
  let pos = loc.Location.loc_start in
  let line = pos.Lexing.pos_lnum and col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1 in
  let key = (file, line, col) in
  match Hashtbl.find_opt t.tbl key with
  | Some site -> site
  | None ->
      let site = { file; line; col; rules; used = false } in
      Hashtbl.add t.tbl key site;
      site

let mark_used site = site.used <- true

let unused t ~catalogue =
  let checked r =
    if r = "*" then List.for_all (fun c -> List.mem c t.checked) catalogue
    else List.mem r t.checked
  in
  Hashtbl.fold
    (fun _ site acc ->
      if (not site.used) && List.for_all checked site.rules then site :: acc else acc)
    t.tbl []
  |> List.sort (fun a b ->
         let c = String.compare a.file b.file in
         if c <> 0 then c
         else
           let c = Int.compare a.line b.line in
           if c <> 0 then c else Int.compare a.col b.col)

(* ------------------------------------------------------------------ *)
(* Scoped-emission context: the common machinery of every pass. A pass
   pushes the [@lint.allow] entries in scope as it descends and calls
   [emit]; suppression marks the responsible sites used, and allowlist
   hits mark the file entry used, so hygiene reporting is a by-product
   of normal linting.                                                  *)
(* ------------------------------------------------------------------ *)

type scope_entry = { rule_name : string; site : site option }

type ctx = {
  ctx_file : string;
  enabled : string -> bool;
  allowlist : Allowlist.t;
  registry : t option;
  mutable scope : scope_entry list;
  mutable out : Finding.t list;
}

let make_ctx ?registry ~enabled ~allowlist ~file () =
  { ctx_file = file; enabled; allowlist; registry; scope = []; out = [] }

let scope_entries_of_attrs ctx attrs =
  List.concat_map
    (fun a ->
      match rules_of_attr a with
      | None -> []
      | Some rules ->
          let site =
            match ctx.registry with
            | None -> None
            | Some t ->
                Some (register t ~file:ctx.ctx_file ~loc:a.attr_loc ~rules)
          in
          List.map (fun rule_name -> { rule_name; site }) rules)
    attrs

let with_attrs ctx attrs f =
  match attrs with
  | [] -> f ()
  | _ ->
      let saved = ctx.scope in
      ctx.scope <- scope_entries_of_attrs ctx attrs @ ctx.scope;
      Fun.protect ~finally:(fun () -> ctx.scope <- saved) f

let emit ctx ~loc ~rule message =
  if ctx.enabled rule then begin
    let suppressors =
      List.filter (fun e -> e.rule_name = rule || e.rule_name = "*") ctx.scope
    in
    if suppressors <> [] then
      List.iter (fun e -> Option.iter mark_used e.site) suppressors
    else if not (Allowlist.allows ctx.allowlist ~rule ~file:ctx.ctx_file) then
      ctx.out <- Finding.make ~file:ctx.ctx_file ~loc ~rule ~message :: ctx.out
  end

let findings ctx = List.sort Finding.compare ctx.out
