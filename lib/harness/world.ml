type t = {
  scenario : Scenario.t;
  parts : Setup.parts;
  trace : Sim.Trace.t;
  metrics : Obs.Metrics.t;
  exclusion : Monitor.Exclusion.t;
  fairness : Monitor.Fairness.t;
  response : Monitor.Response.t;
  phases : Monitor.Phases.t;
  workload : Workload.t;
  eats_per_process : int array;
  invariant_error : string option ref;
}

type report = {
  scenario : Scenario.t;
  graph : Cgraph.Graph.t;
  crashed : (int * Sim.Time.t) list;
  convergence : Sim.Time.t;
  detector_mistakes : int;
  exclusion : Monitor.Exclusion.t;
  fairness : Monitor.Fairness.t;
  response : Monitor.Response.t;
  phases : Monitor.Phases.t;
  link_stats : Net.Link_stats.t;
  total_eats : int;
  eats_per_process : int array;
  hungry_transitions : int;
  invariant_error : string option;
  max_footprint_bits : int option;
  max_message_bits : int option;
  events_processed : int;
  horizon : Sim.Time.t;
  metrics : Obs.Metrics.t;
}

(* Periodically run the daemon's executable-lemma check; stop after the
   first failure so the report carries the earliest message. *)
let watch_invariants ~engine ~horizon ~every (instance : Dining.Instance.t) =
  let error = ref None in
  let rec check () =
    (match !error with
    | Some _ -> ()
    | None -> (
        try instance.check_invariants ()
        with Dining.Types.Invariant_violation msg -> error := Some msg));
    if !error = None && Sim.Engine.now engine < horizon then
      ignore (Sim.Engine.schedule_after engine ~delay:every check)
  in
  ignore (Sim.Engine.schedule_after engine ~delay:every check);
  error

let create ?backend ?(trace = Sim.Trace.create ()) ?(metrics = Obs.Metrics.create ())
    ?shards (s : Scenario.t) =
  let parts = Setup.build ?backend ~trace ~metrics ?shards s in
  let { Setup.engine; faults; graph; rng; instance; _ } = parts in
  let n = Cgraph.Graph.n graph in
  let exclusion = Monitor.Exclusion.attach engine graph faults instance in
  let fairness = Monitor.Fairness.attach engine graph faults instance in
  let response = Monitor.Response.attach engine faults instance in
  let phases = Monitor.Phases.attach ~metrics engine trace instance in
  let eats_per_process = Array.make n 0 in
  let m_eats = Obs.Metrics.counter metrics "daemon.eats" in
  let m_hungry = Obs.Metrics.counter metrics "daemon.hungry_sessions" in
  instance.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Eating ->
          eats_per_process.(pid) <- eats_per_process.(pid) + 1;
          Obs.Metrics.incr m_eats
      | Dining.Types.Hungry -> Obs.Metrics.incr m_hungry
      | Dining.Types.Thinking -> ());
  let workload =
    Workload.attach ~engine ~faults ~n
      ~rng:(Sim.Rng.split_named rng "workload")
      ~workload:s.workload instance
  in
  let invariant_error =
    match s.check_every with
    | None -> ref None
    | Some every -> watch_invariants ~engine ~horizon:s.horizon ~every instance
  in
  {
    scenario = s;
    parts;
    trace;
    metrics;
    exclusion;
    fairness;
    response;
    phases;
    workload;
    eats_per_process;
    invariant_error;
  }

let now (w : t) = Sim.Engine.now w.parts.engine
let advance (w : t) ~until = Sim.Engine.run w.parts.engine ~until

let report (w : t) =
  let s = w.scenario in
  let { Setup.graph; crashed; instance; link_stats; song_pike; engine; _ } = w.parts in
  let n = Cgraph.Graph.n graph in
  (if !(w.invariant_error) = None then
     try instance.check_invariants ()
     with Dining.Types.Invariant_violation msg -> w.invariant_error := Some msg);
  let convergence, detector_mistakes = Setup.convergence w.parts in
  (* Point-in-time levels, refreshed on every report. *)
  Obs.Metrics.set (Obs.Metrics.gauge w.metrics "engine.events") (Sim.Engine.processed engine);
  Obs.Metrics.set (Obs.Metrics.gauge w.metrics "engine.pending") (Sim.Engine.pending engine);
  Obs.Metrics.set (Obs.Metrics.gauge w.metrics "detector.mistakes") detector_mistakes;
  let max_footprint_bits, max_message_bits =
    match song_pike with
    | None -> (None, None)
    | Some algo ->
        let fp = ref 0 in
        for pid = 0 to n - 1 do
          fp := max !fp (Dining.Algorithm.footprint_bits algo pid)
        done;
        (Some !fp, Some (Dining.Algorithm.max_message_bits algo))
  in
  {
    scenario = s;
    graph;
    crashed;
    convergence;
    detector_mistakes;
    exclusion = w.exclusion;
    fairness = w.fairness;
    response = w.response;
    phases = w.phases;
    link_stats;
    total_eats = Array.fold_left ( + ) 0 w.eats_per_process;
    eats_per_process = w.eats_per_process;
    hungry_transitions = Workload.hungry_transitions w.workload;
    invariant_error = !(w.invariant_error);
    max_footprint_bits;
    max_message_bits;
    events_processed = Sim.Engine.processed engine;
    horizon = s.horizon;
    metrics = w.metrics;
  }

let run ?backend ?trace ?metrics ?shards (s : Scenario.t) =
  let w = create ?backend ?trace ?metrics ?shards s in
  advance w ~until:s.horizon;
  report w

let throughput r = 1000.0 *. float_of_int r.total_eats /. float_of_int (max 1 r.horizon)

let starved r ~older_than =
  List.filter_map
    (fun (pid, started) -> if r.horizon - started > older_than then Some pid else None)
    (Monitor.Response.open_sessions r.response)
