(** One self-contained simulated universe.

    A [World.t] owns {e everything} a run mutates — virtual-time engine,
    seeded RNG tree, network and fault plan, failure detector, daemon
    instance, monitors and workload — and nothing else: no module under
    [lib/sim], [lib/net], [lib/core] or [lib/detector] keeps top-level
    mutable state, so two worlds never share a mutable value. That
    share-nothing guarantee is what lets {!Exec.Pool} run many worlds on
    concurrent domains while keeping every report bit-identical to a
    sequential execution of the same scenarios.

    {!run} is the pure [Scenario.t -> report] entry point; the
    create/advance/report triple exposes the same run incrementally for
    callers that want to interleave their own probes with virtual time. *)

type t

type report = {
  scenario : Scenario.t;
  graph : Cgraph.Graph.t;
  crashed : (int * Sim.Time.t) list;
      (** Realised crash schedule, ascending time. *)
  convergence : Sim.Time.t;
      (** Time after which the detector's output is settled: exact for
          scripted detectors, measured (last false suspicion + 1) for the
          heartbeat detector, 0 for Never/Perfect. *)
  detector_mistakes : int;
      (** False suspicions committed (heartbeat detector only; scripted
          windows are counted from the scenario). *)
  exclusion : Monitor.Exclusion.t;
  fairness : Monitor.Fairness.t;
  response : Monitor.Response.t;
  phases : Monitor.Phases.t;
      (** Doorway-vs-fork wait breakdown (Song-Pike daemons only; empty
          for the baselines, which emit no doorway events). *)
  link_stats : Net.Link_stats.t;  (** Dining-layer channels only. *)
  total_eats : int;
  eats_per_process : int array;
  hungry_transitions : int;
  invariant_error : string option;
      (** First executable-lemma failure, if any (expected [None]). *)
  max_footprint_bits : int option;  (** Song-Pike only: max over processes. *)
  max_message_bits : int option;    (** Song-Pike only. *)
  events_processed : int;
  horizon : Sim.Time.t;
  metrics : Obs.Metrics.t;
      (** The world's metrics registry: [net.*] traffic counters
          (dining + heartbeat overlays aggregated), [daemon.*] counters
          and wait histograms, [engine.*] / [detector.*] gauges. *)
}

val create :
  ?backend:Sim.Engine.backend ->
  ?trace:Sim.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?shards:int ->
  Scenario.t ->
  t
(** Build a fresh world: engine, network, detector, daemon, monitors and
    workload, with the crash plan scheduled and the invariant watcher
    armed. Virtual time has not advanced yet. [backend] selects the
    engine's event-queue implementation (default: the timing wheel; both
    backends are bit-identical). [trace] becomes the engine's recorder
    (capture it with {!Obs.Recorder.collecting} for JSONL export);
    [metrics] is the registry every component registers into (default: a
    fresh private one, available via the report). [shards > 0] runs the
    engine on staged stepping with that many shards (see
    {!Setup.build}); reports and traces are bit-identical for any
    value. *)

val advance : t -> until:Sim.Time.t -> unit
(** Process events up to and including virtual time [until]. Advancing in
    stages is equivalent to one advance to the last time. *)

val now : t -> Sim.Time.t
(** Current virtual time of this world's engine. *)

val report : t -> report
(** Run the final invariant check and assemble the report for whatever
    has executed so far. Normally called once [advance] reached the
    scenario horizon. *)

val run :
  ?backend:Sim.Engine.backend ->
  ?trace:Sim.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?shards:int ->
  Scenario.t ->
  report
(** [create |> advance ~until:horizon |> report] — deterministic in the
    scenario: same scenario, same report, on any domain and with either
    queue backend. *)

val throughput : report -> float
(** Eats per 1000 ticks. *)

val starved : report -> older_than:int -> Dining.Types.pid list
(** Live processes still hungry at the horizon whose session is older
    than the given age — wait-freedom violations at that patience
    level. *)
