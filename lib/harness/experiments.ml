type artifact = Table of Stats.Table.t | Series of Stats.Series.t | Note of string

type ctx = { domains : int; seeds : int }

let default_ctx () = { domains = Exec.Pool.default_domains (); seeds = 10 }

type t = { id : string; title : string; claim : string; run : ctx -> artifact list }

(* Independent runs of a sweep fan out over a domain pool; rows come back
   in case order, so tables are byte-identical for any domain count. *)
let sweep ~domains cases row =
  Exec.Pool.with_pool ~domains (fun pool -> Exec.Pool.map_list pool row cases)

let cell_opt_time = function None -> "-" | Some t -> Stats.Table.cell_time t

let oracle_default =
  Scenario.Oracle { detection_delay = 50; fp_per_edge = 2; fp_window = 8_000; fp_max_len = 200 }

let oracle_quiet = Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }

let heartbeat_default = Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }

let psync ~gst = Net.Delay.Partial_synchrony { gst; pre = (1, 100); post = (1, 8) }

let base : Scenario.t =
  {
    Scenario.default with
    name = "exp";
    delay = Net.Delay.Uniform (1, 8);
    detector = oracle_default;
    crashes = Scenario.No_crashes;
    check_every = Some 193;
  }

let inv_cell (r : Run.report) = Option.value r.invariant_error ~default:"ok"

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1: eventual weak exclusion.                            *)
(* ------------------------------------------------------------------ *)

let e1 (ctx : ctx) =
  let table =
    Stats.Table.create ~title:"E1: exclusion violations vs detector convergence (Theorem 1)"
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("detector", Stats.Table.Left);
          ("crashes", Stats.Table.Right);
          ("eats", Stats.Table.Right);
          ("conv", Stats.Table.Right);
          ("violations", Stats.Table.Right);
          ("last_viol", Stats.Table.Right);
          ("viol_after_conv", Stats.Table.Right);
          ("invariants", Stats.Table.Left);
        ]
  in
  let topologies = [ Cgraph.Topology.Ring 12; Cgraph.Topology.Clique 8; Cgraph.Topology.Random_gnp (20, 0.2, 3L) ] in
  let detectors =
    [
      ("oracle+fp", oracle_default, Net.Delay.Uniform (1, 8));
      ("heartbeat", heartbeat_default, psync ~gst:15_000);
    ]
  in
  let cases =
    List.concat_map (fun topology -> List.map (fun d -> (topology, d)) detectors) topologies
  in
  let row (topology, (det_label, detector, delay)) =
    let s =
      {
        base with
        name = "e1";
        topology;
        detector;
        delay;
        workload = { think = (0, 120); eat = (10, 40) };
        crashes = Scenario.Random_crashes { count = 2; from_t = 3_000; to_t = 12_000 };
        horizon = 60_000;
        seed = 11L;
      }
    in
    let r = Run.run s in
    [
      Cgraph.Topology.name topology;
      det_label;
      Stats.Table.cell_int (List.length r.crashed);
      Stats.Table.cell_int r.total_eats;
      Stats.Table.cell_time r.convergence;
      Stats.Table.cell_int (Monitor.Exclusion.count r.exclusion);
      cell_opt_time (Monitor.Exclusion.last_violation_time r.exclusion);
      Stats.Table.cell_int (Monitor.Exclusion.count_after r.exclusion r.convergence);
      inv_cell r;
    ]
  in
  List.iter (Stats.Table.add_row table) (sweep ~domains:ctx.domains cases row);
  [
    Table table;
    Note
      "Expected shape: violations may occur, but the last one precedes detector \
       convergence and viol_after_conv = 0 on every row.";
  ]

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2: wait-freedom under crashes.                         *)
(* ------------------------------------------------------------------ *)

let e2 (_ : ctx) =
  let table =
    Stats.Table.create ~title:"E2: wait-freedom vs crash count (Theorem 2)"
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("f", Stats.Table.Right);
          ("daemon", Stats.Table.Left);
          ("served", Stats.Table.Right);
          ("starved", Stats.Table.Right);
          ("resp_mean", Stats.Table.Right);
          ("resp_p99", Stats.Table.Right);
          ("resp_max", Stats.Table.Right);
        ]
  in
  let daemons =
    [ ("SP+oracle(evp)", oracle_quiet); ("SP+never(ChoySingh)", Scenario.Never); ("SP+perfect", Scenario.Perfect) ]
  in
  let topologies = [ Cgraph.Topology.Ring 16; Cgraph.Topology.Clique 8 ] in
  List.iter
    (fun topology ->
      List.iter
        (fun f ->
          List.iter
            (fun (label, detector) ->
              let s =
                {
                  base with
                  name = "e2";
                  topology;
                  detector;
                  workload = { think = (20, 200); eat = (10, 40) };
                  crashes =
                    (if f = 0 then Scenario.No_crashes
                     else Scenario.Random_crashes { count = f; from_t = 4_000; to_t = 25_000 });
                  horizon = 80_000;
                  seed = 23L;
                }
              in
              let r = Run.run s in
              let summary = Monitor.Response.summary r.response in
              Stats.Table.add_row table
                [
                  Cgraph.Topology.name topology;
                  Stats.Table.cell_int f;
                  label;
                  Stats.Table.cell_int (Monitor.Response.served_count r.response);
                  Stats.Table.cell_int (List.length (Run.starved r ~older_than:10_000));
                  Stats.Table.cell_float summary.mean;
                  Stats.Table.cell_float summary.p99;
                  Stats.Table.cell_float summary.max;
                ])
            daemons;
          Stats.Table.add_rule table)
        [ 0; 1; 2; 4; 8 ])
    topologies;
  [
    Table table;
    Note
      "Expected shape: SP+oracle and SP+perfect serve every hungry process (starved = 0) \
       for every f; SP+never starves processes as soon as f >= 1 (in a ring the blockage \
       cascades through deferred acks, so nearly everyone starves).";
  ]

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 3: eventual 2-bounded waiting.                         *)
(* ------------------------------------------------------------------ *)

let e3 (_ : ctx) =
  let table =
    Stats.Table.create ~title:"E3: consecutive overtaking (Theorem 3, k = 2)"
      ~columns:
        [
          ("daemon", Stats.Table.Left);
          ("topology", Stats.Table.Left);
          ("eats", Stats.Table.Right);
          ("max_overtakes", Stats.Table.Right);
          ("max_after_conv", Stats.Table.Right);
          ("bound_holds", Stats.Table.Left);
          ("starved", Stats.Table.Right);
        ]
  in
  let cases =
    [
      ("song-pike", Scenario.Song_pike, oracle_default);
      ("song-pike", Scenario.Song_pike, oracle_quiet);
      ("fork-only", Scenario.Fork_only, oracle_quiet);
    ]
  in
  let topologies = [ Cgraph.Topology.Clique 6; Cgraph.Topology.Star 8 ] in
  List.iter
    (fun topology ->
      List.iter
        (fun (label, algo, detector) ->
          let s =
            {
              base with
              name = "e3";
              topology;
              algo;
              detector;
              workload = Scenario.contended_workload;
              crashes = Scenario.Random_crashes { count = 1; from_t = 5_000; to_t = 15_000 };
              horizon = 60_000;
              seed = 37L;
            }
          in
          let r = Run.run s in
          let after = Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence in
          Stats.Table.add_row table
            [
              label ^ "+" ^ Scenario.detector_name detector;
              Cgraph.Topology.name topology;
              Stats.Table.cell_int r.total_eats;
              Stats.Table.cell_int (Monitor.Fairness.max_consecutive r.fairness);
              Stats.Table.cell_int after;
              Stats.Table.cell_bool (after <= 2);
              Stats.Table.cell_int (List.length (Run.starved r ~older_than:10_000));
            ])
        cases;
      Stats.Table.add_rule table)
    topologies;
  [
    Table table;
    Note
      "Expected shape: song-pike stays within the k = 2 bound after convergence under \
       maximum contention; fork-only (no doorway) overtakes without bound and starves \
       its lowest-priority diners.";
  ]

(* ------------------------------------------------------------------ *)
(* E4 — Section 7: channel capacity and message size.                  *)
(* ------------------------------------------------------------------ *)

let e4 (ctx : ctx) =
  let table =
    Stats.Table.create ~title:"E4: per-edge channel occupancy (Section 7 bound: 4)"
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("edges", Stats.Table.Right);
          ("msgs_sent", Stats.Table.Right);
          ("max_inflight", Stats.Table.Right);
          ("fork_wm", Stats.Table.Right);
          ("request_wm", Stats.Table.Right);
          ("ping_wm", Stats.Table.Right);
          ("ack_wm", Stats.Table.Right);
          ("msg_bits", Stats.Table.Right);
        ]
  in
  let row topology =
    let s =
      {
        base with
        name = "e4";
        topology;
        detector = oracle_default;
        workload = Scenario.contended_workload;
        crashes = Scenario.Random_crashes { count = 1; from_t = 2_000; to_t = 10_000 };
        horizon = 40_000;
        seed = 5L;
      }
    in
    let r = Run.run s in
    let kind_wm kind =
      Option.value
        (List.assoc_opt kind (Net.Link_stats.max_edge_watermark_by_kind r.link_stats))
        ~default:0
    in
    [
      Cgraph.Topology.name topology;
      Stats.Table.cell_int (Cgraph.Graph.edge_count r.graph);
      Stats.Table.cell_int (Net.Link_stats.total_sent r.link_stats);
      Stats.Table.cell_int (Net.Link_stats.max_edge_watermark r.link_stats);
      Stats.Table.cell_int (kind_wm "fork");
      Stats.Table.cell_int (kind_wm "request");
      Stats.Table.cell_int (kind_wm "ping");
      Stats.Table.cell_int (kind_wm "ack");
      (match r.max_message_bits with Some b -> Stats.Table.cell_int b | None -> "-");
    ]
  in
  List.iter (Stats.Table.add_row table)
    (sweep ~domains:ctx.domains Cgraph.Topology.all_small row);
  [
    Table table;
    Note
      "Expected shape: max_inflight <= 4 on every topology (1 fork + 1 token + 2 \
       ping/ack), fork and request watermarks <= 1, and O(log n)-bit messages.";
  ]

(* ------------------------------------------------------------------ *)
(* E5 — Section 7: quiescence w.r.t. crashed processes.                *)
(* ------------------------------------------------------------------ *)

let e5 (_ : ctx) =
  let crash_t = 10_000 in
  let horizon = 60_000 in
  let s =
    {
      base with
      name = "e5";
      topology = Cgraph.Topology.Clique 8;
      detector = oracle_quiet;
      workload = Scenario.contended_workload;
      crashes = Scenario.Crash_at [ (2, crash_t); (5, crash_t + 4_000) ];
      horizon;
      seed = 71L;
    }
  in
  let r = Run.run s in
  let table =
    Stats.Table.create ~title:"E5: messages sent to a crashed process (quiescence)"
      ~columns:
        [
          ("crashed_pid", Stats.Table.Right);
          ("crash_time", Stats.Table.Right);
          ("w[0,2k)", Stats.Table.Right);
          ("w[2k,8k)", Stats.Table.Right);
          ("w[8k,horizon]", Stats.Table.Right);
          ("last_send_to", Stats.Table.Right);
          ("per_nbr<=2", Stats.Table.Left);
        ]
  in
  List.iter
    (fun (pid, at) ->
      let w a b =
        Net.Link_stats.sends_to_in_window r.link_stats ~dst:pid ~from_t:(at + a) ~to_t:(min horizon (at + b))
      in
      let after_crash = Net.Link_stats.sends_to_after r.link_stats ~dst:pid ~after:at in
      let degree = Cgraph.Graph.degree r.graph pid in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int pid;
          Stats.Table.cell_time at;
          Stats.Table.cell_int (w 0 2_000);
          Stats.Table.cell_int (w 2_000 8_000);
          Stats.Table.cell_int (w 8_000 (horizon - at));
          (match Net.Link_stats.last_send_to r.link_stats pid with
          | Some t -> Stats.Table.cell_time t
          | None -> "-");
          Stats.Table.cell_bool (after_crash <= 2 * degree);
        ])
    r.crashed;
  [
    Table table;
    Note
      "Expected shape: traffic to a crashed process stops shortly after the crash — at \
       most one pending ping and one token per neighbor (<= 2 * degree messages), then \
       silence; the final window is 0.";
  ]

(* ------------------------------------------------------------------ *)
(* E6 — Section 7: bounded local memory.                               *)
(* ------------------------------------------------------------------ *)

let e6 (_ : ctx) =
  let table =
    Stats.Table.create ~title:"E6: local state footprint (Section 7: log2(delta) + 6*delta + c)"
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("n", Stats.Table.Right);
          ("delta", Stats.Table.Right);
          ("measured_bits", Stats.Table.Right);
          ("formula_bits", Stats.Table.Right);
          ("matches", Stats.Table.Left);
        ]
  in
  List.iter
    (fun topology ->
      let s = { base with name = "e6"; topology; horizon = 5_000; seed = 3L } in
      let r = Run.run s in
      let delta = Cgraph.Graph.max_degree r.graph in
      let colors = Cgraph.Coloring.greedy r.graph in
      let max_color = Array.fold_left max 0 colors in
      let rec bits acc v = if v <= 0 then max acc 1 else bits (acc + 1) (v lsr 1) in
      let formula = 3 + bits 0 max_color + (6 * delta) in
      let measured = Option.value r.max_footprint_bits ~default:0 in
      Stats.Table.add_row table
        [
          Cgraph.Topology.name topology;
          Stats.Table.cell_int (Cgraph.Graph.n r.graph);
          Stats.Table.cell_int delta;
          Stats.Table.cell_int measured;
          Stats.Table.cell_int formula;
          Stats.Table.cell_bool (measured <= formula);
        ])
    Cgraph.Topology.all_small;
  [
    Table table;
    Note "Expected shape: measured footprint equals the closed form on every topology.";
  ]

(* ------------------------------------------------------------------ *)
(* E7 — Sections 1-2: wait-free daemons enable stabilization.          *)
(* ------------------------------------------------------------------ *)

let e7 (_ : ctx) =
  let table =
    Stats.Table.create
      ~title:"E7: self-stabilization under the daemon (crashes + transient faults)"
      ~columns:
        [
          ("protocol", Stats.Table.Left);
          ("topology", Stats.Table.Left);
          ("crashes", Stats.Table.Right);
          ("daemon", Stats.Table.Left);
          ("converged", Stats.Table.Left);
          ("converged_at", Stats.Table.Right);
          ("final_err", Stats.Table.Right);
          ("steps", Stats.Table.Right);
          ("cs_races", Stats.Table.Right);
        ]
  in
  let cases =
    [
      (Run_stabilize.Coloring, Cgraph.Topology.Random_gnp (16, 0.25, 5L), 2);
      (Run_stabilize.Coloring, Cgraph.Topology.Torus (3, 4), 2);
      (Run_stabilize.Bfs_tree, Cgraph.Topology.Random_gnp (16, 0.25, 5L), 2);
      (Run_stabilize.Matching, Cgraph.Topology.Ring 12, 0);
      (Run_stabilize.Token_ring, Cgraph.Topology.Ring 10, 0);
    ]
  in
  List.iter
    (fun (protocol, topology, crash_count) ->
      List.iter
        (fun (label, detector) ->
          let spec =
            {
              Run_stabilize.protocol;
              transient_faults = [ (15_000, 4); (25_000, 4) ];
              scenario =
                {
                  base with
                  name = "e7";
                  topology;
                  detector;
                  crashes =
                    (if crash_count = 0 then Scenario.No_crashes
                     else Scenario.Random_crashes { count = crash_count; from_t = 2_000; to_t = 8_000 });
                  horizon = 60_000;
                  seed = 19L;
                };
            }
          in
          let r = Run_stabilize.run spec in
          Stats.Table.add_row table
            [
              Run_stabilize.protocol_name protocol;
              Cgraph.Topology.name topology;
              Stats.Table.cell_int (List.length r.crashed);
              label;
              Stats.Table.cell_bool (r.outcome.converged_at <> None);
              cell_opt_time r.outcome.converged_at;
              Stats.Table.cell_int r.outcome.final_error;
              Stats.Table.cell_int r.outcome.steps_executed;
              Stats.Table.cell_int r.outcome.overlap_races;
            ])
        [ ("SP+oracle(evp)", oracle_default); ("SP+never(ChoySingh)", Scenario.Never) ];
      Stats.Table.add_rule table)
    cases;
  [
    Table table;
    Note
      "Expected shape: with the wait-free oracle daemon every protocol converges after \
       the last transient fault, even with crashes; the crash-intolerant daemon fails to \
       converge exactly in the rows with crashes > 0.";
  ]

(* ------------------------------------------------------------------ *)
(* E8 — ablation: what the doorway costs and buys.                     *)
(* ------------------------------------------------------------------ *)

let e8 (_ : ctx) =
  let table =
    Stats.Table.create ~title:"E8: daemon comparison, crash-free saturation (ablation)"
      ~columns:
        [
          ("daemon", Stats.Table.Left);
          ("topology", Stats.Table.Left);
          ("eats/ktick", Stats.Table.Right);
          ("resp_mean", Stats.Table.Right);
          ("resp_p99", Stats.Table.Right);
          ("max_overtakes", Stats.Table.Right);
          ("starved", Stats.Table.Right);
        ]
  in
  let cases =
    [
      ("song-pike+oracle", Scenario.Song_pike, oracle_quiet);
      ("choy-singh (never)", Scenario.Song_pike, Scenario.Never);
      ("fork-only+oracle", Scenario.Fork_only, oracle_quiet);
      ("chandy-misra", Scenario.Chandy_misra, Scenario.Never);
      ("ordered (Lynch)", Scenario.Ordered, Scenario.Never);
    ]
  in
  List.iter
    (fun topology ->
      List.iter
        (fun (label, algo, detector) ->
          let s =
            {
              base with
              name = "e8";
              topology;
              algo;
              detector;
              workload = Scenario.contended_workload;
              crashes = Scenario.No_crashes;
              horizon = 60_000;
              seed = 13L;
            }
          in
          let r = Run.run s in
          let summary = Monitor.Response.summary r.response in
          Stats.Table.add_row table
            [
              label;
              Cgraph.Topology.name topology;
              Stats.Table.cell_float (Run.throughput r);
              Stats.Table.cell_float summary.mean;
              Stats.Table.cell_float summary.p99;
              Stats.Table.cell_int (Monitor.Fairness.max_consecutive r.fairness);
              Stats.Table.cell_int (List.length (Run.starved r ~older_than:10_000));
            ])
        cases;
      Stats.Table.add_rule table)
    [ Cgraph.Topology.Clique 6; Cgraph.Topology.Ring 12; Cgraph.Topology.Grid (3, 4) ];
  [
    Table table;
    Note
      "Expected shape: fork-only posts the highest raw throughput but unbounded \
       overtaking (and starvation under saturation); song-pike pays a modest throughput \
       cost for its fairness bound; chandy-misra sits between them with dynamic \
       priorities; the hierarchical total-order scheme is deadlock-free but pays long \
       waiting chains on path-heavy graphs; crash-free choy-singh behaves like \
       song-pike.";
  ]

(* ------------------------------------------------------------------ *)
(* E9 — necessity: each half of the ◇P contract is load-bearing.       *)
(* ------------------------------------------------------------------ *)

let e9 (_ : ctx) =
  let horizon = 60_000 in
  let table =
    Stats.Table.create
      ~title:"E9: what breaks when a ◇P property is dropped (necessity ablation)"
      ~columns:
        [
          ("detector", Stats.Table.Left);
          ("complete", Stats.Table.Left);
          ("ev_accurate", Stats.Table.Left);
          ("served", Stats.Table.Right);
          ("starved", Stats.Table.Right);
          ("violations", Stats.Table.Right);
          ("viol_last_third", Stats.Table.Right);
          ("verdict", Stats.Table.Left);
        ]
  in
  let cases =
    [
      ("oracle (full evp-P1)", "yes", "yes", oracle_default);
      ( "unreliable (accuracy dropped)",
        "yes",
        "no",
        Scenario.Unreliable { period = 1_500; duration = 150 } );
      ("never (completeness dropped)", "no", "yes", Scenario.Never);
    ]
  in
  List.iter
    (fun (label, complete, accurate, detector) ->
      let s =
        {
          base with
          name = "e9";
          topology = Cgraph.Topology.Clique 6;
          detector;
          workload = { think = (0, 60); eat = (10, 40) };
          crashes = Scenario.Crash_at [ (1, 8_000) ];
          horizon;
          seed = 101L;
        }
      in
      let r = Run.run s in
      let starved = List.length (Run.starved r ~older_than:10_000) in
      let late = Monitor.Exclusion.count_after r.exclusion (2 * horizon / 3) in
      let verdict =
        match (starved > 0, late > 0) with
        | false, false -> "wait-free + eventually safe"
        | false, true -> "wait-free, NEVER safe"
        | true, false -> "safe, NOT wait-free"
        | true, true -> "neither"
      in
      Stats.Table.add_row table
        [
          label;
          complete;
          accurate;
          Stats.Table.cell_int (Monitor.Response.served_count r.response);
          Stats.Table.cell_int starved;
          Stats.Table.cell_int (Monitor.Exclusion.count r.exclusion);
          Stats.Table.cell_int late;
          verdict;
        ])
    cases;
  [
    Table table;
    Note
      "Expected shape: dropping eventual accuracy keeps wait-freedom but scheduling \
       mistakes recur forever (◇WX fails); dropping completeness keeps safety but \
       starves (wait-freedom fails). Both halves of ◇P are load-bearing — the empirical \
       face of the weakest-failure-detector result the paper cites ([21]).";
  ]

(* ------------------------------------------------------------------ *)
(* E10 — every bound, across independent seeds (batch robustness).     *)
(* ------------------------------------------------------------------ *)

let e10 (ctx : ctx) =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E10: all four bounds over %d independent seeds per row (Theorems 1-3, Section 7)"
           ctx.seeds)
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("detector", Stats.Table.Left);
          ("runs", Stats.Table.Right);
          ("eats/run", Stats.Table.Right);
          ("viol/run", Stats.Table.Right);
          ("viol_after_conv", Stats.Table.Right);
          ("max_overtakes", Stats.Table.Right);
          ("starved", Stats.Table.Right);
          ("watermark", Stats.Table.Right);
          ("all_bounds", Stats.Table.Left);
        ]
  in
  let cases =
    [
      (Cgraph.Topology.Ring 10, "oracle+fp", oracle_default);
      (Cgraph.Topology.Clique 6, "oracle+fp", oracle_default);
      (Cgraph.Topology.Random_gnp (16, 0.25, 21L), "oracle+fp", oracle_default);
      (Cgraph.Topology.Clique 6, "heartbeat", heartbeat_default);
    ]
  in
  List.iter
    (fun (topology, det_label, detector) ->
      let scenario =
        {
          base with
          name = "e10";
          topology;
          detector;
          delay =
            (match detector with
            | Scenario.Heartbeat _ -> psync ~gst:12_000
            | _ -> base.delay);
          workload = { think = (0, 100); eat = (5, 30) };
          crashes = Scenario.Random_crashes { count = 2; from_t = 2_000; to_t = 12_000 };
          horizon = 50_000;
          check_every = Some 251;
        }
      in
      let a = Batch.run ~seeds:ctx.seeds ~domains:ctx.domains scenario in
      let ok =
        a.violations_after_conv_total = 0 && a.max_overtakes_after_conv <= 2
        && a.starved_total = 0 && a.worst_edge_watermark <= 4 && a.invariant_errors = []
      in
      Stats.Table.add_row table
        [
          Cgraph.Topology.name topology;
          det_label;
          Stats.Table.cell_int a.runs;
          Printf.sprintf "%.0f±%.0f" a.total_eats.mean a.total_eats.stddev;
          Stats.Table.cell_float a.violations.mean;
          Stats.Table.cell_int a.violations_after_conv_total;
          Stats.Table.cell_int a.max_overtakes_after_conv;
          Stats.Table.cell_int a.starved_total;
          Stats.Table.cell_int a.worst_edge_watermark;
          Stats.Table.cell_bool ok;
        ])
    cases;
  [
    Table table;
    Note
      (Printf.sprintf
         "Every row aggregates %d independent seeds (%d full runs in total, fanned out \
          over %d domain(s); the aggregate is bit-identical for any domain count). The \
          paper's claims are per-run universals, so the aggregated columns must be \
          exactly 0 / <= 2 / 0 / <= 4 — not merely on average."
         ctx.seeds (4 * ctx.seeds) ctx.domains);
  ]

(* ------------------------------------------------------------------ *)
(* E11 — extension: the ack budget as a fairness knob.                 *)
(* ------------------------------------------------------------------ *)

(* Adversarial rig for the ack budget: a path  overtaker(0) - victim(1) -
   blocker(2).  The blocker holds the doorway for very long eating
   sessions, which pins the victim hungry *outside* the doorway (its ping
   to the blocker is deferred); meanwhile the fast-cycling overtaker needs
   only the victim's ack to enter, and the victim — hungry outside — keeps
   granting until its per-session budget m runs out. The overtake count
   per victim session is therefore governed exactly by m. *)
let e11_run ~m ~horizon =
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let colors = [| 1; 0; 2 |] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let _, detector = Fd.Oracle.create engine faults graph ~detection_delay:50 () in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 2)
      ~rng:(Sim.Rng.create 3L) ~detector ~colors ~acks_per_session:m ()
  in
  let inst = Dining.Algorithm.instance algo in
  let fairness = Monitor.Fairness.attach engine graph faults inst in
  (* Per-role drivers: eat duration and re-hungry delay per pid. *)
  let eat_for = [| 5; 5; 4_000 |] and rest_for = [| 3; 3; 200 |] in
  inst.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Eating ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:pid ~delay:eat_for.(pid) (fun () ->
                 inst.stop_eating pid))
      | Dining.Types.Thinking ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:pid ~delay:rest_for.(pid) (fun () ->
                 inst.become_hungry pid))
      | Dining.Types.Hungry -> ());
  List.iter inst.become_hungry [ 2; 0; 1 ];
  Sim.Engine.run engine ~until:horizon;
  ( Monitor.Fairness.max_consecutive fairness,
    Dining.Algorithm.eat_count algo 0,
    Dining.Algorithm.eat_count algo 1 )

let e11 (_ : ctx) =
  let table =
    Stats.Table.create
      ~title:
        "E11: generalised doorway — m acks/session yields eventual (m+1)-bounded waiting"
      ~columns:
        [
          ("m (ack budget)", Stats.Table.Right);
          ("predicted k = m+1", Stats.Table.Right);
          ("max consecutive overtakes", Stats.Table.Right);
          ("within k", Stats.Table.Left);
          ("overtaker eats", Stats.Table.Right);
          ("victim eats", Stats.Table.Right);
        ]
  in
  List.iter
    (fun m ->
      let overtakes, o_eats, v_eats = e11_run ~m ~horizon:60_000 in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int m;
          Stats.Table.cell_int (m + 1);
          Stats.Table.cell_int overtakes;
          Stats.Table.cell_bool (overtakes <= m + 1);
          Stats.Table.cell_int o_eats;
          Stats.Table.cell_int v_eats;
        ])
    [ 1; 2; 4; 8 ];
  [
    Table table;
    Note
      "Extension beyond the paper: Algorithm 1 grants one doorway ack per neighbor per \
       hungry session (m = 1, giving the paper's k = 2 of Theorem 3). Generalising the \
       budget to m preserves safety, wait-freedom and all structural lemmas (the ack \
       pipeline is untouched) and relaxes fairness to eventual (m+1)-bounded waiting. \
       The adversarial blocker/overtaker path makes the bound tight: measured maximum \
       overtaking rises with m and never exceeds m + 1, while the victim's share of \
       meals shrinks — the quantitative price of a weaker k.";
  ]

(* ------------------------------------------------------------------ *)
(* E12 — where the waiting time goes: doorway vs fork collection.      *)
(* ------------------------------------------------------------------ *)

let e12 (_ : ctx) =
  let table =
    Stats.Table.create
      ~title:"E12: hungry-session latency split into phase 1 (doorway) and phase 2 (forks)"
      ~columns:
        [
          ("topology", Stats.Table.Left);
          ("sessions", Stats.Table.Right);
          ("doorway_mean", Stats.Table.Right);
          ("doorway_p95", Stats.Table.Right);
          ("fork_mean", Stats.Table.Right);
          ("fork_p95", Stats.Table.Right);
          ("doorway_share", Stats.Table.Right);
        ]
  in
  List.iter
    (fun topology ->
      let s =
        {
          base with
          name = "e12";
          topology;
          detector = oracle_quiet;
          workload = Scenario.contended_workload;
          crashes = Scenario.No_crashes;
          horizon = 40_000;
          seed = 59L;
        }
      in
      let r = Run.run s in
      let d = Monitor.Phases.doorway_summary r.phases in
      let f = Monitor.Phases.fork_summary r.phases in
      let share =
        if d.mean +. f.mean > 0.0 then 100.0 *. d.mean /. (d.mean +. f.mean) else 0.0
      in
      Stats.Table.add_row table
        [
          Cgraph.Topology.name topology;
          Stats.Table.cell_int d.count;
          Stats.Table.cell_float d.mean;
          Stats.Table.cell_float d.p95;
          Stats.Table.cell_float f.mean;
          Stats.Table.cell_float f.p95;
          Stats.Table.cell_float share ^ "%";
        ])
    [
      Cgraph.Topology.Ring 12;
      Cgraph.Topology.Clique 6;
      Cgraph.Topology.Star 8;
      Cgraph.Topology.Grid (3, 4);
      Cgraph.Topology.Binary_tree 10;
    ];
  [
    Table table;
    Note
      "Analysis beyond the paper's proofs: under saturation most of a hungry session is \
       spent in phase 1 (waiting to enter the doorway — i.e. waiting for neighbors to \
       finish whole sessions), while fork collection inside the doorway is quick because \
       the doorway has already serialised the neighborhood. The doorway is therefore \
       both the fairness mechanism and the main queueing point.";
  ]

(* ------------------------------------------------------------------ *)
(* F5 — scaling: response latency and throughput vs n.                 *)
(* ------------------------------------------------------------------ *)

let f5 (ctx : ctx) =
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let series =
    Stats.Series.create ~title:"F5: p95 response vs ring size (1 crash, evp-P1)"
      ~x_label:"n (ring size)" ~y_label:"p95 response (ticks)"
  in
  let point n =
    let s =
      {
        base with
        name = "f5";
        topology = Cgraph.Topology.Ring n;
        detector = oracle_quiet;
        workload = { think = (10, 100); eat = (5, 25) };
        crashes = Scenario.Crash_at [ (n / 2, 5_000) ];
        horizon = 40_000;
        seed = 77L;
        check_every = None;
      }
    in
    let r = Run.run s in
    let summary = Monitor.Response.summary r.response in
    (float_of_int n, summary.p95, Run.throughput r)
  in
  let points = sweep ~domains:ctx.domains sizes point in
  List.iter (fun (x, p95, _) -> Stats.Series.add_point series ~x ~y:p95) points;
  Stats.Series.add_series series ~name:"eats per ktick"
    (List.map (fun (x, _, tp) -> (x, tp)) points);
  [
    Series series;
    Note
      "Expected shape: per-diner response latency is flat in n (contention is local — \
       only neighbors matter), so throughput grows linearly with ring size. This is the \
       practical content of using the locally scope-restricted detector evp-P1: the \
       daemon scales to larger networks.";
  ]

(* ------------------------------------------------------------------ *)
(* F1 — response time across detector convergence (GST).               *)
(* ------------------------------------------------------------------ *)

let f1 (_ : ctx) =
  let gst = 30_000 in
  let s =
    {
      base with
      name = "f1";
      topology = Cgraph.Topology.Clique 6;
      delay = psync ~gst;
      detector = heartbeat_default;
      workload = { think = (0, 60); eat = (10, 40) };
      crashes = Scenario.Crash_at [ (1, 12_000) ];
      horizon = 80_000;
      seed = 29L;
    }
  in
  let r = Run.run s in
  let series =
    Stats.Series.create ~title:"F1: mean response time vs service time (GST = 30000)"
      ~x_label:"time (ticks)" ~y_label:"mean response (ticks)"
  in
  List.iter
    (fun (x, y) -> Stats.Series.add_point series ~x ~y)
    (Monitor.Response.response_series r.response ~bucket:2_000);
  [
    Series series;
    Note
      (Printf.sprintf
         "Heartbeat detector: %d false suspicions, last at %s. Expected shape: noisy \
          response before GST while suspicions churn, settling to a tight band after \
          the adaptive timeouts exceed the post-GST delay bound."
         r.detector_mistakes (Stats.Table.cell_time r.convergence));
  ]

(* ------------------------------------------------------------------ *)
(* F2 — quiescence curve.                                              *)
(* ------------------------------------------------------------------ *)

let f2 (_ : ctx) =
  let crash_t = 10_000 in
  let s =
    {
      base with
      name = "f2";
      topology = Cgraph.Topology.Clique 8;
      detector = oracle_quiet;
      workload = Scenario.contended_workload;
      crashes = Scenario.Crash_at [ (3, crash_t) ];
      horizon = 40_000;
      seed = 41L;
    }
  in
  let r = Run.run s in
  let series =
    Stats.Series.create
      ~title:(Printf.sprintf "F2: messages to the crashed process (crash at %d)" crash_t)
      ~x_label:"time (ticks)" ~y_label:"msgs to crashed / 1k window"
  in
  let window = 1_000 in
  let rec windows t =
    if t >= s.horizon then ()
    else begin
      let count =
        Net.Link_stats.sends_to_in_window r.link_stats ~dst:3 ~from_t:t ~to_t:(t + window)
      in
      Stats.Series.add_point series ~x:(float_of_int t) ~y:(float_of_int count);
      windows (t + window)
    end
  in
  windows 0;
  [
    Series series;
    Note
      "Expected shape: steady traffic while live, a final burst of pings/tokens right \
       after the crash, then permanently zero — quiescence.";
  ]

(* ------------------------------------------------------------------ *)
(* F3 — the overtake bound engages after convergence.                  *)
(* ------------------------------------------------------------------ *)

let f3 (_ : ctx) =
  let s =
    {
      base with
      name = "f3";
      topology = Cgraph.Topology.Clique 6;
      detector =
        Scenario.Oracle { detection_delay = 50; fp_per_edge = 6; fp_window = 20_000; fp_max_len = 400 };
      workload = Scenario.contended_workload;
      crashes = Scenario.No_crashes;
      horizon = 60_000;
      seed = 53L;
    }
  in
  let r = Run.run s in
  let series =
    Stats.Series.create
      ~title:
        (Printf.sprintf "F3: max consecutive overtakes per window (conv = %d)" r.convergence)
      ~x_label:"time (ticks)" ~y_label:"max overtakes / 2k window"
  in
  List.iter
    (fun (x, y) -> Stats.Series.add_point series ~x ~y)
    (Monitor.Fairness.windowed_max r.fairness ~window:2_000 ~horizon:s.horizon);
  [
    Series series;
    Note
      "Expected shape: occasional spikes above 2 while the scripted oracle still lies \
       (suspicions let diners bypass the doorway); after convergence the curve stays <= 2 \
       forever (Theorem 3).";
  ]

(* ------------------------------------------------------------------ *)
(* F4 — stabilization convergence under the daemon.                    *)
(* ------------------------------------------------------------------ *)

let f4 (_ : ctx) =
  let spec =
    {
      Run_stabilize.protocol = Run_stabilize.Coloring;
      transient_faults = [ (20_000, 5); (32_000, 5) ];
      scenario =
        {
          base with
          name = "f4";
          topology = Cgraph.Topology.Random_gnp (16, 0.25, 5L);
          detector = oracle_default;
          crashes = Scenario.Crash_at [ (2, 6_000); (9, 9_000) ];
          horizon = 50_000;
          seed = 61L;
        };
    }
  in
  let r = Run_stabilize.run spec in
  let series =
    Stats.Series.create ~title:"F4: stabilizing coloring error under the wait-free daemon"
      ~x_label:"time (ticks)" ~y_label:"conflict edges"
  in
  List.iter (fun (x, y) -> Stats.Series.add_point series ~x ~y) r.outcome.error_series;
  [
    Series series;
    Note
      (Printf.sprintf
         "Transient faults at 20000 and 32000 appear as spikes; crashes at 6000/9000 do \
          not prevent re-convergence (converged_at = %s). A non-wait-free daemon would \
          flatline at a positive error after the first crash."
         (cell_opt_time r.outcome.converged_at));
  ]

(* ------------------------------------------------------------------ *)
(* F6 — failure locality: how far from a crash starvation spreads.     *)
(* ------------------------------------------------------------------ *)

let f6 (_ : ctx) =
  let crash_pid = 16 and crash_t = 5_000 in
  let horizon = 60_000 in
  let patience = 3_000 in
  let run_one detector =
    Run.run
      {
        base with
        name = "f6";
        topology = Cgraph.Topology.Ring 32;
        detector;
        workload = { think = (10, 80); eat = (5, 25) };
        crashes = Scenario.Crash_at [ (crash_pid, crash_t) ];
        horizon;
        seed = 83L;
      }
  in
  (* A process is starving at time t if some hungry session of its has
     been open for more than [patience] at t. The starvation radius at t
     is the greatest conflict-graph distance from the crash site of any
     starving process (0 = nobody starves). *)
  let radius_series (r : Run.report) =
    let dists = Cgraph.Graph.distances_from r.graph crash_pid in
    let sessions =
      List.map
        (fun (s : Monitor.Response.session) -> (s.pid, s.started, Some s.served))
        (Monitor.Response.completed r.response)
      @ List.map (fun (pid, started) -> (pid, started, None)) (Monitor.Response.open_sessions r.response)
    in
    let radius t =
      List.fold_left
        (fun acc (pid, started, served) ->
          let starving =
            pid <> crash_pid
            && started + patience <= t
            && (match served with None -> true | Some at -> at > t)
          in
          if starving then max acc dists.(pid) else acc)
        0 sessions
    in
    List.init (horizon / 2_000) (fun w ->
        let t = w * 2_000 in
        (float_of_int t, float_of_int (radius t)))
  in
  let ours = run_one oracle_quiet in
  let baseline = run_one Scenario.Never in
  let series =
    Stats.Series.create
      ~title:
        (Printf.sprintf "F6: starvation radius around a crash (ring-32, crash p%d@%d)"
           crash_pid crash_t)
      ~x_label:"time (ticks)" ~y_label:"radius, song-pike+evp-P1"
  in
  List.iter (fun (x, y) -> Stats.Series.add_point series ~x ~y) (radius_series ours);
  Stats.Series.add_series series ~name:"radius, choy-singh (never)" (radius_series baseline);
  [
    Series series;
    Note
      "Failure locality (the metric of the paper's Choy-Singh/Pike-Sivilotti lineage): \
       with evp-P1 the crash never starves anyone (radius pinned at 0 after the \
       detection delay) — failure locality 0 in steady state. Without crash detection \
       the starvation wave expands monotonically from the crash site until it wraps the \
       whole ring (radius 16 = the ring's diameter): failure locality is unbounded, \
       which is exactly why stabilization cannot be scheduled by such a daemon.";
  ]

(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "e1"; title = "Eventual weak exclusion"; claim = "Theorem 1"; run = e1 };
    { id = "e2"; title = "Wait-freedom under crashes"; claim = "Theorem 2"; run = e2 };
    { id = "e3"; title = "Eventual 2-bounded waiting"; claim = "Theorem 3"; run = e3 };
    { id = "e4"; title = "Channel capacity <= 4"; claim = "Section 7"; run = e4 };
    { id = "e5"; title = "Quiescence toward crashed processes"; claim = "Section 7"; run = e5 };
    { id = "e6"; title = "Bounded local memory"; claim = "Section 7"; run = e6 };
    { id = "e7"; title = "Stabilization needs wait-freedom"; claim = "Sections 1-2"; run = e7 };
    { id = "e8"; title = "Doorway ablation"; claim = "design analysis"; run = e8 };
    { id = "e9"; title = "Necessity of each ◇P property"; claim = "Conclusion / [21]"; run = e9 };
    { id = "e10"; title = "All bounds across 10 seeds"; claim = "Theorems 1-3, Section 7"; run = e10 };
    { id = "e11"; title = "Ack-budget fairness knob"; claim = "extension of Theorem 3"; run = e11 };
    { id = "e12"; title = "Doorway vs fork wait breakdown"; claim = "design analysis"; run = e12 };
    { id = "f1"; title = "Response time across GST"; claim = "Theorems 1-2"; run = f1 };
    { id = "f2"; title = "Quiescence curve"; claim = "Section 7"; run = f2 };
    { id = "f3"; title = "Overtake bound after convergence"; claim = "Theorem 3"; run = f3 };
    { id = "f4"; title = "Stabilization error curve"; claim = "Sections 1-2"; run = f4 };
    { id = "f5"; title = "Scalability in n (local oracle)"; claim = "Conclusion"; run = f5 };
    { id = "f6"; title = "Failure locality of a crash"; claim = "lineage of [8]/[20]"; run = f6 };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

(* Report emission goes through a formatter so library code never writes
   to stdout directly; executables pass the sink (default std_formatter).
   Each artifact is flushed eagerly so output interleaves correctly with
   any direct channel writes the caller makes around us. *)
let print_artifact ?(ppf = Format.std_formatter) artifact =
  (match artifact with
  | Table t -> Stats.Table.pp ppf t
  | Series s -> Stats.Series.pp ppf s
  | Note n -> Format.fprintf ppf "note: %s\n\n" n);
  Format.pp_print_flush ppf ()

let run_and_print ?ctx ?(ppf = Format.std_formatter) e =
  let ctx = match ctx with Some c -> c | None -> default_ctx () in
  Format.fprintf ppf "### %s — %s (reproduces: %s)\n\n" (String.uppercase_ascii e.id)
    e.title e.claim;
  List.iter (print_artifact ~ppf) (e.run ctx);
  Format.pp_print_flush ppf ()
