(** Shard-safe synthetic ping workload.

    Every process periodically pings its whole neighborhood over a
    [shard_safe] {!Net.Network}; receivers fold the traffic into
    per-process checksums. Every handler touches only state owned by its
    event's owner pid, so the workload is legal under shard-{e parallel}
    stepping ([~parallel:true] with a domain pool) — unlike the full
    dining worlds, whose monitors and workload share cross-process
    state and therefore run shards sequentially. Tests and the bench use
    it to check (and time) that parallel sharded runs compute exactly
    the sequential result. *)

type result = {
  events : int;  (** Engine events processed. *)
  sent : int;
  received : int;
  checksum : int;  (** Order-sensitive digest of all deliveries. *)
  worst_watermark : int;  (** Max per-edge in-flight watermark. *)
}

val run :
  ?pool:Exec.Pool.t ->
  ?parallel:bool ->
  ?shards:int ->
  ?period:int ->
  ?seed:int64 ->
  topology:Cgraph.Topology.spec ->
  horizon:Sim.Time.t ->
  unit ->
  result
(** Deterministic in [(topology, horizon, period, seed, shards)]:
    [parallel] and [pool] never change the result, and neither does
    [shards] once it is [>= 1] (all staged schedules merge in canonical
    rank order). Defaults: sequential, [shards = 1], [period = 7]. *)
