(** One-shot scenario execution: build a {!World}, run it to the horizon,
    return the report. Kept as a façade over {!World} for the experiment
    suite and tests; new code that wants to interleave probes with
    virtual time should use {!World.create}/{!World.advance} directly. *)

type report = World.report = {
  scenario : Scenario.t;
  graph : Cgraph.Graph.t;
  crashed : (int * Sim.Time.t) list;
      (** Realised crash schedule, ascending time. *)
  convergence : Sim.Time.t;
      (** Time after which the detector's output is settled: exact for
          scripted detectors, measured (last false suspicion + 1) for the
          heartbeat detector, 0 for Never/Perfect. *)
  detector_mistakes : int;
      (** False suspicions committed (heartbeat detector only; scripted
          windows are counted from the scenario). *)
  exclusion : Monitor.Exclusion.t;
  fairness : Monitor.Fairness.t;
  response : Monitor.Response.t;
  phases : Monitor.Phases.t;
      (** Doorway-vs-fork wait breakdown (Song-Pike daemons only; empty
          for the baselines, which emit no doorway events). *)
  link_stats : Net.Link_stats.t;  (** Dining-layer channels only. *)
  total_eats : int;
  eats_per_process : int array;
  hungry_transitions : int;
  invariant_error : string option;
      (** First executable-lemma failure, if any (expected [None]). *)
  max_footprint_bits : int option;  (** Song-Pike only: max over processes. *)
  max_message_bits : int option;    (** Song-Pike only. *)
  events_processed : int;
  horizon : Sim.Time.t;
  metrics : Obs.Metrics.t;
      (** The world's metrics registry — see {!World.report}. *)
}

val run :
  ?backend:Sim.Engine.backend ->
  ?trace:Sim.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?shards:int ->
  Scenario.t ->
  report
(** Execute the scenario to its horizon. Deterministic in the scenario
    (and identical for either engine queue backend). *)

val throughput : report -> float
(** Eats per 1000 ticks. *)

val starved : report -> older_than:int -> Dining.Types.pid list
(** Live processes still hungry at the horizon whose session is older than
    the given age — wait-freedom violations at that patience level. *)
