type detector_state =
  [ `Static of Sim.Time.t | `Oracle of Fd.Oracle.t | `Heartbeat of Fd.Heartbeat.t ]

type parts = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  rng : Sim.Rng.t;
  crashed : (int * Sim.Time.t) list;
  detector : Fd.Detector.t;
  detector_state : detector_state;
  instance : Dining.Instance.t;
  link_stats : Net.Link_stats.t;
  song_pike : Dining.Algorithm.t option;
}

let realise_crashes (s : Scenario.t) rng n =
  match s.crashes with
  | Scenario.No_crashes -> []
  | Scenario.Crash_at list -> List.sort (fun (_, a) (_, b) -> compare a b) list
  | Scenario.Random_crashes { count; from_t; to_t } ->
      if count > n then invalid_arg "Setup: more crashes than processes";
      if count > 0 && to_t <= from_t then invalid_arg "Setup: empty crash window";
      let pids = Array.init n Fun.id in
      Sim.Rng.shuffle rng pids;
      List.init count (fun k -> (pids.(k), Sim.Rng.int_in rng from_t (to_t - 1)))
      |> List.sort (fun (_, a) (_, b) -> compare a b)

let make_detector (s : Scenario.t) ~engine ~faults ~graph ~rng ?metrics () =
  match s.detector with
  | Scenario.Never -> (Fd.Never.create (), (`Static Sim.Time.zero : detector_state))
  | Scenario.Perfect -> (Fd.Perfect.create engine faults graph, `Static Sim.Time.zero)
  | Scenario.Oracle { detection_delay; fp_per_edge; fp_window; fp_max_len } ->
      let false_positives =
        if fp_per_edge = 0 then []
        else
          Fd.Oracle.random_false_positives
            (Sim.Rng.split_named rng "oracle-fp")
            graph ~before:fp_window ~per_edge:fp_per_edge ~max_len:fp_max_len
      in
      let oracle, detector =
        Fd.Oracle.create engine faults graph ~detection_delay ~false_positives ()
      in
      (detector, `Oracle oracle)
  | Scenario.Heartbeat { period; initial_timeout; bump } ->
      let hb, detector =
        Fd.Heartbeat.create ~engine ~faults ~graph ~delay:s.delay
          ~rng:(Sim.Rng.split_named rng "heartbeat")
          ~period ~initial_timeout ~bump ?metrics ()
      in
      (detector, `Heartbeat hb)
  | Scenario.Unreliable { period; duration } ->
      (* Never converges: report convergence at infinity. *)
      ( Fd.Unreliable.create engine faults graph
          (Sim.Rng.split_named rng "unreliable")
          ~period ~duration ~horizon:s.horizon (),
        `Static Sim.Time.infinity )

let make_instance (s : Scenario.t) ~engine ~faults ~graph ~detector ~rng ~trace ?metrics () =
  let net_rng = Sim.Rng.split_named rng "dining-net" in
  match s.algo with
  | Scenario.Song_pike ->
      let algo =
        Dining.Algorithm.create ~engine ~faults ~graph ~delay:s.delay ~rng:net_rng ~detector
          ~trace ?metrics ~acks_per_session:s.acks_per_session ()
      in
      (Dining.Algorithm.instance algo, Dining.Algorithm.network_stats algo, Some algo)
  | Scenario.Fork_only ->
      let algo =
        Baselines.Fork_only.create ~engine ~faults ~graph ~delay:s.delay ~rng:net_rng ~detector ()
      in
      (Baselines.Fork_only.instance algo, Baselines.Fork_only.network_stats algo, None)
  | Scenario.Chandy_misra ->
      let algo =
        Baselines.Chandy_misra.create ~engine ~faults ~graph ~delay:s.delay ~rng:net_rng
          ~detector ()
      in
      (Baselines.Chandy_misra.instance algo, Baselines.Chandy_misra.network_stats algo, None)
  | Scenario.Ordered ->
      let algo =
        Baselines.Ordered.create ~engine ~faults ~graph ~delay:s.delay ~rng:net_rng ~detector ()
      in
      (Baselines.Ordered.instance algo, Baselines.Ordered.network_stats algo, None)

let build ?backend ?(trace = Sim.Trace.create ()) ?metrics ?(shards = 0) (s : Scenario.t) =
  let graph = Cgraph.Topology.build s.topology in
  let n = Cgraph.Graph.n graph in
  let engine = Sim.Engine.create ?backend ~recorder:trace () in
  (* Sequential staged stepping: same results and traces as the legacy
     fire loop, for any shard count (see Sim.Engine). *)
  if shards > 0 then Sim.Engine.set_sharding engine ~shards ~n ();
  let faults = Net.Faults.create engine ~n in
  let rng = Sim.Rng.create s.seed in
  let crashed = realise_crashes s (Sim.Rng.split_named rng "crashes") n in
  let detector, detector_state = make_detector s ~engine ~faults ~graph ~rng ?metrics () in
  let instance, link_stats, song_pike =
    make_instance s ~engine ~faults ~graph ~detector ~rng ~trace ?metrics ()
  in
  List.iter
    (fun (pid, at) ->
      Net.Link_stats.watch_dst link_stats pid;
      Net.Faults.schedule_crash faults ~pid ~at)
    crashed;
  {
    engine;
    faults;
    graph;
    rng;
    crashed;
    detector;
    detector_state;
    instance;
    link_stats;
    song_pike;
  }

let convergence parts =
  match parts.detector_state with
  | `Static t -> (t, 0)
  | `Oracle oracle -> (Fd.Oracle.convergence_time oracle, 0)
  | `Heartbeat hb ->
      let conv =
        match Fd.Heartbeat.last_mistake hb with
        | None -> Sim.Time.zero
        | Some t -> Sim.Time.add t 1
      in
      (conv, Fd.Heartbeat.mistakes hb)
