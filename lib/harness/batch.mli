(** Multi-seed batches: run the same scenario across independent seeds
    and aggregate — the paper's "for every run" claims are checked over a
    sample of runs rather than one lucky schedule.

    Seeds run as independent {!World}s fanned out over an {!Exec.Pool},
    and every aggregate is folded over the reports in seed order, so the
    result is bit-identical for any [?domains] — parallelism buys wall
    clock only, never a different answer. *)

type aggregate = {
  runs : int;
  total_eats : Stats.Summary.t;          (** distribution over runs *)
  response_mean : Stats.Summary.t;        (** per-run mean response *)
  response_p99 : Stats.Summary.t;         (** per-run p99 response *)
  violations : Stats.Summary.t;           (** per-run violation counts *)
  violations_after_conv_total : int;      (** summed; Theorem 1 says 0 *)
  max_overtakes_after_conv : int;         (** worst across runs; Theorem 3 says <= 2 *)
  starved_total : int;                    (** summed; Theorem 2 says 0 *)
  worst_edge_watermark : int;             (** worst across runs; Section 7 says <= 4 *)
  invariant_errors : string list;         (** should be empty *)
}

val run : ?seeds:int -> ?domains:int -> ?patience:Sim.Time.t -> Scenario.t -> aggregate
(** [run ~seeds ~domains ~patience scenario] executes the scenario under
    seeds [1 .. seeds] (default 10), replacing the scenario's own seed,
    and aggregates.

    [domains] caps the parallelism (default
    [Domain.recommended_domain_count ()]; [1] forces the sequential
    fallback). The aggregate does not depend on it.

    [patience] is the starvation threshold: a process counts as starved
    if its hungry session is still open at the horizon and older than
    [patience] ticks (default: 1/4 of the horizon, the historical
    behaviour). Smaller values are stricter. *)

val pp : Format.formatter -> aggregate -> unit
