(* A deliberately shard-safe workload: every event handler touches only
   state owned by the event's owner pid — a process's periodic beat
   (owner = the process) reads and writes its own counters and sends on
   its own CSR row; a delivery (owner = the destination, see
   Net.Network) updates the destination's counters. No monitors, no
   tracing, no shared RNG draws after setup. That makes it legal to run
   with [~parallel:true] on a domain pool, which the harness's full
   dining worlds are not (their monitors and workload share state
   across processes); the equality tests and the bench lean on this to
   demonstrate that shard-parallel stepping computes the same run. *)

type result = { events : int; sent : int; received : int; checksum : int; worst_watermark : int }

let mix h v =
  (* splitmix64-style finalizer over the int domain; associativity is
     irrelevant because pids are folded in index order at report time. *)
  let h = h lxor (v * 0x9E3779B97F4A7C1) in
  let h = h lxor (h lsr 29) in
  h * 0xBF58476D1CE4E5B

let run ?pool ?(parallel = false) ?(shards = 1) ?(period = 7) ?(seed = 0xACE5L)
    ~topology ~horizon () =
  let graph = Cgraph.Topology.build topology in
  let n = Cgraph.Graph.n graph in
  let engine = Sim.Engine.create () in
  Sim.Engine.set_sharding engine ?pool ~parallel ~shards ~n ();
  let faults = Net.Faults.create engine ~n in
  let rng = Sim.Rng.create seed in
  (* Per-pid owned state; a cell is only ever touched by events owned by
     its pid. *)
  let off = Cgraph.Graph.csr_offsets graph in
  let tgt = Cgraph.Graph.csr_targets graph in
  let sent = Array.make n 0 in
  let received = Array.make n 0 in
  let csum = Array.make n 0 in
  let handler ~dst ~src () =
    received.(dst) <- received.(dst) + 1;
    csum.(dst) <- mix csum.(dst) ((src * n) + dst + (Sim.Engine.now engine * 31))
  in
  let network =
    Net.Network.create ~engine ~graph ~delay:(Net.Delay.Uniform (1, 5)) ~faults ~rng
      ~kind:(fun () -> "ping")
      ~shard_safe:true ~handler ()
  in
  for i = 0 to n - 1 do
    let rec beat () =
      let now = Sim.Engine.now engine in
      if now < horizon then begin
        for s = off.(i) to off.(i + 1) - 1 do
          let j = tgt.(s) in
          Net.Network.send network ~src:i ~dst:j ();
          sent.(i) <- sent.(i) + 1
        done;
        ignore (Sim.Engine.schedule_after engine ~owner:i ~delay:period beat)
      end
    in
    (* Phase jitter drawn at setup time, before any stepping: the shared
       rng is never touched once the engine runs. *)
    ignore (Sim.Engine.schedule_after engine ~owner:i ~delay:(1 + Sim.Rng.int rng period) beat)
  done;
  Sim.Engine.run engine ~until:horizon;
  let stats = Net.Network.stats network in
  Net.Link_stats.sync_metrics stats;
  let checksum = ref 0 in
  for i = 0 to n - 1 do
    checksum := mix !checksum csum.(i)
  done;
  {
    events = Sim.Engine.processed engine;
    sent = Array.fold_left ( + ) 0 sent;
    received = Array.fold_left ( + ) 0 received;
    checksum = !checksum land max_int;
    worst_watermark = Net.Link_stats.max_edge_watermark stats;
  }
