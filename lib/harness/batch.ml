type aggregate = {
  runs : int;
  total_eats : Stats.Summary.t;
  response_mean : Stats.Summary.t;
  response_p99 : Stats.Summary.t;
  violations : Stats.Summary.t;
  violations_after_conv_total : int;
  max_overtakes_after_conv : int;
  starved_total : int;
  worst_edge_watermark : int;
  invariant_errors : string list;
}

let run ?(seeds = 10) ?domains ?patience (scenario : Scenario.t) =
  if seeds <= 0 then invalid_arg "Batch.run: seeds must be positive";
  (* Each seed is an independent World; the pool spreads them across
     domains. Reports come back indexed by seed, so every aggregate below
     folds the same list in the same order no matter how many domains
     ran — parallel output is bit-identical to sequential output. *)
  let reports =
    Exec.Pool.with_pool ?domains (fun pool ->
        Exec.Pool.init pool seeds (fun k ->
            Run.run { scenario with seed = Int64.of_int (k + 1) }))
    |> Array.to_list
  in
  let patience =
    match patience with Some p -> p | None -> scenario.horizon / 4
  in
  let per f = List.map f reports in
  {
    runs = seeds;
    total_eats = Stats.Summary.of_ints (per (fun (r : Run.report) -> r.total_eats));
    response_mean =
      Stats.Summary.of_floats (per (fun r -> (Monitor.Response.summary r.response).mean));
    response_p99 =
      Stats.Summary.of_floats (per (fun r -> (Monitor.Response.summary r.response).p99));
    violations = Stats.Summary.of_ints (per (fun r -> Monitor.Exclusion.count r.exclusion));
    violations_after_conv_total =
      List.fold_left ( + ) 0
        (per (fun r -> Monitor.Exclusion.count_after r.exclusion r.convergence));
    max_overtakes_after_conv =
      List.fold_left max 0
        (per (fun r -> Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence));
    starved_total =
      List.fold_left ( + ) 0 (per (fun r -> List.length (Run.starved r ~older_than:patience)));
    worst_edge_watermark =
      List.fold_left max 0 (per (fun r -> Net.Link_stats.max_edge_watermark r.link_stats));
    invariant_errors = List.filter_map (fun (r : Run.report) -> r.invariant_error) reports;
  }

let pp ppf a =
  Format.fprintf ppf
    "%d runs: eats %.0f±%.0f, resp mean %.1f, p99 %.1f, violations/run %.1f (after conv: %d \
     total), overtakes<=%d, starved %d, watermark %d, invariant errors %d"
    a.runs a.total_eats.mean a.total_eats.stddev a.response_mean.mean a.response_p99.mean
    a.violations.mean a.violations_after_conv_total a.max_overtakes_after_conv a.starved_total
    a.worst_edge_watermark
    (List.length a.invariant_errors)
