(** Shared scenario wiring used by {!Run} and {!Run_stabilize}: builds
    engine, crash plan, detector and daemon instance from a scenario. *)

type detector_state =
  [ `Static of Sim.Time.t | `Oracle of Fd.Oracle.t | `Heartbeat of Fd.Heartbeat.t ]

type parts = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  rng : Sim.Rng.t;
  crashed : (int * Sim.Time.t) list;  (** realised, ascending time; already scheduled *)
  detector : Fd.Detector.t;
  detector_state : detector_state;
  instance : Dining.Instance.t;
  link_stats : Net.Link_stats.t;
  song_pike : Dining.Algorithm.t option;
}

val build :
  ?backend:Sim.Engine.backend ->
  ?trace:Sim.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?shards:int ->
  Scenario.t ->
  parts
(** Builds everything and schedules the crash plan (victims are watched in
    [link_stats]). The engine has not run yet. [backend] selects the
    engine's event-queue implementation (default: the engine's own
    default, the timing wheel) — both backends produce bit-identical
    runs. [trace] becomes the engine's recorder, so structural
    event/message records flow into it under full tracing; [metrics] is
    threaded to the dining and heartbeat overlays' link statistics.
    [shards > 0] switches the engine to staged stepping with that many
    shards (default 0, the legacy fire loop) — runs and traces are
    bit-identical either way and for any shard count. *)

val convergence : parts -> Sim.Time.t * int
(** Post-run detector convergence time and (for heartbeat) mistake count. *)
