type t = { mutable hungry_transitions : int }

let sample rng (lo, hi) =
  if lo > hi then invalid_arg "Workload: empty range";
  if lo = hi then lo else Sim.Rng.int_in rng lo hi

let attach ~engine ~faults ~n ~rng ~workload (instance : Dining.Instance.t) =
  let t = { hungry_transitions = 0 } in
  let think_delay () = sample rng workload.Scenario.think in
  let eat_delay () = max 1 (sample rng workload.Scenario.eat) in
  instance.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Hungry -> t.hungry_transitions <- t.hungry_transitions + 1
      | Dining.Types.Eating ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:pid ~delay:(eat_delay ()) (fun () ->
                 instance.stop_eating pid))
      | Dining.Types.Thinking ->
          ignore
            (Sim.Engine.schedule_after engine ~owner:pid ~delay:(think_delay ()) (fun () ->
                 if not (Net.Faults.is_crashed faults pid) then instance.become_hungry pid)));
  for pid = 0 to n - 1 do
    ignore
      (Sim.Engine.schedule engine ~owner:pid ~at:(think_delay ()) (fun () ->
           if not (Net.Faults.is_crashed faults pid) then instance.become_hungry pid))
  done;
  t

let hungry_transitions t = t.hungry_transitions
