(* Thin compatibility façade over {!World}: the report type and the
   one-shot entry point under their historical names. *)

type report = World.report = {
  scenario : Scenario.t;
  graph : Cgraph.Graph.t;
  crashed : (int * Sim.Time.t) list;
  convergence : Sim.Time.t;
  detector_mistakes : int;
  exclusion : Monitor.Exclusion.t;
  fairness : Monitor.Fairness.t;
  response : Monitor.Response.t;
  phases : Monitor.Phases.t;
  link_stats : Net.Link_stats.t;
  total_eats : int;
  eats_per_process : int array;
  hungry_transitions : int;
  invariant_error : string option;
  max_footprint_bits : int option;
  max_message_bits : int option;
  events_processed : int;
  horizon : Sim.Time.t;
  metrics : Obs.Metrics.t;
}

let run = World.run
let throughput = World.throughput
let starved = World.starved
