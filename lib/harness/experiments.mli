(** The reproduction suite.

    The paper (an algorithms paper) states its results as theorems rather
    than measured tables; every experiment here operationalises one claim
    (see DESIGN.md for the mapping) and regenerates a table or an ASCII
    figure. Experiments are deterministic: same build, same output —
    including the domain count, which only changes wall-clock time. *)

type artifact =
  | Table of Stats.Table.t
  | Series of Stats.Series.t
  | Note of string

type ctx = {
  domains : int;  (** parallelism for multi-run sweeps and batches *)
  seeds : int;    (** seeds per batch row (E10) *)
}

val default_ctx : unit -> ctx
(** [{ domains = Exec.Pool.default_domains (); seeds = 10 }] — the
    historical sequential suite ran with [seeds = 10]. *)

type t = {
  id : string;       (** "e1" .. "e12", "f1" .. "f6" *)
  title : string;
  claim : string;    (** the paper claim being reproduced *)
  run : ctx -> artifact list;
}

val all : t list
(** In presentation order: E1..E12 then F1..F6. *)

val find : string -> t option
(** Lookup by case-insensitive id. *)

val run_and_print : ?ctx:ctx -> ?ppf:Format.formatter -> t -> unit
(** Execute and print all artifacts, with a header naming the claim.
    [ctx] defaults to {!default_ctx}; [ppf] to [Format.std_formatter] —
    library code never writes to stdout except through this parameter. *)

val print_artifact : ?ppf:Format.formatter -> artifact -> unit
