type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
  dead : ('a -> bool) option;
  mutable dead_count : int; (* upper bound on dead entries still in heap *)
}

(* Below this size a rebuild costs more than the husks it reclaims. *)
let compaction_floor = 16

let create ?dead () = { heap = [||]; size = 0; next_seq = 0; dead; dead_count = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

(* Only called with a non-empty heap; slots >= size are never read. *)
let grow t =
  assert (t.size > 0);
  let ncap = Array.length t.heap * 2 in
  let nheap = Array.make ncap t.heap.(0) in
  Array.blit t.heap 0 nheap 0 t.size;
  t.heap <- nheap

(* Insert an existing entry, keeping its (prio, seq) identity. *)
let push_entry t entry =
  if t.size >= Array.length t.heap then begin
    if Array.length t.heap = 0 then t.heap <- Array.make 16 entry else grow t
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let add t ~prio value =
  if prio < 0 then invalid_arg "Pqueue.add: negative priority";
  (* Mirror of Wheel.add: [max_int] is [Sim.Time.infinity], the "never"
     sentinel, not a schedulable tick. Both backends must reject it, or a
     saturated [Time.add] would fire an event at the end of time on one
     backend and not the other. *)
  if prio = max_int then
    invalid_arg "Pqueue.add: prio = max_int is Time.infinity (event would never fire)";
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  push_entry t entry

let compact t =
  match t.dead with
  | None -> ()
  | Some is_dead ->
      let live = Array.sub t.heap 0 t.size in
      t.size <- 0;
      t.dead_count <- 0;
      Array.iter (fun e -> if not (is_dead e.value) then push_entry t e) live

let note_dead t =
  t.dead_count <- min t.size (t.dead_count + 1);
  if t.size >= compaction_floor && 2 * t.dead_count > t.size then compact t

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t
    end;
    (match t.dead with
    | Some is_dead when is_dead top.value -> t.dead_count <- max 0 (t.dead_count - 1)
    | _ -> ());
    Some (top.prio, top.value)
  end

let peek_prio t = if t.size = 0 then None else Some t.heap.(0).prio
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.dead_count <- 0;
  t.heap <- [||]
