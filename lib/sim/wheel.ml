(* Hierarchical timing wheel: 8 levels x 256 slots covering the full
   non-negative int tick range. An entry lives at the level of the
   highest byte in which its tick differs from [floor] (the last popped
   tick), in the slot named by that byte of the tick. Because placement
   only depends on bytes at or above the entry's level, and [floor] only
   crosses a level-l window boundary by cascading the slot that covers
   the crossing (which re-inserts its entries relative to the window
   start, strictly below level l), every entry's placement stays
   canonical with respect to the current floor. Two consequences the
   rest of the module relies on:

   - at each level, occupied slots sit at or above the floor's byte for
     that level, so a forward bitmap scan finds the frontier;
   - all entries for one tick are always co-located, so draining one
     level-0 slot and sorting it by (prio, seq) yields exactly the
     global FIFO order for that tick, even though insertion happened
     across different floor epochs.

   Same-tick FIFO order among equal priorities therefore matches
   {!Pqueue} exactly; the dead-husk accounting and compaction threshold
   below are copied from it verbatim, so the two backends produce
   identical pop streams — husks included — for any interleaving of
   add/cancel/pop. The differential tests in test/test_sim.ml hold both
   implementations to that. *)

type 'a entry = { prio : int; seq : int; value : 'a }

let levels = 8
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits
let slot_mask = slots_per_level - 1
let words_per_level = slots_per_level / 32

(* Below this size a rebuild costs more than the husks it reclaims.
   Must match Pqueue.compaction_floor for identical pop streams. *)
let compaction_floor = 16

type 'a t = {
  mutable floor : int; (* last popped tick; no queued entry is below it *)
  slots : 'a entry list array; (* levels * 256, index = (level lsl 8) lor slot *)
  bitmap : int array; (* levels * 8 words, 32 occupancy bits per word *)
  (* Entries for the tick currently being fired, in FIFO order;
     active iff buf_head < buf_len. *)
  mutable buf : 'a entry array;
  mutable buf_head : int;
  mutable buf_len : int;
  mutable current_tick : int; (* tick of the buffered entries *)
  mutable cached_min : int; (* min prio over wheel slots (buffer excluded); -1 = unknown *)
  mutable size : int;
  mutable next_seq : int;
  dead : ('a -> bool) option;
  mutable dead_count : int; (* upper bound on dead entries still queued *)
}

let create ?dead () =
  {
    floor = 0;
    slots = Array.make (levels * slots_per_level) [];
    bitmap = Array.make (levels * words_per_level) 0;
    buf = [||];
    buf_head = 0;
    buf_len = 0;
    current_tick = 0;
    cached_min = -1;
    size = 0;
    next_seq = 0;
    dead;
    dead_count = 0;
  }

let set_bit t l s =
  let w = (l * words_per_level) + (s lsr 5) in
  t.bitmap.(w) <- t.bitmap.(w) lor (1 lsl (s land 31))

let clear_bit t l s =
  let w = (l * words_per_level) + (s lsr 5) in
  t.bitmap.(w) <- t.bitmap.(w) land lnot (1 lsl (s land 31))

let ctz32 x =
  let n = ref 0 in
  let x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Smallest occupied slot >= [from] at level [l], or -1. The scan is
   inclusive of [from]: mid-cascade the floor is a window start whose
   own slot may legitimately hold entries (ticks equal to the window
   start); in externally visible states the floor is a fired tick and
   its slots are empty, so inclusivity is harmless there. *)
let next_slot t l from =
  let base = l * words_per_level in
  let w0 = from lsr 5 in
  let rec go w =
    if w >= words_per_level then -1
    else begin
      let word = t.bitmap.(base + w) in
      let word = if w = w0 then word land lnot ((1 lsl (from land 31)) - 1) else word in
      if word = 0 then go (w + 1) else (w lsl 5) lor ctz32 word
    end
  in
  go w0

let level_of x =
  let rec go l x = if x < slots_per_level then l else go (l + 1) (x lsr slot_bits) in
  go 0 x

let[@lint.hot] wheel_insert t e =
  let l = level_of (e.prio lxor t.floor) in
  let s = (e.prio lsr (l * slot_bits)) land slot_mask in
  let idx = (l lsl slot_bits) lor s in
  (match t.slots.(idx) with [] -> set_bit t l s | _ -> ());
  (* Slots are intrusive-free lists by design: one cons per insert is
     the structure's storage, not incidental garbage. *)
  t.slots.(idx) <- (e :: t.slots.(idx) [@lint.allow "hot-path-alloc"])

(* Cascade re-inserts a drained slot's entries; a toplevel recursion
   instead of List.iter keeps the cascade path closure-free. *)
let[@lint.hot] rec reinsert t es =
  match es with
  | [] -> ()
  | e :: tl ->
      wheel_insert t e;
      reinsert t tl

let buf_active t = t.buf_head < t.buf_len

let buf_reset t =
  t.buf <- [||];
  t.buf_head <- 0;
  t.buf_len <- 0

let buf_append t e =
  if t.buf_len >= Array.length t.buf then begin
    let nbuf = Array.make (max 4 (2 * Array.length t.buf)) e in
    Array.blit t.buf 0 nbuf 0 t.buf_len;
    t.buf <- nbuf
  end;
  t.buf.(t.buf_len) <- e;
  t.buf_len <- t.buf_len + 1

let add t ~prio value =
  if prio < 0 then invalid_arg "Wheel.add: negative priority";
  (* [max_int] is [Sim.Time.infinity], the "never" sentinel ([find_min]
     also uses it as a fold seed); an entry at that tick would mean a
     saturated [Time.add] silently became a real event at the end of
     time. Every finite tick up to [max_int - 1] is representable. *)
  if prio = max_int then
    invalid_arg "Wheel.add: prio = max_int is Time.infinity (event would never fire)";
  if prio < t.floor then
    invalid_arg
      (Printf.sprintf "Wheel.add: prio=%d is below the last popped tick (%d)" prio t.floor);
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  if buf_active t && prio = t.current_tick then buf_append t e
  else if (not (buf_active t)) && prio = t.floor then begin
    t.current_tick <- t.floor;
    buf_append t e
  end
  else begin
    wheel_insert t e;
    if t.cached_min >= 0 && prio < t.cached_min then t.cached_min <- prio
  end

let entry_compare a b = if a.prio <> b.prio then compare a.prio b.prio else compare a.seq b.seq

(* Move the frontier level-0 slot into the FIFO buffer. *)
let drain_slot t s =
  let entries = t.slots.(s) in
  t.slots.(s) <- [];
  clear_bit t 0 s;
  t.cached_min <- -1;
  let arr = Array.of_list entries in
  Array.sort entry_compare arr;
  let tick = arr.(0).prio in
  let n = Array.length arr in
  let k = ref 1 in
  while !k < n && arr.(!k).prio = tick do incr k done;
  if !k < n then begin
    (* Defensive: canonical placement keeps one tick per level-0 slot,
       but if later ticks ever cohabit, hand them back to the wheel. *)
    for i = !k to n - 1 do
      wheel_insert t arr.(i)
    done;
    t.buf <- Array.sub arr 0 !k
  end
  else t.buf <- arr;
  t.buf_head <- 0;
  t.buf_len <- !k;
  t.current_tick <- tick

(* Distribute a level-l slot into lower levels. Re-anchoring the floor
   at the slot's window start is what keeps the redistributed entries
   canonically placed: each one shares bytes > l with the window start,
   so its new level is strictly below l and the advance loop makes
   progress. Raising the floor here is safe because everything still
   queued is at or beyond the window start, and the floor is observed
   externally only after [pop] restores it to a fired tick. *)
let[@lint.hot] cascade t l s =
  let idx = (l lsl slot_bits) lor s in
  let entries = t.slots.(idx) in
  t.slots.(idx) <- [];
  clear_bit t l s;
  let above =
    if (l + 1) * slot_bits >= Sys.int_size - 1 then 0
    else t.floor land lnot ((1 lsl ((l + 1) * slot_bits)) - 1)
  in
  t.floor <- above lor (s lsl (l * slot_bits));
  reinsert t entries

(* Find the frontier slot: levels are scanned lowest first because a
   level-l entry shares all bytes above l with the floor, so anything at
   a lower level is earlier. Within a level the first occupied slot at
   or after the floor's byte is earliest. *)
let frontier t =
  let rec find l =
    if l >= levels then invalid_arg "Wheel: corrupt structure (size > 0 but no occupied slot)"
    else begin
      let cursor = (t.floor lsr (l * slot_bits)) land slot_mask in
      let s = next_slot t l cursor in
      if s < 0 then find (l + 1) else (l, s)
    end
  in
  find 0

let rec advance t =
  let l, s = frontier t in
  if l = 0 then drain_slot t s
  else begin
    cascade t l s;
    advance t
  end

(* Min priority over wheel slots without mutating; the frontier slot at
   a level >= 1 spans a range of ticks, hence the fold. *)
let find_min t =
  let l, s = frontier t in
  List.fold_left
    (fun acc e -> if e.prio < acc then e.prio else acc)
    max_int
    t.slots.((l lsl slot_bits) lor s)

let peek_prio t =
  if buf_active t then Some t.current_tick
  else if t.size = 0 then None
  else begin
    if t.cached_min < 0 then t.cached_min <- find_min t;
    Some t.cached_min
  end

let rec pop t =
  if buf_active t then begin
    let e = t.buf.(t.buf_head) in
    t.buf_head <- t.buf_head + 1;
    if t.buf_head = t.buf_len then buf_reset t;
    t.floor <- t.current_tick;
    t.size <- t.size - 1;
    (match t.dead with
    | Some is_dead when is_dead e.value -> t.dead_count <- max 0 (t.dead_count - 1)
    | _ -> ());
    Some (e.prio, e.value)
  end
  else if t.size = 0 then None
  else begin
    advance t;
    pop t
  end

let compact t =
  match t.dead with
  | None -> ()
  | Some is_dead ->
      let live = ref 0 in
      for idx = 0 to (levels * slots_per_level) - 1 do
        match t.slots.(idx) with
        | [] -> ()
        | entries ->
            let kept = List.filter (fun e -> not (is_dead e.value)) entries in
            t.slots.(idx) <- kept;
            (match kept with
            | [] -> clear_bit t (idx lsr slot_bits) (idx land slot_mask)
            | _ -> ());
            live := !live + List.length kept
      done;
      if buf_active t then begin
        let kept = ref [] in
        for i = t.buf_len - 1 downto t.buf_head do
          let e = t.buf.(i) in
          if not (is_dead e.value) then kept := e :: !kept
        done;
        match !kept with
        | [] -> buf_reset t
        | es ->
            let arr = Array.of_list es in
            t.buf <- arr;
            t.buf_head <- 0;
            t.buf_len <- Array.length arr;
            live := !live + Array.length arr
      end;
      t.size <- !live;
      t.dead_count <- 0;
      t.cached_min <- -1

let note_dead t =
  t.dead_count <- min t.size (t.dead_count + 1);
  if t.size >= compaction_floor && 2 * t.dead_count > t.size then compact t

let size t = t.size
let is_empty t = t.size = 0
let floor t = t.floor

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) [];
  Array.fill t.bitmap 0 (Array.length t.bitmap) 0;
  buf_reset t;
  t.floor <- 0;
  t.current_tick <- 0;
  t.cached_min <- -1;
  t.size <- 0;
  t.dead_count <- 0
