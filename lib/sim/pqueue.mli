(** Mutable binary min-heap used as the simulator's event queue.

    Entries are ordered by priority (virtual time) and, among equal
    priorities, by insertion order, giving the engine a deterministic
    event order.

    Cancelled entries stay in the heap as husks until popped. When a
    [dead] predicate is supplied at creation, the owner can report
    cancellations with {!note_dead}; once more than half of the queued
    entries are dead (and the heap is non-trivially sized) the heap is
    rebuilt without them, so long runs with many cancelled timeouts keep
    O(log live) operations. Compaction preserves the priority/insertion
    order of the surviving entries. *)

type 'a t

val create : ?dead:('a -> bool) -> unit -> 'a t
(** [create ~dead ()] makes an empty queue. [dead v] must answer whether
    entry [v] has been logically cancelled; it is consulted during
    compaction and on {!pop} to maintain the dead-entry count. Without
    [dead], the queue never compacts (seed behaviour). *)

val add : 'a t -> prio:int -> 'a -> unit
(** Insert an element with the given priority. O(log n).
    @raise Invalid_argument if [prio] is negative or equal to [max_int]
    ([Time.infinity], the "never" sentinel — such an event would never
    fire). *)

val note_dead : 'a t -> unit
(** Tell the queue one of its entries just became dead. May trigger a
    compaction that drops every entry for which the [dead] predicate
    holds. Call at most once per logically cancelled entry. *)

val compact : 'a t -> unit
(** Force a rebuild dropping dead entries now. No-op without a [dead]
    predicate. O(n log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry, FIFO among equal priorities.
    O(log n). Dead entries are returned like any other (the caller skips
    them); popping one decrements the dead-entry count. *)

val peek_prio : 'a t -> int option
(** Priority of the minimum entry without removing it. *)

val size : 'a t -> int
(** Entries currently in the heap, including dead husks not yet
    reclaimed by compaction. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
