(** Flat-record view of the simulation trace.

    Historically the whole tracing subsystem; now a compatibility façade
    over {!Obs.Recorder}, which holds the typed event stream. A
    [Trace.t] {e is} a recorder: pass it to {!Engine.create} (the
    harness does) and every component of that world emits typed records
    into it; this module renders the light ones (marks, phase
    transitions, crashes, suspicion flips) as flat
    [{time; subject; tag; detail}] rows for sinks that want printable
    lines — tests, monitors, examples and the CLI [--trace] flag.

    Tracing is off by default and costs one branch per emission when
    disabled. Structural records (engine and network internals) only
    flow under full tracing — see {!Obs.Recorder}. *)

type record = {
  time : Time.t;
  subject : int;  (** Process id the record is about, or -1 for global. *)
  tag : string;   (** Short machine-readable category, e.g. ["eat"]. *)
  detail : string;
}

type t = Obs.Recorder.t

val create : unit -> t
(** A disabled trace: emissions are dropped until a sink is attached. *)

val collecting : unit -> t
(** A trace that retains every typed record in memory (full tracing);
    {!records} returns the light ones, {!Obs.Recorder.records} all. *)

val on_record : t -> (record -> unit) -> unit
(** Attach a callback sink for light records; enables the trace. Sinks
    fire in subscription order. *)

val emit : t -> time:Time.t -> subject:int -> tag:string -> string -> unit
val emitf :
  t -> time:Time.t -> subject:int -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val enabled : t -> bool

val records : t -> record list
(** Light records collected so far (oldest first); empty unless
    {!collecting} was used. *)

val pp_record : Format.formatter -> record -> unit
