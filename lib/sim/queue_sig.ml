(** The event-queue contract the engine programs against.

    Two implementations satisfy it: {!Pqueue}, the reference binary heap
    (O(log n) operations, any integer priority), and {!Wheel}, the
    hierarchical timing wheel (amortised O(1) operations, non-negative
    priorities that never go below the last popped one — exactly the
    discipline a virtual-time engine follows). The differential tests in
    [test/test_sim.ml] drive both through identical randomized
    schedule/cancel/pop workloads and assert equal pop streams, husks
    included, so the engine can switch backend without observable
    change. *)

module type S = sig
  type 'a t

  val create : ?dead:('a -> bool) -> unit -> 'a t
  (** [create ~dead ()] makes an empty queue. [dead v] must answer
      whether entry [v] has been logically cancelled; it is consulted
      during compaction and on {!pop} to maintain the dead-entry count.
      Without [dead], the queue never compacts. *)

  val add : 'a t -> prio:int -> 'a -> unit
  (** Insert an element with the given priority. Rejects [max_int]
      ([Time.infinity]) with [Invalid_argument]: that priority is the
      "never" sentinel, not a schedulable tick. *)

  val note_dead : 'a t -> unit
  (** Tell the queue one of its entries just became dead. May trigger a
      compaction that drops every entry for which the [dead] predicate
      holds. Call at most once per logically cancelled entry. *)

  val compact : 'a t -> unit
  (** Force a rebuild dropping dead entries now. No-op without a [dead]
      predicate. *)

  val pop : 'a t -> (int * 'a) option
  (** Remove and return the minimum entry, FIFO among equal priorities.
      Dead entries are returned like any other (the caller skips them);
      popping one decrements the dead-entry count. *)

  val peek_prio : 'a t -> int option
  (** Priority of the minimum entry without removing it. *)

  val size : 'a t -> int
  (** Entries currently queued, including dead husks not yet reclaimed
      by compaction. *)

  val is_empty : 'a t -> bool
  val clear : 'a t -> unit
end
