(** Discrete-event simulation engine.

    The engine owns a virtual clock and a deterministic event queue.
    Events are closures scheduled at absolute virtual times; events with
    equal times fire in scheduling order. Handlers run instantaneously in
    virtual time and may schedule further events. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : ?recorder:Obs.Recorder.t -> unit -> t
(** [create ~recorder ()] wires the engine's structural observability
    hooks — a record per event scheduled, fired or cancelled — into the
    given recorder (see {!Obs.Recorder}; defaults to a disabled one, in
    which case each hook costs a single branch). *)

val now : t -> Time.t
(** Current virtual time. *)

val recorder : t -> Obs.Recorder.t
(** The recorder this engine (and every component built on it) emits
    into — one per simulated world. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~at f] runs [f] when the clock reaches [at]. [at] must not
    be in the past. Scheduling at [Time.infinity] is a no-op that returns a
    dead id. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule_after t ~delay f] = [schedule t ~at:(now t + delay) f]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled event
    is a no-op. *)

val run : t -> until:Time.t -> unit
(** Process events in time order until the queue is empty or the next
    event is strictly later than [until]. The clock is left at the time of
    the last processed event (or unchanged if none fired). *)

val run_all : t -> unit
(** Process events until the queue is empty. Only safe for event graphs
    that quiesce. *)

val pending : t -> int
(** Number of events still queued. Cancelled husks count until they are
    popped or reclaimed — the queue compacts itself once more than half
    of its entries are cancelled. *)

val processed : t -> int
(** Total number of events fired so far. *)
