(** Discrete-event simulation engine.

    The engine owns a virtual clock and a deterministic event queue.
    Events are closures scheduled at absolute virtual times; events with
    equal times fire in scheduling order. Handlers run instantaneously in
    virtual time and may schedule further events.

    {2 Sharded stepping}

    {!set_sharding} switches the engine from the legacy
    one-event-at-a-time fire loop to staged stepping: each step drains
    every event of the frontier tick into a batch, fires the batch, and
    merges the events scheduled during the firing back into the queue in
    a canonical order — sorted by the pop rank of the scheduling event,
    program order within a rank. Because pop order does not depend on
    the shard count, the merged schedule (and hence the trace) is
    bit-identical for any [shards]; the sequential staged path is
    furthermore byte-identical to the legacy loop. When a pool is
    attached and [parallel] is set, each shard's slice of the batch
    fires on its own domain — only sound when every handler touches
    state of its own shard exclusively (cross-shard effects must go
    through [schedule] or a staged component such as
    [Net.Link_stats]); full tracing must be off. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

type backend = [ `Heap | `Wheel ]
(** Event-queue implementation behind the engine, both satisfying
    {!Queue_sig.S} with identical observable behaviour: [`Wheel] is the
    hierarchical timing wheel ({!Wheel}, amortised O(1), the default);
    [`Heap] is the reference binary heap ({!Pqueue}). *)

val create : ?backend:backend -> ?recorder:Obs.Recorder.t -> unit -> t
(** [create ~backend ~recorder ()] wires the engine's structural
    observability hooks — a record per event scheduled, fired or
    cancelled — into the given recorder (see {!Obs.Recorder}; defaults
    to a disabled one, in which case each hook costs a single branch).
    [backend] selects the event queue (default [`Wheel]); traces are
    bit-identical either way. *)

val backend : t -> backend
(** Which queue backend this engine runs on. *)

val now : t -> Time.t
(** Current virtual time. *)

val recorder : t -> Obs.Recorder.t
(** The recorder this engine (and every component built on it) emits
    into — one per simulated world. *)

val schedule : t -> ?owner:int -> at:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~owner ~at f] runs [f] when the clock reaches [at]. [at]
    must not be in the past. Scheduling at [Time.infinity] is a no-op
    that returns a dead id. [owner] is the process the event belongs to
    (default: ownerless); sharded stepping partitions the batch on it.
    Owners outside the 21-bit field are treated as ownerless. *)

val schedule_after : t -> ?owner:int -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule_after t ~delay f] = [schedule t ~at:(now t + delay) f]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled event
    is a no-op. *)

val run : t -> until:Time.t -> unit
(** Process events in time order until the queue is empty or the next
    event is strictly later than [until]. The clock is left at the time of
    the last processed event (or unchanged if none fired). *)

val run_all : t -> unit
(** Process events until the queue is empty. Only safe for event graphs
    that quiesce. *)

val pending : t -> int
(** Number of events still queued. Cancelled husks count until they are
    popped or reclaimed — the queue compacts itself once more than half
    of its entries are cancelled. *)

val processed : t -> int
(** Total number of events fired so far. *)

val set_sharding : t -> ?pool:Exec.Pool.t -> ?parallel:bool -> shards:int -> n:int -> unit -> unit
(** [set_sharding t ~pool ~parallel ~shards ~n ()] enables staged
    stepping with [shards] contiguous shards over owner pids [0, n)
    (clamped to [n]). Without [pool] (or with [parallel] false, the
    default) batches still fire sequentially in pop order — same
    results, same traces, any [shards]. With a pool and [~parallel:true]
    batches fire shard-parallel whenever full tracing is off; the caller
    thereby asserts every handler is shard-safe. Call before running;
    raises [Invalid_argument] mid-step or if [n] exceeds the owner
    field. *)

val shards : t -> int
(** Number of shards staged stepping partitions into; 0 when the engine
    is on the legacy fire loop. *)

val shard_of : t -> int -> int
(** [shard_of t owner] is the shard owning that pid under the current
    partition (0 for ownerless / unsharded). *)

val fire_rank : t -> int
(** Pop rank of the event currently firing on this domain, -1 outside a
    fire phase. The canonical-merge key for staged per-shard effects. *)

val fire_shard : t -> int
(** Shard of the event currently firing on this domain, -1 outside a
    fire phase. *)

val add_step_hook : t -> (unit -> unit) -> unit
(** Register a hook run (on the submitting domain) after every staged
    sub-round merge — where components with their own per-shard staging
    (e.g. [Net.Link_stats]) apply buffered cross-shard effects in
    canonical order. Never called on the legacy fire loop. *)
