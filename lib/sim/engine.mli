(** Discrete-event simulation engine.

    The engine owns a virtual clock and a deterministic event queue.
    Events are closures scheduled at absolute virtual times; events with
    equal times fire in scheduling order. Handlers run instantaneously in
    virtual time and may schedule further events. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

type backend = [ `Heap | `Wheel ]
(** Event-queue implementation behind the engine, both satisfying
    {!Queue_sig.S} with identical observable behaviour: [`Wheel] is the
    hierarchical timing wheel ({!Wheel}, amortised O(1), the default);
    [`Heap] is the reference binary heap ({!Pqueue}). *)

val create : ?backend:backend -> ?recorder:Obs.Recorder.t -> unit -> t
(** [create ~backend ~recorder ()] wires the engine's structural
    observability hooks — a record per event scheduled, fired or
    cancelled — into the given recorder (see {!Obs.Recorder}; defaults
    to a disabled one, in which case each hook costs a single branch).
    [backend] selects the event queue (default [`Wheel]); traces are
    bit-identical either way. *)

val backend : t -> backend
(** Which queue backend this engine runs on. *)

val now : t -> Time.t
(** Current virtual time. *)

val recorder : t -> Obs.Recorder.t
(** The recorder this engine (and every component built on it) emits
    into — one per simulated world. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~at f] runs [f] when the clock reaches [at]. [at] must not
    be in the past. Scheduling at [Time.infinity] is a no-op that returns a
    dead id. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule_after t ~delay f] = [schedule t ~at:(now t + delay) f]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled event
    is a no-op. *)

val run : t -> until:Time.t -> unit
(** Process events in time order until the queue is empty or the next
    event is strictly later than [until]. The clock is left at the time of
    the last processed event (or unchanged if none fired). *)

val run_all : t -> unit
(** Process events until the queue is empty. Only safe for event graphs
    that quiesce. *)

val pending : t -> int
(** Number of events still queued. Cancelled husks count until they are
    popped or reclaimed — the queue compacts itself once more than half
    of its entries are cancelled. *)

val processed : t -> int
(** Total number of events fired so far. *)
