(** Hierarchical timing wheel used as the simulator's event queue at
    scale.

    Eight levels of 256 slots cover the full non-negative tick range;
    an entry is filed at the level of the highest byte in which its
    tick differs from the wheel's floor (the last popped tick).
    Schedule, fire and cancel are amortised O(1): popping drains one
    level-0 slot at a time into a FIFO buffer, occasionally cascading a
    higher-level slot down one level.

    The observable behaviour — pop order among equal ticks, husk
    handling for cancelled entries, the compaction threshold — matches
    {!Pqueue} exactly (see {!Queue_sig.S}), so the engine can switch
    between the two without changing a single trace. The extra
    constraints the wheel imposes, priorities non-negative and never
    below the last popped one, are precisely the discipline a
    virtual-time engine already follows; violations raise
    [Invalid_argument]. *)

type 'a t

val create : ?dead:('a -> bool) -> unit -> 'a t
(** [create ~dead ()] makes an empty wheel. [dead v] must answer
    whether entry [v] has been logically cancelled; it is consulted
    during compaction and on {!pop} to maintain the dead-entry count.
    Without [dead], the wheel never compacts. *)

val add : 'a t -> prio:int -> 'a -> unit
(** Insert an element with the given priority (tick). Amortised O(1).
    Every finite tick up to [max_int - 1] is representable.
    @raise Invalid_argument if [prio] is negative, below the last
    popped tick, or equal to [max_int] ([Time.infinity], the "never"
    sentinel — such an event would never fire). *)

val note_dead : 'a t -> unit
(** Tell the wheel one of its entries just became dead. May trigger a
    compaction that drops every entry for which the [dead] predicate
    holds. Call at most once per logically cancelled entry. *)

val compact : 'a t -> unit
(** Force a sweep dropping dead entries now. No-op without a [dead]
    predicate. O(n + slots). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry, FIFO among equal priorities.
    Amortised O(1). Dead entries are returned like any other (the
    caller skips them); popping one decrements the dead-entry count. *)

val peek_prio : 'a t -> int option
(** Priority of the minimum entry without removing it. Does not
    advance the wheel. *)

val size : 'a t -> int
(** Entries currently queued, including dead husks not yet reclaimed
    by compaction. *)

val is_empty : 'a t -> bool

val floor : 'a t -> int
(** The last popped tick — no queued entry is below it. Exposed for
    tests and diagnostics. *)

val clear : 'a t -> unit
