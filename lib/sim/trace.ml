(* Compatibility façade over Obs.Recorder: the historical flat-record
   view of the light channel. A Trace.t IS a recorder, so the same value
   both feeds legacy sinks (monitors, --trace) and, when collecting,
   captures the full typed stream for JSONL export. *)

type record = { time : Time.t; subject : int; tag : string; detail : string }

type t = Obs.Recorder.t

let create () = Obs.Recorder.create ()
let collecting () = Obs.Recorder.collecting ()

(* Typed light records rendered as legacy rows. Phase tags keep their
   historical names ("eat"/"think", not "eating"/"thinking") so existing
   trace consumers and printed traces are unchanged. *)
let legacy_view (r : Obs.Record.t) =
  match r.kind with
  | Obs.Record.Mark { subject; tag; detail } -> Some { time = r.time; subject; tag; detail }
  | Obs.Record.Phase { pid; phase } ->
      let tag = match phase with "eating" -> "eat" | "thinking" -> "think" | s -> s in
      Some { time = r.time; subject = pid; tag; detail = "" }
  | Obs.Record.Crash { pid } -> Some { time = r.time; subject = pid; tag = "crash"; detail = "" }
  | Obs.Record.Suspect { observer; target; on } ->
      Some
        {
          time = r.time;
          subject = observer;
          tag = (if on then "suspect" else "unsuspect");
          detail = Printf.sprintf "p%d" target;
        }
  | _ -> None

let on_record t f =
  Obs.Recorder.on_light t (fun r ->
      match legacy_view r with Some lr -> f lr | None -> ())

let enabled t = Obs.Recorder.enabled t

let emit t ~time ~subject ~tag detail = Obs.Recorder.mark t ~time ~subject ~tag detail

let emitf t ~time ~subject ~tag fmt =
  Format.kasprintf (fun detail -> emit t ~time ~subject ~tag detail) fmt

let records t = List.filter_map legacy_view (Obs.Recorder.records t)

let pp_record ppf r =
  Format.fprintf ppf "[%8s] p%-3d %-14s %s" (Time.to_string r.time) r.subject r.tag r.detail
