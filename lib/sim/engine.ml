(* [state] packs the event id with its lifecycle flags so the record
   stays at two fields — bit 0 = cancelled, bit 1 = fired, bits 2..
   = id. Keeping the per-event allocation small matters: the engine
   allocates one of these per scheduled event on the hot path. *)
type event = { mutable state : int; action : unit -> unit }

let cancelled_bit = 1
let fired_bit = 2
let id_of_state st = st lsr 2

type event_id = event option

type t = {
  mutable clock : Time.t;
  queue : event Pqueue.t;
  mutable processed : int;
  mutable next_id : int;
  recorder : Obs.Recorder.t;
  tracing : bool ref; (* the recorder's live full-tracing flag *)
}

let create ?recorder () =
  let recorder = match recorder with Some r -> r | None -> Obs.Recorder.create () in
  {
    clock = Time.zero;
    queue = Pqueue.create ~dead:(fun ev -> ev.state land cancelled_bit <> 0) ();
    processed = 0;
    next_id = 0;
    recorder;
    tracing = Obs.Recorder.tracing_flag recorder;
  }

let now t = t.clock
let recorder t = t.recorder

let schedule t ~at f =
  if at = Time.infinity then None
  else begin
    if at < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.clock);
    let ev = { state = t.next_id lsl 2; action = f } in
    t.next_id <- t.next_id + 1;
    Pqueue.add t.queue ~prio:at ev;
    (* Call-site guard: the emission call is skipped entirely when full
       tracing is off, keeping the hot path at one load + branch. *)
    if !(t.tracing) then
      Obs.Recorder.sched t.recorder ~time:t.clock ~id:(id_of_state ev.state) ~at;
    Some ev
  end

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel t id =
  match id with
  | None -> ()
  | Some ev ->
      (* Count each still-queued event as dead at most once; cancelling a
         fired event must not skew the queue's husk accounting. *)
      if ev.state land (cancelled_bit lor fired_bit) = 0 then begin
        ev.state <- ev.state lor cancelled_bit;
        Pqueue.note_dead t.queue;
        if !(t.tracing) then
          Obs.Recorder.cancel t.recorder ~time:t.clock ~id:(id_of_state ev.state)
      end

let run t ~until =
  let continue = ref true in
  while !continue do
    match Pqueue.peek_prio t.queue with
    | None -> continue := false
    | Some at when at > until -> continue := false
    | Some _ -> (
        match Pqueue.pop t.queue with
        | None -> continue := false
        | Some (at, ev) ->
            let st = ev.state in
            ev.state <- st lor fired_bit;
            if st land cancelled_bit = 0 then begin
              t.clock <- at;
              t.processed <- t.processed + 1;
              if !(t.tracing) then Obs.Recorder.fire t.recorder ~time:at ~id:(id_of_state st);
              ev.action ()
            end)
  done

let run_all t = run t ~until:Time.infinity
let pending t = Pqueue.size t.queue
let processed t = t.processed
