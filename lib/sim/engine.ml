(* Compile-time proof that both queue backends satisfy the contract the
   engine programs against. *)
module _ : Queue_sig.S = Pqueue
module _ : Queue_sig.S = Wheel

(* [state] packs the event id, the owning process and the lifecycle
   flags so the record stays at two fields — bit 0 = cancelled, bit 1 =
   fired, bits 2..22 = owner + 1 (0 = ownerless), bits 23.. = id.
   Keeping the per-event allocation small matters: the engine allocates
   one of these per scheduled event on the hot path. The owner is what
   sharded stepping partitions on; owners above {!owner_limit} are
   silently treated as ownerless (set_sharding rejects such process
   counts, so only legacy runs — where the owner is unused — ever get
   there). [action] is mutable so cancel/fire can drop the closure: a
   cancelled husk may sit in the queue until its tick is reached, and it
   must not retain the closure's environment for all that time. *)
type event = { mutable state : int; mutable action : unit -> unit }

let cancelled_bit = 1
let fired_bit = 2
let owner_bits = 21
let owner_mask = (1 lsl owner_bits) - 1
let owner_limit = owner_mask - 1
let id_shift = 2 + owner_bits
let id_of_state st = st lsr id_shift
let owner_of_state st = ((st lsr 2) land owner_mask) - 1
let pack_owner owner = (owner + 1) lsl 2
let noop () = ()

type event_id = event option

type backend = [ `Heap | `Wheel ]

(* An effect buffered during a sharded step: an event scheduled while
   the step's batch was firing, remembered with the pop rank of the
   event that scheduled it. The rank is what makes the end-of-step merge
   canonical: the batch fires in pop order whatever the shard count, so
   (rank, per-shard program order) is a total order independent of S. *)
type staged = { s_at : Time.t; s_rank : int; s_ev : event }

type svec = { mutable sa : staged array; mutable sn : int }

(* Per-domain fire context: which shard is firing and the rank of the
   event being fired. Domain-local so the parallel fire phase can route
   nested [schedule]/[cancel] calls without touching shared state. *)
type fire_ctx = { mutable rank : int; mutable shard : int }

(* Runtime switch rather than a functor: worlds pick their backend per
   engine (CLI flag, differential tests), and the one-branch dispatch is
   noise next to the queue operation itself. *)
type queue = Q_heap of event Pqueue.t | Q_wheel of event Wheel.t

type t = {
  mutable clock : Time.t;
  queue : queue;
  mutable processed : int;
  mutable next_id : int;
  recorder : Obs.Recorder.t;
  tracing : bool ref; (* the recorder's live full-tracing flag *)
  (* Sharded stepping (shards = 0: the legacy one-event-at-a-time fire
     loop, byte-identical to what it always was). *)
  mutable shards : int;
  mutable shard_n : int; (* process count the partition covers *)
  mutable pool : Exec.Pool.t option;
  mutable parallel : bool; (* caller asserts shard-safe handlers *)
  mutable staging : svec array; (* per shard, reused across steps *)
  mutable deferred_dead : int array; (* per shard: husk notes owed to the queue *)
  mutable in_step : bool;
  mutable par_step : bool; (* this step fires its batches on the pool *)
  mutable base_rank : int; (* rank of the current sub-round's first event *)
  mutable batch_ev : event array; (* the tick's events in pop order *)
  mutable batch_len : int;
  mutable pb_ev : event array; (* parallel scatter: batch grouped by shard *)
  mutable pb_rank : int array;
  mutable pb_off : int array; (* shard s owns pb indices [off.(s), off.(s+1)) *)
  mutable pb_cur : int array;
  mutable shard_fired : int array;
  mutable step_hooks : (unit -> unit) list; (* run after each sub-round merge *)
  ctx_key : fire_ctx Domain.DLS.key;
}

let default_backend : backend = `Wheel

let create ?(backend = default_backend) ?recorder () =
  let recorder = match recorder with Some r -> r | None -> Obs.Recorder.create () in
  let dead ev = ev.state land cancelled_bit <> 0 in
  let queue =
    match backend with
    | `Heap -> Q_heap (Pqueue.create ~dead ())
    | `Wheel -> Q_wheel (Wheel.create ~dead ())
  in
  {
    clock = Time.zero;
    queue;
    processed = 0;
    next_id = 0;
    recorder;
    tracing = Obs.Recorder.tracing_flag recorder;
    shards = 0;
    shard_n = 0;
    pool = None;
    parallel = false;
    staging = [||];
    deferred_dead = [||];
    in_step = false;
    par_step = false;
    base_rank = 0;
    batch_ev = [||];
    batch_len = 0;
    pb_ev = [||];
    pb_rank = [||];
    pb_off = [||];
    pb_cur = [||];
    shard_fired = [||];
    step_hooks = [];
    ctx_key = Domain.DLS.new_key (fun () -> { rank = -1; shard = -1 });
  }

let backend t = match t.queue with Q_heap _ -> `Heap | Q_wheel _ -> `Wheel
let now t = t.clock
let recorder t = t.recorder

let q_add t ~prio ev =
  match t.queue with
  | Q_heap q -> Pqueue.add q ~prio ev
  | Q_wheel q -> Wheel.add q ~prio ev

let q_note_dead t =
  match t.queue with Q_heap q -> Pqueue.note_dead q | Q_wheel q -> Wheel.note_dead q

let q_peek_prio t =
  match t.queue with Q_heap q -> Pqueue.peek_prio q | Q_wheel q -> Wheel.peek_prio q

let q_pop t = match t.queue with Q_heap q -> Pqueue.pop q | Q_wheel q -> Wheel.pop q
let q_size t = match t.queue with Q_heap q -> Pqueue.size q | Q_wheel q -> Wheel.size q

let set_sharding t ?pool ?(parallel = false) ~shards ~n () =
  if t.in_step then invalid_arg "Engine.set_sharding: cannot reconfigure inside a step";
  if n <= 0 then invalid_arg "Engine.set_sharding: n must be positive";
  if n > owner_limit then
    invalid_arg
      (Printf.sprintf "Engine.set_sharding: n=%d exceeds the %d-bit owner field" n owner_bits);
  if shards < 1 then invalid_arg "Engine.set_sharding: shards must be >= 1";
  let shards = min shards n in
  t.shards <- shards;
  t.shard_n <- n;
  t.pool <- pool;
  t.parallel <- parallel;
  t.staging <- Array.init shards (fun _ -> { sa = [||]; sn = 0 });
  t.deferred_dead <- Array.make shards 0;
  t.pb_off <- Array.make (shards + 1) 0;
  t.pb_cur <- Array.make shards 0;
  t.shard_fired <- Array.make shards 0

let shards t = t.shards

(* Contiguous partition of [0, shard_n) into [shards] ranges; ownerless
   events (and any owner outside the partition) fall into shard 0. *)
let shard_of t owner =
  if t.shards <= 1 || owner <= 0 then 0
  else
    let o = if owner >= t.shard_n then t.shard_n - 1 else owner in
    o * t.shards / t.shard_n

let fire_rank t = (Domain.DLS.get t.ctx_key).rank
let fire_shard t = (Domain.DLS.get t.ctx_key).shard
let add_step_hook t f = t.step_hooks <- t.step_hooks @ [ f ]

let stage_push t shard stg =
  let v = t.staging.(shard) in
  if v.sn >= Array.length v.sa then begin
    let na = Array.make (max 8 (2 * Array.length v.sa)) stg in
    Array.blit v.sa 0 na 0 v.sn;
    v.sa <- na
  end;
  v.sa.(v.sn) <- stg;
  v.sn <- v.sn + 1

let schedule t ?(owner = -1) ~at f =
  let owner = if owner < -1 || owner > owner_limit then -1 else owner in
  if at = Time.infinity then None
  else begin
    if at < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.clock);
    if t.in_step then begin
      (* Staged stepping: the new event goes into the firing shard's
         staging buffer and reaches the queue at the sub-round's merge
         point, in canonical (rank, program-order) order. In a parallel
         step the id is also assigned at the merge — [next_id] must not
         be touched from worker domains — which lands on the same values
         in the same order as the sequential path does eagerly. *)
      let ctx = Domain.DLS.get t.ctx_key in
      let ev = { state = pack_owner owner; action = f } in
      if not t.par_step then begin
        ev.state <- ev.state lor (t.next_id lsl id_shift);
        t.next_id <- t.next_id + 1;
        if !(t.tracing) then
          Obs.Recorder.sched t.recorder ~time:t.clock ~id:(id_of_state ev.state) ~at
      end;
      stage_push t (if ctx.shard >= 0 then ctx.shard else 0) { s_at = at; s_rank = ctx.rank; s_ev = ev };
      Some ev
    end
    else begin
      let ev = { state = (t.next_id lsl id_shift) lor pack_owner owner; action = f } in
      t.next_id <- t.next_id + 1;
      q_add t ~prio:at ev;
      (* Call-site guard: the emission call is skipped entirely when full
         tracing is off, keeping the hot path at one load + branch. *)
      if !(t.tracing) then
        Obs.Recorder.sched t.recorder ~time:t.clock ~id:(id_of_state ev.state) ~at;
      Some ev
    end
  end

let schedule_after t ?owner ~delay f = schedule t ?owner ~at:(Time.add t.clock delay) f

let cancel t id =
  match id with
  | None -> ()
  | Some ev ->
      (* Count each still-queued event as dead at most once; cancelling a
         fired event must not skew the queue's husk accounting. *)
      if ev.state land (cancelled_bit lor fired_bit) = 0 then begin
        ev.state <- ev.state lor cancelled_bit;
        (* The husk stays queued until popped or compacted away; drop the
           closure now so it doesn't pin its environment until then. *)
        ev.action <- noop;
        if t.in_step then begin
          (* Deferred husk note: mid-step the event may live in a staging
             buffer or the current batch rather than the queue, and in a
             parallel step the queue must not be touched from worker
             domains. Settled at the sub-round merge. *)
          let ctx = Domain.DLS.get t.ctx_key in
          let sh = if ctx.shard >= 0 then ctx.shard else 0 in
          t.deferred_dead.(sh) <- t.deferred_dead.(sh) + 1
        end
        else q_note_dead t;
        if !(t.tracing) then
          Obs.Recorder.cancel t.recorder ~time:t.clock ~id:(id_of_state ev.state)
      end

(* The fire loop is a toplevel tail recursion rather than a [ref]-driven
   while: it runs once per event over the whole simulation, and keeping
   it allocation-free means the only heap traffic per fired event is
   whatever the action itself does (plus the queue's own pop result). *)
let[@lint.hot] rec fire_loop t ~until =
  match q_peek_prio t with
  | None -> ()
  | Some at when at > until -> ()
  | Some _ -> (
      match q_pop t with
      | None -> ()
      | Some (at, ev) ->
          let st = ev.state in
          ev.state <- st lor fired_bit;
          if st land cancelled_bit = 0 then begin
            t.clock <- at;
            t.processed <- t.processed + 1;
            if !(t.tracing) then Obs.Recorder.fire t.recorder ~time:at ~id:(id_of_state st);
            let action = ev.action in
            (* Release the closure before running it: the caller may
               hold the event_id long after the event fires. *)
            ev.action <- noop;
            action ()
          end;
          fire_loop t ~until)

(* ---- Sharded stepping ------------------------------------------------ *)

let batch_push t ev =
  if t.batch_len >= Array.length t.batch_ev then begin
    let na = Array.make (max 16 (2 * Array.length t.batch_ev)) ev in
    Array.blit t.batch_ev 0 na 0 t.batch_len;
    t.batch_ev <- na
  end;
  t.batch_ev.(t.batch_len) <- ev;
  t.batch_len <- t.batch_len + 1

let[@lint.hot] fire_event_seq t at ev =
  let st = ev.state in
  ev.state <- st lor fired_bit;
  if st land cancelled_bit = 0 then begin
    t.clock <- at;
    t.processed <- t.processed + 1;
    if !(t.tracing) then Obs.Recorder.fire t.recorder ~time:at ~id:(id_of_state st);
    let action = ev.action in
    ev.action <- noop;
    action ()
  end

(* Sequential staged fire: pop order, exactly the order the legacy loop
   would have fired — shard labels only route staging buffers. *)
let fire_batch_seq t tick =
  let ctx = Domain.DLS.get t.ctx_key in
  for r = 0 to t.batch_len - 1 do
    let ev = t.batch_ev.(r) in
    ctx.rank <- t.base_rank + r;
    ctx.shard <- shard_of t (owner_of_state ev.state);
    fire_event_seq t tick ev
  done;
  ctx.rank <- -1;
  ctx.shard <- -1

(* Parallel staged fire: group the batch by shard (preserving pop order
   within each shard) and fire the shards on the pool. Only reached when
   the caller asserted shard-safe handlers and tracing is off; worker
   domains never touch the queue, the recorder, or [next_id] — their
   only shared-state writes go through the per-shard staging buffers. *)
let fire_batch_par t tick pool =
  let s = t.shards in
  let off = t.pb_off and cur = t.pb_cur in
  Array.fill off 0 (s + 1) 0;
  for r = 0 to t.batch_len - 1 do
    let sh = shard_of t (owner_of_state t.batch_ev.(r).state) in
    off.(sh + 1) <- off.(sh + 1) + 1
  done;
  for i = 0 to s - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i);
    cur.(i) <- off.(i)
  done;
  if Array.length t.pb_ev < t.batch_len then begin
    t.pb_ev <- Array.make (2 * t.batch_len) t.batch_ev.(0);
    t.pb_rank <- Array.make (2 * t.batch_len) 0
  end;
  let any_live = ref false in
  for r = 0 to t.batch_len - 1 do
    let ev = t.batch_ev.(r) in
    if ev.state land cancelled_bit = 0 then any_live := true;
    let sh = shard_of t (owner_of_state ev.state) in
    let idx = cur.(sh) in
    t.pb_ev.(idx) <- ev;
    t.pb_rank.(idx) <- t.base_rank + r;
    cur.(sh) <- idx + 1
  done;
  (* The clock is advanced once, before the barrier: worker domains read
     [now] but must not write it. *)
  if !any_live then t.clock <- tick;
  Exec.Pool.run_batch pool s (fun sh ->
      let ctx = Domain.DLS.get t.ctx_key in
      ctx.shard <- sh;
      let fired = ref 0 in
      for idx = off.(sh) to off.(sh + 1) - 1 do
        let ev = t.pb_ev.(idx) in
        ctx.rank <- t.pb_rank.(idx);
        let st = ev.state in
        ev.state <- st lor fired_bit;
        if st land cancelled_bit = 0 then begin
          incr fired;
          let action = ev.action in
          ev.action <- noop;
          action ()
        end
      done;
      ctx.rank <- -1;
      ctx.shard <- -1;
      t.shard_fired.(sh) <- !fired);
  for sh = 0 to s - 1 do
    t.processed <- t.processed + t.shard_fired.(sh);
    t.shard_fired.(sh) <- 0
  done

let dummy_staged =
  { s_at = 0; s_rank = 0; s_ev = { state = cancelled_bit lor fired_bit; action = noop } }

(* Merge one sub-round's staged effects back into the step: schedules in
   canonical order (same-tick ones refill the batch for the next
   sub-round, later ones enter the queue), then the owed husk notes,
   then the component flush hooks (Net.Link_stats cross-shard staging). *)
let merge_subround t tick =
  let total = Array.fold_left (fun acc v -> acc + v.sn) 0 t.staging in
  if total > 0 then begin
    let bufs =
      Array.map
        (fun v ->
          let a = Array.sub v.sa 0 v.sn in
          (* Release the staged references: the buffer keeps its capacity
             across steps and must not pin events from finished ones. *)
          Array.fill v.sa 0 v.sn dummy_staged;
          v.sn <- 0;
          a)
        t.staging
    in
    let merged = Exec.Pool.merge_by ~rank:(fun stg -> stg.s_rank) bufs in
    Array.iter
      (fun stg ->
        let ev = stg.s_ev in
        if t.par_step then begin
          ev.state <- ev.state lor (t.next_id lsl id_shift);
          t.next_id <- t.next_id + 1
        end;
        if stg.s_at = tick then batch_push t ev else q_add t ~prio:stg.s_at ev)
      merged
  end;
  for sh = 0 to t.shards - 1 do
    for _ = 1 to t.deferred_dead.(sh) do
      q_note_dead t
    done;
    t.deferred_dead.(sh) <- 0
  done;
  List.iter (fun f -> f ()) t.step_hooks

(* Staged stepping: drain every event of the frontier tick into a batch,
   fire the batch (sequentially in pop order, or shard-parallel on the
   pool), merge staged effects, and repeat sub-rounds while the firing
   keeps scheduling into the same tick. Equivalent to the legacy loop:
   pop order is preserved, and merged insertion order equals program
   order (see merge_by) — the sequential staged path produces
   byte-identical traces to shards = 0. *)
let staged_loop t ~until =
  let rec step () =
    match q_peek_prio t with
    | None -> ()
    | Some at when at > until -> ()
    | Some tick ->
        t.batch_len <- 0;
        let rec drain () =
          match q_peek_prio t with
          | Some p when p = tick -> (
              match q_pop t with
              | Some (_, ev) ->
                  batch_push t ev;
                  drain ()
              | None -> ())
          | _ -> ()
        in
        drain ();
        t.in_step <- true;
        t.par_step <-
          t.parallel && t.shards > 1 && t.pool <> None && not !(t.tracing);
        t.base_rank <- 0;
        let rec subround () =
          if t.batch_len > 0 then begin
            let len = t.batch_len in
            (match t.pool with
            | Some pool when t.par_step -> fire_batch_par t tick pool
            | _ -> fire_batch_seq t tick);
            t.base_rank <- t.base_rank + len;
            t.batch_len <- 0;
            merge_subround t tick;
            subround ()
          end
        in
        subround ();
        t.in_step <- false;
        step ()
  in
  step ()

let run t ~until = if t.shards > 0 then staged_loop t ~until else fire_loop t ~until

let run_all t = run t ~until:Time.infinity
let pending t = q_size t
let processed t = t.processed
