type event = { mutable cancelled : bool; mutable fired : bool; action : unit -> unit }
type event_id = event option

type t = {
  mutable clock : Time.t;
  queue : event Pqueue.t;
  mutable processed : int;
}

let create () =
  {
    clock = Time.zero;
    queue = Pqueue.create ~dead:(fun ev -> ev.cancelled) ();
    processed = 0;
  }

let now t = t.clock

let schedule t ~at f =
  if at = Time.infinity then None
  else begin
    if at < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.clock);
    let ev = { cancelled = false; fired = false; action = f } in
    Pqueue.add t.queue ~prio:at ev;
    Some ev
  end

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel t id =
  match id with
  | None -> ()
  | Some ev ->
      (* Count each still-queued event as dead at most once; cancelling a
         fired event must not skew the queue's husk accounting. *)
      if not (ev.cancelled || ev.fired) then begin
        ev.cancelled <- true;
        Pqueue.note_dead t.queue
      end

let run t ~until =
  let continue = ref true in
  while !continue do
    match Pqueue.peek_prio t.queue with
    | None -> continue := false
    | Some at when at > until -> continue := false
    | Some _ -> (
        match Pqueue.pop t.queue with
        | None -> continue := false
        | Some (at, ev) ->
            ev.fired <- true;
            if not ev.cancelled then begin
              t.clock <- at;
              t.processed <- t.processed + 1;
              ev.action ()
            end)
  done

let run_all t = run t ~until:Time.infinity
let pending t = Pqueue.size t.queue
let processed t = t.processed
