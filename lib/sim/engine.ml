(* Compile-time proof that both queue backends satisfy the contract the
   engine programs against. *)
module _ : Queue_sig.S = Pqueue
module _ : Queue_sig.S = Wheel

(* [state] packs the event id with its lifecycle flags so the record
   stays at two fields — bit 0 = cancelled, bit 1 = fired, bits 2..
   = id. Keeping the per-event allocation small matters: the engine
   allocates one of these per scheduled event on the hot path. [action]
   is mutable so cancel/fire can drop the closure: a cancelled husk may
   sit in the queue until its tick is reached, and it must not retain
   the closure's environment for all that time. *)
type event = { mutable state : int; mutable action : unit -> unit }

let cancelled_bit = 1
let fired_bit = 2
let id_of_state st = st lsr 2
let noop () = ()

type event_id = event option

type backend = [ `Heap | `Wheel ]

(* Runtime switch rather than a functor: worlds pick their backend per
   engine (CLI flag, differential tests), and the one-branch dispatch is
   noise next to the queue operation itself. *)
type queue = Q_heap of event Pqueue.t | Q_wheel of event Wheel.t

type t = {
  mutable clock : Time.t;
  queue : queue;
  mutable processed : int;
  mutable next_id : int;
  recorder : Obs.Recorder.t;
  tracing : bool ref; (* the recorder's live full-tracing flag *)
}

let default_backend : backend = `Wheel

let create ?(backend = default_backend) ?recorder () =
  let recorder = match recorder with Some r -> r | None -> Obs.Recorder.create () in
  let dead ev = ev.state land cancelled_bit <> 0 in
  let queue =
    match backend with
    | `Heap -> Q_heap (Pqueue.create ~dead ())
    | `Wheel -> Q_wheel (Wheel.create ~dead ())
  in
  {
    clock = Time.zero;
    queue;
    processed = 0;
    next_id = 0;
    recorder;
    tracing = Obs.Recorder.tracing_flag recorder;
  }

let backend t = match t.queue with Q_heap _ -> `Heap | Q_wheel _ -> `Wheel
let now t = t.clock
let recorder t = t.recorder

let q_add t ~prio ev =
  match t.queue with
  | Q_heap q -> Pqueue.add q ~prio ev
  | Q_wheel q -> Wheel.add q ~prio ev

let q_note_dead t =
  match t.queue with Q_heap q -> Pqueue.note_dead q | Q_wheel q -> Wheel.note_dead q

let q_peek_prio t =
  match t.queue with Q_heap q -> Pqueue.peek_prio q | Q_wheel q -> Wheel.peek_prio q

let q_pop t = match t.queue with Q_heap q -> Pqueue.pop q | Q_wheel q -> Wheel.pop q
let q_size t = match t.queue with Q_heap q -> Pqueue.size q | Q_wheel q -> Wheel.size q

let schedule t ~at f =
  if at = Time.infinity then None
  else begin
    if at < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.clock);
    let ev = { state = t.next_id lsl 2; action = f } in
    t.next_id <- t.next_id + 1;
    q_add t ~prio:at ev;
    (* Call-site guard: the emission call is skipped entirely when full
       tracing is off, keeping the hot path at one load + branch. *)
    if !(t.tracing) then
      Obs.Recorder.sched t.recorder ~time:t.clock ~id:(id_of_state ev.state) ~at;
    Some ev
  end

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel t id =
  match id with
  | None -> ()
  | Some ev ->
      (* Count each still-queued event as dead at most once; cancelling a
         fired event must not skew the queue's husk accounting. *)
      if ev.state land (cancelled_bit lor fired_bit) = 0 then begin
        ev.state <- ev.state lor cancelled_bit;
        (* The husk stays queued until popped or compacted away; drop the
           closure now so it doesn't pin its environment until then. *)
        ev.action <- noop;
        q_note_dead t;
        if !(t.tracing) then
          Obs.Recorder.cancel t.recorder ~time:t.clock ~id:(id_of_state ev.state)
      end

(* The fire loop is a toplevel tail recursion rather than a [ref]-driven
   while: it runs once per event over the whole simulation, and keeping
   it allocation-free means the only heap traffic per fired event is
   whatever the action itself does (plus the queue's own pop result). *)
let[@lint.hot] rec fire_loop t ~until =
  match q_peek_prio t with
  | None -> ()
  | Some at when at > until -> ()
  | Some _ -> (
      match q_pop t with
      | None -> ()
      | Some (at, ev) ->
          let st = ev.state in
          ev.state <- st lor fired_bit;
          if st land cancelled_bit = 0 then begin
            t.clock <- at;
            t.processed <- t.processed + 1;
            if !(t.tracing) then Obs.Recorder.fire t.recorder ~time:at ~id:(id_of_state st);
            let action = ev.action in
            (* Release the closure before running it: the caller may
               hold the event_id long after the event fires. *)
            ev.action <- noop;
            action ()
          end;
          fire_loop t ~until)

let run t ~until = fire_loop t ~until

let run_all t = run t ~until:Time.infinity
let pending t = q_size t
let processed t = t.processed
