(** Fixed pool of OCaml 5 domains for embarrassingly parallel batches.

    A pool of size [d] spawns [d - 1] worker domains; the submitting
    domain participates in draining each batch, so [d] is the total
    parallelism. Work is distributed by an atomic fetch-and-add over the
    task index space (work-sharing: idle domains steal the next unclaimed
    index), but results are always delivered in task-index order, so a
    parallel map is observably identical to a sequential one whenever the
    tasks are independent — which is exactly what {!Harness.Batch} needs
    to keep multi-seed aggregates bit-identical across [?domains].

    A pool of size 1 spawns no domains and runs every batch inline — the
    deterministic sequential fallback used when
    [Domain.recommended_domain_count () = 1].

    Batches must be submitted from one domain at a time (the harness
    submits from the main domain); nesting a batch inside one of the
    same pool's tasks, or submitting concurrently from two domains, is
    detected and rejected with [Invalid_argument] — two live batches on
    one pool would race on the work queue and hang the first submitter.
    Nesting across {e distinct} pools (a world's sharded engine firing
    inside a {!Harness.Batch} task) is fine. *)

type t

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers (default
    {!default_domains}; values < 1 are clamped to 1). Every pool must be
    {!shutdown} (or created via {!with_pool}) or its domains leak. *)

val size : t -> int
(** Total parallelism, including the submitting domain. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent. The pool must be
    idle (no batch in flight). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] = create, run [f], always shutdown. *)

val run_batch : t -> int -> (int -> unit) -> unit
(** [run_batch pool n body] runs [body 0 .. body (n - 1)] across the pool
    for effect and returns once all [n] indices have finished. A raising
    body does not wedge the batch: every index still runs, and after the
    batch drains the exception of the lowest-index failing task is
    re-raised (matching {!init}). This is also the barrier primitive of
    sharded stepping: one task per shard, and the call returning means
    every shard's effects are visible to the submitting domain.
    @raise Invalid_argument if the pool is already running a batch
    (nested or concurrent submission). *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init pool n f] evaluates [f 0 .. f (n - 1)] across the pool and
    returns the results indexed as [Array.init n f] would. If any task
    raises, the exception of the lowest-index failing task is re-raised
    after the batch drains. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val merge_by : rank:('a -> int) -> 'a array array -> 'a array
(** [merge_by ~rank buffers] deterministically merges per-shard effect
    buffers back into one canonical sequence: concatenate in shard
    order, then stable-sort by [rank]. Provided all effects with equal
    rank live in a single buffer (true when rank identifies the firing
    event and each event runs on exactly one shard), the result is
    independent of the shard count and of which domain filled which
    buffer — the merge half of the sharded-step barrier/merge pair. *)
