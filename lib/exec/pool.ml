type batch = {
  body : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed task index *)
  completed : int Atomic.t; (* tasks finished (body returned or raised) *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  posted : Condition.t; (* workers: a new batch or shutdown *)
  finished : Condition.t; (* submitter: a batch fully drained *)
  mutable current : batch option;
  mutable generation : int; (* bumped per submitted batch *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Claim unowned indices until the batch is exhausted. The task body never
   raises (exceptions are captured at the [init] layer), so every claimed
   index is eventually counted as completed. *)
let drain t batch ~signal_finish =
  let rec loop () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n then begin
      batch.body i;
      let done_now = 1 + Atomic.fetch_and_add batch.completed 1 in
      if done_now = batch.n && signal_finish then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let rec wait_for_work seen_gen =
    Mutex.lock t.mutex;
    while (not t.shutting_down) && t.generation = seen_gen do
      Condition.wait t.posted t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      let gen = t.generation and batch = t.current in
      Mutex.unlock t.mutex;
      (match batch with Some b -> drain t b ~signal_finish:true | None -> ());
      wait_for_work gen
    end
  in
  wait_for_work 0

let create ?domains () =
  let size = max 1 (match domains with None -> default_domains () | Some d -> d) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      posted = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      shutting_down = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.posted;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_batch t n body =
  if n > 0 then begin
    if t.size <= 1 then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let batch = { body; n; next = Atomic.make 0; completed = Atomic.make 0 } in
      Mutex.lock t.mutex;
      t.current <- Some batch;
      t.generation <- t.generation + 1;
      Condition.broadcast t.posted;
      Mutex.unlock t.mutex;
      (* The submitter works too; it may or may not finish the last task. *)
      drain t batch ~signal_finish:false;
      Mutex.lock t.mutex;
      while Atomic.get batch.completed < n do
        Condition.wait t.finished t.mutex
      done;
      t.current <- None;
      Mutex.unlock t.mutex
    end
  end

let init t n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_batch t n (fun i ->
        let r = try Ok (f i) with e -> Error e in
        results.(i) <- Some r);
    (* In index order, so a failure re-raises the lowest-index exception
       regardless of which domain ran it. *)
    Array.map
      (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
      results
  end

let map_array t f a = init t (Array.length a) (fun i -> f a.(i))
let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
