type batch = {
  body : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed task index *)
  completed : int Atomic.t; (* tasks finished (body returned or raised) *)
  failures : (int * exn) list Atomic.t; (* raised bodies, by task index *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  posted : Condition.t; (* workers: a new batch or shutdown *)
  finished : Condition.t; (* submitter: a batch fully drained *)
  mutable current : batch option;
  mutable generation : int; (* bumped per submitted batch *)
  mutable busy : bool; (* a batch is in flight; guards current/generation *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let rec push_failure failures i e =
  let cur = Atomic.get failures in
  if not (Atomic.compare_and_set failures cur ((i, e) :: cur)) then push_failure failures i e

(* Claim unowned indices until the batch is exhausted. A raising body must
   still count its index as completed, or the submitter waits on
   [completed = n] forever — exceptions are captured per index and
   re-raised (lowest index first) once the batch has drained. *)
let drain t batch ~signal_finish =
  let rec loop () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n then begin
      (try batch.body i with e -> push_failure batch.failures i e);
      let done_now = 1 + Atomic.fetch_and_add batch.completed 1 in
      if done_now = batch.n && signal_finish then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let rec wait_for_work seen_gen =
    Mutex.lock t.mutex;
    while (not t.shutting_down) && t.generation = seen_gen do
      Condition.wait t.posted t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      let gen = t.generation and batch = t.current in
      Mutex.unlock t.mutex;
      (match batch with Some b -> drain t b ~signal_finish:true | None -> ());
      wait_for_work gen
    end
  in
  wait_for_work 0

let create ?domains () =
  let size = max 1 (match domains with None -> default_domains () | Some d -> d) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      posted = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      busy = false;
      shutting_down = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.posted;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let reraise_lowest failures =
  match Atomic.get failures with
  | [] -> ()
  | first :: rest ->
      let _, e =
        List.fold_left (fun (bi, be) (i, e) -> if i < bi then (i, e) else (bi, be)) first rest
      in
      raise e

(* A second submission while a batch is in flight — nested from inside a
   task, or concurrent from another domain — would silently overwrite
   [t.current]: workers still draining the first batch would claim
   indices of the second, and the first submitter would wait on a
   [completed] count that can no longer reach [n]. Detect and refuse
   instead of hanging. A nested call raises inside its task, is captured
   like any task failure, and resurfaces once the outer batch drains. *)
let enter_batch t =
  Mutex.lock t.mutex;
  if t.busy then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run_batch: pool is already running a batch (nested or concurrent submission)"
  end;
  t.busy <- true

let run_batch t n body =
  if n > 0 then begin
    let failures = Atomic.make [] in
    if t.size <= 1 then begin
      enter_batch t;
      Mutex.unlock t.mutex;
      (* Same contract as the parallel path: every index runs even after a
         failure, then the lowest-index exception is re-raised. *)
      for i = 0 to n - 1 do
        try body i with e -> push_failure failures i e
      done;
      Mutex.lock t.mutex;
      t.busy <- false;
      Mutex.unlock t.mutex
    end
    else begin
      let batch = { body; n; next = Atomic.make 0; completed = Atomic.make 0; failures } in
      enter_batch t;
      t.current <- Some batch;
      t.generation <- t.generation + 1;
      Condition.broadcast t.posted;
      Mutex.unlock t.mutex;
      (* The submitter works too; it may or may not finish the last task. *)
      drain t batch ~signal_finish:false;
      Mutex.lock t.mutex;
      while Atomic.get batch.completed < n do
        Condition.wait t.finished t.mutex
      done;
      t.current <- None;
      t.busy <- false;
      Mutex.unlock t.mutex
    end;
    reraise_lowest failures
  end

let init t n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_batch t n (fun i ->
        let r = try Ok (f i) with e -> Error e in
        results.(i) <- Some r);
    (* In index order, so a failure re-raises the lowest-index exception
       regardless of which domain ran it. *)
    Array.map
      (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
      results
  end

let map_array t f a = init t (Array.length a) (fun i -> f a.(i))
let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

(* Deterministic k-way merge of per-shard effect buffers: the building
   block for sharded stepping (Sim.Engine, Net.Link_stats). Each buffer
   holds one shard's effects in that shard's program order; [rank] gives
   the canonical global position of the effect's origin (for engine
   steps: the pop rank of the firing event). Because every effect of one
   origin lives in exactly one buffer, a stable sort by rank of the
   shard-order concatenation reconstructs the one canonical sequence —
   independent of how many shards there were or which domain ran them. *)
let merge_by ~rank buffers =
  let out = Array.concat (Array.to_list buffers) in
  Array.stable_sort (fun a b -> compare (rank a) (rank b)) out;
  out
