(** Aligned plain-text tables (and CSV) for experiment reports. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** Column headers with per-column alignment. *)

val add_row : t -> string list -> unit
(** Row cells must match the column count. *)

val add_rule : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string
(** The table as aligned text with a title line and header rule. *)

val to_csv : t -> string
(** Same data as RFC-4180-ish CSV (quotes doubled, cells with commas or
    quotes quoted). Separator rows are omitted. *)

val pp : Format.formatter -> t -> unit
(** [render] plus a trailing blank line, to the given formatter. Library
    code reports through this; only executables pick a concrete sink. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(* Convenience cell formatters. *)
val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_time : int -> string
