(** Time series rendered as the repository's "figures".

    A series is a list of (x, y) points; rendering produces both the raw
    two-column data and a unicode-free ASCII chart so that figures are
    reproducible in a terminal and diffable in CI. *)

type t

val create : title:string -> x_label:string -> y_label:string -> t
val add_point : t -> x:float -> y:float -> unit
val add_series : t -> name:string -> (float * float) list -> unit
(** Add a named secondary series sharing the same axes (for
    ours-vs-baseline figures). Points added with {!add_point} belong to
    the primary series, named after [y_label]. *)

val render : ?width:int -> ?height:int -> t -> string
(** ASCII chart (default 72x16 plot area) followed by the data columns. *)

val pp : ?width:int -> ?height:int -> Format.formatter -> t -> unit
(** {!render} plus a trailing blank line, to the given formatter. Library
    code reports through this; only executables pick a concrete sink. *)

val print : ?width:int -> ?height:int -> t -> unit

val to_csv : t -> string
(** The raw data as CSV with columns [series,x,y]. *)

val title : t -> string
