type align = Left | Right
type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* newest first *)
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun idx header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Rule -> acc
            | Cells cells -> max acc (String.length (List.nth cells idx)))
          (String.length header) rows)
      headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let aligns = List.map snd t.columns in
  let fmt_cells cells =
    let padded = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells in
    "  " ^ String.concat "  " padded
  in
  let rule = "  " ^ String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (fmt_cells headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      match row with
      | Rule -> Buffer.add_string buf (rule ^ "\n")
      | Cells cells -> Buffer.add_string buf (fmt_cells cells ^ "\n"))
    rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let line cells = Buffer.add_string buf (String.concat "," (List.map csv_escape cells) ^ "\n") in
  line (List.map fst t.columns);
  List.iter (function Rule -> () | Cells cells -> line cells) (List.rev t.rows);
  Buffer.contents buf

let pp ppf t =
  Format.pp_print_string ppf (render t);
  Format.pp_print_string ppf "\n"

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int

let cell_float ?(decimals = 1) f = Printf.sprintf "%.*f" decimals f

let cell_bool b = if b then "yes" else "no"

let cell_time ticks = if ticks = max_int then "inf" else string_of_int ticks
