type t = {
  title : string;
  x_label : string;
  y_label : string;
  mutable primary : (float * float) list; (* newest first *)
  mutable extra : (string * (float * float) list) list; (* insertion order *)
}

let create ~title ~x_label ~y_label =
  { title; x_label; y_label; primary = []; extra = [] }

let add_point t ~x ~y = t.primary <- (x, y) :: t.primary
let add_series t ~name points = t.extra <- t.extra @ [ (name, points) ]

let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 72) ?(height = 16) t =
  let named =
    (t.y_label, List.rev t.primary)
    :: List.map (fun (name, pts) -> (name, List.sort compare pts)) t.extra
  in
  let named = List.filter (fun (_, pts) -> pts <> []) named in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "-- %s --\n" t.title);
  if named = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let all = List.concat_map snd named in
    let xs = List.map fst all and ys = List.map snd all in
    let fmin l = List.fold_left min (List.hd l) l
    and fmax l = List.fold_left max (List.hd l) l in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = min 0.0 (fmin ys) and y1 = fmax ys in
    let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
    let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
    let grid = Array.make_matrix height width ' ' in
    let plot mark (x, y) =
      let cx = int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)) in
      let cy = int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)) in
      let cx = max 0 (min (width - 1) cx) and cy = max 0 (min (height - 1) cy) in
      grid.(height - 1 - cy).(cx) <- mark
    in
    List.iteri (fun si (_, pts) -> List.iter (plot marks.(si mod Array.length marks)) pts) named;
    Buffer.add_string buf (Printf.sprintf "  y: %s  (%.1f .. %.1f)\n" t.y_label y0 y1);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Buffer.add_string buf (String.init width (fun c -> row.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf (Printf.sprintf "  x: %s  (%.1f .. %.1f)\n" t.x_label x0 x1);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  [%c] %s\n" marks.(si mod Array.length marks) name))
      named;
    (* Raw data columns for post-processing. *)
    Buffer.add_string buf "  data:\n";
    List.iter
      (fun (name, pts) ->
        List.iter
          (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "    %s %g %g\n" name x y))
          pts)
      named;
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "series,x,y\n";
  let dump name pts =
    List.iter (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%s,%g,%g\n" name x y)) pts
  in
  dump t.y_label (List.rev t.primary);
  List.iter (fun (name, pts) -> dump name pts) t.extra;
  Buffer.contents buf

let title t = t.title

let pp ?width ?height ppf t =
  Format.pp_print_string ppf (render ?width ?height t);
  Format.pp_print_string ppf "\n"

let print ?width ?height t =
  print_string (render ?width ?height t);
  print_newline ()
