(** Standard conflict-graph topologies.

    These cover the shapes the dining literature evaluates on: Dijkstra's
    original ring, cliques (worst-case degree), sparse structured graphs
    (paths, trees, grids, hypercubes) and random graphs. *)

type spec =
  | Ring of int        (** cycle on n >= 3 vertices *)
  | Path of int        (** line on n >= 2 vertices *)
  | Clique of int      (** complete graph on n >= 2 vertices *)
  | Star of int        (** one hub, n-1 leaves, n >= 2 *)
  | Grid of int * int  (** rows x cols 4-neighbor mesh *)
  | Torus of int * int (** rows x cols wrap-around mesh, both >= 3 *)
  | Binary_tree of int (** complete-ish binary tree on n >= 2 vertices *)
  | Hypercube of int   (** dimension d >= 1, 2^d vertices *)
  | Wheel of int       (** a hub joined to every vertex of an (n-1)-cycle, n >= 4 *)
  | Bipartite of int * int
      (** complete bipartite K_{a,b}: the first a vertices vs the rest *)
  | Random_gnp of int * float * int64
      (** [Random_gnp (n, p, seed)]: G(n, p) conditioned on connectivity by
          adding a random spanning chain first. *)
  | Scale_free of int * int * int64
      (** [Scale_free (n, m, seed)]: Barabási–Albert preferential
          attachment — m edges from each new vertex to degree-biased
          distinct targets, seeded with a star on m + 1 vertices.
          Connected by construction; n * m edges overall (about), hub
          degrees grow as a power law — the adversarial opposite of the
          bounded-degree grids for the scale bench. *)

val build : spec -> Graph.t

val name : spec -> string
(** Short stable name, e.g. ["ring-8"], used in reports. *)

val parse : string -> (spec, string) result
(** Inverse of {!name} for the CLI: accepts strings like ["ring:8"],
    ["grid:4x5"], ["gnp:20:0.2:42"], ["sf:1000:2:7"]. *)

val all_small : spec list
(** A representative assortment used by tests and experiments. *)
