(** Undirected conflict graphs.

    A dining instance is an undirected graph [C = (Pi, E)] where vertices
    are processes and an edge [(i, j)] means that [i] and [j] share a fork
    (their actions conflict). Processes are numbered [0 .. n-1]. *)

type pid = int

type t

val of_edges : n:int -> (pid * pid) list -> t
(** Build a graph on [n] vertices from an edge list. Self-loops are
    rejected; duplicate edges (in either orientation) are deduplicated.
    Raises [Invalid_argument] on out-of-range endpoints or [n <= 0]. *)

val of_edge_array : n:int -> (pid * pid) array -> t
(** Same as {!of_edges} from an array — the constructor the large
    topology generators use: no intermediate lists, one sort over packed
    int keys. *)

val n : t -> int
(** Number of vertices. *)

val edges : t -> (pid * pid) list
(** Edge list, each edge once with the smaller endpoint first, sorted.
    Built fresh on each call; prefer {!iter_edges} or {!edge_endpoints}
    on hot paths. *)

val edge_count : t -> int

val neighbors : t -> pid -> pid array
(** Sorted array of neighbors of a vertex, as a fresh copy. Prefer
    {!csr_offsets}/{!csr_targets} where the copy matters. *)

val degree : t -> pid -> int
val max_degree : t -> int
val is_edge : t -> pid -> pid -> bool
val iter_edges : t -> (pid -> pid -> unit) -> unit
val fold_vertices : t -> init:'a -> f:('a -> pid -> 'a) -> 'a

(** {2 Dense indices}

    The graph is stored in compressed sparse row form. Position [s] of
    the flat neighbor array is the {e directed slot} for the ordered
    pair [(i, nbr.(s))] where [i] owns the row containing [s]; slots
    give every per-directed-pair quantity in the system (FIFO floors,
    link counters, per-edge protocol bits) a dense int index, replacing
    hashed pair keys on hot paths. Undirected edges are numbered
    [0 .. edge_count - 1] in canonical sorted order. *)

val dir_count : t -> int
(** Number of directed slots, [2 * edge_count]. *)

val dir_index : t -> pid -> pid -> int
(** [dir_index t i j] is the directed slot of the ordered pair [(i, j)].
    O(log degree), allocation-free. Raises [Invalid_argument] if [i]
    and [j] are not neighbors. *)

val dir_index_opt : t -> pid -> pid -> int
(** Like {!dir_index} but returns [-1] when [i] and [j] are not
    neighbors (including out-of-range vertices) instead of raising.
    Allocation-free, for hot paths that validate edges themselves. *)

val slot_dst : t -> int -> pid
(** Destination of a directed slot (the source owns the CSR row). *)

val slot_edge_id : t -> int -> int
(** Undirected edge id a directed slot belongs to. *)

val edge_endpoints : t -> int -> pid * pid
(** Canonical endpoints [(u, v)], [u < v], of an edge id. *)

val csr_offsets : t -> int array
(** Row offsets, length [n + 1]: vertex [i]'s slots are
    [off.(i) .. off.(i+1) - 1]. Owned by the graph; do not mutate. *)

val csr_targets : t -> pid array
(** Flat neighbor array, length [dir_count], ascending within each row.
    Owned by the graph; do not mutate. *)

val is_connected : t -> bool
(** Whether every vertex is reachable from vertex 0 (true for n = 1). *)

val distances_from : t -> pid -> int array
(** BFS hop distances from the given vertex; unreachable vertices get
    [n]. Used e.g. to measure how far from a crash site an effect
    (starvation, delay) spreads. *)

val pp : Format.formatter -> t -> unit

val to_dot :
  ?name:string ->
  ?vertex_label:(pid -> string) ->
  ?vertex_color:(pid -> string option) ->
  t ->
  string
(** Graphviz (dot) rendering of the conflict graph. [vertex_label]
    defaults to the pid; [vertex_color] (an X11 color name or RGB string)
    fills the vertex when given — used by the CLI to visualise colorings
    and crash states. *)
