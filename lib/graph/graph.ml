type pid = int

(* Compressed sparse row storage. [off]/[nbr] give each vertex its
   neighbors as a contiguous ascending run; position [s] in [nbr] is the
   "directed slot" for the pair (owner of the run, nbr.(s)), giving
   every per-directed-pair quantity in the system (FIFO floors, link
   counters, protocol bits) a dense int index. [eu]/[ev] list each
   undirected edge once, canonically (eu < ev), sorted — the same order
   the legacy [edges] list had. *)
type t = {
  n : int;
  off : int array; (* n+1 row offsets into nbr *)
  nbr : pid array; (* 2m neighbors, ascending within each row *)
  slot_edge : int array; (* 2m: directed slot -> undirected edge id *)
  eu : pid array; (* m canonical endpoints, eu.(e) < ev.(e), sorted *)
  ev : pid array;
}

(* Canonicalize, validate and dedup an edge set into sorted packed keys
   u * n + v (u < v). Shared by the list and array constructors. *)
let canonical_keys ~ctx ~n pairs =
  let m0 = Array.length pairs in
  let keys = Array.make (max 1 m0) 0 in
  for idx = 0 to m0 - 1 do
    let a, b = pairs.(idx) in
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg (Printf.sprintf "%s: endpoint out of range (%d, %d)" ctx a b);
    if a = b then invalid_arg (ctx ^ ": self-loop");
    keys.(idx) <- if a < b then (a * n) + b else (b * n) + a
  done;
  let keys = if m0 = Array.length keys then keys else Array.sub keys 0 m0 in
  Array.sort (fun (a : int) b -> compare a b) keys;
  let m = ref 0 in
  for idx = 0 to m0 - 1 do
    if idx = 0 || keys.(idx) <> keys.(idx - 1) then begin
      keys.(!m) <- keys.(idx);
      incr m
    end
  done;
  (keys, !m)

let of_keys ~n keys m =
  let eu = Array.make m 0 and ev = Array.make m 0 in
  for e = 0 to m - 1 do
    eu.(e) <- keys.(e) / n;
    ev.(e) <- keys.(e) mod n
  done;
  let off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    off.(eu.(e)) <- off.(eu.(e)) + 1;
    off.(ev.(e)) <- off.(ev.(e)) + 1
  done;
  let total = ref 0 in
  for i = 0 to n - 1 do
    let d = off.(i) in
    off.(i) <- !total;
    total := !total + d
  done;
  off.(n) <- !total;
  let nbr = Array.make (2 * m) 0 in
  let slot_edge = Array.make (2 * m) 0 in
  let fill = Array.sub off 0 (max 1 n) in
  (* Filling in sorted edge order leaves every row ascending: vertex i
     first receives all smaller neighbors u (as edges (u, i) with u < i,
     ascending in u), then all larger ones (as edges (i, v), ascending
     in v). *)
  for e = 0 to m - 1 do
    let u = eu.(e) and v = ev.(e) in
    nbr.(fill.(u)) <- v;
    slot_edge.(fill.(u)) <- e;
    fill.(u) <- fill.(u) + 1;
    nbr.(fill.(v)) <- u;
    slot_edge.(fill.(v)) <- e;
    fill.(v) <- fill.(v) + 1
  done;
  { n; off; nbr; slot_edge; eu; ev }

let of_edge_array ~n pairs =
  if n <= 0 then invalid_arg "Graph.of_edge_array: n must be positive";
  let keys, m = canonical_keys ~ctx:"Graph.of_edge_array" ~n pairs in
  of_keys ~n keys m

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let keys, m = canonical_keys ~ctx:"Graph.of_edges" ~n (Array.of_list edge_list) in
  of_keys ~n keys m

let n t = t.n
let edge_count t = Array.length t.eu

let edges t =
  let acc = ref [] in
  for e = Array.length t.eu - 1 downto 0 do
    acc := (t.eu.(e), t.ev.(e)) :: !acc
  done;
  !acc

let degree t i = t.off.(i + 1) - t.off.(i)
let neighbors t i = Array.sub t.nbr t.off.(i) (degree t i)

let max_degree t =
  let best = ref 0 in
  for i = 0 to t.n - 1 do
    if degree t i > !best then best := degree t i
  done;
  !best

(* Slot of [j] within [i]'s row, or -1. Rows are ascending. The search
   is a tail recursion over plain ints: dir_index_opt sits on the
   per-delivery path of Net.route, so it must not allocate. *)
let[@lint.hot] rec bsearch t j lo hi =
  if lo >= hi then -1
  else
    let mid = (lo + hi) / 2 in
    let v = t.nbr.(mid) in
    if v = j then mid else if v < j then bsearch t j (mid + 1) hi else bsearch t j lo mid

let[@lint.hot] find_dir t i j = bsearch t j t.off.(i) t.off.(i + 1)

let is_edge t i j =
  if i = j then false
  else begin
    (* Search the sorted neighbor row of the lower-degree endpoint. *)
    let a, b = if degree t i <= degree t j then (i, j) else (j, i) in
    find_dir t a b >= 0
  end

let dir_count t = Array.length t.nbr

let dir_index t i j =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Graph.dir_index: bad vertex %d" i);
  let s = find_dir t i j in
  if s < 0 then invalid_arg (Printf.sprintf "Graph.dir_index: %d and %d are not neighbors" i j);
  s

let[@lint.hot] dir_index_opt t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then -1 else find_dir t i j

let slot_dst t s = t.nbr.(s)
let slot_edge_id t s = t.slot_edge.(s)
let edge_endpoints t e = (t.eu.(e), t.ev.(e))
let csr_offsets t = t.off
let csr_targets t = t.nbr

let iter_edges t f =
  for e = 0 to Array.length t.eu - 1 do
    f t.eu.(e) t.ev.(e)
  done

let fold_vertices t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f !acc i
  done;
  !acc

let is_connected t =
  let visited = Array.make t.n false in
  (* Explicit stack: recursion would overflow on path-like graphs at
     scale. *)
  let stack = Array.make t.n 0 in
  let top = ref 0 in
  let push i =
    if not visited.(i) then begin
      visited.(i) <- true;
      stack.(!top) <- i;
      incr top
    end
  in
  push 0;
  while !top > 0 do
    decr top;
    let u = stack.(!top) in
    for s = t.off.(u) to t.off.(u + 1) - 1 do
      push t.nbr.(s)
    done
  done;
  Array.for_all Fun.id visited

let distances_from t source =
  if source < 0 || source >= t.n then invalid_arg "Graph.distances_from: bad vertex";
  let dist = Array.make t.n t.n in
  let queue = Array.make t.n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(source) <- 0;
  queue.(!tail) <- source;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for s = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.nbr.(s) in
      if dist.(v) > dist.(u) + 1 then begin
        dist.(v) <- dist.(u) + 1;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  dist

let pp ppf t = Format.fprintf ppf "graph(n=%d, m=%d)" t.n (edge_count t)

let to_dot ?(name = "conflict") ?(vertex_label = string_of_int) ?(vertex_color = fun _ -> None)
    t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for i = 0 to t.n - 1 do
    let attrs =
      match vertex_color i with
      | Some color ->
          Printf.sprintf "label=\"%s\", style=filled, fillcolor=\"%s\"" (vertex_label i) color
      | None -> Printf.sprintf "label=\"%s\"" (vertex_label i)
    in
    Buffer.add_string buf (Printf.sprintf "  %d [%s];\n" i attrs)
  done;
  iter_edges t (fun a b -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" a b));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
