type spec =
  | Ring of int
  | Path of int
  | Clique of int
  | Star of int
  | Grid of int * int
  | Torus of int * int
  | Binary_tree of int
  | Hypercube of int
  | Wheel of int
  | Bipartite of int * int
  | Random_gnp of int * float * int64
  | Scale_free of int * int * int64

let check cond msg = if not cond then invalid_arg ("Topology.build: " ^ msg)

let ring n =
  check (n >= 3) "ring needs n >= 3";
  Graph.of_edge_array ~n (Array.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  check (n >= 2) "path needs n >= 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let clique n =
  check (n >= 2) "clique needs n >= 2";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star n =
  check (n >= 2) "star needs n >= 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid rows cols =
  check (rows >= 1 && cols >= 1 && rows * cols >= 2) "grid needs >= 2 vertices";
  let id r c = (r * cols) + c in
  let m = (rows * (cols - 1)) + ((rows - 1) * cols) in
  let edges = Array.make (max 1 m) (0, 0) in
  let k = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then begin
        edges.(!k) <- (id r c, id r (c + 1));
        incr k
      end;
      if r + 1 < rows then begin
        edges.(!k) <- (id r c, id (r + 1) c);
        incr k
      end
    done
  done;
  Graph.of_edge_array ~n:(rows * cols) edges

let torus rows cols =
  check (rows >= 3 && cols >= 3) "torus needs rows, cols >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let binary_tree n =
  check (n >= 2) "binary tree needs n >= 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (((i + 1) - 1) / 2, i + 1)))

let hypercube d =
  check (d >= 1 && d <= 16) "hypercube needs 1 <= d <= 16";
  let n = 1 lsl d in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for b = 0 to d - 1 do
      let j = i lxor (1 lsl b) in
      if i < j then edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let wheel n =
  check (n >= 4) "wheel needs n >= 4";
  (* Vertex 0 is the hub; 1 .. n-1 form the rim cycle. *)
  let rim = n - 1 in
  let edges = ref [] in
  for k = 0 to rim - 1 do
    edges := (0, k + 1) :: (k + 1, ((k + 1) mod rim) + 1) :: !edges
  done;
  Graph.of_edges ~n !edges

let bipartite a b =
  check (a >= 1 && b >= 1) "bipartite needs both sides non-empty";
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      edges := (i, a + j) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let random_gnp n p seed =
  check (n >= 2) "gnp needs n >= 2";
  check (p >= 0.0 && p <= 1.0) "gnp needs 0 <= p <= 1";
  let rng = Sim.Rng.create seed in
  (* Random spanning chain first so that the graph is connected, then each
     remaining pair independently with probability p. *)
  let order = Array.init n Fun.id in
  Sim.Rng.shuffle rng order;
  let edges = ref [] in
  for i = 0 to n - 2 do
    edges := (order.(i), order.(i + 1)) :: !edges
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Sim.Rng.float rng < p then edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let scale_free n m seed =
  check (m >= 1) "scale_free needs m >= 1";
  check (n >= m + 1) "scale_free needs n >= m + 1";
  let rng = Sim.Rng.create seed in
  (* Barabási–Albert preferential attachment, repeated-endpoints method:
     [stubs] holds every edge endpoint seen so far, so sampling it
     uniformly is sampling vertices proportional to degree. Seed with a
     star on the first m + 1 vertices, then attach each new vertex to m
     distinct degree-biased targets. *)
  let edge_total = m + ((n - m - 1) * m) in
  let eu = Array.make edge_total 0 and evv = Array.make edge_total 0 in
  let stubs = Array.make (2 * edge_total) 0 in
  let nstubs = ref 0 in
  let nedges = ref 0 in
  let push_edge u v =
    eu.(!nedges) <- u;
    evv.(!nedges) <- v;
    incr nedges;
    stubs.(!nstubs) <- u;
    stubs.(!nstubs + 1) <- v;
    nstubs := !nstubs + 2
  in
  for v = 1 to m do
    push_edge 0 v
  done;
  let targets = Array.make m 0 in
  for v = m + 1 to n - 1 do
    let chosen = ref 0 in
    while !chosen < m do
      let candidate = stubs.(Sim.Rng.int rng !nstubs) in
      let fresh = ref true in
      for k = 0 to !chosen - 1 do
        if targets.(k) = candidate then fresh := false
      done;
      if !fresh then begin
        targets.(!chosen) <- candidate;
        incr chosen
      end
    done;
    for k = 0 to m - 1 do
      push_edge targets.(k) v
    done
  done;
  Graph.of_edge_array ~n (Array.init edge_total (fun e -> (eu.(e), evv.(e))))

let build = function
  | Ring n -> ring n
  | Path n -> path n
  | Clique n -> clique n
  | Star n -> star n
  | Grid (r, c) -> grid r c
  | Torus (r, c) -> torus r c
  | Binary_tree n -> binary_tree n
  | Hypercube d -> hypercube d
  | Wheel n -> wheel n
  | Bipartite (a, b) -> bipartite a b
  | Random_gnp (n, p, seed) -> random_gnp n p seed
  | Scale_free (n, m, seed) -> scale_free n m seed

let name = function
  | Ring n -> Printf.sprintf "ring-%d" n
  | Path n -> Printf.sprintf "path-%d" n
  | Clique n -> Printf.sprintf "clique-%d" n
  | Star n -> Printf.sprintf "star-%d" n
  | Grid (r, c) -> Printf.sprintf "grid-%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus-%dx%d" r c
  | Binary_tree n -> Printf.sprintf "tree-%d" n
  | Hypercube d -> Printf.sprintf "cube-%d" d
  | Wheel n -> Printf.sprintf "wheel-%d" n
  | Bipartite (a, b) -> Printf.sprintf "bipartite-%dx%d" a b
  | Random_gnp (n, p, seed) -> Printf.sprintf "gnp-%d-%.2f-%Ld" n p seed
  | Scale_free (n, m, seed) -> Printf.sprintf "sf-%d-%d-%Ld" n m seed

let parse s =
  let parts = String.split_on_char ':' s in
  let int x = int_of_string_opt x in
  let dims x =
    match String.split_on_char 'x' x with
    | [ a; b ] -> ( match (int a, int b) with Some a, Some b -> Some (a, b) | _ -> None)
    | _ -> None
  in
  let err () = Error (Printf.sprintf "cannot parse topology %S" s) in
  match parts with
  | [ "ring"; x ] -> ( match int x with Some n -> Ok (Ring n) | None -> err ())
  | [ "path"; x ] -> ( match int x with Some n -> Ok (Path n) | None -> err ())
  | [ "clique"; x ] -> ( match int x with Some n -> Ok (Clique n) | None -> err ())
  | [ "star"; x ] -> ( match int x with Some n -> Ok (Star n) | None -> err ())
  | [ "grid"; x ] -> ( match dims x with Some (r, c) -> Ok (Grid (r, c)) | None -> err ())
  | [ "torus"; x ] -> ( match dims x with Some (r, c) -> Ok (Torus (r, c)) | None -> err ())
  | [ "tree"; x ] -> ( match int x with Some n -> Ok (Binary_tree n) | None -> err ())
  | [ "cube"; x ] -> ( match int x with Some d -> Ok (Hypercube d) | None -> err ())
  | [ "wheel"; x ] -> ( match int x with Some n -> Ok (Wheel n) | None -> err ())
  | [ "bipartite"; x ] -> (
      match dims x with Some (a, b) -> Ok (Bipartite (a, b)) | None -> err ())
  | [ "sf"; x; mstr ] | [ "sf"; x; mstr; _ ] -> (
      let seed =
        match parts with
        | [ _; _; _; seedstr ] -> Int64.of_string_opt seedstr
        | _ -> Some 1L
      in
      match (int x, int mstr, seed) with
      | Some n, Some m, Some seed -> Ok (Scale_free (n, m, seed))
      | _ -> err ())
  | [ "gnp"; x; pstr ] | [ "gnp"; x; pstr; _ ] -> (
      let seed =
        match parts with
        | [ _; _; _; seedstr ] -> Int64.of_string_opt seedstr
        | _ -> Some 1L
      in
      match (int x, float_of_string_opt pstr, seed) with
      | Some n, Some p, Some seed -> Ok (Random_gnp (n, p, seed))
      | _ -> err ())
  | _ -> err ()

let all_small =
  [
    Ring 5;
    Ring 12;
    Path 8;
    Clique 6;
    Star 9;
    Grid (3, 4);
    Torus (3, 3);
    Binary_tree 10;
    Hypercube 3;
    Wheel 7;
    Bipartite (3, 4);
    Random_gnp (14, 0.25, 7L);
  ]
