(** Trace diffing: find the first divergent event between two runs.

    Works on exported JSONL lines (see {!Jsonl}), so "identical" means
    byte-identical — the property the harness promises for equal
    (scenario, seed) at any domain count. When two traces differ
    (different seeds, code versions, or a determinism bug), the tool
    pinpoints the first divergent event and shows the tail of the common
    prefix for orientation. *)

type divergence = {
  index : int;  (** 0-based position of the first differing event. *)
  a : string option;  (** Line in trace A, or [None] if A ended first. *)
  b : string option;
  context : string list;
      (** Tail of the (shared) prefix before the divergence, oldest
          first. *)
}

val lines : ?keep_comments:bool -> string -> string list
(** Split an exported trace into event lines, dropping blank lines and —
    unless [keep_comments] — ["#"-prefixed] header lines, so run
    metadata (seed, date) never counts as a divergence. *)

val first_divergence : ?context:int -> string list -> string list -> divergence option
(** [None] when both traces are identical; otherwise the first divergent
    position with up to [context] (default 3) preceding events. A
    strict-prefix relationship diverges at the shorter trace's end. *)

val identical : string list -> string list -> bool

val pp : Format.formatter -> divergence -> unit
