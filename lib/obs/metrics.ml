type counter = int ref
type gauge = int ref

type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 16

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register t name wanted make unwrap =
  match Hashtbl.find_opt t name with
  | None ->
      let m = make () in
      Hashtbl.add t name m;
      (match unwrap m with Some v -> v | None -> assert false)
  | Some m -> (
      match unwrap m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name m) wanted))

let counter t name =
  register t name "counter"
    (fun () -> Counter (ref 0))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name "gauge" (fun () -> Gauge (ref 0)) (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name "histogram"
    (fun () -> Histogram { count = 0; sum = 0; min_v = max_int; max_v = min_int })
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) (c : counter) = c := !c + by
let counter_value (c : counter) = !c
let set (g : gauge) v = g := v
let gauge_value (g : gauge) = !g

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

type value =
  | Count of int
  | Level of int
  | Dist of { count : int; sum : int; min : int; max : int }

let value_of = function
  | Counter c -> Count !c
  | Gauge g -> Level !g
  | Histogram h -> Dist { count = h.count; sum = h.sum; min = h.min_v; max = h.max_v }

let find t name = Option.map value_of (Hashtbl.find_opt t name)

let dump t =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_value ppf = function
  | Count v -> Format.fprintf ppf "%d" v
  | Level v -> Format.fprintf ppf "%d" v
  | Dist { count = 0; _ } -> Format.fprintf ppf "count=0"
  | Dist { count; sum; min; max } ->
      Format.fprintf ppf "count=%d sum=%d min=%d max=%d mean=%.1f" count sum min max
        (float_of_int sum /. float_of_int count)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun (name, v) -> Format.fprintf ppf "%-28s %a@," name pp_value v) (dump t);
  Format.pp_close_box ppf ()
