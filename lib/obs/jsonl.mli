(** JSONL export of trace records.

    One record per line, compact JSON, fixed field order — a
    deterministic run exports a byte-identical file, which is what makes
    {!Diff} meaningful. Lines starting with [#] are reserved for
    human-readable headers (run metadata) and are ignored by the diff
    tool. *)

val append : Buffer.t -> Record.t -> unit
(** Append one record as a newline-terminated JSON line. *)

val to_line : Record.t -> string
(** One record as a JSON line, without the trailing newline. *)

val of_records : Record.t list -> string
(** All records, one line each, each newline-terminated. *)

val field_int : string -> string -> int option
(** [field_int line name] scans a JSON line for an integer field, e.g.
    [field_int l "t"] — enough to surface the time of a divergent line
    without a full JSON parser. *)

val field_string : string -> string -> string option
(** [field_string line name] scans a JSON line for a string field and
    unescapes it — the inverse of what {!append} writes, for consumers
    (e.g. counterexample replay) that re-read their own exports. *)
