(* Hand-rolled compact JSON: the record shapes are flat and fixed, and
   field order is deterministic by construction, so byte-identical runs
   export byte-identical lines. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let str buf k v =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf k;
  Buffer.add_string buf "\":\"";
  escape buf v;
  Buffer.add_char buf '"'

let int buf k v =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf k;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (string_of_int v)

let bool buf k v =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf k;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (if v then "true" else "false")

let append buf (r : Record.t) =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int r.seq);
  Buffer.add_string buf ",\"t\":";
  Buffer.add_string buf (string_of_int r.time);
  Buffer.add_string buf ",\"k\":\"";
  Buffer.add_string buf (Record.label r.kind);
  Buffer.add_char buf '"';
  (match r.kind with
  | Record.Sched { id; at } ->
      int buf "id" id;
      int buf "at" at
  | Record.Fire { id } -> int buf "id" id
  | Record.Cancel { id } -> int buf "id" id
  | Record.Send { src; dst; tag; deliver_at } ->
      int buf "src" src;
      int buf "dst" dst;
      str buf "tag" tag;
      int buf "at" deliver_at
  | Record.Deliver { src; dst; tag } | Record.Drop { src; dst; tag } ->
      int buf "src" src;
      int buf "dst" dst;
      str buf "tag" tag
  | Record.Phase { pid; phase } ->
      int buf "pid" pid;
      str buf "phase" phase
  | Record.Suspect { observer; target; on } ->
      int buf "obs" observer;
      int buf "tgt" target;
      bool buf "on" on
  | Record.Crash { pid } -> int buf "pid" pid
  | Record.Mark { subject; tag; detail } ->
      int buf "pid" subject;
      str buf "tag" tag;
      if detail <> "" then str buf "detail" detail);
  Buffer.add_string buf "}\n"

let to_line r =
  let buf = Buffer.create 96 in
  append buf r;
  (* append terminates the line; a lone line is returned without it. *)
  Buffer.sub buf 0 (Buffer.length buf - 1)

let of_records records =
  let buf = Buffer.create 4096 in
  List.iter (append buf) records;
  Buffer.contents buf

(* Minimal field scanner: looks for ["name":<int>] in a line, enough to
   surface time/seq when reporting a divergence without a JSON parser. *)
let field_int line name =
  let needle = "\"" ^ name ^ "\":" in
  let nlen = String.length needle and llen = String.length line in
  let rec find i = if i + nlen > llen then None else if String.sub line i nlen = needle then Some (i + nlen) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < llen && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None else int_of_string_opt (String.sub line start (!stop - start))

(* Companion scanner for ["name":"<string>"] fields, undoing the escapes
   [escape] produces (\uXXXX is left alone: no emitter here writes any
   character it would need to recover). *)
let field_string line name =
  let needle = "\"" ^ name ^ "\":\"" in
  let nlen = String.length needle and llen = String.length line in
  let rec find i = if i + nlen > llen then None else if String.sub line i nlen = needle then Some (i + nlen) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let buf = Buffer.create 16 in
      let rec scan i =
        if i >= llen then None
        else
          match line.[i] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when i + 1 < llen ->
              (match line.[i + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | c ->
                  Buffer.add_char buf '\\';
                  Buffer.add_char buf c);
              scan (i + 2)
          | c ->
              Buffer.add_char buf c;
              scan (i + 1)
      in
      scan start
