(** Name-keyed metrics registry: counters, gauges and histograms.

    One registry per simulated world (allocated in [Harness.World]),
    replacing ad-hoc counters scattered through components: the network
    layer registers its traffic counters, monitors register wait-time
    histograms, and the harness publishes engine gauges at report time.
    Handles are plain mutable cells, so the hot-path cost of a counter
    bump is one integer store; all ordering happens at {!dump} time,
    where names are sorted so output never surfaces hash order. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int
val observe : histogram -> int -> unit

type value =
  | Count of int
  | Level of int
  | Dist of { count : int; sum : int; min : int; max : int }

val find : t -> string -> value option
val dump : t -> (string * value) list
(** All metrics, sorted by name. *)

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
(** One [name value] line per metric, sorted by name. *)
