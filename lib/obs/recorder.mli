(** Structured, allocation-light event recorder.

    One recorder per simulated world. Components emit typed
    {!Record.t}s; the recorder either drops them (disabled — one mutable
    flag test per emission, no allocation), fans them out to sinks, or
    retains them in a growable buffer for JSONL export and diffing.

    Two enablement levels keep the common case cheap:

    - {e light} records (phase transitions, suspicion flips, crashes,
      marks) flow whenever any sink is attached or collection is on —
      this is the legacy {!Sim.Trace} channel that monitors and the CLI
      [--trace] flag use;
    - {e structural} records (engine schedule/fire/cancel, message
      send/deliver/drop) are high-volume and flow only under {e full}
      tracing: a collecting recorder or an {!on_record} sink.

    Sinks registered with {!on_record}/{!on_light} are stored by
    consing and reversed at fire time, so they run in subscription
    order — O(1) per registration, and deterministic fan-out order. *)

type t

type sink = Record.t -> unit

val create : unit -> t
(** A disabled recorder: every emission is dropped. *)

val collecting : unit -> t
(** A recorder that retains every record in memory (full tracing). *)

val on_record : t -> sink -> unit
(** Attach a sink receiving {e every} record; enables full tracing. *)

val on_light : t -> sink -> unit
(** Attach a sink receiving only light records; enables light tracing
    without paying for structural records. *)

val enabled : t -> bool
(** Whether light records currently flow. *)

val tracing : t -> bool
(** Whether structural records currently flow (full tracing). *)

val tracing_flag : t -> bool ref
(** The live cell behind {!tracing}. Hot-path emitters (the engine's
    schedule/fire, the network's send path) hold this cell and guard
    their emission calls with an inline dereference, so a disabled
    recorder costs one load + branch per event — no cross-module call.
    Read-only for callers; the recorder updates it as sinks attach. *)

(** {2 Emission} — each is a no-op at the cost of one branch when the
    corresponding level is disabled. *)

val sched : t -> time:int -> id:int -> at:int -> unit
val fire : t -> time:int -> id:int -> unit
val cancel : t -> time:int -> id:int -> unit
val send : t -> time:int -> src:int -> dst:int -> tag:string -> deliver_at:int -> unit
val deliver : t -> time:int -> src:int -> dst:int -> tag:string -> unit
val drop : t -> time:int -> src:int -> dst:int -> tag:string -> unit
val phase : t -> time:int -> pid:int -> phase:string -> unit
val suspect : t -> time:int -> observer:int -> target:int -> on:bool -> unit
val crash : t -> time:int -> pid:int -> unit
val mark : t -> time:int -> subject:int -> tag:string -> string -> unit

val emit_light : t -> time:int -> Record.kind -> unit
val emit_structural : t -> time:int -> Record.kind -> unit

(** {2 Collected records} *)

val records : t -> Record.t list
(** Records collected so far, oldest first; empty unless collecting. *)

val iter : t -> (Record.t -> unit) -> unit
val count : t -> int
