type kind =
  | Sched of { id : int; at : int }
  | Fire of { id : int }
  | Cancel of { id : int }
  | Send of { src : int; dst : int; tag : string; deliver_at : int }
  | Deliver of { src : int; dst : int; tag : string }
  | Drop of { src : int; dst : int; tag : string }
  | Phase of { pid : int; phase : string }
  | Suspect of { observer : int; target : int; on : bool }
  | Crash of { pid : int }
  | Mark of { subject : int; tag : string; detail : string }

type t = { seq : int; time : int; kind : kind }

let structural = function
  | Sched _ | Fire _ | Cancel _ | Send _ | Deliver _ | Drop _ -> true
  | Phase _ | Suspect _ | Crash _ | Mark _ -> false

let label = function
  | Sched _ -> "sched"
  | Fire _ -> "fire"
  | Cancel _ -> "cancel"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Phase _ -> "phase"
  | Suspect _ -> "suspect"
  | Crash _ -> "crash"
  | Mark _ -> "mark"

let subject = function
  | Sched _ | Fire _ | Cancel _ -> -1
  | Send { src; _ } | Deliver { src; _ } | Drop { src; _ } -> src
  | Phase { pid; _ } -> pid
  | Suspect { observer; _ } -> observer
  | Crash { pid } -> pid
  | Mark { subject; _ } -> subject

let pp ppf r =
  Format.fprintf ppf "[%6d @%-8d] " r.seq r.time;
  match r.kind with
  | Sched { id; at } -> Format.fprintf ppf "sched   ev%d at %d" id at
  | Fire { id } -> Format.fprintf ppf "fire    ev%d" id
  | Cancel { id } -> Format.fprintf ppf "cancel  ev%d" id
  | Send { src; dst; tag; deliver_at } ->
      Format.fprintf ppf "send    %d->%d %s (deliver %d)" src dst tag deliver_at
  | Deliver { src; dst; tag } -> Format.fprintf ppf "deliver %d->%d %s" src dst tag
  | Drop { src; dst; tag } -> Format.fprintf ppf "drop    %d->%d %s" src dst tag
  | Phase { pid; phase } -> Format.fprintf ppf "phase   p%d %s" pid phase
  | Suspect { observer; target; on } ->
      Format.fprintf ppf "suspect p%d %s p%d" observer (if on then "suspects" else "clears") target
  | Crash { pid } -> Format.fprintf ppf "crash   p%d" pid
  | Mark { subject; tag; detail } ->
      Format.fprintf ppf "mark    p%d %s%s" subject tag (if detail = "" then "" else " " ^ detail)
