type sink = Record.t -> unit

type t = {
  mutable seq : int;
  mutable collect : bool;
  mutable buf : Record.t array;
  mutable len : int;
  (* Sinks are stored newest-first (cons on subscribe) and fired in
     subscription order (reverse at fire) — O(1) registration, and the
     fire order is load-bearing for deterministic traces. *)
  mutable full_sinks : sink list;
  mutable light_sinks : sink list;
  (* Cached enablement so every emission is one mutable-field test. The
     full flag is a shared [bool ref] so hot-path callers (engine,
     network) can hold the cell directly and guard emission with an
     inline dereference instead of a cross-module call. *)
  mutable light_on : bool;
  full_on : bool ref;
}

let refresh t =
  t.full_on := t.collect || t.full_sinks <> [];
  t.light_on <- !(t.full_on) || t.light_sinks <> []

let create () =
  {
    seq = 0;
    collect = false;
    buf = [||];
    len = 0;
    full_sinks = [];
    light_sinks = [];
    light_on = false;
    full_on = ref false;
  }

let collecting () =
  let t = create () in
  t.collect <- true;
  refresh t;
  t

let on_record t f =
  t.full_sinks <- f :: t.full_sinks;
  refresh t

let on_light t f =
  t.light_sinks <- f :: t.light_sinks;
  refresh t

let enabled t = t.light_on
let tracing t = !(t.full_on)
let tracing_flag t = t.full_on

let append t r =
  if t.len = Array.length t.buf then begin
    let cap = max 256 (2 * t.len) in
    let buf = Array.make cap r in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  t.buf.(t.len) <- r;
  t.len <- t.len + 1

let push t time kind =
  let r = { Record.seq = t.seq; time; kind } in
  t.seq <- t.seq + 1;
  if t.collect then append t r;
  List.iter (fun f -> f r) (List.rev t.full_sinks);
  r

let emit_structural t ~time kind = if !(t.full_on) then ignore (push t time kind)

let emit_light t ~time kind =
  if t.light_on then begin
    let r = push t time kind in
    List.iter (fun f -> f r) (List.rev t.light_sinks)
  end

(* Structural emissions: one branch when full tracing is off, and the
   record is only allocated behind the branch. *)
let sched t ~time ~id ~at = if !(t.full_on) then ignore (push t time (Record.Sched { id; at }))
let fire t ~time ~id = if !(t.full_on) then ignore (push t time (Record.Fire { id }))
let cancel t ~time ~id = if !(t.full_on) then ignore (push t time (Record.Cancel { id }))

let send t ~time ~src ~dst ~tag ~deliver_at =
  if !(t.full_on) then ignore (push t time (Record.Send { src; dst; tag; deliver_at }))

let deliver t ~time ~src ~dst ~tag =
  if !(t.full_on) then ignore (push t time (Record.Deliver { src; dst; tag }))

let drop t ~time ~src ~dst ~tag =
  if !(t.full_on) then ignore (push t time (Record.Drop { src; dst; tag }))

let phase t ~time ~pid ~phase = emit_light t ~time (Record.Phase { pid; phase })

let suspect t ~time ~observer ~target ~on =
  emit_light t ~time (Record.Suspect { observer; target; on })

let crash t ~time ~pid = emit_light t ~time (Record.Crash { pid })

let mark t ~time ~subject ~tag detail =
  emit_light t ~time (Record.Mark { subject; tag; detail })

let records t = Array.to_list (Array.sub t.buf 0 t.len)
let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done
let count t = t.len
