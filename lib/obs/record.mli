(** Typed observability records.

    One constructor per thing the simulator does: engine events being
    scheduled, fired and cancelled; messages being sent, delivered and
    absorbed; dining-phase transitions; suspicion flips; crashes; and
    free-form marks (the legacy {!Sim.Trace} channel). Records carry the
    virtual time at which they were emitted plus a per-recorder sequence
    number, so two runs can be compared event-by-event. *)

type kind =
  | Sched of { id : int; at : int }
      (** Engine event [id] scheduled to fire at virtual time [at]. *)
  | Fire of { id : int }  (** Engine event [id] fired. *)
  | Cancel of { id : int }  (** Engine event [id] cancelled while pending. *)
  | Send of { src : int; dst : int; tag : string; deliver_at : int }
      (** Message of kind [tag] sent on channel (src, dst); the FIFO
          delivery time is already decided at send time. *)
  | Deliver of { src : int; dst : int; tag : string }
  | Drop of { src : int; dst : int; tag : string }
      (** Message absorbed because its destination had crashed. *)
  | Phase of { pid : int; phase : string }
      (** Dining-phase transition ("thinking", "hungry", "eating"). *)
  | Suspect of { observer : int; target : int; on : bool }
      (** Failure-detector suspicion flip: [observer] starts ([on]) or
          stops suspecting [target]. *)
  | Crash of { pid : int }  (** Crash-stop fault realised. *)
  | Mark of { subject : int; tag : string; detail : string }
      (** Free-form annotation; the compatibility image of
          {!Sim.Trace.emit}. *)

type t = { seq : int; time : int; kind : kind }

val structural : kind -> bool
(** Whether the record belongs to the high-volume structural category
    (engine and network internals) that only full tracing captures, as
    opposed to the light category (phase, suspicion, crash, mark) that
    legacy sinks also observe. *)

val label : kind -> string
(** Short machine-readable constructor name, e.g. ["send"]. *)

val subject : kind -> int
(** Process id the record is about, or [-1] for engine-global records. *)

val pp : Format.formatter -> t -> unit
