type divergence = {
  index : int;  (* 0-based position of the first differing event *)
  a : string option;
  b : string option;
  context : string list;  (* tail of the common prefix, oldest first *)
}

let lines ?(keep_comments = false) s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && (keep_comments || l.[0] <> '#'))

let first_divergence ?(context = 3) a b =
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  let la = Array.length arr_a and lb = Array.length arr_b in
  let rec scan i =
    if i >= la && i >= lb then None
    else begin
      let va = if i < la then Some arr_a.(i) else None in
      let vb = if i < lb then Some arr_b.(i) else None in
      if va = vb then scan (i + 1)
      else begin
        (* Everything before [i] matched, so either side is "the" common
           prefix; surface its tail for orientation. *)
        let from = max 0 (i - context) in
        let common = Array.to_list (Array.sub arr_a from (min la i - from)) in
        Some { index = i; a = va; b = vb; context = common }
      end
    end
  in
  scan 0

let identical a b = first_divergence ~context:0 a b = None

let pp_line ppf prefix = function
  | None -> Format.fprintf ppf "%s <end of trace>@," prefix
  | Some l -> Format.fprintf ppf "%s %s@," prefix l

let pp ppf d =
  Format.pp_open_vbox ppf 0;
  let where =
    match d.a with
    | Some l -> (
        match (Jsonl.field_int l "t", Jsonl.field_int l "seq") with
        | Some t, Some seq -> Format.sprintf " (A: seq %d, virtual time %d)" seq t
        | _ -> "")
    | None -> ""
  in
  Format.fprintf ppf "first divergence at event %d%s@," d.index where;
  if d.context <> [] then begin
    Format.fprintf ppf "common prefix ends with:@,";
    List.iter (fun l -> Format.fprintf ppf "  %s@," l) d.context
  end;
  pp_line ppf "A:" d.a;
  pp_line ppf "B:" d.b;
  Format.pp_close_box ppf ()
