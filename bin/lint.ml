(* lint — the determinism & domain-safety static-analysis pass.

   Two layers:
   - the syntactic pass parses every .ml in the deterministic zone with
     compiler-libs and applies the syntactic Lint.Rule subset;
   - with --typed, the interprocedural passes (domain-escape,
     hot-path-alloc, transitive effect inference) additionally run over
     .cmt artifacts — `dune build @lint` depends on @check and runs
     from the build context so the artifacts are in place. With
     positional FILEs, --typed typechecks them in-process instead
     (fixture / test mode; files must be self-contained).

   Hygiene: every [@lint.allow] site and allowlist entry is tracked
   across all passes. Stale allowlist entries (suppressed nothing,
   their rule was checked, their path was scanned) are findings; unused
   [@lint.allow] attributes are warnings.

   Exit codes: 0 clean, 1 findings, 2 on unreadable/unparsable inputs
   or bad flags. *)

open Cmdliner

let rules_arg =
  Arg.(
    value & opt (some string) None
    & info [ "rules" ] ~docv:"IDS"
        ~doc:
          "Comma-separated rule ids to enable (default: all). See $(b,--list-rules) for \
           the catalogue.")

let zone_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "zone" ] ~docv:"DIR"
        ~doc:
          "Restrict the scan to this directory (repeatable, comma-separable). Defaults \
           to the deterministic zone: lib/sim, lib/core, lib/net, lib/detector, \
           lib/graph, lib/harness, lib/monitor, lib/stabilize, lib/baselines, \
           lib/mcheck, lib/exec, lib/stats, lib/fuzz.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("github", `Github) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,text) (file:line:col) or $(b,github) (CI annotations).")

let allowlist_arg =
  Arg.(
    value & opt (some file) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          "Allowlist file ($(i,rule-id path) per line, # comments). Defaults to \
           ./lint.allow when present.")

let typed_arg =
  Arg.(
    value & flag
    & info [ "typed" ]
        ~doc:
          "Also run the typed interprocedural passes (domain-escape, hot-path-alloc, \
           transitive ambient/io/mutation effects) over the zone's .cmt artifacts; run \
           via $(b,dune build @lint) so the artifacts exist. With positional FILEs the \
           sources are typechecked in-process instead (they must be self-contained).")

let list_rules_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")

let files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Lint these files instead of scanning the zone.")

let split_commas args = List.concat_map (String.split_on_char ',') args

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%-18s %s\n\n" (Lint.Rule.name r) (Lint.Rule.explanation r))
    Lint.Rule.all

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load typed units: from .cmt artifacts for a zone scan, by in-process
   typechecking for explicit files. *)
let typed_units ~files ~dirs =
  if files <> [] then
    let units, errors =
      List.fold_left
        (fun (us, errs) f ->
          match read_file f with
          | exception Sys_error e -> (us, (f, e) :: errs)
          | source -> (
              match Lint.Cmt_load.typecheck_source ~file:f source with
              | Ok u -> (u :: us, errs)
              | Error e -> (us, (f, e) :: errs)))
        ([], []) files
    in
    { Lint.Cmt_load.units = List.rev units; errors = List.rev errors }
  else Lint.Cmt_load.load_dirs dirs

let run_typed ~rules ~allowlist ~registry ~files ~dirs =
  let has r = List.mem r rules in
  let wants_escape = has Lint.Rule.Domain_escape in
  let wants_hot = has Lint.Rule.Hot_path_alloc in
  let wants_effects =
    has Lint.Rule.Ambient_effects || has Lint.Rule.Io_in_library
    || has Lint.Rule.Mutable_global
  in
  if not (wants_escape || wants_hot || wants_effects) then ([], [])
  else
    let loaded = typed_units ~files ~dirs in
    if loaded.units = [] then
      ( [],
        loaded.errors
        @ [
            ( "(typed)",
              "no .cmt artifacts found — run via `dune build @lint` (which depends on \
               @check), or pass files to typecheck in-process" );
          ] )
    else begin
      let graph = Lint.Callgraph.build loaded.units in
      let findings = ref [] in
      if wants_escape then
        findings := Lint.Escape.run ~registry ~allowlist graph @ !findings;
      if wants_hot then findings := Lint.Hotpath.run ~registry ~allowlist graph @ !findings;
      if wants_effects then
        findings := Lint.Effects.run ~registry ~allowlist graph @ !findings;
      let enabled = List.map Lint.Rule.name rules in
      ( List.filter (fun (f : Lint.Finding.t) -> List.mem f.rule enabled) !findings,
        loaded.errors )
    end

(* Sites every rule of which was actually checked this run; a bare
   [@lint.allow] needs the whole suppressible catalogue. *)
let suppressible_catalogue =
  List.map Lint.Rule.name (Lint.Rule.syntactic @ Lint.Rule.typed_only)

let stale_allowlist_findings ~rules ~registry ~allowlist ~allowlist_path ~targets =
  if not (List.mem Lint.Rule.Stale_allowlist rules) then []
  else
    let checked = Lint.Suppress.checked_rules registry in
    let rule_checked r =
      if r = "*" then List.for_all (fun c -> List.mem c checked) suppressible_catalogue
      else List.mem r checked
    in
    Lint.Allowlist.unused allowlist
    |> List.filter (fun (e : Lint.Allowlist.entry) ->
           rule_checked e.rule
           && List.exists (fun f -> Lint.Allowlist.path_matches ~entry:e ~file:f) targets)
    |> List.map (fun (e : Lint.Allowlist.entry) ->
           {
             Lint.Finding.file = allowlist_path;
             line = e.line;
             col = 1;
             rule = Lint.Rule.name Lint.Rule.Stale_allowlist;
             message =
               Printf.sprintf
                 "allowlist entry `%s %s` suppressed nothing this run; the code it \
                  excused is gone — remove the entry"
                 e.rule e.path;
           })

let report_unused_allows ~rules ~registry ~format =
  if not (List.mem Lint.Rule.Unused_allow rules) then 0
  else begin
    let sites = Lint.Suppress.unused registry ~catalogue:suppressible_catalogue in
    List.iter
      (fun (s : Lint.Suppress.site) ->
        let what = String.concat "," s.rules in
        match format with
        | `Text ->
            Printf.eprintf
              "%s:%d:%d: [unused-allow] [@lint.allow %S] suppressed nothing this run; \
               remove it\n"
              s.file s.line s.col what
        | `Github ->
            Printf.printf
              "::warning file=%s,line=%d,col=%d::[unused-allow] [@lint.allow %S] \
               suppressed nothing this run; remove it\n"
              s.file s.line s.col what)
      sites;
    List.length sites
  end

let go rules zone format allowlist typed list_rules_only files =
  if list_rules_only then begin
    list_rules ();
    0
  end
  else
    let bad_rules = ref [] in
    let rules =
      match rules with
      | None -> Lint.Rule.all
      | Some csv ->
          List.filter_map
            (fun name ->
              match Lint.Rule.of_name name with
              | Some r -> Some r
              | None ->
                  bad_rules := name :: !bad_rules;
                  None)
            (split_commas [ csv ] |> List.filter (fun s -> s <> ""))
    in
    List.iter (Printf.eprintf "lint: unknown rule %S (see --list-rules)\n") !bad_rules;
    let allowlist_path, allowlist =
      match allowlist with
      | Some f -> (f, Lint.Allowlist.load f)
      | None ->
          if Sys.file_exists "lint.allow" then ("lint.allow", Lint.Allowlist.load "lint.allow")
          else ("lint.allow", Lint.Allowlist.empty)
    in
    let dirs = if zone = [] then Lint.Zone.default_dirs else split_commas zone in
    let targets = if files <> [] then files else Lint.Zone.files ~dirs () in
    if !bad_rules <> [] then 2
    else if targets = [] then begin
      Printf.eprintf "lint: nothing to scan (empty zone?)\n";
      2
    end
    else begin
      let registry = Lint.Suppress.create () in
      let report = Lint.Engine.lint_files ~rules ~allowlist ~registry targets in
      let typed_findings, typed_errors =
        if typed then run_typed ~rules ~allowlist ~registry ~files ~dirs else ([], [])
      in
      let errors = report.errors @ typed_errors in
      let findings =
        report.findings @ typed_findings
        @ stale_allowlist_findings ~rules ~registry ~allowlist ~allowlist_path ~targets
        |> List.sort_uniq Lint.Finding.compare
      in
      List.iter (fun (file, msg) -> Printf.eprintf "lint: %s: %s\n" file msg) errors;
      let render =
        match format with `Text -> Lint.Finding.to_text | `Github -> Lint.Finding.to_github
      in
      List.iter (fun f -> print_endline (render f)) findings;
      let unused_count = report_unused_allows ~rules ~registry ~format in
      match (errors, findings) with
      | _ :: _, _ -> 2
      | [], _ :: _ ->
          Printf.eprintf "lint: %d finding(s) in %d file(s)\n" (List.length findings)
            (List.length targets);
          1
      | [], [] ->
          Printf.printf "lint: %d file(s) clean%s%s\n" (List.length targets)
            (if typed then " (syntactic + typed)" else "")
            (if unused_count > 0 then
               Printf.sprintf ", %d unused [@lint.allow] warning(s)" unused_count
             else "");
          0
    end

let cmd =
  Cmd.v
    (Cmd.info "lint" ~version:"%%VERSION%%"
       ~doc:"Determinism & domain-safety static analysis for the simulation core.")
    Term.(
      const go $ rules_arg $ zone_arg $ format_arg $ allowlist_arg $ typed_arg
      $ list_rules_arg $ files_arg)

let () = exit (Cmd.eval' cmd)
