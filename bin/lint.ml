(* lint — the determinism & domain-safety static-analysis pass.

   Parses every .ml in the deterministic zone with compiler-libs and
   applies the Lint.Rule set. Exit codes: 0 clean, 1 findings, 2 on
   unreadable/unparsable inputs or bad flags. *)

open Cmdliner

let rules_arg =
  Arg.(
    value & opt (some string) None
    & info [ "rules" ] ~docv:"IDS"
        ~doc:
          "Comma-separated rule ids to enable (default: all). See $(b,--list-rules) for \
           the catalogue.")

let zone_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "zone" ] ~docv:"DIR"
        ~doc:
          "Restrict the scan to this directory (repeatable, comma-separable). Defaults \
           to the deterministic zone: lib/sim, lib/core, lib/net, lib/detector, \
           lib/graph, lib/harness, lib/monitor, lib/stabilize, lib/baselines, \
           lib/mcheck, lib/exec, lib/stats, lib/fuzz.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("github", `Github) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,text) (file:line:col) or $(b,github) (CI annotations).")

let allowlist_arg =
  Arg.(
    value & opt (some file) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          "Allowlist file ($(i,rule-id path) per line, # comments). Defaults to \
           ./lint.allow when present.")

let list_rules_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")

let files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Lint these files instead of scanning the zone.")

let split_commas args = List.concat_map (String.split_on_char ',') args

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%-18s %s\n\n" (Lint.Rule.name r) (Lint.Rule.explanation r))
    Lint.Rule.all

let go rules zone format allowlist list_rules_only files =
  if list_rules_only then begin
    list_rules ();
    0
  end
  else
    let bad_rules = ref [] in
    let rules =
      match rules with
      | None -> Lint.Rule.all
      | Some csv ->
          List.filter_map
            (fun name ->
              match Lint.Rule.of_name name with
              | Some r -> Some r
              | None ->
                  bad_rules := name :: !bad_rules;
                  None)
            (split_commas [ csv ] |> List.filter (fun s -> s <> ""))
    in
    List.iter (Printf.eprintf "lint: unknown rule %S (see --list-rules)\n") !bad_rules;
    let allowlist =
      match allowlist with
      | Some f -> Lint.Allowlist.load f
      | None ->
          if Sys.file_exists "lint.allow" then Lint.Allowlist.load "lint.allow"
          else Lint.Allowlist.empty
    in
    let targets =
      if files <> [] then files
      else
        let dirs = if zone = [] then Lint.Zone.default_dirs else split_commas zone in
        Lint.Zone.files ~dirs ()
    in
    if !bad_rules <> [] then 2
    else if targets = [] then begin
      Printf.eprintf "lint: nothing to scan (empty zone?)\n";
      2
    end
    else begin
      let report = Lint.Engine.lint_files ~rules ~allowlist targets in
      List.iter (fun (file, msg) -> Printf.eprintf "lint: %s: %s\n" file msg) report.errors;
      let render =
        match format with `Text -> Lint.Finding.to_text | `Github -> Lint.Finding.to_github
      in
      List.iter (fun f -> print_endline (render f)) report.findings;
      match (report.errors, report.findings) with
      | _ :: _, _ -> 2
      | [], _ :: _ ->
          Printf.eprintf "lint: %d finding(s) in %d file(s)\n"
            (List.length report.findings)
            (List.length targets);
          1
      | [], [] ->
          Printf.printf "lint: %d file(s) clean\n" (List.length targets);
          0
    end

let cmd =
  Cmd.v
    (Cmd.info "lint" ~version:"%%VERSION%%"
       ~doc:"Determinism & domain-safety static analysis for the simulation core.")
    Term.(
      const go $ rules_arg $ zone_arg $ format_arg $ allowlist_arg $ list_rules_arg
      $ files_arg)

let () = exit (Cmd.eval' cmd)
