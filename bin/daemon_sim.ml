(* daemon_sim — CLI for the wait-free distributed-daemon reproduction.

   Subcommands:
     run          one dining scenario, human-readable report
     experiments  the reproduction suite (E1..E12, F1..F5)
     mcheck       exhaustive model checking of small instances
     check        systematic checking: DPOR / parallel frontier / replay
     fuzz         property-based fuzzing campaigns with shrinking + replay
     stabilize    a self-stabilizing protocol driven by the daemon *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsers.                                            *)
(* ------------------------------------------------------------------ *)

let topology_conv =
  let parse s = Cgraph.Topology.parse s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Cgraph.Topology.name t))

let topology_arg =
  Arg.(
    value
    & opt topology_conv (Cgraph.Topology.Ring 8)
    & info [ "t"; "topology" ] ~docv:"TOPO"
        ~doc:
          "Conflict graph: ring:N, path:N, clique:N, star:N, grid:RxC, torus:RxC, tree:N, \
           cube:D, gnp:N:P[:SEED].")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let horizon_arg =
  Arg.(value & opt int 60_000 & info [ "horizon" ] ~docv:"TICKS" ~doc:"Run length in ticks.")

let crashes_arg =
  Arg.(
    value & opt int 1
    & info [ "f"; "crashes" ] ~docv:"N" ~doc:"Number of random crash faults to inject.")

let detector_kind =
  Arg.enum
    [
      ("oracle", `Oracle);
      ("oracle-clean", `Oracle_clean);
      ("heartbeat", `Heartbeat);
      ("perfect", `Perfect);
      ("never", `Never);
      ("unreliable", `Unreliable);
    ]

let detector_arg =
  Arg.(
    value & opt detector_kind `Oracle
    & info [ "d"; "detector" ] ~docv:"FD"
        ~doc:
          "Failure detector: oracle (scripted evp-P1 with false positives), oracle-clean \
           (no false positives), heartbeat (message-based), perfect, never (Choy-Singh \
           baseline), unreliable (complete but never accurate).")

let algo_arg =
  Arg.(
    value
    & opt (Arg.enum [ ("song-pike", Harness.Scenario.Song_pike); ("fork-only", Harness.Scenario.Fork_only); ("chandy-misra", Harness.Scenario.Chandy_misra); ("ordered", Harness.Scenario.Ordered) ]) Harness.Scenario.Song_pike
    & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:"Daemon: song-pike, fork-only, chandy-misra, ordered.")

let contended_arg =
  Arg.(value & flag & info [ "contended" ] ~doc:"Zero think time (maximum contention).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the dining-layer event trace.")

let queue_arg =
  Arg.(
    value
    & opt (Arg.enum [ ("wheel", (`Wheel : Sim.Engine.backend)); ("heap", `Heap) ]) `Wheel
    & info [ "queue" ] ~docv:"BACKEND"
        ~doc:
          "Engine event-queue backend: $(b,wheel) (hierarchical timing wheel, the \
           default) or $(b,heap) (binary-heap reference). Both produce bit-identical \
           runs; the flag exists to cross-check and to measure the difference.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the conflict graph as Graphviz dot to $(docv), with priorities as \
           labels and crashed processes filled red.")

let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(
    value
    & opt (positive_int "--domains") (Exec.Pool.default_domains ())
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-seed batches and sweeps (default: the recommended \
           domain count of this machine; 1 forces the sequential fallback). Results are \
           bit-identical for any value — only wall-clock time changes.")

let seeds_arg =
  Arg.(
    value
    & opt (positive_int "--seeds") 10
    & info [ "seeds" ] ~docv:"N" ~doc:"Independent seeds per multi-seed batch.")

let shards_arg =
  Arg.(
    value
    & opt int 0
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Partition the world's process table into $(docv) shards and run the engine on \
           staged stepping (0, the default, keeps the legacy one-event fire loop). Runs \
           and traces are byte-identical for any value -- the knob exists to exercise \
           and time the sharded engine.")

let resolve_detector = function
  | `Oracle ->
      Harness.Scenario.Oracle
        { detection_delay = 50; fp_per_edge = 2; fp_window = 8_000; fp_max_len = 200 }
  | `Oracle_clean ->
      Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }
  | `Heartbeat -> Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }
  | `Perfect -> Harness.Scenario.Perfect
  | `Never -> Harness.Scenario.Never
  | `Unreliable -> Harness.Scenario.Unreliable { period = 1_500; duration = 150 }

(* One CLI surface, one scenario shape: every subcommand that runs a
   world builds it here. *)
let make_scenario ~name ~topology ~seed ~horizon ~crashes ~detector ~algo ~contended =
  {
    Harness.Scenario.default with
    name;
    topology;
    seed;
    horizon;
    algo;
    detector = resolve_detector detector;
    workload =
      (if contended then Harness.Scenario.contended_workload
       else Harness.Scenario.default_workload);
    crashes =
      (if crashes = 0 then Harness.Scenario.No_crashes
       else
         Harness.Scenario.Random_crashes
           { count = crashes; from_t = horizon / 10; to_t = horizon / 2 });
  }

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let print_report (r : Harness.Run.report) =
  let summary = Monitor.Response.summary r.response in
  Printf.printf "scenario        : %s on %s, seed %Ld, horizon %d\n" r.scenario.name
    (Cgraph.Topology.name r.scenario.topology)
    r.scenario.seed r.horizon;
  Printf.printf "daemon          : %s + %s\n"
    (Harness.Scenario.algo_name r.scenario.algo)
    (Harness.Scenario.detector_name r.scenario.detector);
  Printf.printf "crashes         : %s\n"
    (if r.crashed = [] then "none"
     else String.concat ", " (List.map (fun (p, t) -> Printf.sprintf "p%d@%d" p t) r.crashed));
  Printf.printf "eats            : %d (%.1f per ktick), hungry sessions served %d\n" r.total_eats
    (Harness.Run.throughput r)
    (Monitor.Response.served_count r.response);
  Printf.printf "response (ticks): mean %.1f  p95 %.1f  p99 %.1f  max %.1f\n" summary.mean
    summary.p95 summary.p99 summary.max;
  let starved = Harness.Run.starved r ~older_than:10_000 in
  Printf.printf "starved         : %s\n"
    (if starved = [] then "none (wait-free)"
     else "PROCESSES " ^ String.concat "," (List.map string_of_int starved));
  Printf.printf "exclusion       : %d violation(s); detector converged at %s; after that: %d\n"
    (Monitor.Exclusion.count r.exclusion)
    (Stats.Table.cell_time r.convergence)
    (Monitor.Exclusion.count_after r.exclusion r.convergence);
  Printf.printf "overtaking      : max consecutive %d; for sessions after convergence %d (bound 2)\n"
    (Monitor.Fairness.max_consecutive r.fairness)
    (Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence);
  Printf.printf "channels        : max %d msgs in transit per edge (bound 4)\n"
    (Net.Link_stats.max_edge_watermark r.link_stats);
  (match (r.max_footprint_bits, r.max_message_bits) with
  | Some fp, Some mb -> Printf.printf "bounded state   : <= %d bits/process, <= %d bits/message\n" fp mb
  | _ -> ());
  Printf.printf "invariants      : %s\n" (Option.value r.invariant_error ~default:"all executable lemmas held");
  Printf.printf "engine          : %d events processed\n" r.events_processed

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump the run's metrics registry (traffic counters, daemon counters, wait \
           histograms, engine gauges) after the report.")

let run_cmd =
  let go topology seed horizon crashes detector algo contended trace show_metrics dot queue
      shards =
    let scenario =
      make_scenario ~name:"cli" ~topology ~seed ~horizon ~crashes ~detector ~algo ~contended
    in
    let tracer = Sim.Trace.create () in
    if trace then
      Sim.Trace.on_record tracer (fun record ->
          Format.printf "%a@." Sim.Trace.pp_record record);
    let metrics = Obs.Metrics.create () in
    let report = Harness.Run.run ~backend:queue ~trace:tracer ~metrics ~shards scenario in
    print_report report;
    if show_metrics then Format.printf "metrics:@.%a" Obs.Metrics.pp metrics;
    match dot with
    | None -> ()
    | Some path ->
        let colors = Cgraph.Coloring.greedy report.graph in
        let crashed = List.map fst report.crashed in
        let contents =
          Cgraph.Graph.to_dot report.graph
            ~vertex_label:(fun pid -> Printf.sprintf "p%d\\nc=%d" pid colors.(pid))
            ~vertex_color:(fun pid -> if List.mem pid crashed then Some "red" else None)
        in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one dining scenario and report every paper metric.")
    Term.(
      const go $ topology_arg $ seed_arg $ horizon_arg $ crashes_arg $ detector_arg $ algo_arg
      $ contended_arg $ trace_arg $ metrics_arg $ dot_arg $ queue_arg $ shards_arg)

(* ------------------------------------------------------------------ *)
(* experiments                                                          *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let ids_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e12, f1..f6); all when omitted.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write each table and figure's raw data as CSV files into $(docv).")
  in
  let write_csv dir id k name contents =
    let slug =
      String.map
        (fun c -> if ('a' <= c && c <= 'z') || ('0' <= c && c <= '9') then c else '-')
        (String.lowercase_ascii name)
    in
    let path = Filename.concat dir (Printf.sprintf "%s-%d-%s.csv" id k slug) in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  let go ids csv_dir domains seeds =
    let ctx = { Harness.Experiments.domains; seeds } in
    let selected =
      if ids = [] then Harness.Experiments.all
      else
        List.filter_map
          (fun id ->
            match Harness.Experiments.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment id %S (known: %s)\n" id
                  (String.concat ", "
                     (List.map (fun (e : Harness.Experiments.t) -> e.id) Harness.Experiments.all));
                None)
          ids
    in
    (match csv_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    List.iter
      (fun (e : Harness.Experiments.t) ->
        Printf.printf "### %s — %s (reproduces: %s)\n\n" (String.uppercase_ascii e.id) e.title
          e.claim;
        let artifacts = e.run ctx in
        List.iter (fun a -> Harness.Experiments.print_artifact a) artifacts;
        match csv_dir with
        | None -> ()
        | Some dir ->
            List.iteri
              (fun k artifact ->
                match artifact with
                | Harness.Experiments.Table t -> write_csv dir e.id k "table" (Stats.Table.to_csv t)
                | Harness.Experiments.Series s ->
                    write_csv dir e.id k (Stats.Series.title s) (Stats.Series.to_csv s)
                | Harness.Experiments.Note _ -> ())
              artifacts)
      selected
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper-claim tables and figures.")
    Term.(const go $ ids_arg $ csv_arg $ domains_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* batch                                                                *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let patience_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "patience" ] ~docv:"TICKS"
          ~doc:
            "Starvation patience: a process counts as starved when its open hungry \
             session is older than $(docv) at the horizon (default: horizon / 4).")
  in
  (* No --seed: the batch substitutes seeds 1..N by construction. *)
  let go topology horizon crashes detector algo contended seeds domains patience =
    let scenario =
      make_scenario ~name:"batch" ~topology ~seed:Harness.Scenario.default.seed ~horizon
        ~crashes ~detector ~algo ~contended
    in
    let a = Harness.Batch.run ~seeds ~domains ?patience scenario in
    Printf.printf "scenario : %s on %s, seeds 1..%d, horizon %d, %d domain(s)\n" scenario.name
      (Cgraph.Topology.name topology) seeds horizon domains;
    Format.printf "aggregate: %a@." Harness.Batch.pp a
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run one scenario across independent seeds in parallel domains and print the \
          aggregate (bit-identical for any --domains).")
    Term.(
      const go $ topology_arg $ horizon_arg $ crashes_arg $ detector_arg $ algo_arg
      $ contended_arg $ seeds_arg $ domains_arg $ patience_arg)

(* ------------------------------------------------------------------ *)
(* trace / tracediff                                                    *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let runs_arg =
    Arg.(
      value
      & opt (positive_int "--runs") 1
      & info [ "runs" ] ~docv:"N"
          ~doc:"Number of runs to capture, at consecutive seeds starting from --seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  let go topology seed horizon crashes detector algo contended runs domains out queue shards =
    let capture k =
      let seed = Int64.add seed (Int64.of_int k) in
      let scenario =
        make_scenario ~name:"trace" ~topology ~seed ~horizon ~crashes ~detector ~algo
          ~contended
      in
      let tracer = Sim.Trace.collecting () in
      let (_ : Harness.Run.report) = Harness.Run.run ~backend:queue ~trace:tracer ~shards scenario in
      let buf = Buffer.create 65536 in
      Buffer.add_string buf
        (Printf.sprintf "# daemon_sim trace: topology=%s algo=%s detector=%s seed=%Ld horizon=%d events=%d\n"
           (Cgraph.Topology.name topology)
           (Harness.Scenario.algo_name scenario.algo)
           (Harness.Scenario.detector_name scenario.detector)
           seed horizon (Obs.Recorder.count tracer));
      Obs.Recorder.iter tracer (fun r -> Obs.Jsonl.append buf r);
      Buffer.contents buf
    in
    (* Each run is a share-nothing world, so capture fans out across
       domains; chunks come back in seed order, keeping the output
       byte-identical for any --domains. *)
    let chunks = Exec.Pool.with_pool ~domains (fun pool -> Exec.Pool.init pool runs capture) in
    let contents = String.concat "" (Array.to_list chunks) in
    match out with
    | None -> print_string contents
    | Some path ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run scenarios under full tracing and export the structured event stream as \
          JSONL (schedule/fire/cancel, send/deliver/drop, phases, suspicions, crashes). \
          Byte-identical for equal seeds at any --domains; diff two exports with \
          $(b,tracediff).")
    Term.(
      const go $ topology_arg $ seed_arg $ horizon_arg $ crashes_arg $ detector_arg $ algo_arg
      $ contended_arg $ runs_arg $ domains_arg $ out_arg $ queue_arg $ shards_arg)

let tracediff_cmd =
  let file_arg pos_i docv =
    Arg.(required & pos pos_i (some non_dir_file) None & info [] ~docv ~doc:"Exported JSONL trace.")
  in
  let context_arg =
    Arg.(
      value & opt int 3
      & info [ "context" ] ~docv:"N" ~doc:"Shared-prefix events to show before the divergence.")
  in
  let go a b context =
    let read path = In_channel.with_open_bin path In_channel.input_all in
    let la = Obs.Diff.lines (read a) and lb = Obs.Diff.lines (read b) in
    match Obs.Diff.first_divergence ~context la lb with
    | None -> Printf.printf "traces identical: %d events\n" (List.length la)
    | Some d ->
        Format.printf "%a@." Obs.Diff.pp d;
        exit 1
  in
  Cmd.v
    (Cmd.info "tracediff"
       ~doc:
         "Compare two exported traces; report the first divergent event with context and \
          exit 1, or exit 0 when byte-identical ('#' header lines ignored). The \
          determinism self-check: traces of equal (scenario, seed) must be identical for \
          any --domains.")
    Term.(const go $ file_arg 0 "TRACE_A" $ file_arg 1 "TRACE_B" $ context_arg)

(* ------------------------------------------------------------------ *)
(* mcheck                                                               *)
(* ------------------------------------------------------------------ *)

let instance_arg =
  Arg.(
    value
    & opt
        (Arg.enum [ ("pair", `Pair); ("path3", `Path3); ("triangle", `Triangle); ("ring4", `Ring4) ])
        `Pair
    & info [ "i"; "instance" ] ~docv:"INST" ~doc:"Instance: pair, path3, triangle, ring4.")

let instance_name = function
  | `Pair -> "pair"
  | `Path3 -> "path3"
  | `Triangle -> "triangle"
  | `Ring4 -> "ring4"

let resolve_instance = function
  | `Pair -> (Cgraph.Graph.of_edges ~n:2 [ (0, 1) ], [| 0; 1 |])
  | `Path3 -> (Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ], [| 0; 1; 0 |])
  | `Triangle -> (Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ], [| 0; 1; 2 |])
  | `Ring4 -> (Cgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ], [| 0; 1; 0; 1 |])

let sessions_arg =
  Arg.(value & opt int 2 & info [ "sessions" ] ~docv:"N" ~doc:"Hungry sessions per process.")

let crash_arg =
  Arg.(value & opt int 0 & info [ "crash-budget" ] ~docv:"N" ~doc:"Crashes allowed.")

let fp_arg =
  Arg.(
    value & opt int 0
    & info [ "fp-budget" ] ~docv:"N" ~doc:"False-suspicion output changes allowed.")

let max_states_arg =
  Arg.(value & opt int 500_000 & info [ "max-states" ] ~docv:"N" ~doc:"State-count cap.")

let mcheck_cmd =
  let go instance sessions crash_budget fp_budget max_states =
    let graph, colors = resolve_instance instance in
    let r =
      Mcheck.Explore.bfs ~max_states
        { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget }
    in
    Format.printf "%a@." Mcheck.Explore.pp_result r;
    if r.violation <> None then exit 1
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Exhaustively model-check Algorithm 1 on a small instance (lemmas, channel bound, \
          and — with no false-positive budget — weak exclusion).")
    Term.(const go $ instance_arg $ sessions_arg $ crash_arg $ fp_arg $ max_states_arg)

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let max_depth_arg =
    Arg.(
      value & opt int max_int
      & info [ "max-depth" ] ~docv:"N" ~doc:"Schedule/level depth cap (default: unbounded).")
  in
  let dpor_arg =
    Arg.(
      value & flag
      & info [ "dpor" ]
          ~doc:
            "Depth-first search with sleep-set partial-order reduction: same states, same \
             verdict, fewer transitions than the BFS modes.")
  in
  let pb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "preemption-bound" ] ~docv:"K"
          ~doc:
            "With $(b,--dpor): prune schedules using more than $(docv) preemptions \
             (bug-finding mode; the result is reported incomplete if the bound pruned \
             anything).")
  in
  let inject_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("none", `None); ("eating", `Eating) ]) `None
      & info [ "inject" ] ~docv:"WHAT"
          ~doc:
            "Inject an artificial invariant violation for exercising the counterexample \
             pipeline: $(b,eating) flags any state where a live process eats (reachable \
             in every sound run).")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "export" ] ~docv:"FILE"
          ~doc:"On a violation, write the counterexample schedule to $(docv) as JSONL.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay the schedule in $(docv) (a $(b,--export) file) instead of exploring; \
             exits 1 only if the schedule does not apply to this instance.")
  in
  let go instance sessions crash_budget fp_budget max_states max_depth dpor preemption_bound
      domains inject export replay =
    let graph, colors = resolve_instance instance in
    let cfg = { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget } in
    let check =
      match inject with
      | `None -> None
      | `Eating ->
          Some
            (fun cfg s ->
              let n = Cgraph.Graph.n cfg.Mcheck.Model.graph in
              let rec go i =
                if i >= n then None
                else if (not (Mcheck.Model.crashed s i)) && Mcheck.Model.phase s i = `Eating
                then Some (Printf.sprintf "injected: process %d eating" i)
                else go (i + 1)
              in
              go 0)
    in
    Printf.printf "instance : %s, sessions=%d, crash-budget=%d, fp-budget=%d%s\n"
      (instance_name instance) sessions crash_budget fp_budget
      (match inject with `None -> "" | `Eating -> ", inject=eating");
    match replay with
    | Some path ->
        let labels = Mcheck.Replay.of_jsonl (In_channel.with_open_bin path In_channel.input_all) in
        Printf.printf "replay   : %s (%d steps)\n" path (List.length labels);
        let outcome = Mcheck.Replay.run ?check cfg labels in
        Format.printf "outcome  : %a@." Mcheck.Replay.pp_outcome outcome;
        (match outcome with Mcheck.Replay.Stuck _ -> exit 1 | _ -> ())
    | None ->
        (* The mode line deliberately omits the domain count: reports of
           the same exploration at different --domains diff clean. *)
        let mode, r =
          if dpor then
            ( "dfs + sleep sets"
              ^ (match preemption_bound with
                | Some k -> Printf.sprintf ", preemption bound %d" k
                | None -> ""),
              Mcheck.Dpor.explore ~max_states ~max_depth ?preemption_bound ?check cfg )
          else
            ( "parallel frontier bfs",
              Mcheck.Frontier.explore ~max_states ~max_depth ~domains ?check cfg )
        in
        Printf.printf "mode     : %s\n" mode;
        Format.printf "result   : %a@." Mcheck.Explore.pp_result r;
        (match (r.violation, r.trace) with
        | Some _, Some trace -> (
            Printf.printf "schedule : %s\n" (String.concat " " trace);
            match export with
            | None -> ()
            | Some path ->
                let header =
                  Printf.sprintf
                    "daemon_sim check counterexample: instance=%s sessions=%d \
                     crash-budget=%d fp-budget=%d steps=%d"
                    (instance_name instance) sessions crash_budget fp_budget
                    (List.length trace)
                in
                let oc = open_out path in
                output_string oc (Mcheck.Replay.to_jsonl ~header trace);
                close_out oc;
                Printf.printf "wrote    : %s\n" path)
        | _ -> ());
        if r.violation <> None then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Systematic model checking with budgets: parallel frontier BFS (bit-identical \
          for any --domains) or DPOR ($(b,--dpor)), counterexample schedules exported as \
          JSONL and replayed deterministically with $(b,--replay).")
    Term.(
      const go $ instance_arg $ sessions_arg $ crash_arg $ fp_arg $ max_states_arg
      $ max_depth_arg $ dpor_arg $ pb_arg $ domains_arg $ inject_arg $ export_arg
      $ replay_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                 *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let cases_arg =
    Arg.(
      value
      & opt (positive_int "--cases") 200
      & info [ "cases" ] ~docv:"N" ~doc:"Scenarios to generate and check.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("sound", Fuzz.Gen.Sound); ("hostile", Fuzz.Gen.Hostile) ]) Fuzz.Gen.Sound
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "$(b,sound) generates scenarios inside the theorems' hypotheses (any failure \
             is a real finding; exit 1); $(b,hostile) also generates baseline daemons \
             and bad detectors, where violations are expected — it exercises the \
             shrink/replay pipeline.")
  in
  let property_arg =
    Arg.(
      value & opt_all string []
      & info [ "p"; "property" ] ~docv:"NAME"
          ~doc:
            "Check only this oracle (repeatable). Known: lemmas, exclusion, \
             wait-freedom, bounded-waiting, channel-bound, quiescence. Default: all.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the first failure's minimized reproducer to $(docv) as JSONL.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay the reproducer in $(docv) (a $(b,-o) file) instead of fuzzing: re-run \
             its scenario and re-check its property. Exits 0 when the violation \
             reproduces, 1 when the property holds on replay, 2 on a malformed file.")
  in
  let go seed cases domains profile properties no_shrink out replay =
    let properties =
      match properties with
      | [] -> Fuzz.Property.all
      | names ->
          List.map
            (fun name ->
              match Fuzz.Property.find name with
              | Some p -> p
              | None ->
                  Printf.eprintf "unknown property %S (known: %s)\n" name
                    (String.concat ", "
                       (List.map (fun (p : Fuzz.Property.t) -> p.name) Fuzz.Property.all));
                  exit 2)
            names
    in
    match replay with
    | Some path -> (
        match Fuzz.Repro.of_jsonl (In_channel.with_open_bin path In_channel.input_all) with
        | Error msg ->
            Printf.eprintf "cannot parse %s: %s\n" path msg;
            exit 2
        | Ok (scenario, property) -> (
            match Fuzz.Property.find property with
            | None ->
                Printf.eprintf "reproducer names unknown property %S\n" property;
                exit 2
            | Some p ->
                Printf.printf "replay   : %s\n" path;
                Printf.printf "scenario : %s\n" (Fuzz.Repro.describe scenario);
                let outcome = Fuzz.Repro.replay p scenario in
                Format.printf "outcome  : %a@." Fuzz.Repro.pp_outcome outcome;
                (match outcome with Fuzz.Repro.Clean _ -> exit 1 | Fuzz.Repro.Reproduced _ -> ())))
    | None ->
        let report =
          Fuzz.Campaign.run ~domains ~profile ~properties ~shrink:(not no_shrink) ~seed
            ~cases ()
        in
        Format.printf "%a" Fuzz.Campaign.pp report;
        (match (out, report.failures) with
        | Some path, f :: _ ->
            let header =
              Printf.sprintf "daemon_sim fuzz reproducer: campaign seed=%Ld profile=%s case=%d"
                seed (Fuzz.Gen.profile_name profile) f.case
            in
            let oc = open_out path in
            output_string oc
              (Fuzz.Repro.to_jsonl ~header ~property:f.property ~message:f.shrunk_message
                 f.shrunk);
            close_out oc;
            Printf.printf "wrote %s\n" path
        | Some path, [] -> Printf.printf "no failures; %s not written\n" path
        | None, _ -> ());
        if profile = Fuzz.Gen.Sound && report.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based fuzzing: generate whole scenarios from one campaign seed, check \
          the paper's oracles on each, minimize any failure by delta debugging and export \
          it as a replayable JSONL reproducer. The report is bit-identical for any \
          --domains.")
    Term.(
      const go $ seed_arg $ cases_arg $ domains_arg $ profile_arg $ property_arg
      $ no_shrink_arg $ out_arg $ replay_arg)

(* ------------------------------------------------------------------ *)
(* stabilize                                                            *)
(* ------------------------------------------------------------------ *)

let stabilize_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("coloring", Harness.Run_stabilize.Coloring);
               ("token-ring", Harness.Run_stabilize.Token_ring);
               ("matching", Harness.Run_stabilize.Matching);
               ("bfs-tree", Harness.Run_stabilize.Bfs_tree);
             ])
          Harness.Run_stabilize.Coloring
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"coloring, token-ring, matching or bfs-tree.")
  in
  let transients_arg =
    Arg.(
      value & opt int 2
      & info [ "transients" ] ~docv:"N" ~doc:"Number of transient-fault injections.")
  in
  let go topology seed horizon crashes detector protocol transients =
    let spec =
      {
        Harness.Run_stabilize.protocol;
        transient_faults =
          List.init transients (fun k -> ((horizon * (k + 2)) / (transients + 3), 4));
        scenario =
          {
            Harness.Scenario.default with
            name = "stabilize";
            topology;
            seed;
            horizon;
            detector = resolve_detector detector;
            crashes =
              (if crashes = 0 then Harness.Scenario.No_crashes
               else
                 Harness.Scenario.Random_crashes
                   { count = crashes; from_t = horizon / 20; to_t = horizon / 5 });
          };
      }
    in
    let r = Harness.Run_stabilize.run spec in
    Printf.printf "protocol     : %s on %s, daemon song-pike + %s\n"
      (Harness.Run_stabilize.protocol_name protocol)
      (Cgraph.Topology.name topology)
      (Harness.Scenario.detector_name spec.scenario.detector);
    Printf.printf "crashes      : %s\n"
      (if r.crashed = [] then "none"
       else String.concat ", " (List.map (fun (p, t) -> Printf.sprintf "p%d@%d" p t) r.crashed));
    Printf.printf "transients   : %s\n"
      (String.concat ", "
         (List.map (fun (t, v) -> Printf.sprintf "%d@%d" v t) spec.transient_faults));
    Printf.printf "steps        : %d guarded commands executed, %d CS overlaps\n"
      r.outcome.steps_executed r.outcome.overlap_races;
    (match r.outcome.converged_at with
    | Some t -> Printf.printf "converged    : yes, legitimate from %d to the horizon\n" t
    | None -> Printf.printf "converged    : NO (final error %d)\n" r.outcome.final_error);
    Printf.printf "invariants   : %s\n" (Option.value r.invariant_error ~default:"ok")
  in
  Cmd.v
    (Cmd.info "stabilize"
       ~doc:"Drive a self-stabilizing protocol through the daemon under faults.")
    Term.(
      const go $ topology_arg $ seed_arg $ horizon_arg $ crashes_arg $ detector_arg
      $ protocol_arg $ transients_arg)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "daemon_sim" ~version:"1.0.0"
       ~doc:
         "Wait-free, eventually 2-bounded dining daemons with an eventually perfect \
          failure detector (Song & Pike, DSN 2007) — simulator, baselines, experiments \
          and model checker.")
    [ run_cmd; batch_cmd; trace_cmd; tracediff_cmd; experiments_cmd; mcheck_cmd; check_cmd; fuzz_cmd; stabilize_cmd ]

let () = exit (Cmd.eval main)
