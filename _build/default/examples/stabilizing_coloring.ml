(* The paper's motivating application: a self-stabilizing protocol that
   keeps converging because its daemon is wait-free.

   A 4x6 grid runs self-stabilizing graph coloring, scheduled by
   Algorithm 1 over an evp-P1 oracle. Two processes crash early; two
   transient faults later corrupt random states. The grid is printed
   whenever its conflict count changes, so you can watch it heal.

   Run with: dune exec examples/stabilizing_coloring.exe *)

let rows = 4
let cols = 6

let render states faults n =
  for r = 0 to rows - 1 do
    print_string "    ";
    for c = 0 to cols - 1 do
      let pid = (r * cols) + c in
      if pid < n && Net.Faults.is_crashed faults pid then Printf.printf "[%d]" states.(pid)
      else Printf.printf " %d " states.(pid)
    done;
    print_newline ()
  done

let () =
  let graph = Cgraph.Topology.build (Cgraph.Topology.Grid (rows, cols)) in
  let n = Cgraph.Graph.n graph in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n in
  let rng = Sim.Rng.create 7L in
  let _, detector = Fd.Oracle.create engine faults graph ~detection_delay:40 () in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph
      ~delay:(Net.Delay.Uniform (1, 6))
      ~rng:(Sim.Rng.split_named rng "net")
      ~detector ()
  in
  let protocol = Stabilize.Coloring_protocol.make ~graph in
  let scheduler =
    Stabilize.Scheduler.attach ~engine ~faults ~graph
      ~rng:(Sim.Rng.split_named rng "daemon")
      ~protocol
      (Dining.Algorithm.instance algo)
  in
  Net.Faults.schedule_crash faults ~pid:8 ~at:1_500;
  Net.Faults.schedule_crash faults ~pid:15 ~at:2_500;
  Stabilize.Scheduler.schedule_faults scheduler ~at:[ 6_000; 12_000 ] ~victims:5;

  let last_err = ref (-1) in
  let snapshot label =
    let err = Stabilize.Scheduler.error_now scheduler in
    if err <> !last_err then begin
      last_err := err;
      Printf.printf "t=%6d  %-28s conflict edges: %d\n" (Sim.Engine.now engine) label err;
      render (Stabilize.Scheduler.states scheduler) faults n;
      print_newline ()
    end
  in
  Printf.printf "Self-stabilizing coloring on a %dx%d grid (crashed cells in [brackets]).\n\n"
    rows cols;
  snapshot "arbitrary initial state";
  let rec watch () =
    snapshot "";
    if Sim.Engine.now engine < 20_000 then
      ignore (Sim.Engine.schedule_after engine ~delay:100 watch)
  in
  ignore (Sim.Engine.schedule engine ~at:100 watch);
  Sim.Engine.run engine ~until:20_000;
  snapshot "final";
  let o = Stabilize.Scheduler.outcome scheduler in
  (match o.converged_at with
  | Some t ->
      Printf.printf
        "Converged: legitimate from t=%d through the end, despite 2 crashes and 2\n\
         transient faults — because every live hungry process kept getting scheduled.\n"
        t
  | None -> Printf.printf "Did not converge (unexpected with the oracle daemon).\n");
  Printf.printf "Guarded commands executed: %d; critical-section overlaps: %d.\n"
    o.steps_executed o.overlap_races
