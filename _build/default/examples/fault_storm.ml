(* Fault storm: a 40-process random conflict graph loses a third of its
   processes to crashes — under the heartbeat-implemented evp-P1 detector and
   partial synchrony — and the survivors never miss a meal.

   Demonstrates, in one run:
   - wait-freedom under many crashes (Theorem 2), with a real
     message-based failure detector rather than a scripted oracle;
   - eventual weak exclusion: violations (if any) stop once the adaptive
     timeouts outgrow the post-GST delay bound (Theorem 1);
   - quiescence: traffic toward every crashed process dies out
     (Section 7).

   Run with: dune exec examples/fault_storm.exe *)

let () =
  let n = 40 in
  let gst = 20_000 in
  let horizon = 120_000 in
  let scenario =
    {
      Harness.Scenario.default with
      name = "fault-storm";
      topology = Cgraph.Topology.Random_gnp (n, 0.12, 99L);
      seed = 4242L;
      delay = Net.Delay.Partial_synchrony { gst; pre = (1, 90); post = (1, 7) };
      detector = Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 };
      workload = { think = (10, 150); eat = (5, 40) };
      crashes = Harness.Scenario.Random_crashes { count = 13; from_t = 2_000; to_t = 60_000 };
      horizon;
    }
  in
  Printf.printf "Storm: %d processes, %d crashes, GST at %d, horizon %d.\n\n" n 13 gst horizon;
  let r = Harness.Run.run scenario in
  Printf.printf "crashes         : %s\n"
    (String.concat ", " (List.map (fun (p, t) -> Printf.sprintf "p%d@%d" p t) r.crashed));
  Printf.printf "meals served    : %d across %d survivors\n" r.total_eats
    (n - List.length r.crashed);
  let starved = Harness.Run.starved r ~older_than:15_000 in
  Printf.printf "starved         : %s\n"
    (if starved = [] then "none — wait-free through the storm"
     else String.concat "," (List.map string_of_int starved));
  Printf.printf "detector        : %d false suspicions, last at t=%s\n" r.detector_mistakes
    (Stats.Table.cell_time r.convergence);
  Printf.printf "exclusion       : %d violations, %d after the detector settled\n"
    (Monitor.Exclusion.count r.exclusion)
    (Monitor.Exclusion.count_after r.exclusion r.convergence);
  Printf.printf "channel bound   : max %d in flight per edge (paper: 4)\n"
    (Net.Link_stats.max_edge_watermark r.link_stats);
  Printf.printf "invariants      : %s\n\n"
    (Option.value r.invariant_error ~default:"all executable lemmas held");
  (* Quiescence: dining traffic to each victim after crash + grace. *)
  Printf.printf "quiescence (dining messages sent to each victim after crash + 3000 ticks):\n";
  List.iter
    (fun (pid, at) ->
      let late = Net.Link_stats.sends_to_after r.link_stats ~dst:pid ~after:(at + 3_000) in
      let total = Net.Link_stats.sends_to_after r.link_stats ~dst:pid ~after:at in
      Printf.printf "  p%-3d crashed@%-6d  post-crash msgs: %3d   after grace: %d\n" pid at total
        late)
    r.crashed;
  Printf.printf "\n(0 in the last column on every line = quiescent.)\n"
