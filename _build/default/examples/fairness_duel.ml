(* Fairness duel: what the asynchronous doorway buys.

   The same saturated 6-clique is scheduled by (a) Algorithm 1 and (b) the
   doorway-less ablation that collects forks by static priority alone.
   Both use the same accurate oracle; the only difference is phase 1.

   Algorithm 1 keeps every diner within 2 consecutive overtakes
   (Theorem 3); the ablation lets high priorities lap the lowest diner
   hundreds of times and starves it outright.

   Run with: dune exec examples/fairness_duel.exe *)

let duel algo label =
  let scenario =
    {
      Harness.Scenario.default with
      name = label;
      topology = Cgraph.Topology.Clique 6;
      seed = 17L;
      algo;
      detector =
        Harness.Scenario.Oracle
          { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 };
      workload = Harness.Scenario.contended_workload;
      crashes = Harness.Scenario.No_crashes;
      horizon = 60_000;
    }
  in
  (scenario, Harness.Run.run scenario)

let () =
  print_endline "Saturated 6-clique, 60k ticks: every diner is hungry again immediately.\n";
  let table =
    Stats.Table.create ~title:"doorway vs no doorway"
      ~columns:
        [
          ("daemon", Stats.Table.Left);
          ("meals(total)", Stats.Table.Right);
          ("per-diner meals", Stats.Table.Left);
          ("max consecutive overtakes", Stats.Table.Right);
          ("starved diners", Stats.Table.Left);
        ]
  in
  List.iter
    (fun (algo, label) ->
      let _, r = duel algo label in
      let starved = Harness.Run.starved r ~older_than:10_000 in
      Stats.Table.add_row table
        [
          label;
          Stats.Table.cell_int r.total_eats;
          String.concat "/" (Array.to_list (Array.map string_of_int r.eats_per_process));
          Stats.Table.cell_int (Monitor.Fairness.max_consecutive r.fairness);
          (if starved = [] then "none" else String.concat "," (List.map string_of_int starved));
        ])
    [
      (Harness.Scenario.Song_pike, "song-pike (doorway)");
      (Harness.Scenario.Fork_only, "fork-only (no doorway)");
    ];
  Stats.Table.print table;
  print_endline
    "The doorway trades a little throughput for the eventual 2-bounded-waiting\n\
     guarantee: without it, the lowest-colored diners are overtaken without bound\n\
     and can starve under saturation even with zero faults."
