examples/fault_storm.ml: Cgraph Harness List Monitor Net Option Printf Stats String
