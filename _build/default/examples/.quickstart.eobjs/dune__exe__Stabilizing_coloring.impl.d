examples/stabilizing_coloring.ml: Array Cgraph Dining Fd Net Printf Sim Stabilize
