examples/fault_storm.mli:
