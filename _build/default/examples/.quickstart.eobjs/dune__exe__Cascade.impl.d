examples/cascade.ml: Array Cgraph Dining Harness List Net Printf Sim String
