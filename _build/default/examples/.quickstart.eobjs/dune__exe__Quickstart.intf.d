examples/quickstart.mli:
