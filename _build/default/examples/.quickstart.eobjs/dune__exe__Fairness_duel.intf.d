examples/fairness_duel.mli:
