examples/quickstart.ml: Array Cgraph Format Harness List Monitor Net Option Sim String
