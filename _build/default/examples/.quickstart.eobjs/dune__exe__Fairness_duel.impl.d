examples/fairness_duel.ml: Array Cgraph Harness List Monitor Stats String
