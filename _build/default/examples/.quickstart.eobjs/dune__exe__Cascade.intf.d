examples/cascade.mli:
