examples/stabilizing_coloring.mli:
