(* Quickstart: five dining philosophers, one of whom crashes while
   holding a fork — and nobody starves.

   This walks the public API end to end:
   1. build a conflict graph (Dijkstra's original ring of 5);
   2. wire an engine, a crash plan, a scripted evp-P1 oracle and
      Algorithm 1;
   3. drive the think/hungry/eat cycle with the workload helper;
   4. watch the run through a trace sink and the monitors.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let scenario =
    {
      Harness.Scenario.default with
      name = "quickstart";
      topology = Cgraph.Topology.Ring 5;
      seed = 2026L;
      delay = Net.Delay.Uniform (1, 6);
      detector =
        Harness.Scenario.Oracle
          { detection_delay = 40; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 };
      workload = { think = (30, 120); eat = (10, 30) };
      (* Philosopher 2 dies at the table at t = 1500. *)
      crashes = Harness.Scenario.Crash_at [ (2, 1_500) ];
      horizon = 6_000;
    }
  in
  (* A trace sink prints the first part of the timeline live. *)
  let trace = Sim.Trace.create () in
  let printed = ref 0 in
  Sim.Trace.on_record trace (fun r ->
      if r.Sim.Trace.time < 400 || (r.time >= 1_400 && r.time < 1_900) then begin
        incr printed;
        Format.printf "%a@." Sim.Trace.pp_record r
      end);
  Format.printf "--- timeline excerpts (start of run, and around the crash) ---@.";
  let r = Harness.Run.run ~trace scenario in
  Format.printf "--- end of excerpts (%d lines) ---@.@." !printed;

  let summary = Monitor.Response.summary r.response in
  Format.printf "philosophers    : 5 in a ring; philosopher 2 crashed at t=1500@.";
  Format.printf "meals served    : %d (per philosopher: %s)@." r.total_eats
    (String.concat ", " (Array.to_list (Array.map string_of_int r.eats_per_process)));
  Format.printf "hungry -> eating: mean %.0f ticks, worst %.0f@." summary.mean summary.max;
  (match Harness.Run.starved r ~older_than:2_000 with
  | [] -> Format.printf "starvation      : none — the daemon is wait-free@."
  | l ->
      Format.printf "starvation      : %s (unexpected!)@."
        (String.concat "," (List.map string_of_int l)));
  Format.printf "exclusion       : %d violations (oracle never lied in this run)@."
    (Monitor.Exclusion.count r.exclusion);
  Format.printf "channel bound   : max %d messages in flight on any edge (paper: <= 4)@."
    (Net.Link_stats.max_edge_watermark r.link_stats);
  Format.printf "invariants      : %s@."
    (Option.value r.invariant_error ~default:"all executable lemmas held");
  Format.printf
    "@.Try flipping the detector to Never (the Choy-Singh baseline) in this file:@.\
     philosophers 1 and 3 will starve behind the corpse of philosopher 2.@."
