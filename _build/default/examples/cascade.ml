(* The cascade: why "no recourse to crash detection" dooms a ring.

   The original Choy-Singh asynchronous doorway algorithm (here:
   Algorithm 1 with the Never detector) is safe but not wait-free. Watch
   what one crash does to a 12-ring over time: the victims' neighbors
   block outside the doorway waiting for acks; their own deferred acks
   then block *their* neighbors, and starvation spreads around the entire
   ring. Then the same run with evp-P1: the wave never starts.

   Run with: dune exec examples/cascade.exe *)

let snapshot_times = [ 1_600; 2_400; 3_600; 6_000; 12_000; 48_000 ]

let run detector label =
  let scenario =
    {
      Harness.Scenario.default with
      name = label;
      topology = Cgraph.Topology.Ring 12;
      seed = 31L;
      detector;
      workload = { think = (20, 120); eat = (10, 30) };
      crashes = Harness.Scenario.Crash_at [ (0, 1_000) ];
      horizon = 50_000;
    }
  in
  (* Sample "who has eaten in the last 4000 ticks" at snapshot times. *)
  let last_eat = Array.make 12 (-1) in
  let rows = ref [] in
  let parts = Harness.Setup.build scenario in
  parts.instance.add_listener (fun pid phase ->
      if phase = Dining.Types.Eating then last_eat.(pid) <- Sim.Engine.now parts.engine);
  let _workload =
    Harness.Workload.attach ~engine:parts.engine ~faults:parts.faults ~n:12
      ~rng:(Sim.Rng.create 8L) ~workload:scenario.workload parts.instance
  in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule parts.engine ~at:t (fun () ->
             let line =
               String.concat ""
                 (List.init 12 (fun pid ->
                      if Net.Faults.is_crashed parts.faults pid then "X"
                      else if last_eat.(pid) >= t - 1_200 then "#"
                      else "."))
             in
             rows := (t, line) :: !rows)))
    snapshot_times;
  Sim.Engine.run parts.engine ~until:scenario.horizon;
  Printf.printf "%s\n" label;
  Printf.printf "  ring position:  %s\n" (String.concat "" (List.init 12 (fun i -> string_of_int (i mod 10))));
  List.iter (fun (t, line) -> Printf.printf "  t=%6d        %s\n" t line) (List.rev !rows);
  print_newline ()

let () =
  print_endline
    "Ring of 12 diners; diner 0 crashes at t=1000. '#' = ate within the last 1200\n\
     ticks, '.' = starving, 'X' = crashed.\n";
  run Harness.Scenario.Never "WITHOUT crash detection (Choy-Singh / Never detector):";
  run
    (Harness.Scenario.Oracle
       { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 })
    "WITH evp-P1 (Algorithm 1):";
  print_endline
    "The starvation wave spreads from the crash site until the whole ring is dark —\n\
     and with it, any self-stabilizing protocol scheduled by this daemon loses its\n\
     convergence guarantee. The oracle run keeps every live diner eating forever."
