test/test_detector.ml: Alcotest Cgraph Fd List Net Sim
