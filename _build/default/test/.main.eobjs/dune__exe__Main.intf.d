test/main.mli:
