test/test_net.ml: Alcotest Cgraph Int64 List Net QCheck QCheck_alcotest Sim
