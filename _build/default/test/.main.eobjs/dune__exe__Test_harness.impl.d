test/test_harness.ml: Alcotest Array Cgraph Format Harness Int64 List Monitor Net QCheck QCheck_alcotest String
