test/test_soak.ml: Alcotest Cgraph Harness List Monitor Net Printf
