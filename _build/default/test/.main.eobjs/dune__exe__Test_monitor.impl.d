test/test_monitor.ml: Alcotest Array Cgraph Dining Fd List Monitor Net Sim
