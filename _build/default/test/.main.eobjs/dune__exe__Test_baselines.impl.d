test/test_baselines.ml: Alcotest Array Baselines Cgraph Dining Fd Hashtbl List Net Sim
