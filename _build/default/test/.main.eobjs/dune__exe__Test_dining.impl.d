test/test_dining.ml: Alcotest Array Cgraph Dining Fd Format List Monitor Net Sim String
