test/test_stabilize.ml: Alcotest Array Cgraph Dining Fd Int64 Net QCheck QCheck_alcotest Sim Stabilize
