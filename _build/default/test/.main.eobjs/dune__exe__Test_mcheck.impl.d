test/test_mcheck.ml: Alcotest Cgraph List Mcheck Printf String
