test/test_graph.ml: Alcotest Array Cgraph Int64 List Printf QCheck QCheck_alcotest Result String
