test/test_sim.ml: Alcotest Array Fun Hashtbl Int64 List Option QCheck QCheck_alcotest Sim
