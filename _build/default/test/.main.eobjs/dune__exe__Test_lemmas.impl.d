test/test_lemmas.ml: Alcotest Cgraph Harness Int64 List Monitor Net Option QCheck QCheck_alcotest
