(* Unit tests for Algorithm 1 (Dining.Algorithm): doorway mechanics, fork
   mechanics, crash tolerance, and the executable lemmas. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type rig = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  algo : Dining.Algorithm.t;
  inst : Dining.Instance.t;
}

(* A rig with a scripted oracle (detection delay 20, no false positives
   unless given) and fixed message delay for full determinism. *)
let rig ?(edges = [ (0, 1) ]) ?(n = 2) ?colors ?(delay = Net.Delay.Fixed 3) ?(fps = [])
    ?(detector = `Oracle) () =
  let graph = Cgraph.Graph.of_edges ~n edges in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n in
  let det =
    match detector with
    | `Oracle -> snd (Fd.Oracle.create engine faults graph ~detection_delay:20 ~false_positives:fps ())
    | `Never -> Fd.Never.create ()
    | `Perfect -> Fd.Perfect.create engine faults graph
  in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph ~delay ~rng:(Sim.Rng.create 2L) ~detector:det
      ?colors ()
  in
  { engine; faults; graph; algo; inst = Dining.Algorithm.instance algo }

(* Auto-exit: every grant is followed by a fixed-length eating session. *)
let auto_stop ?(duration = 10) r =
  r.inst.add_listener (fun pid phase ->
      if phase = Dining.Types.Eating then
        ignore (Sim.Engine.schedule_after r.engine ~delay:duration (fun () -> r.inst.stop_eating pid)))

(* Re-hungry loop: pid asks again [gap] ticks after each exit. *)
let auto_rehungry ?(gap = 5) r pid =
  r.inst.add_listener (fun p phase ->
      if p = pid && phase = Dining.Types.Thinking then
        ignore (Sim.Engine.schedule_after r.engine ~delay:gap (fun () -> r.inst.become_hungry pid)))

let phase_t = Alcotest.testable Dining.Types.pp_phase Dining.Types.equal_phase

(* --------------------------- initial state ------------------------- *)

let initial_placement () =
  let r = rig ~colors:[| 0; 1 |] () in
  check bool "fork at higher color" true (Dining.Algorithm.holds_fork r.algo 1 0);
  check bool "not at lower" false (Dining.Algorithm.holds_fork r.algo 0 1);
  check bool "token at lower color" true (Dining.Algorithm.holds_token r.algo 0 1);
  check bool "not at higher" false (Dining.Algorithm.holds_token r.algo 1 0);
  check phase_t "thinking initially" Dining.Types.Thinking (r.inst.phase 0);
  check bool "outside doorway" false (Dining.Algorithm.inside_doorway r.algo 0);
  Dining.Algorithm.check_invariants r.algo

let rejects_improper_colors () =
  Alcotest.check_raises "improper coloring"
    (Invalid_argument "Algorithm.create: colors must be a proper coloring") (fun () ->
      ignore (rig ~colors:[| 1; 1 |] ()))

(* ----------------------- uncontended progress ---------------------- *)

let lone_hungry_process_eats () =
  let r = rig ~colors:[| 0; 1 |] () in
  auto_stop r;
  r.inst.become_hungry 0;
  check phase_t "hungry immediately" Dining.Types.Hungry (r.inst.phase 0);
  Sim.Engine.run r.engine ~until:100;
  (* 0 must have eaten exactly once and gone back to thinking. *)
  check int "ate once" 1 (Dining.Algorithm.eat_count r.algo 0);
  check phase_t "back to thinking" Dining.Types.Thinking (r.inst.phase 0);
  check bool "exited doorway" false (Dining.Algorithm.inside_doorway r.algo 0);
  (* The fork was pulled from 1 and stays with 0 until re-requested. *)
  check bool "holds the fork now" true (Dining.Algorithm.holds_fork r.algo 0 1);
  Dining.Algorithm.check_invariants r.algo

let high_priority_diner_eats_too () =
  let r = rig ~colors:[| 0; 1 |] () in
  auto_stop r;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:100;
  check int "higher color ate" 1 (Dining.Algorithm.eat_count r.algo 1)

let become_hungry_idempotent () =
  let r = rig () in
  r.inst.become_hungry 0;
  r.inst.become_hungry 0;
  check phase_t "hungry" Dining.Types.Hungry (r.inst.phase 0);
  (* stop_eating on a non-eating process is a no-op *)
  r.inst.stop_eating 0;
  check phase_t "still hungry" Dining.Types.Hungry (r.inst.phase 0)

(* An executable timeline of the full handshake with Fixed-3 delays:
   ping at t=0, ack at t=3..6, doorway entry at t=6, request out, fork
   back, eating at t=12 — every intermediate bit observed. *)
let scripted_timeline () =
  let r = rig ~colors:[| 0; 1 |] () in
  r.inst.become_hungry 0;
  (* t=0: ping sent, nothing else. *)
  check bool "pinged, no ack yet" true
    ((not (Dining.Algorithm.inside_doorway r.algo 0)) && not (Dining.Algorithm.holds_fork r.algo 0 1));
  Sim.Engine.run r.engine ~until:3;
  (* t=3: ping delivered at 1 (thinking) which replied immediately. *)
  Sim.Engine.run r.engine ~until:5;
  check bool "still outside at t=5" false (Dining.Algorithm.inside_doorway r.algo 0);
  Sim.Engine.run r.engine ~until:6;
  (* t=6: ack delivered; Action 5 entered the doorway; Action 6 sent the
     token at the same instant. *)
  check bool "inside at t=6" true (Dining.Algorithm.inside_doorway r.algo 0);
  check bool "token spent on the request" false (Dining.Algorithm.holds_token r.algo 0 1);
  Sim.Engine.run r.engine ~until:9;
  (* t=9: request reached 1, which yielded the fork (and kept the token). *)
  check bool "peer lost the fork" false (Dining.Algorithm.holds_fork r.algo 1 0);
  check bool "peer holds the token now" true (Dining.Algorithm.holds_token r.algo 1 0);
  Sim.Engine.run r.engine ~until:12;
  (* t=12: fork delivered; Action 9 fired. *)
  check phase_t "eating at t=12" Dining.Types.Eating (r.inst.phase 0);
  check bool "holds the fork" true (Dining.Algorithm.holds_fork r.algo 0 1);
  r.inst.stop_eating 0;
  check phase_t "thinking after exit" Dining.Types.Thinking (r.inst.phase 0);
  Dining.Algorithm.check_invariants r.algo

(* ------------------------ mutual exclusion ------------------------- *)

let no_simultaneous_eating_when_accurate () =
  let r = rig ~edges:[ (0, 1) ] () in
  auto_stop r;
  auto_rehungry r 0;
  auto_rehungry r 1;
  let eating = Array.make 2 false in
  let overlap = ref false in
  r.inst.add_listener (fun pid phase ->
      (match phase with
      | Dining.Types.Eating ->
          if eating.(1 - pid) then overlap := true;
          eating.(pid) <- true
      | _ -> eating.(pid) <- false));
  r.inst.become_hungry 0;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:5_000;
  check bool "no overlap with accurate oracle" false !overlap;
  check bool "both ate repeatedly" true
    (Dining.Algorithm.eat_count r.algo 0 > 10 && Dining.Algorithm.eat_count r.algo 1 > 10);
  Dining.Algorithm.check_invariants r.algo

let false_positive_can_cause_violation () =
  (* Both suspect each other during an early window: both can enter the
     doorway and eat without forks — the scheduling mistake ◇WX allows. *)
  let fps =
    [
      { Fd.Oracle.observer = 0; target = 1; from_t = 0; till_t = 60 };
      { Fd.Oracle.observer = 1; target = 0; from_t = 0; till_t = 60 };
    ]
  in
  let r = rig ~fps ~delay:(Net.Delay.Fixed 50) () in
  (* Long delays: no real message can beat the suspicion window. *)
  auto_stop ~duration:30 r;
  let both = ref false in
  r.inst.add_listener (fun _ _ ->
      if r.inst.phase 0 = Dining.Types.Eating && r.inst.phase 1 = Dining.Types.Eating then
        both := true);
  r.inst.become_hungry 0;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:100;
  check bool "simultaneous eating during the mistake window" true !both;
  (* Structural lemmas hold even during mistakes. *)
  Dining.Algorithm.check_invariants r.algo

(* --------------------------- crash cases --------------------------- *)

let crash_while_eating_does_not_block_neighbor () =
  let r = rig ~colors:[| 0; 1 |] () in
  (* 1 eats and crashes mid-session, holding the shared fork forever. *)
  r.inst.add_listener (fun pid phase ->
      if pid = 1 && phase = Dining.Types.Eating then
        Net.Faults.schedule_crash r.faults ~pid:1 ~at:(Sim.Engine.now r.engine + 2));
  auto_stop r;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:50;
  check bool "1 crashed while eating" true (Net.Faults.is_crashed r.faults 1);
  check phase_t "1 frozen in eating" Dining.Types.Eating (r.inst.phase 1);
  r.inst.become_hungry 0;
  Sim.Engine.run r.engine ~until:500;
  check bool "0 still eats (wait-free)" true (Dining.Algorithm.eat_count r.algo 0 >= 1);
  Dining.Algorithm.check_invariants r.algo

let crash_outside_doorway_does_not_block_neighbor () =
  let r = rig ~colors:[| 0; 1 |] () in
  auto_stop r;
  Net.Faults.schedule_crash r.faults ~pid:1 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 0));
  Sim.Engine.run r.engine ~until:500;
  check bool "0 eats past the crashed neighbor" true (Dining.Algorithm.eat_count r.algo 0 >= 1)

let never_detector_starves_neighbor_of_crashed () =
  let r = rig ~detector:`Never ~colors:[| 0; 1 |] () in
  auto_stop r;
  (* 1 holds the fork (higher color) and crashes before ever eating; the
     doorway ack from a thinking process is still granted, but the fork
     can never be obtained. *)
  Net.Faults.schedule_crash r.faults ~pid:1 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 0));
  Sim.Engine.run r.engine ~until:20_000;
  check int "0 never eats without an oracle" 0 (Dining.Algorithm.eat_count r.algo 0);
  check phase_t "0 starves hungry" Dining.Types.Hungry (r.inst.phase 0)

let quiescence_toward_crashed () =
  let r = rig ~colors:[| 0; 1 |] () in
  Net.Link_stats.watch_dst (Dining.Algorithm.network_stats r.algo) 1;
  auto_stop r;
  auto_rehungry r 0;
  Net.Faults.schedule_crash r.faults ~pid:1 ~at:50;
  r.inst.become_hungry 0;
  Sim.Engine.run r.engine ~until:20_000;
  let stats = Dining.Algorithm.network_stats r.algo in
  (* After the crash: at most one ping and one token (request) can ever be
     sent to the crashed process; after a grace period, nothing at all. *)
  check bool "bounded post-crash traffic" true
    (Net.Link_stats.sends_to_after stats ~dst:1 ~after:50 <= 2);
  check int "silence after grace period" 0
    (Net.Link_stats.sends_to_after stats ~dst:1 ~after:1_000);
  check bool "0 keeps eating forever" true (Dining.Algorithm.eat_count r.algo 0 > 100);
  Dining.Algorithm.check_invariants r.algo

(* --------------------------- section 7 ----------------------------- *)

let channel_capacity_bound () =
  let r = rig ~edges:[ (0, 1); (1, 2); (0, 2) ] ~n:3 ~delay:(Net.Delay.Uniform (1, 9)) () in
  auto_stop ~duration:3 r;
  List.iter (fun p -> auto_rehungry ~gap:1 r p) [ 0; 1; 2 ];
  List.iter r.inst.become_hungry [ 0; 1; 2 ];
  Sim.Engine.run r.engine ~until:10_000;
  check bool "at most 4 in transit per edge" true
    (Net.Link_stats.max_edge_watermark (Dining.Algorithm.network_stats r.algo) <= 4);
  Dining.Algorithm.check_invariants r.algo

let footprint_formula () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Star 7) in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:7 in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph:g ~delay:(Net.Delay.Fixed 1)
      ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ()
  in
  (* Hub: degree 6, colors in {0, 1} -> 1 bit; 2 + 1 + 1 + 36 = 40. *)
  check int "hub footprint" 40 (Dining.Algorithm.footprint_bits algo 0);
  (* Leaf: degree 1 -> 2 + 1 + 1 + 6 = 10. *)
  check int "leaf footprint" 10 (Dining.Algorithm.footprint_bits algo 1);
  check bool "message bits small" true (Dining.Algorithm.max_message_bits algo <= 8)

let eventual_2_bounded_waiting_pair () =
  (* Accurate oracle from the start: the k = 2 bound applies to the whole
     run. Count how often 1 eats while 0 stays continuously hungry. *)
  let r = rig ~edges:[ (0, 1) ] ~colors:[| 0; 1 |] ~delay:(Net.Delay.Uniform (1, 5)) () in
  auto_stop ~duration:4 r;
  auto_rehungry ~gap:1 r 0;
  auto_rehungry ~gap:1 r 1;
  let hungry0_since = ref None in
  let overtakes = ref 0 and worst = ref 0 in
  r.inst.add_listener (fun pid phase ->
      match (pid, phase) with
      | 0, Dining.Types.Hungry -> hungry0_since := Some (Sim.Engine.now r.engine)
      | 0, Dining.Types.Eating ->
          hungry0_since := None;
          overtakes := 0
      | 1, Dining.Types.Eating ->
          if !hungry0_since <> None then begin
            incr overtakes;
            if !overtakes > !worst then worst := !overtakes
          end
      | _ -> ());
  r.inst.become_hungry 0;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:20_000;
  check bool "plenty of sessions" true (Dining.Algorithm.eat_count r.algo 0 > 100);
  check bool "2-bounded waiting" true (!worst <= 2);
  Dining.Algorithm.check_invariants r.algo

let total_eats_accounting () =
  let r = rig () in
  auto_stop r;
  r.inst.become_hungry 0;
  Sim.Engine.run r.engine ~until:200;
  check int "total = sum of per-process" (Dining.Algorithm.eat_count r.algo 0 + Dining.Algorithm.eat_count r.algo 1)
    (Dining.Algorithm.total_eats r.algo)

(* The ack-budget knob, on the adversarial blocker/overtaker/victim path
   (see experiment E11): a long-eating blocker pins the victim outside the
   doorway; the overtaker laps it once per granted ack. *)
let knob_run ~m =
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let _, detector = Fd.Oracle.create engine faults graph ~detection_delay:50 () in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 2)
      ~rng:(Sim.Rng.create 3L) ~detector ~colors:[| 1; 0; 2 |] ~acks_per_session:m ()
  in
  let inst = Dining.Algorithm.instance algo in
  let fairness = Monitor.Fairness.attach engine graph faults inst in
  let eat_for = [| 5; 5; 4_000 |] and rest_for = [| 3; 3; 200 |] in
  inst.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Eating ->
          ignore
            (Sim.Engine.schedule_after engine ~delay:eat_for.(pid) (fun () ->
                 inst.stop_eating pid))
      | Dining.Types.Thinking ->
          ignore
            (Sim.Engine.schedule_after engine ~delay:rest_for.(pid) (fun () ->
                 inst.become_hungry pid))
      | Dining.Types.Hungry -> ());
  List.iter inst.become_hungry [ 2; 0; 1 ];
  Sim.Engine.run engine ~until:60_000;
  (Monitor.Fairness.max_consecutive fairness, algo)

let ack_budget_default_bound () =
  let worst, algo = knob_run ~m:1 in
  check bool "paper's bound k = 2" true (worst <= 2);
  Dining.Algorithm.check_invariants algo

let ack_budget_relaxed_bound () =
  let worst, algo = knob_run ~m:3 in
  check bool "exceeds the k = 2 bound" true (worst > 2);
  check bool "within the k = m+1 bound" true (worst <= 4);
  Dining.Algorithm.check_invariants algo

let ack_budget_validated () =
  let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:2 in
  Alcotest.check_raises "zero budget rejected"
    (Invalid_argument "Algorithm.create: acks_per_session must be >= 1") (fun () ->
      ignore
        (Dining.Algorithm.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 1)
           ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ~acks_per_session:0 ()))

let debug_dump () =
  let r = rig ~colors:[| 0; 1 |] () in
  let dump = Format.asprintf "%a" (Dining.Algorithm.pp_process r.algo) 1 in
  (* p1: thinking, color 1, fork held (F), token absent (t). *)
  check Alcotest.string "initial dump" "p1 thinking c=1 | 0:pardFt" dump;
  r.inst.become_hungry 0;
  let dump0 = Format.asprintf "%a" (Dining.Algorithm.pp_process r.algo) 0 in
  (* p0 just pinged: P set, fork absent, token held. *)
  check Alcotest.string "hungry dump" "p0 hungry c=0 | 1:PardfT" dump0;
  let global = Format.asprintf "%a" (Dining.Algorithm.pp_global r.algo) () in
  check bool "global dump has both lines" true
    (List.length (String.split_on_char '\n' global) >= 2)

let message_kind_labels () =
  check Alcotest.string "ping" "ping" (Dining.Types.message_kind Dining.Types.Ping);
  check Alcotest.string "ack" "ack" (Dining.Types.message_kind Dining.Types.Ack);
  check Alcotest.string "request" "request" (Dining.Types.message_kind (Dining.Types.Request 3));
  check Alcotest.string "fork" "fork" (Dining.Types.message_kind Dining.Types.Fork);
  check bool "bits grow with n" true
    (Dining.Types.message_bits ~n:1024 Dining.Types.Fork
    > Dining.Types.message_bits ~n:4 Dining.Types.Fork)

let suite =
  [
    Alcotest.test_case "initial fork/token placement" `Quick initial_placement;
    Alcotest.test_case "rejects improper colorings" `Quick rejects_improper_colors;
    Alcotest.test_case "lone hungry process eats" `Quick lone_hungry_process_eats;
    Alcotest.test_case "high-priority diner eats" `Quick high_priority_diner_eats_too;
    Alcotest.test_case "external actions are guarded" `Quick become_hungry_idempotent;
    Alcotest.test_case "scripted handshake timeline" `Quick scripted_timeline;
    Alcotest.test_case "exclusion with an accurate oracle" `Quick no_simultaneous_eating_when_accurate;
    Alcotest.test_case "false positives can violate exclusion (allowed by evp-WX)" `Quick
      false_positive_can_cause_violation;
    Alcotest.test_case "crash while eating does not block neighbors" `Quick
      crash_while_eating_does_not_block_neighbor;
    Alcotest.test_case "crash outside doorway does not block neighbors" `Quick
      crash_outside_doorway_does_not_block_neighbor;
    Alcotest.test_case "Never detector starves (Choy-Singh limitation)" `Quick
      never_detector_starves_neighbor_of_crashed;
    Alcotest.test_case "quiescence toward crashed processes" `Quick quiescence_toward_crashed;
    Alcotest.test_case "channel capacity <= 4" `Quick channel_capacity_bound;
    Alcotest.test_case "footprint matches the closed form" `Quick footprint_formula;
    Alcotest.test_case "2-bounded waiting on a contended pair" `Quick eventual_2_bounded_waiting_pair;
    Alcotest.test_case "eat accounting" `Quick total_eats_accounting;
    Alcotest.test_case "debug dumps" `Quick debug_dump;
    Alcotest.test_case "ack budget: default is the paper's k = 2" `Quick ack_budget_default_bound;
    Alcotest.test_case "ack budget: m = 3 gives k = 4" `Quick ack_budget_relaxed_bound;
    Alcotest.test_case "ack budget: validation" `Quick ack_budget_validated;
    Alcotest.test_case "message kinds and sizes" `Quick message_kind_labels;
  ]
