(* Tests for the self-stabilization layer: protocol guarded commands and
   the daemon-driven scheduler. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let view self state neighbors = { Stabilize.Protocol.self; state; neighbors }

(* ----------------------------- Coloring ---------------------------- *)

let coloring_rules () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 4) in
  let p = Stabilize.Coloring_protocol.make ~graph:g in
  (* Conflict with a neighbor enables the process. *)
  check bool "conflict enables" true (p.enabled (view 0 1 [| (1, 1); (3, 2) |]));
  check bool "no conflict disables" false (p.enabled (view 0 1 [| (1, 0); (3, 2) |]));
  (* Step picks the smallest free color. *)
  check int "smallest free" 2 (p.step (view 0 1 [| (1, 1); (3, 0) |]));
  check int "zero when free" 0 (p.step (view 0 1 [| (1, 1); (3, 2) |]))

let coloring_error_measure () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 4) in
  let p = Stabilize.Coloring_protocol.make ~graph:g in
  let all_alive _ = true in
  check int "all same color on a 4-ring = 4 conflicts" 4 (p.error g [| 1; 1; 1; 1 |] all_alive);
  check int "proper 2-coloring" 0 (p.error g [| 0; 1; 0; 1 |] all_alive);
  (* Conflicts between two crashed endpoints are excluded. *)
  let alive i = i > 1 in
  check int "dead-dead conflict ignored" 0 (p.error g [| 1; 1; 0; 2 |] alive)

let coloring_step_never_creates_conflict =
  QCheck.Test.make ~name:"coloring: a step resolves without creating conflicts" ~count:200
    QCheck.(pair (int_range 3 8) (int_bound 10_000))
    (fun (deg, seed) ->
      let g = Cgraph.Topology.build (Cgraph.Topology.Star (deg + 1)) in
      let p = Stabilize.Coloring_protocol.make ~graph:g in
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let nbrs = Array.init deg (fun k -> (k + 1, Sim.Rng.int rng (deg + 1))) in
      let mine = Sim.Rng.int rng (deg + 1) in
      let v = view 0 mine nbrs in
      (not (p.enabled v))
      ||
      let next = p.step v in
      Array.for_all (fun (_, s) -> s <> next) nbrs)

(* ---------------------------- Token ring --------------------------- *)

let token_ring_rules () =
  let p = Stabilize.Token_ring.make ~n:4 ~k:5 () in
  (* Root enabled iff equal to predecessor (pid 3). *)
  check bool "root enabled" true (p.enabled (view 0 2 [| (1, 0); (3, 2) |]));
  check bool "root disabled" false (p.enabled (view 0 2 [| (1, 0); (3, 1) |]));
  check int "root increments mod k" 3 (p.step (view 0 2 [| (1, 0); (3, 2) |]));
  check int "root wraps" 0 (p.step (view 0 4 [| (1, 0); (3, 4) |]));
  (* Non-root enabled iff it differs from its predecessor, and copies. *)
  check bool "follower enabled" true (p.enabled (view 2 1 [| (1, 3); (3, 0) |]));
  check bool "follower disabled" false (p.enabled (view 2 3 [| (1, 3); (3, 0) |]));
  check int "follower copies" 3 (p.step (view 2 1 [| (1, 3); (3, 0) |]))

let token_ring_error () =
  let p = Stabilize.Token_ring.make ~n:4 ~k:5 () in
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 4) in
  let alive _ = true in
  (* Legitimate: exactly one enabled process. All-equal: only root enabled. *)
  check int "stable configuration" 0 (p.error g [| 2; 2; 2; 2 |] alive);
  check bool "chaotic configuration has error" true (p.error g [| 0; 3; 1; 4 |] alive > 0)

let token_ring_validation () =
  Alcotest.check_raises "k too small" (Invalid_argument "Token_ring.make: need k >= n")
    (fun () -> ignore (Stabilize.Token_ring.make ~n:5 ~k:3 ()))

(* ----------------------------- Matching ---------------------------- *)

let matching_rules () =
  let p = Stabilize.Matching.make () in
  (* accept: someone points at me *)
  check bool "accept enabled" true (p.enabled (view 0 0 [| (1, 1); (2, 0) |]));
  check int "accept sets pointer" 2 (p.step (view 0 0 [| (1, 1); (2, 0) |]));
  (* propose: all quiet, a null neighbor exists *)
  check bool "propose enabled" true (p.enabled (view 0 0 [| (1, 0) |]));
  check int "propose lowest" 2 (p.step (view 0 0 [| (1, 0); (3, 0) |]));
  (* back off: partner points elsewhere *)
  check bool "back off enabled" true (p.enabled (view 0 2 [| (1, 3) |]));
  check int "back off to null" 0 (p.step (view 0 2 [| (1, 3) |]));
  (* stable pair: mutual pointers disable both sides *)
  check bool "mutual is stable" false (p.enabled (view 0 2 [| (1, 1) |]))

let matching_error () =
  let p = Stabilize.Matching.make () in
  let g = Cgraph.Topology.build (Cgraph.Topology.Path 4) in
  let alive _ = true in
  (* 0-1 matched, 2-3 matched: maximal. States are pointers + 1. *)
  check int "perfect matching" 0 (p.error g [| 2; 1; 4; 3 |] alive);
  (* everyone null on a path: all can match someone *)
  check bool "all null has error" true (p.error g [| 0; 0; 0; 0 |] alive > 0)

(* ----------------------------- BFS tree ---------------------------- *)

let bfs_rules () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Path 4) in
  let p = Stabilize.Bfs_tree.make ~graph:g in
  (* Root resets to 0. *)
  check bool "root enabled when nonzero" true (p.enabled (view 0 3 [| (1, 1) |]));
  check int "root resets" 0 (p.step (view 0 3 [| (1, 1) |]));
  check bool "root stable at 0" false (p.enabled (view 0 0 [| (1, 1) |]));
  (* Others contract toward 1 + min neighbor. *)
  check bool "follower enabled" true (p.enabled (view 2 4 [| (1, 1); (3, 2) |]));
  check int "follower recomputes" 2 (p.step (view 2 4 [| (1, 1); (3, 2) |]));
  check bool "fixed point stable" false (p.enabled (view 2 2 [| (1, 1); (3, 3) |]))

let bfs_distances_helper () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 6) in
  check (Alcotest.list int) "ring distances" [ 0; 1; 2; 3; 2; 1 ]
    (Array.to_list (Stabilize.Bfs_tree.distances g))

let bfs_error_zero_at_fixed_point () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Binary_tree 7) in
  let p = Stabilize.Bfs_tree.make ~graph:g in
  let d = Stabilize.Bfs_tree.distances g in
  check int "true distances are silent" 0 (p.error g d (fun _ -> true));
  d.(3) <- d.(3) + 2;
  check bool "perturbation wakes processes" true (p.error g d (fun _ -> true) > 0)

(* ----------------------------- Scheduler --------------------------- *)

type srig = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  sched : Stabilize.Scheduler.t;
}

let stab_rig ?(topology = Cgraph.Topology.Random_gnp (12, 0.3, 7L)) ?(detector = `Oracle)
    ?(protocol = `Coloring) ?(seed = 33L) () =
  let graph = Cgraph.Topology.build topology in
  let n = Cgraph.Graph.n graph in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n in
  let det =
    match detector with
    | `Oracle -> snd (Fd.Oracle.create engine faults graph ~detection_delay:30 ())
    | `Never -> Fd.Never.create ()
  in
  let rng = Sim.Rng.create seed in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph ~delay:(Net.Delay.Uniform (1, 5))
      ~rng:(Sim.Rng.split_named rng "net") ~detector:det ()
  in
  let proto =
    match protocol with
    | `Coloring -> Stabilize.Coloring_protocol.make ~graph
    | `Matching -> Stabilize.Matching.make ()
    | `Token_ring -> Stabilize.Token_ring.make ~n ()
    | `Bfs -> Stabilize.Bfs_tree.make ~graph
  in
  let sched =
    Stabilize.Scheduler.attach ~engine ~faults ~graph
      ~rng:(Sim.Rng.split_named rng "sched")
      ~protocol:proto
      (Dining.Algorithm.instance algo)
  in
  { engine; faults; sched }

let scheduler_converges_coloring () =
  let r = stab_rig () in
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "converged to zero conflicts" 0 o.final_error;
  check bool "convergence recorded" true (o.converged_at <> None)

let scheduler_converges_with_crashes () =
  let r = stab_rig () in
  Net.Faults.schedule_crash r.faults ~pid:1 ~at:500;
  Net.Faults.schedule_crash r.faults ~pid:4 ~at:900;
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "still converges around frozen nodes" 0 o.final_error

let scheduler_recovers_from_transients () =
  let r = stab_rig () in
  Stabilize.Scheduler.schedule_faults r.sched ~at:[ 10_000 ] ~victims:5;
  Sim.Engine.run r.engine ~until:40_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "recovered" 0 o.final_error;
  (match o.converged_at with
  | Some t -> check bool "re-convergence after the fault" true (t >= 10_000 || o.steps_executed = 0)
  | None -> Alcotest.fail "did not converge")

let scheduler_token_ring_circulates () =
  let r = stab_rig ~topology:(Cgraph.Topology.Ring 6) ~protocol:`Token_ring () in
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "single token" 0 o.final_error;
  (* The token keeps moving inside the legitimate set: many steps. *)
  check bool "token circulates" true (o.steps_executed > 50)

let scheduler_matching_stabilizes () =
  let r = stab_rig ~topology:(Cgraph.Topology.Ring 8) ~protocol:`Matching () in
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "maximal matching reached" 0 o.final_error

let scheduler_bfs_reaches_true_distances () =
  let topology = Cgraph.Topology.Random_gnp (14, 0.25, 9L) in
  let r = stab_rig ~topology ~protocol:`Bfs () in
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "silent" 0 o.final_error;
  (* Crash-free, the fixed point is exactly the BFS distances. *)
  let g = Cgraph.Topology.build topology in
  check (Alcotest.list int) "true BFS distances"
    (Array.to_list (Stabilize.Bfs_tree.distances g))
    (Array.to_list (Stabilize.Scheduler.states r.sched))

let scheduler_bfs_with_crashes_goes_silent () =
  let r = stab_rig ~topology:(Cgraph.Topology.Random_gnp (14, 0.25, 9L)) ~protocol:`Bfs () in
  Net.Faults.schedule_crash r.faults ~pid:2 ~at:400;
  Net.Faults.schedule_crash r.faults ~pid:7 ~at:800;
  Stabilize.Scheduler.schedule_faults r.sched ~at:[ 8_000 ] ~victims:4;
  Sim.Engine.run r.engine ~until:30_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  check int "live part reaches a fixed point" 0 o.final_error

let scheduler_never_daemon_with_crash_fails () =
  (* A crash under the oracle-less daemon blocks the neighborhood, so a
     conflict adjacent to a blocked hungry process can persist forever. *)
  let r = stab_rig ~detector:`Never ~topology:(Cgraph.Topology.Ring 8) ~seed:2L () in
  Stabilize.Scheduler.schedule_faults r.sched ~at:[ 5_000 ] ~victims:8;
  Net.Faults.schedule_crash r.faults ~pid:3 ~at:200;
  Sim.Engine.run r.engine ~until:40_000;
  let o = Stabilize.Scheduler.outcome r.sched in
  let r2 = stab_rig ~detector:`Oracle ~topology:(Cgraph.Topology.Ring 8) ~seed:2L () in
  Stabilize.Scheduler.schedule_faults r2.sched ~at:[ 5_000 ] ~victims:8;
  Net.Faults.schedule_crash r2.faults ~pid:3 ~at:200;
  Sim.Engine.run r2.engine ~until:40_000;
  let o2 = Stabilize.Scheduler.outcome r2.sched in
  check int "oracle daemon converges" 0 o2.final_error;
  (* The Never daemon must do no better than the oracle daemon; on this
     seed the transient fault leaves a conflict next to the blocked zone. *)
  check bool "never daemon stuck or slower" true
    (o.final_error > 0 || o.converged_at >= o2.converged_at)

let suite =
  [
    Alcotest.test_case "coloring: guarded command" `Quick coloring_rules;
    Alcotest.test_case "coloring: error measure" `Quick coloring_error_measure;
    QCheck_alcotest.to_alcotest coloring_step_never_creates_conflict;
    Alcotest.test_case "token ring: guarded commands" `Quick token_ring_rules;
    Alcotest.test_case "token ring: error measure" `Quick token_ring_error;
    Alcotest.test_case "token ring: validation" `Quick token_ring_validation;
    Alcotest.test_case "matching: guarded commands" `Quick matching_rules;
    Alcotest.test_case "matching: error measure" `Quick matching_error;
    Alcotest.test_case "bfs: guarded commands" `Quick bfs_rules;
    Alcotest.test_case "bfs: distance helper" `Quick bfs_distances_helper;
    Alcotest.test_case "bfs: silence at the fixed point" `Quick bfs_error_zero_at_fixed_point;
    Alcotest.test_case "scheduler: coloring converges" `Quick scheduler_converges_coloring;
    Alcotest.test_case "scheduler: bfs reaches true distances" `Quick
      scheduler_bfs_reaches_true_distances;
    Alcotest.test_case "scheduler: bfs silent despite crashes" `Quick
      scheduler_bfs_with_crashes_goes_silent;
    Alcotest.test_case "scheduler: converges despite crashes" `Quick scheduler_converges_with_crashes;
    Alcotest.test_case "scheduler: recovers from transient faults" `Quick
      scheduler_recovers_from_transients;
    Alcotest.test_case "scheduler: token ring circulates" `Quick scheduler_token_ring_circulates;
    Alcotest.test_case "scheduler: matching stabilizes" `Quick scheduler_matching_stabilizes;
    Alcotest.test_case "scheduler: crash-intolerant daemon can fail" `Quick
      scheduler_never_daemon_with_crash_fails;
  ]
