(* Tests for summaries, tables and series rendering. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let flo = Alcotest.float 1e-9

let summary_basics () =
  let s = Stats.Summary.of_ints [ 1; 2; 3; 4; 5 ] in
  check int "count" 5 s.count;
  check flo "mean" 3.0 s.mean;
  check flo "min" 1.0 s.min;
  check flo "max" 5.0 s.max;
  check flo "median" 3.0 s.p50

let summary_empty () =
  let s = Stats.Summary.of_floats [] in
  check int "empty count" 0 s.count;
  check flo "empty mean" 0.0 s.mean

let summary_single () =
  let s = Stats.Summary.of_floats [ 7.5 ] in
  check flo "single p99" 7.5 s.p99;
  check flo "single stddev" 0.0 s.stddev

let percentile_interpolates () =
  let sorted = [| 10.0; 20.0; 30.0; 40.0 |] in
  check flo "p0" 10.0 (Stats.Summary.percentile sorted 0.0);
  check flo "p100" 40.0 (Stats.Summary.percentile sorted 1.0);
  check flo "p50 interpolated" 25.0 (Stats.Summary.percentile sorted 0.5)

let percentile_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty") (fun () ->
      ignore (Stats.Summary.percentile [||] 0.5));
  Alcotest.check_raises "out of range" (Invalid_argument "Summary.percentile: q out of range")
    (fun () -> ignore (Stats.Summary.percentile [| 1.0 |] 1.5))

let summary_percentiles_order =
  QCheck.Test.make ~name:"summary: p50 <= p95 <= p99 <= max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_exclusive 1000.0))
    (fun samples ->
      let s = Stats.Summary.of_floats samples in
      s.p50 <= s.p95 +. 1e-9 && s.p95 <= s.p99 +. 1e-9 && s.p99 <= s.max +. 1e-9
      && s.min <= s.p50 +. 1e-9)

let table_renders_aligned () =
  let t =
    Stats.Table.create ~title:"demo"
      ~columns:[ ("name", Stats.Table.Left); ("value", Stats.Table.Right) ]
  in
  Stats.Table.add_row t [ "alpha"; "1" ];
  Stats.Table.add_rule t;
  Stats.Table.add_row t [ "b"; "22" ];
  let out = Stats.Table.render t in
  check bool "has title" true (String.length out > 0 && String.sub out 0 7 = "== demo");
  (* all lines (after the title) share a width *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length (List.tl lines) in
  check bool "aligned columns" true (List.for_all (fun w -> w = List.hd widths) widths)

let table_rejects_bad_rows () =
  let t = Stats.Table.create ~title:"x" ~columns:[ ("a", Stats.Table.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: 2 cells for 1 columns")
    (fun () -> Stats.Table.add_row t [ "1"; "2" ])

let table_csv () =
  let t =
    Stats.Table.create ~title:"csv"
      ~columns:[ ("k", Stats.Table.Left); ("v", Stats.Table.Left) ]
  in
  Stats.Table.add_row t [ "plain"; "1" ];
  Stats.Table.add_row t [ "com,ma"; "quo\"te" ];
  Stats.Table.add_rule t;
  let csv = Stats.Table.to_csv t in
  check Alcotest.string "csv escaping" "k,v\nplain,1\n\"com,ma\",\"quo\"\"te\"\n" csv

let table_cells () =
  check Alcotest.string "int" "42" (Stats.Table.cell_int 42);
  check Alcotest.string "float" "3.14" (Stats.Table.cell_float ~decimals:2 3.14159);
  check Alcotest.string "bool" "yes" (Stats.Table.cell_bool true);
  check Alcotest.string "time inf" "inf" (Stats.Table.cell_time max_int)

let series_renders () =
  let s = Stats.Series.create ~title:"t" ~x_label:"x" ~y_label:"y" in
  for i = 0 to 10 do
    Stats.Series.add_point s ~x:(float_of_int i) ~y:(float_of_int (i * i))
  done;
  Stats.Series.add_series s ~name:"other" [ (0.0, 5.0); (10.0, 5.0) ];
  let out = Stats.Series.render ~width:40 ~height:8 s in
  check bool "contains legend" true
    (String.length out > 0
    && (let contains hay needle =
          let nl = String.length needle in
          let rec go i = i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        contains out "[*] y" && contains out "[o] other" && contains out "data:"))

let series_csv () =
  let s = Stats.Series.create ~title:"curve" ~x_label:"t" ~y_label:"err" in
  Stats.Series.add_point s ~x:1.0 ~y:2.5;
  Stats.Series.add_point s ~x:2.0 ~y:0.0;
  Stats.Series.add_series s ~name:"base" [ (1.0, 3.0) ];
  check Alcotest.string "csv"
    "series,x,y\nerr,1,2.5\nerr,2,0\nbase,1,3\n"
    (Stats.Series.to_csv s);
  check Alcotest.string "title accessor" "curve" (Stats.Series.title s)

let series_empty () =
  let s = Stats.Series.create ~title:"none" ~x_label:"x" ~y_label:"y" in
  let out = Stats.Series.render s in
  check bool "handles empty" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "summary: basics" `Quick summary_basics;
    Alcotest.test_case "summary: empty" `Quick summary_empty;
    Alcotest.test_case "summary: singleton" `Quick summary_single;
    Alcotest.test_case "percentile: interpolation" `Quick percentile_interpolates;
    Alcotest.test_case "percentile: validation" `Quick percentile_rejects;
    QCheck_alcotest.to_alcotest summary_percentiles_order;
    Alcotest.test_case "table: aligned rendering" `Quick table_renders_aligned;
    Alcotest.test_case "table: arity validation" `Quick table_rejects_bad_rows;
    Alcotest.test_case "table: csv escaping" `Quick table_csv;
    Alcotest.test_case "table: cell formatters" `Quick table_cells;
    Alcotest.test_case "series: ascii rendering" `Quick series_renders;
    Alcotest.test_case "series: csv export" `Quick series_csv;
    Alcotest.test_case "series: empty input" `Quick series_empty;
  ]
