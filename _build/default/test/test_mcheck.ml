(* Tests for the explicit-state model checker: transition enumeration
   sanity plus exhaustive verification on small instances. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let pair_cfg ?(sessions = 1) ?(crash_budget = 0) ?(fp_budget = 0) () =
  {
    Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ];
    colors = [| 0; 1 |];
    sessions;
    crash_budget;
    fp_budget;
  }

let labels cfg state = List.map fst (Mcheck.Model.successors cfg state)

let initial_transitions () =
  let cfg = pair_cfg () in
  let init = Mcheck.Model.initial cfg in
  (* From the start: each process may become hungry, nothing else. *)
  check (Alcotest.list Alcotest.string) "only hungry transitions" [ "hungry(0)"; "hungry(1)" ]
    (List.sort compare (labels cfg init));
  check bool "initial state is clean" true (Mcheck.Model.check cfg init = None)

let crash_and_fp_budgets_add_transitions () =
  let cfg = pair_cfg ~crash_budget:1 ~fp_budget:1 () in
  let init = Mcheck.Model.initial cfg in
  let ls = labels cfg init in
  check bool "crash transitions offered" true (List.mem "crash(0)" ls && List.mem "crash(1)" ls);
  check bool "fp transitions offered" true (List.mem "fp(0,1)" ls && List.mem "fp(1,0)" ls)

let hungry_leads_to_ping () =
  let cfg = pair_cfg () in
  let init = Mcheck.Model.initial cfg in
  let after_hungry =
    List.assoc "hungry(0)" (Mcheck.Model.successors cfg init)
  in
  let ls = labels cfg after_hungry in
  check bool "a2 enabled for the hungry process" true (List.mem "a2(0)" ls);
  check bool "a5 not enabled before the ack" true (not (List.mem "a5(0)" ls))

let rejects_improper_colors () =
  let cfg = { (pair_cfg ()) with colors = [| 1; 1 |] } in
  Alcotest.check_raises "improper coloring" (Invalid_argument "Mcheck: colors must be proper")
    (fun () -> ignore (Mcheck.Model.initial cfg))

(* ------------------------ exhaustive checking ---------------------- *)

let exhaustive_pair_accurate () =
  let r = Mcheck.Explore.bfs (pair_cfg ~sessions:2 ()) in
  check bool "complete" true r.complete;
  check bool "no violation" true (r.violation = None);
  check bool "nontrivial space" true (r.states > 100)

let exhaustive_pair_with_faults () =
  let r = Mcheck.Explore.bfs (pair_cfg ~sessions:1 ~crash_budget:1 ~fp_budget:2 ()) in
  check bool "complete" true r.complete;
  check bool "structural lemmas hold under crashes and lies" true (r.violation = None)

let exhaustive_path3 () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ];
      colors = [| 0; 1; 0 |];
      sessions = 1;
      crash_budget = 0;
      fp_budget = 0;
    }
  in
  let r = Mcheck.Explore.bfs cfg in
  check bool "complete" true r.complete;
  check bool "no violation" true (r.violation = None)

let exhaustive_triangle_with_crash () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ];
      colors = [| 0; 1; 2 |];
      sessions = 1;
      crash_budget = 1;
      fp_budget = 0;
    }
  in
  let r = Mcheck.Explore.bfs ~max_states:400_000 cfg in
  check bool "no violation in explored space" true (r.violation = None);
  check bool "substantial exploration" true (r.states > 10_000)

let state_cap_respected () =
  let r = Mcheck.Explore.bfs ~max_states:50 (pair_cfg ~sessions:3 ()) in
  check bool "truncated" true (not r.complete);
  check int "capped" 50 r.states

let depth_cap_respected () =
  let r = Mcheck.Explore.bfs ~max_depth:3 (pair_cfg ~sessions:3 ()) in
  check bool "depth bounded" true (r.depth <= 3);
  check bool "marked incomplete" true (not r.complete)

(* The checker must actually be able to find violations: feed it a bogus
   initial coloring bypass by corrupting the invariant check via a state
   with two forks. Easiest faithful negative test: a model where both
   endpoints claim the fork is unreachable, so instead check that the
   exclusion invariant trips when the fp budget is 0 but we seed suspicion
   through a crash + detect + a9 path. That path is legitimate (eating next
   to a crashed eater is allowed), so assert it does NOT trip. *)
let exclusion_check_is_live_aware () =
  let r = Mcheck.Explore.bfs ~max_states:150_000 (pair_cfg ~sessions:1 ~crash_budget:1 ()) in
  (* With one crash allowed, a live process may eat while its crashed
     neighbor is frozen mid-eating; the live-aware exclusion check must
     not flag that. *)
  check bool "no spurious exclusion violation" true (r.violation = None)

(* A scripted walkthrough of one full hungry session in the model,
   following Algorithm 1's actions label by label — an executable version
   of the paper's prose description. *)
let scripted_session () =
  let cfg = pair_cfg () in
  let step state label =
    match List.assoc_opt label (Mcheck.Model.successors cfg state) with
    | Some next -> next
    | None ->
        Alcotest.failf "transition %s not enabled; available: %s" label
          (String.concat ", " (List.map fst (Mcheck.Model.successors cfg state)))
  in
  let s = Mcheck.Model.initial cfg in
  (* Process 0 (low color, holds the token) gets hungry and runs the
     whole protocol while process 1 stays thinking. *)
  let s = step s "hungry(0)" in
  check bool "hungry" true (Mcheck.Model.phase s 0 = `Hungry);
  let s = step s "a2(0)" in          (* ping 1 *)
  let s = step s "deliver(0->1)" in  (* 1 (thinking) acks immediately *)
  let s = step s "deliver(1->0)" in  (* ack arrives *)
  let s = step s "a5(0)" in          (* enter the doorway *)
  check bool "inside" true (Mcheck.Model.inside s 0);
  let s = step s "a6(0)" in          (* request the fork with the token *)
  let s = step s "deliver(0->1)" in  (* 1 (outside) yields the fork *)
  let s = step s "deliver(1->0)" in  (* fork arrives *)
  let s = step s "a9(0)" in
  check bool "eating" true (Mcheck.Model.phase s 0 = `Eating);
  let s = step s "a10(0)" in
  check bool "back to thinking" true (Mcheck.Model.phase s 0 = `Thinking);
  check bool "no dangling invariant" true (Mcheck.Model.check cfg s = None);
  (* The session budget is spent: no second hungry(0). *)
  check bool "session budget consumed" true
    (List.assoc_opt "hungry(0)" (Mcheck.Model.successors cfg s) = None)

(* ------------------------- reachability ---------------------------- *)

let eating_is_reachable () =
  let cfg = pair_cfg () in
  (match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.phase s 0 = `Eating) cfg with
  | Some depth -> check bool "reasonable depth" true (depth > 3)
  | None -> Alcotest.fail "process 0 can never eat in the model");
  match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.phase s 1 = `Eating) cfg with
  | Some _ -> ()
  | None -> Alcotest.fail "process 1 can never eat in the model"

let eating_reachable_past_crash () =
  (* 0 can reach eating even in runs where 1 crashed: the suspicion
     substitution path exists in the model. *)
  let cfg = pair_cfg ~crash_budget:1 () in
  let pred s = Mcheck.Model.phase s 0 = `Eating && Mcheck.Model.crashed s 1 in
  match Mcheck.Explore.reach ~pred cfg with
  | Some _ -> ()
  | None -> Alcotest.fail "no eat-past-crash run found"

let doorway_reachable () =
  let cfg = pair_cfg () in
  match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.inside s 0) cfg with
  | Some _ -> ()
  | None -> Alcotest.fail "doorway unreachable"

let unreachable_predicate () =
  let cfg = pair_cfg () in
  (* With no crash budget nobody can be crashed. *)
  check bool "correctly unreachable" true
    (Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.crashed s 0) cfg = None)

(* ------------------------- progress (liveness) --------------------- *)

let progress_pair () =
  let r = Mcheck.Explore.progress ~pid:0 (pair_cfg ~sessions:2 ()) in
  check bool "complete" true r.progress_complete;
  check bool "hungry states exist" true (r.hungry_states > 0);
  check int "no stuck hungry state (Theorem 2, possibility form)" 0 r.stuck_states

let progress_pair_with_faults () =
  (* Even with a crash of the peer and oracle lies in the graph, every
     hungry-live state of 0 retains a path to eating. *)
  let r = Mcheck.Explore.progress ~pid:0 (pair_cfg ~sessions:1 ~crash_budget:1 ~fp_budget:2 ()) in
  check bool "complete" true r.progress_complete;
  check int "no stuck state under crash + lies" 0 r.stuck_states

let progress_triangle () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ];
      colors = [| 0; 1; 2 |];
      sessions = 1;
      crash_budget = 0;
      fp_budget = 0;
    }
  in
  List.iter
    (fun pid ->
      let r = Mcheck.Explore.progress ~pid cfg in
      check bool "complete" true r.progress_complete;
      check int (Printf.sprintf "p%d never stuck" pid) 0 r.stuck_states)
    [ 0; 1; 2 ]

(* ------------------------- random walks ---------------------------- *)

let random_walk_clean_on_pair () =
  let r = Mcheck.Explore.random_walk ~walks:32 ~steps:200 ~seed:3L (pair_cfg ~sessions:3 ()) in
  check int "all walks ran" 32 r.walks_done;
  check bool "many transitions" true (r.steps_taken > 1_000);
  check bool "no violation" true (r.walk_violation = None)

let random_walk_scales_to_ring4 () =
  (* ring-4 with crashes and lies is beyond exhaustive BFS budgets; the
     walker still covers hundreds of thousands of transitions. *)
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ];
      colors = [| 0; 1; 0; 1 |];
      sessions = 2;
      crash_budget = 1;
      fp_budget = 2;
    }
  in
  (* Walks end early once every budget is spent and the system quiesces,
     so the expected yield is roughly (session cost * budget) per walk. *)
  let r = Mcheck.Explore.random_walk ~walks:64 ~steps:500 ~seed:11L cfg in
  check bool "substantial coverage" true (r.steps_taken > 4_000);
  check bool "no violation on ring-4" true (r.walk_violation = None)

let random_walk_deterministic () =
  let cfg = pair_cfg ~sessions:2 ~fp_budget:1 () in
  let a = Mcheck.Explore.random_walk ~walks:8 ~steps:100 ~seed:5L cfg in
  let b = Mcheck.Explore.random_walk ~walks:8 ~steps:100 ~seed:5L cfg in
  check int "same seed same trajectory count" a.steps_taken b.steps_taken

let key_is_canonical () =
  let cfg = pair_cfg () in
  let a = Mcheck.Model.initial cfg and b = Mcheck.Model.initial cfg in
  check bool "equal states equal keys" true (Mcheck.Model.key a = Mcheck.Model.key b);
  let succ = Mcheck.Model.successors cfg a in
  let _, after = List.hd succ in
  check bool "different states different keys" true (Mcheck.Model.key a <> Mcheck.Model.key after)

let describe_mentions_phases () =
  let cfg = pair_cfg () in
  let s = Mcheck.Model.initial cfg in
  let d = Mcheck.Model.describe s in
  check bool "describes both processes" true
    (String.length d > 0 && String.split_on_char 'p' d |> List.length >= 3)

let suite =
  [
    Alcotest.test_case "initial transitions" `Quick initial_transitions;
    Alcotest.test_case "budgets add fault transitions" `Quick crash_and_fp_budgets_add_transitions;
    Alcotest.test_case "doorway progression" `Quick hungry_leads_to_ping;
    Alcotest.test_case "validates colors" `Quick rejects_improper_colors;
    Alcotest.test_case "scripted full session walkthrough" `Quick scripted_session;
    Alcotest.test_case "exhaustive: pair, accurate oracle" `Quick exhaustive_pair_accurate;
    Alcotest.test_case "exhaustive: pair with crash and lies" `Slow exhaustive_pair_with_faults;
    Alcotest.test_case "exhaustive: path-3" `Quick exhaustive_path3;
    Alcotest.test_case "exhaustive: triangle with crash" `Slow exhaustive_triangle_with_crash;
    Alcotest.test_case "bounds: state cap" `Quick state_cap_respected;
    Alcotest.test_case "bounds: depth cap" `Quick depth_cap_respected;
    Alcotest.test_case "exclusion check is liveness-aware" `Slow exclusion_check_is_live_aware;
    Alcotest.test_case "reach: eating reachable for both" `Quick eating_is_reachable;
    Alcotest.test_case "reach: eating past a crash" `Quick eating_reachable_past_crash;
    Alcotest.test_case "reach: doorway reachable" `Quick doorway_reachable;
    Alcotest.test_case "reach: impossible predicate" `Quick unreachable_predicate;
    Alcotest.test_case "progress: pair (Theorem 2 possibility form)" `Quick progress_pair;
    Alcotest.test_case "progress: pair under crash and lies" `Slow progress_pair_with_faults;
    Alcotest.test_case "progress: triangle, all diners" `Slow progress_triangle;
    Alcotest.test_case "walk: clean on the pair" `Quick random_walk_clean_on_pair;
    Alcotest.test_case "walk: ring-4 with crash and lies" `Slow random_walk_scales_to_ring4;
    Alcotest.test_case "walk: deterministic in the seed" `Quick random_walk_deterministic;
    Alcotest.test_case "canonical keys" `Quick key_is_canonical;
    Alcotest.test_case "describe" `Quick describe_mentions_phases;
  ]
