(* Tests for the baseline daemons: Fork_only (doorway ablation) and
   Chandy_misra (hygienic dining). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type which = FO | CM | OR

type rig = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  inst : Dining.Instance.t;
  eats : int array;
}

let rig which ?(edges = [ (0, 1) ]) ?(n = 2) ?(delay = Net.Delay.Fixed 3) ?(detector = `Never) ()
    =
  let graph = Cgraph.Graph.of_edges ~n edges in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n in
  let det =
    match detector with
    | `Never -> Fd.Never.create ()
    | `Oracle -> snd (Fd.Oracle.create engine faults graph ~detection_delay:20 ())
  in
  let rng = Sim.Rng.create 3L in
  let inst =
    match which with
    | FO ->
        Baselines.Fork_only.instance
          (Baselines.Fork_only.create ~engine ~faults ~graph ~delay ~rng ~detector:det ())
    | CM ->
        Baselines.Chandy_misra.instance
          (Baselines.Chandy_misra.create ~engine ~faults ~graph ~delay ~rng ~detector:det ())
    | OR ->
        Baselines.Ordered.instance
          (Baselines.Ordered.create ~engine ~faults ~graph ~delay ~rng ~detector:det ())
  in
  let eats = Array.make n 0 in
  inst.add_listener (fun pid phase ->
      if phase = Dining.Types.Eating then eats.(pid) <- eats.(pid) + 1);
  { engine; faults; inst; eats }

let auto_stop ?(duration = 5) r =
  r.inst.add_listener (fun pid phase ->
      if phase = Dining.Types.Eating then
        ignore (Sim.Engine.schedule_after r.engine ~delay:duration (fun () -> r.inst.stop_eating pid)))

let auto_rehungry ?(gap = 2) r pid =
  r.inst.add_listener (fun p phase ->
      if p = pid && phase = Dining.Types.Thinking then
        ignore (Sim.Engine.schedule_after r.engine ~delay:gap (fun () -> r.inst.become_hungry pid)))

let exclusion_holds r graph_edges horizon =
  let eating = Hashtbl.create 8 in
  let overlap = ref false in
  r.inst.add_listener (fun pid phase ->
      (match phase with
      | Dining.Types.Eating ->
          List.iter
            (fun (a, b) ->
              let other = if a = pid then Some b else if b = pid then Some a else None in
              match other with
              | Some o when Hashtbl.mem eating o -> overlap := true
              | _ -> ())
            graph_edges;
          Hashtbl.replace eating pid ()
      | _ -> Hashtbl.remove eating pid));
  Sim.Engine.run r.engine ~until:horizon;
  not !overlap

(* ----------------------------- Fork_only --------------------------- *)

let fork_only_progress_and_exclusion () =
  let r = rig FO () in
  auto_stop r;
  auto_rehungry r 0;
  auto_rehungry r 1;
  r.inst.become_hungry 0;
  r.inst.become_hungry 1;
  let ok = exclusion_holds r [ (0, 1) ] 5_000 in
  check bool "exclusion holds without oracle mistakes" true ok;
  check bool "both eat" true (r.eats.(0) > 10 && r.eats.(1) > 10);
  r.inst.check_invariants ()

let fork_only_unbounded_overtaking () =
  (* Saturated triangle: the lowest-priority diner needs both forks at
     once, but its higher-priority neighbors keep snatching them in
     alternation — overtaking far beyond Algorithm 1's bound of 2. (On a
     pair the deferred fork is flushed at exit, so >= 3 diners are needed
     to expose this.) *)
  let r = rig FO ~edges:[ (0, 1); (1, 2); (0, 2) ] ~n:3 () in
  auto_stop ~duration:5 r;
  List.iter (fun p -> auto_rehungry ~gap:1 r p) [ 0; 1; 2 ];
  let hungry0 = ref false and streak = ref 0 and worst = ref 0 in
  r.inst.add_listener (fun pid phase ->
      match (pid, phase) with
      | 0, Dining.Types.Hungry -> hungry0 := true
      | 0, Dining.Types.Eating ->
          hungry0 := false;
          streak := 0
      | (1 | 2), Dining.Types.Eating ->
          if !hungry0 then begin
            incr streak;
            worst := max !worst !streak
          end
      | _ -> ());
  List.iter r.inst.become_hungry [ 0; 1; 2 ];
  Sim.Engine.run r.engine ~until:10_000;
  check bool "overtaking far beyond the k=2 bound" true (!worst > 10);
  check bool "lowest priority squeezed" true (r.eats.(0) * 4 < r.eats.(2))

let fork_only_crash_tolerant_with_oracle () =
  let r = rig FO ~detector:`Oracle () in
  auto_stop r;
  Net.Faults.schedule_crash r.faults ~pid:1 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 0));
  Sim.Engine.run r.engine ~until:1_000;
  check bool "eats past the crash via suspicion" true (r.eats.(0) >= 1)

(* ---------------------------- Chandy-Misra -------------------------- *)

let cm_progress_and_exclusion () =
  let r = rig CM ~edges:[ (0, 1); (1, 2); (0, 2) ] ~n:3 () in
  auto_stop r;
  List.iter (fun p -> auto_rehungry r p) [ 0; 1; 2 ];
  List.iter r.inst.become_hungry [ 0; 1; 2 ];
  let ok = exclusion_holds r [ (0, 1); (1, 2); (0, 2) ] 5_000 in
  check bool "exclusion" true ok;
  check bool "everyone eats" true (Array.for_all (fun e -> e > 10) r.eats);
  r.inst.check_invariants ()

let cm_fair_under_saturation () =
  (* Dynamic priorities: under saturation, neither neighbor can be
     overtaken more than a constant number of times. *)
  let r = rig CM () in
  auto_stop ~duration:5 r;
  auto_rehungry ~gap:1 r 0;
  auto_rehungry ~gap:1 r 1;
  let hungry0 = ref None and overtakes = ref 0 and worst = ref 0 in
  r.inst.add_listener (fun pid phase ->
      match (pid, phase) with
      | 0, Dining.Types.Hungry -> hungry0 := Some ()
      | 0, Dining.Types.Eating ->
          hungry0 := None;
          overtakes := 0
      | 1, Dining.Types.Eating ->
          if !hungry0 <> None then begin
            incr overtakes;
            worst := max !worst !overtakes
          end
      | _ -> ());
  r.inst.become_hungry 0;
  r.inst.become_hungry 1;
  Sim.Engine.run r.engine ~until:10_000;
  check bool "both eat a lot" true (r.eats.(0) > 100 && r.eats.(1) > 100);
  check bool "bounded overtaking (hygienic)" true (!worst <= 2)

let cm_initial_forks_acyclic () =
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let cm =
    Baselines.Chandy_misra.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 1)
      ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ()
  in
  (* Forks start at the lower-id endpoint, dirty. *)
  check bool "fork at lower id" true (Baselines.Chandy_misra.holds_fork cm 0 1);
  check bool "dirty initially" false (Baselines.Chandy_misra.fork_clean cm 0 1);
  check bool "not at higher id" false (Baselines.Chandy_misra.holds_fork cm 1 0)

let cm_hygiene_cycle () =
  (* Watch one fork's hygiene through a full request cycle on a pair. *)
  let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:2 in
  let cm =
    Baselines.Chandy_misra.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 2)
      ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ()
  in
  let inst = Baselines.Chandy_misra.instance cm in
  (* Fork starts dirty at 0 (lower id). 1 gets hungry and requests it. *)
  inst.become_hungry 1;
  Sim.Engine.run engine ~until:3;
  (* Request delivered at t=2: the dirty fork must be yielded... *)
  check bool "dirty fork yielded" false (Baselines.Chandy_misra.holds_fork cm 0 1);
  Sim.Engine.run engine ~until:5;
  (* The fork arrived (clean) and enabled eating in the same instant;
     eating immediately soils it again. *)
  check bool "holder eats on arrival" true (inst.phase 1 = Dining.Types.Eating);
  check bool "eating soils the fork" false (Baselines.Chandy_misra.fork_clean cm 1 0);
  (* While eating, a request from 0 is deferred; after exit it is granted. *)
  inst.become_hungry 0;
  Sim.Engine.run engine ~until:12;
  check bool "request deferred while eating" true (Baselines.Chandy_misra.holds_fork cm 1 0);
  inst.stop_eating 1;
  Sim.Engine.run engine ~until:20;
  check bool "deferred grant after exit" true (inst.phase 0 = Dining.Types.Eating)

let ordered_suspicion_skips_rank () =
  (* The locked-prefix pointer advances past a suspected neighbor. *)
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let _, detector = Fd.Oracle.create engine faults graph ~detection_delay:10 () in
  let algo =
    Baselines.Ordered.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 3)
      ~rng:(Sim.Rng.create 1L) ~detector ()
  in
  let inst = Baselines.Ordered.instance algo in
  (* 0 holds fork (0,1); 1 needs both its forks; crash 0 so rank-first
     edge (0,1) can only be passed by suspicion. *)
  Net.Faults.schedule_crash faults ~pid:0 ~at:2;
  ignore (Sim.Engine.schedule engine ~at:5 (fun () -> inst.become_hungry 1));
  Sim.Engine.run engine ~until:100;
  check Alcotest.int "prefix covers both edges" 2 (Baselines.Ordered.progress algo 1);
  check bool "eats past the crash" true (inst.phase 1 = Dining.Types.Eating)

let cm_starves_without_oracle_on_crash () =
  let r = rig CM () in
  auto_stop r;
  (* 0 holds both forks initially in a pair; crash it so 1 can never
     collect. *)
  Net.Faults.schedule_crash r.faults ~pid:0 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 1));
  Sim.Engine.run r.engine ~until:10_000;
  check int "1 starves" 0 r.eats.(1)

(* ------------------------------ Ordered ----------------------------- *)

let ordered_progress_and_exclusion () =
  let r = rig OR ~edges:[ (0, 1); (1, 2); (0, 2); (2, 3) ] ~n:4 () in
  auto_stop r;
  List.iter (fun p -> auto_rehungry r p) [ 0; 1; 2; 3 ];
  List.iter r.inst.become_hungry [ 0; 1; 2; 3 ];
  let ok = exclusion_holds r [ (0, 1); (1, 2); (0, 2); (2, 3) ] 8_000 in
  check bool "exclusion" true ok;
  check bool "everyone eats (deadlock-free without priorities)" true
    (Array.for_all (fun e -> e > 10) r.eats);
  r.inst.check_invariants ()

let ordered_no_starvation_under_saturation () =
  (* Unlike fork-only, the total-order scheme serves everyone even when
     saturated — locks are released after every meal. *)
  let r = rig OR ~edges:[ (0, 1); (1, 2); (0, 2) ] ~n:3 () in
  auto_stop ~duration:5 r;
  List.iter (fun p -> auto_rehungry ~gap:1 r p) [ 0; 1; 2 ];
  List.iter r.inst.become_hungry [ 0; 1; 2 ];
  Sim.Engine.run r.engine ~until:10_000;
  check bool "all served" true (Array.for_all (fun e -> e > 50) r.eats)

let ordered_acquires_in_rank_order () =
  (* A hungry process on a path acquires its lower-ranked edge first. *)
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let algo =
    Baselines.Ordered.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 3)
      ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ()
  in
  let inst = Baselines.Ordered.instance algo in
  inst.become_hungry 1;
  (* Edge (0,1) outranks (1,2); process 1 starts with fork (1,2) only
     (forks start at lower endpoints), so it must fetch (0,1) first and
     only then lock both. *)
  Sim.Engine.run engine ~until:100;
  check Alcotest.int "locked both in order" 2 (Baselines.Ordered.progress algo 1);
  check bool "eating" true (inst.phase 1 = Dining.Types.Eating)

let ordered_crash_tolerant_with_oracle () =
  let r = rig OR ~detector:`Oracle () in
  auto_stop r;
  Net.Faults.schedule_crash r.faults ~pid:0 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 1));
  Sim.Engine.run r.engine ~until:1_000;
  check bool "eats past the crash via suspicion" true (r.eats.(1) >= 1)

let ordered_starves_without_oracle_on_crash () =
  let r = rig OR () in
  auto_stop r;
  Net.Faults.schedule_crash r.faults ~pid:0 ~at:5;
  ignore (Sim.Engine.schedule r.engine ~at:10 (fun () -> r.inst.become_hungry 1));
  Sim.Engine.run r.engine ~until:10_000;
  check Alcotest.int "starves like every oracle-less scheme" 0 r.eats.(1)

let suite =
  [
    Alcotest.test_case "fork-only: progress and exclusion" `Quick fork_only_progress_and_exclusion;
    Alcotest.test_case "ordered: progress and exclusion" `Quick ordered_progress_and_exclusion;
    Alcotest.test_case "ordered: no starvation under saturation" `Quick
      ordered_no_starvation_under_saturation;
    Alcotest.test_case "ordered: rank-order acquisition" `Quick ordered_acquires_in_rank_order;
    Alcotest.test_case "ordered: oracle gives crash tolerance" `Quick
      ordered_crash_tolerant_with_oracle;
    Alcotest.test_case "ordered: crash-intolerant without oracle" `Quick
      ordered_starves_without_oracle_on_crash;
    Alcotest.test_case "fork-only: unbounded overtaking under saturation" `Quick
      fork_only_unbounded_overtaking;
    Alcotest.test_case "fork-only: oracle gives crash tolerance" `Quick
      fork_only_crash_tolerant_with_oracle;
    Alcotest.test_case "chandy-misra: progress and exclusion" `Quick cm_progress_and_exclusion;
    Alcotest.test_case "chandy-misra: hygienic fairness" `Quick cm_fair_under_saturation;
    Alcotest.test_case "chandy-misra: acyclic initial forks" `Quick cm_initial_forks_acyclic;
    Alcotest.test_case "chandy-misra: hygiene cycle" `Quick cm_hygiene_cycle;
    Alcotest.test_case "ordered: suspicion advances the locked prefix" `Quick
      ordered_suspicion_skips_rank;
    Alcotest.test_case "chandy-misra: crash-intolerant without oracle" `Quick
      cm_starves_without_oracle_on_crash;
  ]
