(* Long-horizon stress runs ("soak" tests): large random graphs, many
   crashes, heartbeat detector, invariants checked continuously. These
   are the closest the suite comes to the paper's "every run" claims. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let soak ~seed ~algo ~detector ~topology ?(crashes = 6) ?(horizon = 150_000) () =
  let s : Harness.Scenario.t =
    {
      name = "soak";
      topology;
      seed;
      algo;
      detector;
      delay = Net.Delay.Partial_synchrony { gst = 30_000; pre = (1, 80); post = (1, 8) };
      workload = { think = (0, 120); eat = (5, 35) };
      crashes = Harness.Scenario.Random_crashes { count = crashes; from_t = 2_000; to_t = 80_000 };
      horizon;
      check_every = Some 499;
      acks_per_session = 1;
    }
  in
  Harness.Run.run s

let heartbeat = Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }

let soak_song_pike_heartbeat () =
  let r = soak ~seed:5150L ~algo:Harness.Scenario.Song_pike ~detector:heartbeat
      ~topology:(Cgraph.Topology.Random_gnp (32, 0.15, 51L)) () in
  check bool "invariants held for 150k ticks" true (r.invariant_error = None);
  check bool "wait-free" true (Harness.Run.starved r ~older_than:15_000 = []);
  check int "safe after measured convergence" 0
    (Monitor.Exclusion.count_after r.exclusion r.convergence);
  check bool "channel bound" true (Net.Link_stats.max_edge_watermark r.link_stats <= 4);
  check bool "substantial run" true (r.total_eats > 5_000)

let soak_song_pike_torus () =
  let r = soak ~seed:99L ~algo:Harness.Scenario.Song_pike ~detector:heartbeat
      ~topology:(Cgraph.Topology.Torus (5, 5)) () in
  check bool "invariants" true (r.invariant_error = None);
  check bool "wait-free" true (Harness.Run.starved r ~older_than:15_000 = []);
  check int "safe after convergence" 0 (Monitor.Exclusion.count_after r.exclusion r.convergence)

let soak_quiescence_everywhere () =
  let r = soak ~seed:7L ~algo:Harness.Scenario.Song_pike
      ~detector:(Harness.Scenario.Oracle
                   { detection_delay = 60; fp_per_edge = 1; fp_window = 10_000; fp_max_len = 150 })
      ~topology:(Cgraph.Topology.Random_gnp (24, 0.2, 13L)) () in
  check bool "invariants" true (r.invariant_error = None);
  (* Every crashed process goes silent after a grace period. *)
  List.iter
    (fun (pid, at) ->
      check int
        (Printf.sprintf "p%d quiescent" pid)
        0
        (Net.Link_stats.sends_to_after r.link_stats ~dst:pid ~after:(at + 5_000)))
    r.crashed

let soak_fairness_holds_at_scale () =
  let r = soak ~seed:12L ~algo:Harness.Scenario.Song_pike
      ~detector:(Harness.Scenario.Oracle
                   { detection_delay = 60; fp_per_edge = 2; fp_window = 12_000; fp_max_len = 200 })
      ~topology:(Cgraph.Topology.Clique 8) ~crashes:2 () in
  check bool "2-bounded after convergence at scale" true
    (Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence <= 2);
  check bool "invariants" true (r.invariant_error = None)

let suite =
  [
    Alcotest.test_case "soak: gnp-32 + heartbeat, 150k ticks" `Slow soak_song_pike_heartbeat;
    Alcotest.test_case "soak: torus-5x5 + heartbeat" `Slow soak_song_pike_torus;
    Alcotest.test_case "soak: quiescence for every victim" `Slow soak_quiescence_everywhere;
    Alcotest.test_case "soak: fairness bound at scale" `Slow soak_fairness_holds_at_scale;
  ]
