(* The paper's lemmas as dedicated, adversarially exercised test cases.

   The executable versions of Lemmas 1.1, 1.2 and 2.2 live inside
   Dining.Algorithm (raised from message handlers and from
   check_invariants); these tests arrange the conditions under which each
   lemma is under the most stress and assert that no violation is ever
   reported. The model checker covers the same lemmas exhaustively on
   small instances (test_mcheck); here the simulator covers large random
   instances. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let run_checked ?(topology = Cgraph.Topology.Clique 6) ?(seed = 1L) ?(horizon = 30_000)
    ?(delay = Net.Delay.Uniform (1, 40)) ?(crashes = Harness.Scenario.No_crashes)
    ?(fp_per_edge = 3) () =
  Harness.Run.run
    {
      Harness.Scenario.default with
      name = "lemmas";
      topology;
      seed;
      delay;
      detector =
        Harness.Scenario.Oracle
          { detection_delay = 40; fp_per_edge; fp_window = horizon / 2; fp_max_len = 300 };
      workload = Harness.Scenario.contended_workload;
      crashes;
      horizon;
      (* Check the executable lemmas at (nearly) every instant. *)
      check_every = Some 3;
    }

(* Lemma 1.1: a fork-request recipient holds the requested fork, and a
   fork recipient does not hold the token. Stressed by huge delay jitter
   (up to 40x) so that reorderings across different channels are extreme;
   only per-channel FIFO protects the lemma, exactly as in the paper's
   proof. A violation would abort delivery with Invariant_violation. *)
let lemma_1_1_under_jitter () =
  let r = run_checked ~delay:(Net.Delay.Uniform (1, 40)) () in
  check bool "no violation despite 40x delay jitter" true (r.invariant_error = None);
  check bool "the run was heavy" true (r.total_eats > 500)

(* Lemma 1.2: fork uniqueness — extended with crash absorption so the
   conservation law stays checkable when holders die. Stressed by
   crashing half the clique, some mid-eating. *)
let lemma_1_2_with_crashes () =
  let r =
    run_checked
      ~crashes:(Harness.Scenario.Random_crashes { count = 3; from_t = 1_000; to_t = 15_000 })
      ~seed:7L ()
  in
  check bool "fork/token conservation held at every check" true (r.invariant_error = None)

(* Lemma 2.2: at most one pending ping per ordered pair. Its visible
   consequence (with the paper's Section 7 argument) is that at most two
   ping and two ack messages can ever be in transit on an edge. *)
let lemma_2_2_channel_consequence () =
  let r = run_checked ~seed:3L () in
  let kind_wm kind =
    Option.value
      (List.assoc_opt kind (Net.Link_stats.max_edge_watermark_by_kind r.link_stats))
      ~default:0
  in
  check bool "ping watermark <= 2" true (kind_wm "ping" <= 2);
  check bool "ack watermark <= 2" true (kind_wm "ack" <= 2);
  check bool "fork watermark <= 1" true (kind_wm "fork" <= 1);
  check bool "request watermark <= 1" true (kind_wm "request" <= 1);
  check bool "pipeline invariant held" true (r.invariant_error = None)

(* All lemmas together, randomized: any topology, any seed, crashes and
   scripted oracle lies everywhere. ~40 full runs with near-continuous
   invariant checking. *)
let all_lemmas_random =
  QCheck.Test.make ~name:"lemmas: executable invariants on random runs" ~count:25
    QCheck.(triple (int_bound 100_000) (int_bound 4) (int_range 0 3))
    (fun (seed, topo_idx, crash_count) ->
      let topology =
        match topo_idx with
        | 0 -> Cgraph.Topology.Ring 9
        | 1 -> Cgraph.Topology.Clique 5
        | 2 -> Cgraph.Topology.Wheel 7
        | 3 -> Cgraph.Topology.Bipartite (3, 4)
        | _ -> Cgraph.Topology.Random_gnp (12, 0.3, Int64.of_int (seed + 17))
      in
      let r =
        run_checked ~topology
          ~seed:(Int64.of_int seed)
          ~horizon:12_000
          ~crashes:
            (if crash_count = 0 then Harness.Scenario.No_crashes
             else
               Harness.Scenario.Random_crashes
                 { count = crash_count; from_t = 500; to_t = 6_000 })
          ()
      in
      r.invariant_error = None)

(* Theorem 1's mechanism, isolated: violations can only involve a pair in
   which at least one side currently suspects the other (suspicion is the
   only way to eat without the shared fork). *)
let violations_need_suspicion () =
  let r =
    run_checked ~seed:11L
      ~crashes:(Harness.Scenario.Crash_at [ (2, 9_000) ])
      ~fp_per_edge:4 ()
  in
  check bool "run produced violations to analyse" true (Monitor.Exclusion.count r.exclusion > 0);
  List.iter
    (fun (v : Monitor.Exclusion.violation) ->
      check bool "violation precedes convergence" true (v.time < r.convergence))
    (Monitor.Exclusion.violations r.exclusion);
  check int "and none after" 0 (Monitor.Exclusion.count_after r.exclusion r.convergence)

let suite =
  [
    Alcotest.test_case "Lemma 1.1 under extreme delay jitter" `Quick lemma_1_1_under_jitter;
    Alcotest.test_case "Lemma 1.2 with crash absorption" `Quick lemma_1_2_with_crashes;
    Alcotest.test_case "Lemma 2.2 channel consequences" `Quick lemma_2_2_channel_consequence;
    QCheck_alcotest.to_alcotest all_lemmas_random;
    Alcotest.test_case "Theorem 1 mechanism: mistakes end at convergence" `Quick
      violations_need_suspicion;
  ]
