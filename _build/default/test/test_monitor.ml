(* Tests for the runtime monitors, driven through a scripted mock daemon
   so that transition timing is fully controlled. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type mock = {
  engine : Sim.Engine.t;
  faults : Net.Faults.t;
  graph : Cgraph.Graph.t;
  inst : Dining.Instance.t;
  fire : int -> Dining.Types.phase -> unit;
}

let mock ?(n = 3) ?(edges = [ (0, 1); (1, 2) ]) () =
  let engine = Sim.Engine.create () in
  let graph = Cgraph.Graph.of_edges ~n edges in
  let faults = Net.Faults.create engine ~n in
  let listeners = ref [] in
  let phases = Array.make n Dining.Types.Thinking in
  let inst =
    {
      Dining.Instance.name = "mock";
      become_hungry = (fun _ -> ());
      stop_eating = (fun _ -> ());
      phase = (fun pid -> phases.(pid));
      add_listener = (fun f -> listeners := !listeners @ [ f ]);
      check_invariants = (fun () -> ());
    }
  in
  let fire pid phase =
    phases.(pid) <- phase;
    List.iter (fun f -> f pid phase) !listeners
  in
  { engine; faults; graph; inst; fire }

(* Schedule a scripted transition at a virtual time. *)
let at m t pid phase = ignore (Sim.Engine.schedule m.engine ~at:t (fun () -> m.fire pid phase))

(* ----------------------------- Exclusion --------------------------- *)

let exclusion_detects_overlap () =
  let m = mock () in
  let ex = Monitor.Exclusion.attach m.engine m.graph m.faults m.inst in
  at m 10 0 Dining.Types.Eating;
  at m 20 1 Dining.Types.Eating;
  (* neighbors 0-1 overlap *)
  at m 30 0 Dining.Types.Thinking;
  at m 40 2 Dining.Types.Eating;
  (* 1 still eating and 1-2 are neighbors: second violation *)
  Sim.Engine.run_all m.engine;
  check int "two violations" 2 (Monitor.Exclusion.count ex);
  check bool "last at 40" true (Monitor.Exclusion.last_violation_time ex = Some 40);
  check int "after t=35" 1 (Monitor.Exclusion.count_after ex 35);
  match Monitor.Exclusion.violations ex with
  | [ v1; v2 ] ->
      check int "first eater" 1 v1.Monitor.Exclusion.eater;
      check int "first neighbor" 0 v1.Monitor.Exclusion.neighbor;
      check int "second eater" 2 v2.Monitor.Exclusion.eater
  | _ -> Alcotest.fail "expected 2 violations"

let exclusion_ignores_non_neighbors_and_crashed () =
  let m = mock () in
  let ex = Monitor.Exclusion.attach m.engine m.graph m.faults m.inst in
  (* 0 and 2 are not neighbors. *)
  at m 10 0 Dining.Types.Eating;
  at m 20 2 Dining.Types.Eating;
  (* A crashed eater does not count as a live violation partner. *)
  Net.Faults.schedule_crash m.faults ~pid:0 ~at:30;
  at m 40 1 Dining.Types.Eating;
  Sim.Engine.run_all m.engine;
  check int "no violations" 1 (Monitor.Exclusion.count ex);
  (* wait: 1 eats at 40 while 2 (live) is eating and 1-2 are neighbors *)
  check bool "only live pair recorded" true
    ((List.hd (Monitor.Exclusion.violations ex)).Monitor.Exclusion.neighbor = 2)

(* ----------------------------- Fairness ---------------------------- *)

let fairness_counts_consecutive () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let fair = Monitor.Fairness.attach m.engine m.graph m.faults m.inst in
  at m 10 0 Dining.Types.Hungry;
  (* 1 eats three times while 0 stays hungry *)
  at m 20 1 Dining.Types.Eating;
  at m 25 1 Dining.Types.Thinking;
  at m 30 1 Dining.Types.Eating;
  at m 35 1 Dining.Types.Thinking;
  at m 40 1 Dining.Types.Eating;
  at m 45 1 Dining.Types.Thinking;
  (* 0 finally eats: counter resets *)
  at m 50 0 Dining.Types.Eating;
  at m 55 0 Dining.Types.Thinking;
  at m 60 0 Dining.Types.Hungry;
  at m 70 1 Dining.Types.Eating;
  Sim.Engine.run_all m.engine;
  check int "max consecutive 3" 3 (Monitor.Fairness.max_consecutive fair);
  check int "after reset only 1" 1 (Monitor.Fairness.max_consecutive_for_sessions_from fair 60);
  check int "session boundary respected" 3
    (Monitor.Fairness.max_consecutive_for_sessions_from fair 10)

let fairness_windowed_series () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let fair = Monitor.Fairness.attach m.engine m.graph m.faults m.inst in
  at m 5 0 Dining.Types.Hungry;
  at m 10 1 Dining.Types.Eating;
  at m 15 1 Dining.Types.Thinking;
  at m 110 1 Dining.Types.Eating;
  Sim.Engine.run_all m.engine;
  let series = Monitor.Fairness.windowed_max fair ~window:100 ~horizon:200 in
  check bool "window 0 has count 1" true (List.nth series 0 = (0.0, 1.0));
  check bool "window 1 has count 2" true (List.nth series 1 = (100.0, 2.0))

let fairness_ignores_crashed_victims () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let fair = Monitor.Fairness.attach m.engine m.graph m.faults m.inst in
  at m 5 0 Dining.Types.Hungry;
  Net.Faults.schedule_crash m.faults ~pid:0 ~at:8;
  at m 10 1 Dining.Types.Eating;
  Sim.Engine.run_all m.engine;
  check int "no overtakes of crashed victims" 0 (Monitor.Fairness.max_consecutive fair)

(* ----------------------------- Response ---------------------------- *)

let response_latency () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let resp = Monitor.Response.attach m.engine m.faults m.inst in
  at m 10 0 Dining.Types.Hungry;
  at m 35 0 Dining.Types.Eating;
  at m 40 0 Dining.Types.Thinking;
  at m 50 1 Dining.Types.Hungry;
  (* 1 never served: open session *)
  Sim.Engine.run_all m.engine;
  check (Alcotest.list int) "one completed session of 25" [ 25 ] (Monitor.Response.durations resp);
  check int "served count" 1 (Monitor.Response.served_count resp);
  check bool "open session for 1" true (Monitor.Response.open_sessions resp = [ (1, 50) ])

let response_starvation_threshold () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let resp = Monitor.Response.attach m.engine m.faults m.inst in
  at m 10 0 Dining.Types.Hungry;
  at m 10 1 Dining.Types.Hungry;
  at m 5_000 1 Dining.Types.Eating;
  ignore (Sim.Engine.schedule m.engine ~at:20_000 (fun () -> ()));
  Sim.Engine.run_all m.engine;
  check (Alcotest.list int) "0 starved at patience 10k" [ 0 ] (Monitor.Response.starved resp ~older_than:10_000);
  check (Alcotest.list int) "nobody starved at patience 30k" []
    (Monitor.Response.starved resp ~older_than:30_000)

let response_crashed_not_starved () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let resp = Monitor.Response.attach m.engine m.faults m.inst in
  at m 10 0 Dining.Types.Hungry;
  Net.Faults.schedule_crash m.faults ~pid:0 ~at:100;
  ignore (Sim.Engine.schedule m.engine ~at:20_000 (fun () -> ()));
  Sim.Engine.run_all m.engine;
  check (Alcotest.list int) "crashed hungry process is not a starvation" []
    (Monitor.Response.starved resp ~older_than:1_000)

let response_series_buckets () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let resp = Monitor.Response.attach m.engine m.faults m.inst in
  at m 0 0 Dining.Types.Hungry;
  at m 50 0 Dining.Types.Eating;
  at m 60 0 Dining.Types.Thinking;
  at m 100 0 Dining.Types.Hungry;
  at m 130 0 Dining.Types.Eating;
  Sim.Engine.run_all m.engine;
  let series = Monitor.Response.response_series resp ~bucket:100 in
  check bool "bucket 0 mean 50" true (List.mem (0.0, 50.0) series);
  check bool "bucket 100 mean 30" true (List.mem (100.0, 30.0) series)

(* ------------------------------ Phases ----------------------------- *)

let phases_split () =
  let m = mock ~n:2 ~edges:[ (0, 1) ] () in
  let trace = Sim.Trace.create () in
  let ph = Monitor.Phases.attach m.engine trace m.inst in
  let enter pid t =
    ignore
      (Sim.Engine.schedule m.engine ~at:t (fun () ->
           Sim.Trace.emit trace ~time:t ~subject:pid ~tag:"enter_doorway" ""))
  in
  at m 10 0 Dining.Types.Hungry;
  enter 0 40;
  at m 55 0 Dining.Types.Eating;
  at m 60 0 Dining.Types.Thinking;
  (* A second session that never completes. *)
  at m 100 0 Dining.Types.Hungry;
  Sim.Engine.run_all m.engine;
  check (Alcotest.list int) "doorway wait" [ 30 ] (Monitor.Phases.doorway_waits ph);
  check (Alcotest.list int) "fork wait" [ 15 ] (Monitor.Phases.fork_waits ph);
  check int "open session not sampled" 1 (Monitor.Phases.doorway_summary ph).count

let phases_real_algorithm () =
  (* End to end against the real core on a pair: both splits sum to the
     full response latency. *)
  let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:2 in
  let trace = Sim.Trace.create () in
  let algo =
    Dining.Algorithm.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 5)
      ~rng:(Sim.Rng.create 1L) ~detector:(Fd.Never.create ()) ~trace ()
  in
  let inst = Dining.Algorithm.instance algo in
  let resp = Monitor.Response.attach engine faults inst in
  let ph = Monitor.Phases.attach engine trace inst in
  inst.become_hungry 0;
  Sim.Engine.run engine ~until:200;
  match
    (Monitor.Phases.doorway_waits ph, Monitor.Phases.fork_waits ph, Monitor.Response.durations resp)
  with
  | [ d ], [ f ], [ total ] ->
      check int "splits sum to the response" total (d + f);
      check bool "doorway took the ping round trip" true (d >= 10)
  | _ -> Alcotest.fail "expected exactly one completed session"

let suite =
  [
    Alcotest.test_case "exclusion: detects overlapping neighbors" `Quick exclusion_detects_overlap;
    Alcotest.test_case "phases: splits at the doorway event" `Quick phases_split;
    Alcotest.test_case "phases: real algorithm splits sum" `Quick phases_real_algorithm;
    Alcotest.test_case "exclusion: non-neighbors and crashed ignored" `Quick
      exclusion_ignores_non_neighbors_and_crashed;
    Alcotest.test_case "fairness: consecutive counting and reset" `Quick fairness_counts_consecutive;
    Alcotest.test_case "fairness: windowed maxima" `Quick fairness_windowed_series;
    Alcotest.test_case "fairness: crashed victims ignored" `Quick fairness_ignores_crashed_victims;
    Alcotest.test_case "response: latency and open sessions" `Quick response_latency;
    Alcotest.test_case "response: starvation threshold" `Quick response_starvation_threshold;
    Alcotest.test_case "response: crashed processes not starved" `Quick response_crashed_not_starved;
    Alcotest.test_case "response: bucketed series" `Quick response_series_buckets;
  ]
