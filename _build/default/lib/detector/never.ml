let create () =
  {
    Detector.name = "never";
    suspects = (fun ~observer:_ ~target:_ -> false);
    subscribe = (fun _ -> ());
  }
