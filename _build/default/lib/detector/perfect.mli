(** A (perpetually) perfect detector: suspects a process exactly from the
    instant it crashes, with zero detection latency and no false
    positives.

    Strictly stronger than the paper's ◇P₁; used as the upper-bound
    comparator (with it, Algorithm 1 satisfies perpetual weak exclusion —
    no scheduling mistakes at all). *)

val create : Sim.Engine.t -> Net.Faults.t -> Cgraph.Graph.t -> Detector.t
