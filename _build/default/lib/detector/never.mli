(** The empty detector: never suspects anyone.

    Instantiating Algorithm 1 with this detector erases every oracle guard
    and yields the original asynchronous doorway algorithm of Choy–Singh —
    safe, but not wait-free: a crashed neighbor blocks its hungry neighbors
    forever. Used as the crash-intolerant baseline. *)

val create : unit -> Detector.t
