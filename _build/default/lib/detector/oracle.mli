(** Scripted ◇P₁: an eventually perfect, locally scope-restricted detector
    with precisely controllable behaviour.

    - {b Local strong completeness}: a crashed process is suspected by each
      correct neighbor from [crash_time + detection_delay] on, permanently.
    - {b Local eventual strong accuracy}: false positives occur exactly in
      the caller-supplied (or randomly generated) windows, each of which
      ends at a finite time; afterwards no correct neighbor is suspected.

    Because the script is known, the run's detector {!convergence_time} is
    known exactly — tests and experiments use it to split a run into the
    "mistakes possible" prefix and the "converged" suffix that the paper's
    eventual properties quantify over. *)

type fp = {
  observer : int;
  target : int;
  from_t : Sim.Time.t;
  till_t : Sim.Time.t;  (** exclusive end of the suspicion window *)
}
(** One scripted false-positive window: [observer] wrongly suspects its
    (live) neighbor [target] during [\[from_t, till_t)]. *)

type t

val create :
  Sim.Engine.t ->
  Net.Faults.t ->
  Cgraph.Graph.t ->
  ?detection_delay:int ->
  ?false_positives:fp list ->
  unit ->
  t * Detector.t
(** [detection_delay] (default 50) is the lag between a crash and its
    permanent suspicion by every correct neighbor. Non-neighbor or
    out-of-range false-positive entries are rejected. Must be created at
    virtual time 0, before any crash fires. *)

val convergence_time : t -> Sim.Time.t
(** First time from which the detector's output is settled for the
    currently scheduled crash plan: every false-positive window has closed
    and every scheduled crash has been detected. (If crashes are scheduled
    after this call, call again.) *)

val random_false_positives :
  Sim.Rng.t ->
  Cgraph.Graph.t ->
  before:Sim.Time.t ->
  per_edge:int ->
  max_len:int ->
  fp list
(** Adversarial helper: for each directed neighbor pair, [per_edge]
    windows of length [1 .. max_len] starting uniformly in
    [\[0, before)] and clipped to end by [before]. *)
