type t = {
  name : string;
  suspects : observer:int -> target:int -> bool;
  subscribe : (int -> unit) -> unit;
}

let notify listeners observer = List.iter (fun f -> f observer) !listeners
