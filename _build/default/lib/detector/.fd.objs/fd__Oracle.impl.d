lib/detector/oracle.ml: Array Cgraph Detector Hashtbl List Net Option Sim
