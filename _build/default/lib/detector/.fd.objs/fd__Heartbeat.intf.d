lib/detector/heartbeat.mli: Cgraph Detector Net Sim
