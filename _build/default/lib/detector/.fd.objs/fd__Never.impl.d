lib/detector/never.ml: Detector
