lib/detector/detector.ml: List
