lib/detector/perfect.ml: Array Cgraph Detector Net
