lib/detector/perfect.mli: Cgraph Detector Net Sim
