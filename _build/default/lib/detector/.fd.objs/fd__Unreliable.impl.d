lib/detector/unreliable.ml: Array Cgraph Detector Hashtbl List Net Option Sim
