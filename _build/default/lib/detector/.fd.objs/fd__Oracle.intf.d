lib/detector/oracle.mli: Cgraph Detector Net Sim
