lib/detector/never.mli: Detector
