lib/detector/detector.mli:
