lib/detector/heartbeat.ml: Array Cgraph Detector Hashtbl Net Sim
