lib/detector/unreliable.mli: Cgraph Detector Net Sim
