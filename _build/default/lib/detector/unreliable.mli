(** A deliberately broken detector: complete but {e never} accurate.

    Suspects crashed neighbors permanently (local strong completeness,
    with a configurable detection delay), but additionally keeps emitting
    false suspicions of live neighbors forever — every [period] ticks each
    directed pair is wrongly suspected for [duration] ticks (with a
    per-pair phase jitter).

    This violates exactly one half of ◇P₁ — local {e eventual strong
    accuracy} — and is used by the necessity experiment (E9): with it,
    Algorithm 1 stays wait-free but its scheduling mistakes never stop,
    i.e. ◇WX fails. Together with {!Never} (which violates only
    completeness and loses wait-freedom), this shows each property of ◇P₁
    is needed — the empirical face of the weakest-failure-detector result
    the paper cites ([21]). *)

val create :
  Sim.Engine.t ->
  Net.Faults.t ->
  Cgraph.Graph.t ->
  Sim.Rng.t ->
  ?detection_delay:int ->
  ?period:int ->
  ?duration:int ->
  horizon:Sim.Time.t ->
  unit ->
  Detector.t
(** Defaults: [detection_delay = 50], [period = 2000], [duration = 150].
    False-suspicion events are scheduled up front until [horizon]. *)
