(** Self-stabilizing graph coloring under a distributed daemon.

    State: a color in [\[0, palette)]. A process is enabled iff some
    neighbor currently has the same color; its step recolors it with the
    smallest color unused in its neighborhood. Under local mutual
    exclusion each executed step removes at least one conflict edge and
    creates none, so the protocol converges from any configuration; it is
    also crash-tolerant, because a live process adjacent to a crashed
    (frozen) conflicting process simply moves away from the frozen color.
    This is the protocol used by experiment E7 to show that a wait-free
    daemon rescues stabilization under crash faults. *)

val make : graph:Cgraph.Graph.t -> Protocol.t
(** Palette size is [max_degree + 1] (always sufficient). Error measure:
    the number of monochromatic edges with at least one live endpoint. *)
