let target (v : Protocol.view) ~cap =
  if v.self = 0 then 0
  else begin
    let best = Array.fold_left (fun acc (_, s) -> min acc s) cap v.neighbors in
    min cap (best + 1)
  end

let make ~graph =
  let cap = Cgraph.Graph.n graph in
  let clamp s = if s < 0 then 0 else if s > cap then cap else s in
  let enabled (v : Protocol.view) = clamp v.state <> target v ~cap in
  {
    Protocol.name = "bfs-tree";
    init = (fun rng _pid -> Sim.Rng.int rng (cap + 1));
    corrupt = (fun rng _pid -> Sim.Rng.int rng (cap + 1));
    enabled;
    step = (fun v -> target v ~cap);
    error =
      (fun g states alive ->
        let bad = ref 0 in
        for i = 0 to Cgraph.Graph.n g - 1 do
          if alive i then begin
            let v =
              {
                Protocol.self = i;
                state = states.(i);
                neighbors =
                  Array.map (fun j -> (j, states.(j))) (Cgraph.Graph.neighbors g i);
              }
            in
            if enabled v then incr bad
          end
        done;
        !bad);
  }

let distances g = Cgraph.Graph.distances_from g 0
