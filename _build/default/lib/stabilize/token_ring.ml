let make ~n ?k () =
  let k = Option.value k ~default:(n + 1) in
  if n < 3 then invalid_arg "Token_ring.make: n < 3";
  if k < n then invalid_arg "Token_ring.make: need k >= n";
  let pred pid = (pid + n - 1) mod n in
  let pred_state (v : Protocol.view) =
    let p = pred v.self in
    match Array.find_opt (fun (pid, _) -> pid = p) v.neighbors with
    | Some (_, s) -> s
    | None -> invalid_arg "Token_ring: predecessor not in view (non-ring graph?)"
  in
  let enabled v =
    if v.Protocol.self = 0 then v.state = pred_state v else v.state <> pred_state v
  in
  let enabled_flat states pid =
    if pid = 0 then states.(0) = states.(n - 1) else states.(pid) <> states.(pred pid)
  in
  {
    Protocol.name = "token-ring";
    init = (fun rng _pid -> Sim.Rng.int rng k);
    corrupt = (fun rng _pid -> Sim.Rng.int rng k);
    enabled;
    step = (fun v -> if v.self = 0 then (v.state + 1) mod k else pred_state v);
    error =
      (fun _g states _alive ->
        let tokens = ref 0 in
        for pid = 0 to n - 1 do
          if enabled_flat states pid then incr tokens
        done;
        abs (!tokens - 1));
  }
