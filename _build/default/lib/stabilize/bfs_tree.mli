(** Self-stabilizing BFS spanning tree (Dolev, Israeli & Moran style).

    State: a distance estimate in [\[0, n\]]. The root (pid 0) is enabled
    when its estimate is non-zero and resets it to 0; every other process
    is enabled when its estimate differs from
    [min(n, 1 + min over neighbor estimates)] and recomputes it. From any
    configuration the estimates contract to the unique fixed point — the
    true BFS distances when all processes are live; with crashed (frozen)
    processes the live part still reaches a fixed point around the frozen
    boundary values. A BFS parent is recoverable as any neighbor whose
    estimate is one less.

    The protocol is {e silent}: legitimacy is "no live process enabled",
    so the error measure is the number of live enabled processes. *)

val make : graph:Cgraph.Graph.t -> Protocol.t

val distances : Cgraph.Graph.t -> int array
(** True BFS distances from pid 0 (the crash-free fixed point), with
    unreachable vertices at [n]. For tests. *)
