let make ~graph =
  let palette = Cgraph.Graph.max_degree graph + 1 in
  let conflict (v : Protocol.view) =
    Array.exists (fun (_, s) -> s = v.state) v.neighbors
  in
  let smallest_free (v : Protocol.view) =
    let used = Array.make palette false in
    Array.iter (fun (_, s) -> if s >= 0 && s < palette then used.(s) <- true) v.neighbors;
    let rec find c = if c >= palette || not used.(c) then c else find (c + 1) in
    (* A free color always exists because palette > degree. *)
    min (find 0) (palette - 1)
  in
  {
    Protocol.name = "coloring";
    init = (fun rng _pid -> Sim.Rng.int rng palette);
    corrupt = (fun rng _pid -> Sim.Rng.int rng palette);
    enabled = conflict;
    step = smallest_free;
    error =
      (fun g states alive ->
        let bad = ref 0 in
        Cgraph.Graph.iter_edges g (fun i j ->
            if states.(i) = states.(j) && (alive i || alive j) then incr bad);
        !bad);
  }
