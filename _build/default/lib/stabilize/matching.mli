(** Self-stabilizing maximal matching (Hsu & Huang 1992 style).

    State encodes a pointer: [0] = unmatched (null), [j + 1] = pointing at
    neighbor [j]. Guarded commands for process [i] with pointer [p_i]:

    - {e accept}: [p_i = null] and some neighbor [j] points at [i] — set
      [p_i := j];
    - {e propose}: [p_i = null], nobody points at [i], and some neighbor
      [j] is null — set [p_i := j] (lowest such [j], deterministically);
    - {e back off}: [p_i = j] but [j] points neither at [i] nor null — set
      [p_i := null].

    Under local mutual exclusion this converges to a maximal matching:
    mutually pointing pairs are matched and every unmatched process has no
    unmatched neighbor. *)

val make : unit -> Protocol.t
(** Error measure: the number of live processes that violate the maximal
    matching predicate (pointing at a non-reciprocating matched process,
    pointing at a non-neighbor, or unmatched while having an unmatched
    live neighbor). *)
