(** Dijkstra's K-state self-stabilizing token ring (1974).

    For a ring conflict graph on [n] processes, state is a counter in
    [\[0, k)] with [k >= n]. The root (pid 0) is enabled when its counter
    equals its predecessor's (pid [n-1]) and then increments modulo [k];
    every other process is enabled when its counter differs from its
    predecessor's and then copies it. A process is said to hold the token
    when it is enabled; from any configuration the ring converges to
    exactly one token circulating forever. Crash-{e in}tolerant by nature
    (a crashed process breaks the ring), so it is used in the crash-free
    stabilization experiments, where it exercises the daemon's fairness:
    the token only moves if every process keeps getting scheduled. *)

val make : n:int -> ?k:int -> unit -> Protocol.t
(** [k] defaults to [n + 1]. Raises for [n < 3] or [k < n]. Error measure:
    (number of enabled processes) - 1. *)
