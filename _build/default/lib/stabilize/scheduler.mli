(** Executes a self-stabilizing protocol on top of a dining daemon.

    The daemon adapter realises the paper's motivating application:

    - a process becomes hungry whenever it has an enabled guarded command;
    - when scheduled to eat, it snapshots its neighborhood, and at the end
      of its critical section writes the command's result and exits;
    - every state write re-evaluates the enabledness of the writer and its
      neighbors (shared-memory semantics).

    The snapshot-at-entry / write-at-exit model makes the daemon's
    scheduling mistakes observable: if two neighbors eat concurrently
    (possible only before ◇P₁ converges, by Theorem 1), both act on stale
    reads — exactly the "sharing violation that precipitates at worst a
    transient fault" the paper tolerates, because finitely many such
    mistakes cannot prevent convergence once the daemon is wait-free.

    Transient faults can be injected on a schedule; each corrupts a set of
    random processes' states. *)

type t

type outcome = {
  converged_at : Sim.Time.t option;
      (** Start of the final suffix in which the configuration remained
          legitimate through the horizon; [None] if not converged. *)
  final_error : int;
  steps_executed : int;  (** guarded commands executed (eat sessions that wrote) *)
  error_series : (float * float) list;
      (** (time, error measure) sampled at every change — figure F4. *)
  overlap_races : int;
      (** Critical sections that overlapped a neighbor's (scheduling
          mistakes made visible to the protocol layer). *)
}

val attach :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  rng:Sim.Rng.t ->
  protocol:Protocol.t ->
  ?step_duration:int * int ->
  ?reaction_delay:int * int ->
  Dining.Instance.t ->
  t
(** Initialises states with [protocol.init], subscribes to the instance
    and schedules the initial hungry transitions. [step_duration] is the
    critical-section length range (default [(5, 20)]); [reaction_delay]
    the think-to-hungry latency range once enabled (default [(1, 10)]). *)

val inject_fault : t -> victims:int -> unit
(** Corrupt the states of [victims] random live processes now. *)

val schedule_faults : t -> at:Sim.Time.t list -> victims:int -> unit
(** Inject a [victims]-sized transient fault at each listed time. *)

val states : t -> int array
(** Current configuration (aliased; do not mutate). *)

val error_now : t -> int

val outcome : t -> outcome
(** Compute the outcome once the engine has finished running; [converged_at]
    means "remained legitimate from that time through the end of the run". *)
