type view = { self : int; state : int; neighbors : (int * int) array }

type t = {
  name : string;
  init : Sim.Rng.t -> int -> int;
  corrupt : Sim.Rng.t -> int -> int;
  enabled : view -> bool;
  step : view -> int;
  error : Cgraph.Graph.t -> int array -> (int -> bool) -> int;
}

let legitimate t graph states alive = t.error graph states alive = 0
