(** Guarded-command interface for self-stabilizing protocols.

    A protocol is the program the distributed daemon schedules: per the
    paper's Section 1–2, each diner corresponds to a protocol process, and
    being scheduled to eat means executing one enabled guarded command
    under local mutual exclusion. States are integers; each concrete
    protocol documents its encoding. *)

type view = {
  self : int;            (** the process's pid *)
  state : int;           (** its current local state *)
  neighbors : (int * int) array;  (** (pid, state) of each conflict-graph neighbor *)
}

type t = {
  name : string;
  init : Sim.Rng.t -> int -> int;
      (** [init rng pid]: an {e arbitrary} initial state — self-stabilizing
          protocols must converge from anywhere, so this is adversarial
          (random), not a clean start. *)
  corrupt : Sim.Rng.t -> int -> int;
      (** A transient-fault value for the given pid. *)
  enabled : view -> bool;
      (** Whether the process has an enabled guarded command. *)
  step : view -> int;
      (** The new local state produced by executing the enabled command;
          only called when [enabled] holds on the same view. *)
  error : Cgraph.Graph.t -> int array -> (int -> bool) -> int;
      (** [error graph states alive]: how far the configuration is from a
          legitimate one, restricted to constraints involving at least one
          live process. 0 iff legitimate. *)
}

val legitimate : t -> Cgraph.Graph.t -> int array -> (int -> bool) -> bool
(** [error ... = 0]. *)
