let null = 0
let points_at state = state - 1
let pointer_to pid = pid + 1

let make () =
  let neighbor_state (v : Protocol.view) j =
    match Array.find_opt (fun (pid, _) -> pid = j) v.neighbors with
    | Some (_, s) -> Some s
    | None -> None
  in
  let accept_candidate (v : Protocol.view) =
    (* Lowest-pid neighbor pointing at us, for determinism. *)
    Array.to_list v.neighbors
    |> List.filter (fun (_, s) -> s = pointer_to v.self)
    |> List.map fst |> List.sort compare
    |> function
    | j :: _ -> Some j
    | [] -> None
  in
  let propose_candidate (v : Protocol.view) =
    Array.to_list v.neighbors
    |> List.filter (fun (_, s) -> s = null)
    |> List.map fst |> List.sort compare
    |> function
    | j :: _ -> Some j
    | [] -> None
  in
  let must_back_off (v : Protocol.view) =
    v.state <> null
    &&
    let j = points_at v.state in
    match neighbor_state v j with
    | None -> true (* dangling pointer from a transient fault *)
    | Some sj -> sj <> null && sj <> pointer_to v.self
  in
  let enabled v =
    if v.Protocol.state = null then
      accept_candidate v <> None || propose_candidate v <> None
    else must_back_off v
  in
  let step v =
    if v.Protocol.state = null then
      match accept_candidate v with
      | Some j -> pointer_to j
      | None -> (
          match propose_candidate v with
          | Some j -> pointer_to j
          | None -> v.state)
    else null (* back off *)
  in
  {
    Protocol.name = "matching";
    init = (fun rng pid -> if Sim.Rng.bool rng then null else pointer_to (Sim.Rng.int rng (pid + 2)));
    corrupt = (fun rng pid -> if Sim.Rng.bool rng then null else pointer_to (Sim.Rng.int rng (pid + 2)));
    enabled;
    step;
    error =
      (fun g states alive ->
        let n = Cgraph.Graph.n g in
        let bad = ref 0 in
        for i = 0 to n - 1 do
          if alive i then begin
            let s = states.(i) in
            if s <> null then begin
              let j = points_at s in
              if j < 0 || j >= n || not (Cgraph.Graph.is_edge g i j) then incr bad
              else begin
                let sj = states.(j) in
                (* A live process pointing at a process that points elsewhere
                   (not at i, not null) is in violation. *)
                if sj <> pointer_to i && sj <> null && alive j then incr bad;
                if sj <> pointer_to i && not (alive j) then
                  (* pointing at a frozen crashed process that will never
                     reciprocate *)
                  incr bad
              end
            end
            else begin
              (* Unmatched: must have no unmatched live neighbor. *)
              let has_free_live_neighbor =
                Array.exists
                  (fun j -> alive j && states.(j) = null)
                  (Cgraph.Graph.neighbors g i)
              in
              if has_free_live_neighbor then incr bad
            end
          end
        done;
        !bad);
  }
