lib/stabilize/bfs_tree.ml: Array Cgraph Protocol Sim
