lib/stabilize/matching.ml: Array Cgraph List Protocol Sim
