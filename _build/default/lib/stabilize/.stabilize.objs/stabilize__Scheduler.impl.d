lib/stabilize/scheduler.ml: Array Cgraph Dining Fun List Net Protocol Sim
