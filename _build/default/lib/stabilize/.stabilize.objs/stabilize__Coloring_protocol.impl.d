lib/stabilize/coloring_protocol.ml: Array Cgraph Protocol Sim
