lib/stabilize/token_ring.ml: Array Option Protocol Sim
