lib/stabilize/coloring_protocol.mli: Cgraph Protocol
