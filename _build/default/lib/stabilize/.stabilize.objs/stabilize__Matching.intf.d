lib/stabilize/matching.mli: Protocol
