lib/stabilize/protocol.ml: Cgraph Sim
