lib/stabilize/token_ring.mli: Protocol
