lib/stabilize/protocol.mli: Cgraph Sim
