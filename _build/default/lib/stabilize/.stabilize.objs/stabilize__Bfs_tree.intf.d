lib/stabilize/bfs_tree.mli: Cgraph Protocol
