lib/stabilize/scheduler.mli: Cgraph Dining Net Protocol Sim
