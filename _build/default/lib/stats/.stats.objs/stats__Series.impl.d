lib/stats/series.ml: Array Buffer List Printf String
