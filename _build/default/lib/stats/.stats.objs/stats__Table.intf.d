lib/stats/table.mli:
