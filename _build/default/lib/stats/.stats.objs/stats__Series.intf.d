lib/stats/series.mli:
