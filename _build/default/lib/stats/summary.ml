type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = min (int_of_float rank) (n - 2) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

let of_floats samples =
  match samples with
  | [] -> empty
  | _ ->
      let arr = Array.of_list samples in
      Array.sort compare arr;
      let n = Array.length arr in
      let sum = Array.fold_left ( +. ) 0. arr in
      let mean = sum /. float_of_int n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. arr
        /. float_of_int n
      in
      {
        count = n;
        mean;
        stddev = sqrt var;
        min = arr.(0);
        max = arr.(n - 1);
        p50 = percentile arr 0.5;
        p95 = percentile arr 0.95;
        p99 = percentile arr 0.99;
      }

let of_ints samples = of_floats (List.map float_of_int samples)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" t.count t.mean t.p50
    t.p95 t.p99 t.max
