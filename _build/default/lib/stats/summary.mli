(** Descriptive statistics over samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val empty : t
(** All-zero summary for an empty sample set. *)

val of_floats : float list -> t
val of_ints : int list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 1\]], by linear interpolation
    between closest ranks. The array must be sorted ascending and
    non-empty. *)

val pp : Format.formatter -> t -> unit
