lib/mcheck/model.ml: Array Buffer Cgraph Format List Marshal Printf
