lib/mcheck/explore.ml: Array Format Hashtbl List Model Printf Queue Sim
