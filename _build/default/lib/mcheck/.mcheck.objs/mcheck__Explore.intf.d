lib/mcheck/explore.mli: Format Model
