lib/mcheck/model.mli: Cgraph
