(** Pure-functional explicit-state model of Algorithm 1.

    This is a second, independent encoding of the paper's pseudocode —
    immutable states, explicit per-channel FIFO queues, and one transition
    per guarded command — used to verify the algorithm's proven lemmas
    exhaustively on small instances (the simulator samples schedules; the
    model checker enumerates them).

    Sources of nondeterminism, each budgeted to keep the state space
    finite:
    - processes become hungry at most [sessions] times each;
    - at most [crash_budget] processes crash, at any point;
    - the ◇P₁ oracle makes at most [fp_budget] false-suspicion output
      changes (each set/clear of a live neighbor's suspicion consumes
      one); suspicion of a crashed neighbor can always be switched on
      (completeness) and never off again;
    - message delivery and every internal action interleave arbitrarily.

    With [fp_budget = 0] the detector is perpetually accurate, so the
    checker additionally asserts weak exclusion (no two live neighbors
    simultaneously eating — perpetual, per the paper's Theorem 1 argument
    specialised to a converged oracle). Structural lemmas (fork/token
    conservation, Lemma 1.1, Lemma 2.2, the 4-messages-per-edge bound) are
    asserted in {e every} mode. *)

type config = {
  graph : Cgraph.Graph.t;
  colors : int array;
  sessions : int;       (** hungry sessions per process *)
  crash_budget : int;
  fp_budget : int;
}

type state

val initial : config -> state

exception Model_violation of string
(** Raised when a delivery handler itself detects a violated lemma (a
    fork request arriving at a non-holder, a duplicated fork). *)

val successors : config -> state -> (string * state) list
(** All one-step successor states with human-readable transition labels.
    May raise {!Model_violation}; state-level invariants are found by
    {!check}. *)

val check : config -> state -> string option
(** First violated invariant of the state, if any. *)

val key : state -> string
(** Canonical serialisation for visited-set hashing. *)

val hungry_live_process : config -> state -> int option
(** Some live process currently hungry, if any (deadlock detection in
    terminal states). *)

val phase : state -> int -> [ `Thinking | `Hungry | `Eating ]
val inside : state -> int -> bool
val crashed : state -> int -> bool
(** Accessors for reachability predicates. *)

val describe : state -> string
(** Compact human-readable dump (for violation reports). *)
