(** Breadth-first exhaustive exploration of the {!Model} state space. *)

type result = {
  states : int;        (** distinct states visited *)
  transitions : int;   (** transitions expanded *)
  depth : int;         (** deepest level reached *)
  complete : bool;     (** the reachable space was exhausted within bounds *)
  violation : (string * string) option;
      (** (invariant message, state description), if any reachable state
          violates an invariant. A sound run of Algorithm 1 yields [None]. *)
  deadlocks : int;
      (** Terminal states (no outgoing transitions) in which some live
          process is still hungry — a stuck diner no event can ever wake.
          Wait-freedom predicts 0; a terminal state where everyone is
          thinking is just a finished run, not a deadlock. *)
}

val bfs : ?max_states:int -> ?max_depth:int -> Model.config -> result
(** Defaults: [max_states = 200_000], [max_depth = max_int]. Exploration
    stops early on the first violation. *)

val pp_result : Format.formatter -> result -> unit

val reach :
  ?max_states:int -> ?max_depth:int -> pred:(Model.state -> bool) -> Model.config -> int option
(** BFS until a state satisfying [pred] is found; returns its depth, or
    [None] if the (possibly truncated) reachable space contains no such
    state. Used for liveness sanity — e.g. "process 0 can reach eating". *)

type progress_result = {
  reachable : int;       (** states in the explored graph *)
  hungry_states : int;   (** states where the probed process is hungry and live *)
  stuck_states : int;    (** hungry-live states with NO continuation in which the
                             process ever eats — a liveness bug; expect 0 *)
  progress_complete : bool; (** the graph was fully explored within the cap *)
}

val progress : ?max_states:int -> pid:int -> Model.config -> progress_result
(** Theorem 2 in possibility form, checked exhaustively: builds the full
    reachable state graph and verifies (by backward reachability from the
    process's eating states) that from {e every} reachable state in which
    [pid] is hungry and live, some execution continues to [pid] eating.
    Adversarial crashes of other processes and oracle lies are part of the
    graph; paths that crash [pid] itself do not count as progress. *)

type walk_result = {
  walks_done : int;
  steps_taken : int;   (** transitions executed across all walks *)
  walk_violation : (string * string) option;
}

val random_walk :
  ?walks:int -> ?steps:int -> seed:int64 -> Model.config -> walk_result
(** Monte-Carlo exploration for instances too large for exhaustive BFS:
    [walks] (default 64) independent uniformly random paths of up to
    [steps] (default 400) transitions each, checking every visited state.
    Sound for bug-finding (any reported violation is real), not complete. *)
