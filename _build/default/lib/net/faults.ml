type t = {
  engine : Sim.Engine.t;
  crash_at : Sim.Time.t array;
  mutable listeners : (int -> unit) list;
}

let create engine ~n =
  if n <= 0 then invalid_arg "Faults.create: n must be positive";
  { engine; crash_at = Array.make n Sim.Time.infinity; listeners = [] }

let n t = Array.length t.crash_at

let schedule_crash t ~pid ~at =
  if pid < 0 || pid >= n t then invalid_arg "Faults.schedule_crash: bad pid";
  if at < Sim.Engine.now t.engine then invalid_arg "Faults.schedule_crash: in the past";
  if at < t.crash_at.(pid) then begin
    t.crash_at.(pid) <- at;
    ignore
      (Sim.Engine.schedule t.engine ~at (fun () ->
           List.iter (fun f -> f pid) t.listeners))
  end

let crash_time t pid = t.crash_at.(pid)
let is_crashed t pid = t.crash_at.(pid) <= Sim.Engine.now t.engine
let correct t pid = t.crash_at.(pid) = Sim.Time.infinity

let crashed_by t time =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    if t.crash_at.(pid) <= time then acc := pid :: !acc
  done;
  !acc

let on_crash t f = t.listeners <- t.listeners @ [ f ]
