lib/net/link_stats.mli: Sim
