lib/net/faults.ml: Array List Sim
