lib/net/delay.mli: Format Sim
