lib/net/faults.mli: Sim
