lib/net/network.ml: Cgraph Delay Faults Hashtbl Link_stats Option Printf Sim
