lib/net/delay.ml: Float Format Sim
