lib/net/link_stats.ml: Array Hashtbl List Option Printf Sim
