lib/net/network.mli: Cgraph Delay Faults Link_stats Sim
