type t =
  | Fixed of int
  | Uniform of int * int
  | Exponential of float * int
  | Partial_synchrony of { gst : Sim.Time.t; pre : int * int; post : int * int }

let clamp_pos d = if d < 1 then 1 else d

let uniform rng (lo, hi) =
  if lo > hi then invalid_arg "Delay: empty uniform range";
  clamp_pos (Sim.Rng.int_in rng lo hi)

let sample t rng ~now =
  match t with
  | Fixed d -> clamp_pos d
  | Uniform (lo, hi) -> uniform rng (lo, hi)
  | Exponential (mean, cap) ->
      let d = int_of_float (Float.round (Sim.Rng.exponential rng ~mean)) in
      clamp_pos (min d cap)
  | Partial_synchrony { gst; pre; post } ->
      if now < gst then uniform rng pre else uniform rng post

let upper_bound_after t after =
  match t with
  | Fixed d -> Some (clamp_pos d)
  | Uniform (_, hi) -> Some (clamp_pos hi)
  | Exponential (_, cap) -> Some (clamp_pos cap)
  | Partial_synchrony { gst; pre = _, pre_hi; post = _, post_hi } ->
      if after >= gst then Some (clamp_pos post_hi)
      else Some (clamp_pos (max pre_hi post_hi))

let pp ppf = function
  | Fixed d -> Format.fprintf ppf "fixed(%d)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d,%d)" lo hi
  | Exponential (mean, cap) -> Format.fprintf ppf "exp(%.1f,cap=%d)" mean cap
  | Partial_synchrony { gst; pre = a, b; post = c, d } ->
      Format.fprintf ppf "psync(gst=%s,pre=%d..%d,post=%d..%d)" (Sim.Time.to_string gst) a b c d
