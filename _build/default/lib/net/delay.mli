(** Message-delay models.

    The paper's system model is asynchronous message passing augmented
    with partial synchrony sufficient to implement the eventually perfect
    detector: after an unknown global stabilization time (GST), message
    delays are bounded. [Partial_synchrony] realises exactly that
    (Dwork-Lynch-Stockmeyer); the other models are for stress and
    micro-tests. All delays are at least 1 tick. *)

type t =
  | Fixed of int
      (** Every message takes exactly this many ticks. *)
  | Uniform of int * int
      (** Uniform in [\[lo, hi\]]. *)
  | Exponential of float * int
      (** [Exponential (mean, cap)]: exponential with the given mean,
          truncated to [\[1, cap\]]. *)
  | Partial_synchrony of { gst : Sim.Time.t; pre : int * int; post : int * int }
      (** Uniform in [pre] before [gst] and in [post] (typically much
          tighter) from [gst] on. *)

val sample : t -> Sim.Rng.t -> now:Sim.Time.t -> int
(** Draw a delay for a message sent at [now]. Always [>= 1]. *)

val upper_bound_after : t -> Sim.Time.t -> int option
(** [upper_bound_after t gst']: a bound on delays of messages sent at or
    after [gst'], if the model provides one. *)

val pp : Format.formatter -> t -> unit
