(** Proper vertex colorings used as static process priorities.

    Algorithm 1 resolves symmetric fork conflicts by static priority: a
    process with a higher color beats any neighbor. The paper assumes
    locally-unique colors computed by a standard approximation algorithm
    with O(delta) distinct values. *)

val greedy : Graph.t -> int array
(** Largest-degree-first greedy coloring. Returns an array mapping each
    vertex to a color in [\[0, delta\]]; adjacent vertices get distinct
    colors. *)

val is_proper : Graph.t -> int array -> bool
(** Whether no edge joins two equally-colored vertices (and the array has
    the right length). *)

val color_count : int array -> int
(** Number of distinct colors used. *)
