lib/graph/coloring.ml: Array Fun Graph Hashtbl
