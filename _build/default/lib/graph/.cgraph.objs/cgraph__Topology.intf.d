lib/graph/topology.mli: Graph
