lib/graph/topology.ml: Array Fun Graph Int64 List Printf Sim String
