lib/graph/graph.ml: Array Buffer Format Fun Hashtbl List Printf Queue
