type pid = int

type t = { n : int; adj : pid array array; edges : (pid * pid) list }

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let seen = Hashtbl.create (List.length edge_list) in
  let canonical =
    List.filter_map
      (fun (a, b) ->
        if a < 0 || a >= n || b < 0 || b >= n then
          invalid_arg (Printf.sprintf "Graph.of_edges: endpoint out of range (%d, %d)" a b);
        if a = b then invalid_arg "Graph.of_edges: self-loop";
        let e = (min a b, max a b) in
        if Hashtbl.mem seen e then None
        else begin
          Hashtbl.add seen e ();
          Some e
        end)
      edge_list
  in
  let canonical = List.sort compare canonical in
  let deg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    canonical;
  let adj = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      adj.(a).(fill.(a)) <- b;
      fill.(a) <- fill.(a) + 1;
      adj.(b).(fill.(b)) <- a;
      fill.(b) <- fill.(b) + 1)
    canonical;
  Array.iter (fun row -> Array.sort compare row) adj;
  { n; adj; edges = canonical }

let n t = t.n
let edges t = t.edges
let edge_count t = List.length t.edges
let neighbors t i = t.adj.(i)
let degree t i = Array.length t.adj.(i)

let max_degree t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.adj

let is_edge t i j =
  if i = j then false
  else begin
    (* Binary search in the sorted neighbor row of the lower-degree endpoint. *)
    let row, key = if degree t i <= degree t j then (t.adj.(i), j) else (t.adj.(j), i) in
    let rec search lo hi =
      if lo >= hi then false
      else begin
        let mid = (lo + hi) / 2 in
        if row.(mid) = key then true
        else if row.(mid) < key then search (mid + 1) hi
        else search lo mid
      end
    in
    search 0 (Array.length row)
  end

let iter_edges t f = List.iter (fun (a, b) -> f a b) t.edges

let fold_vertices t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f !acc i
  done;
  !acc

let is_connected t =
  let visited = Array.make t.n false in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      Array.iter dfs t.adj.(i)
    end
  in
  dfs 0;
  Array.for_all Fun.id visited

let distances_from t source =
  if source < 0 || source >= t.n then invalid_arg "Graph.distances_from: bad vertex";
  let dist = Array.make t.n t.n in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) > dist.(u) + 1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  dist

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d)" t.n (edge_count t)

let to_dot ?(name = "conflict") ?(vertex_label = string_of_int) ?(vertex_color = fun _ -> None)
    t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for i = 0 to t.n - 1 do
    let attrs =
      match vertex_color i with
      | Some color ->
          Printf.sprintf "label=\"%s\", style=filled, fillcolor=\"%s\"" (vertex_label i) color
      | None -> Printf.sprintf "label=\"%s\"" (vertex_label i)
    in
    Buffer.add_string buf (Printf.sprintf "  %d [%s];\n" i attrs)
  done;
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" a b)) t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
