let greedy g =
  let n = Graph.n g in
  let order = Array.init n Fun.id in
  (* Highest degree first; ties by lower id for determinism. *)
  Array.sort
    (fun a b ->
      match compare (Graph.degree g b) (Graph.degree g a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let colors = Array.make n (-1) in
  let used = Array.make (Graph.max_degree g + 1) false in
  Array.iter
    (fun v ->
      Array.fill used 0 (Array.length used) false;
      Array.iter
        (fun u -> if colors.(u) >= 0 then used.(colors.(u)) <- true)
        (Graph.neighbors g v);
      let c = ref 0 in
      while used.(!c) do
        incr c
      done;
      colors.(v) <- !c)
    order;
  colors

let is_proper g colors =
  Array.length colors = Graph.n g
  && Array.for_all (fun c -> c >= 0) colors
  &&
  let ok = ref true in
  Graph.iter_edges g (fun a b -> if colors.(a) = colors.(b) then ok := false);
  !ok

let color_count colors =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace seen c ()) colors;
  Hashtbl.length seen
