(** Undirected conflict graphs.

    A dining instance is an undirected graph [C = (Pi, E)] where vertices
    are processes and an edge [(i, j)] means that [i] and [j] share a fork
    (their actions conflict). Processes are numbered [0 .. n-1]. *)

type pid = int

type t

val of_edges : n:int -> (pid * pid) list -> t
(** Build a graph on [n] vertices from an edge list. Self-loops are
    rejected; duplicate edges (in either orientation) are deduplicated.
    Raises [Invalid_argument] on out-of-range endpoints or [n <= 0]. *)

val n : t -> int
(** Number of vertices. *)

val edges : t -> (pid * pid) list
(** Edge list, each edge once with the smaller endpoint first, sorted. *)

val edge_count : t -> int

val neighbors : t -> pid -> pid array
(** Sorted array of neighbors of a vertex. The returned array is owned by
    the graph; callers must not mutate it. *)

val degree : t -> pid -> int
val max_degree : t -> int
val is_edge : t -> pid -> pid -> bool
val iter_edges : t -> (pid -> pid -> unit) -> unit
val fold_vertices : t -> init:'a -> f:('a -> pid -> 'a) -> 'a

val is_connected : t -> bool
(** Whether every vertex is reachable from vertex 0 (true for n = 1). *)

val distances_from : t -> pid -> int array
(** BFS hop distances from the given vertex; unreachable vertices get
    [n]. Used e.g. to measure how far from a crash site an effect
    (starvation, delay) spreads. *)

val pp : Format.formatter -> t -> unit

val to_dot :
  ?name:string ->
  ?vertex_label:(pid -> string) ->
  ?vertex_color:(pid -> string option) ->
  t ->
  string
(** Graphviz (dot) rendering of the conflict graph. [vertex_label]
    defaults to the pid; [vertex_color] (an X11 color name or RGB string)
    fills the vertex when given — used by the CLI to visualise colorings
    and crash states. *)
