(** The hygienic dining philosophers algorithm of Chandy & Misra (1984),
    as the classic dynamic-priority reference point.

    Forks are {e clean} or {e dirty}: a fork is cleaned when it is sent,
    and all of an eater's forks become dirty when it eats. A hungry holder
    yields a requested fork iff the fork is dirty (an eater defers
    everything). Initially forks sit with the lower-id endpoint and are
    dirty, which makes the precedence graph acyclic, and it stays acyclic —
    giving starvation freedom without any doorway in crash-free runs.

    The optional failure detector grafts the paper's oracle substitution
    onto the eat guard and the request guard (suspected neighbors are
    treated as if their fork/grant arrived), so the same crash experiments
    can be run against a dynamic-priority scheme. With [Fd.Never.create]
    this is exactly the classic crash-intolerant algorithm. *)

type t

val create :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  delay:Net.Delay.t ->
  rng:Sim.Rng.t ->
  detector:Fd.Detector.t ->
  unit ->
  t

val instance : t -> Dining.Instance.t
val network_stats : t -> Net.Link_stats.t
val holds_fork : t -> Dining.Types.pid -> Dining.Types.pid -> bool
val fork_clean : t -> Dining.Types.pid -> Dining.Types.pid -> bool
