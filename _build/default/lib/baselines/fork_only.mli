(** Doorway ablation: phase 2 of Algorithm 1 alone.

    A hungry process immediately collects forks with the same
    token/request protocol and static color priorities as Algorithm 1, and
    eats when each fork is held or its holder suspected — but there is no
    doorway. With a ◇P₁ detector this is still wait-free-ish in light
    contention and satisfies ◇WX, but overtaking is unbounded: a
    higher-colored neighbor can snatch the shared fork every time it gets
    hungry, starving a lower-colored diner under sustained contention.
    Experiment E3 uses it to show what the doorway buys (Theorem 3's
    eventual 2-bounded waiting). *)

type t

val create :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  delay:Net.Delay.t ->
  rng:Sim.Rng.t ->
  detector:Fd.Detector.t ->
  ?colors:int array ->
  unit ->
  t

val instance : t -> Dining.Instance.t
val network_stats : t -> Net.Link_stats.t
