lib/baselines/ordered.ml: Array Cgraph Dining Fd Hashtbl List Net Printf Sim
