lib/baselines/chandy_misra.ml: Array Cgraph Dining Fd Hashtbl List Net Printf Sim
