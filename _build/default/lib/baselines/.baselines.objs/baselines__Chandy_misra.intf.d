lib/baselines/chandy_misra.mli: Cgraph Dining Fd Net Sim
