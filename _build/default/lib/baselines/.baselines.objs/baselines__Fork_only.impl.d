lib/baselines/fork_only.ml: Array Cgraph Dining Fd Hashtbl List Net Printf Sim
