lib/baselines/ordered.mli: Cgraph Dining Fd Net Sim
