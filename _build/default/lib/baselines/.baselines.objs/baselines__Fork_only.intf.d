lib/baselines/fork_only.mli: Cgraph Dining Fd Net Sim
