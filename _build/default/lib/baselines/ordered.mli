(** Hierarchical resource allocation: Dijkstra's total-order scheme as
    generalised by Lynch (1980), the third classic baseline.

    Every fork (edge) has a globally unique rank — the pair
    (min endpoint, max endpoint) ordered lexicographically. A hungry
    process acquires its forks {e sequentially in ascending rank},
    locking each acquired fork until after it eats; a lock-holder defers
    requests for locked forks, and grants everything else immediately.
    Because the waits-for relation only ever points from lower-ranked to
    higher-ranked resources, it is acyclic: the scheme is deadlock-free
    without any doorway or priorities, at the cost of long waiting chains
    (response time grows with the longest ascending path in the conflict
    graph — Lynch's analysis).

    The optional failure detector substitutes suspicion for both the
    missing fork and the grant, as in Algorithm 1; with {!Fd.Never} this
    is the classic crash-intolerant algorithm. *)

type t

val create :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  graph:Cgraph.Graph.t ->
  delay:Net.Delay.t ->
  rng:Sim.Rng.t ->
  detector:Fd.Detector.t ->
  unit ->
  t

val instance : t -> Dining.Instance.t
val network_stats : t -> Net.Link_stats.t

val progress : t -> Dining.Types.pid -> int
(** How many forks (in rank order) the process has locked so far in its
    current hungry session; 0 when not hungry. For tests. *)
