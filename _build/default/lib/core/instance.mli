(** Uniform handle on a running dining-based daemon.

    The experiment harness, monitors and the self-stabilization scheduler
    drive every daemon implementation (Algorithm 1 and the baselines)
    through this record, so all of them can be compared under identical
    workloads. *)

type t = {
  name : string;
  become_hungry : Types.pid -> unit;
      (** Action 1: a thinking process requests scheduling. No-op unless
          the process is thinking and live. *)
  stop_eating : Types.pid -> unit;
      (** Ends the critical section (correct processes eat for finite
          time). No-op unless the process is eating and live. *)
  phase : Types.pid -> Types.phase;
  add_listener : (Types.pid -> Types.phase -> unit) -> unit;
      (** Phase-transition notifications, fired synchronously (in virtual
          time) at each transition, after the state change. *)
  check_invariants : unit -> unit;
      (** Raises {!Types.Invariant_violation} if a structural invariant of
          the implementation fails; implementations without executable
          invariants make this a no-op. *)
}
