lib/core/instance.ml: Types
