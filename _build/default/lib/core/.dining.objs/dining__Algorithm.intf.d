lib/core/algorithm.mli: Cgraph Fd Format Instance Net Sim Types
