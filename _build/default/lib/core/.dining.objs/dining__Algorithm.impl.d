lib/core/algorithm.ml: Array Cgraph Char Fd Format Hashtbl Instance List Net Printf Sim Types
