lib/core/instance.mli: Types
