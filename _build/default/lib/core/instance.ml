type t = {
  name : string;
  become_hungry : Types.pid -> unit;
  stop_eating : Types.pid -> unit;
  phase : Types.pid -> Types.phase;
  add_listener : (Types.pid -> Types.phase -> unit) -> unit;
  check_invariants : unit -> unit;
}
