type detector_kind =
  | Never
  | Perfect
  | Oracle of { detection_delay : int; fp_per_edge : int; fp_window : Sim.Time.t; fp_max_len : int }
  | Heartbeat of { period : int; initial_timeout : int; bump : int }
  | Unreliable of { period : int; duration : int }

type algo_kind = Song_pike | Fork_only | Chandy_misra | Ordered

type crash_plan =
  | No_crashes
  | Crash_at of (int * Sim.Time.t) list
  | Random_crashes of { count : int; from_t : Sim.Time.t; to_t : Sim.Time.t }

type workload = { think : int * int; eat : int * int }

type t = {
  name : string;
  topology : Cgraph.Topology.spec;
  seed : int64;
  delay : Net.Delay.t;
  detector : detector_kind;
  algo : algo_kind;
  workload : workload;
  crashes : crash_plan;
  horizon : Sim.Time.t;
  check_every : int option;
  acks_per_session : int;
}

let default_workload = { think = (50, 400); eat = (10, 60) }
let contended_workload = { think = (0, 0); eat = (10, 40) }

let default =
  {
    name = "default";
    topology = Cgraph.Topology.Ring 8;
    seed = 1L;
    delay = Net.Delay.Uniform (1, 8);
    detector = Oracle { detection_delay = 50; fp_per_edge = 2; fp_window = 5_000; fp_max_len = 200 };
    algo = Song_pike;
    workload = default_workload;
    crashes = Random_crashes { count = 1; from_t = 2_000; to_t = 10_000 };
    horizon = 60_000;
    check_every = Some 97;
    acks_per_session = 1;
  }

let detector_name = function
  | Never -> "never"
  | Perfect -> "perfect"
  | Oracle _ -> "oracle-evp"
  | Heartbeat _ -> "heartbeat-evp"
  | Unreliable _ -> "unreliable-forever"

let algo_name = function
  | Song_pike -> "song-pike"
  | Fork_only -> "fork-only"
  | Chandy_misra -> "chandy-misra"
  | Ordered -> "ordered"
