(** Drives diners through the think -> hungry -> eat cycle.

    The paper's behavioural contract: processes may think forever but here
    become hungry after a finite random think time (so every diner gets
    hungry infinitely often), and correct processes eat for a finite
    random duration. The workload owns Action 1 ("become hungry") and the
    scheduling of Action 10 ("exit") and drives them through the uniform
    {!Dining.Instance.t} interface. *)

type t

val attach :
  engine:Sim.Engine.t ->
  faults:Net.Faults.t ->
  n:int ->
  rng:Sim.Rng.t ->
  workload:Scenario.workload ->
  Dining.Instance.t ->
  t
(** Subscribes to the instance and schedules the first hungry transition
    of every process (a think-time from virtual time 0). *)

val hungry_transitions : t -> int
(** Total number of Hungry transitions driven so far. *)
