lib/harness/run_stabilize.mli: Scenario Sim Stabilize
