lib/harness/experiments.ml: Array Batch Cgraph Dining Fd List Monitor Net Option Printf Run Run_stabilize Scenario Sim Stats String
