lib/harness/run.ml: Array Cgraph Dining List Monitor Net Scenario Setup Sim Workload
