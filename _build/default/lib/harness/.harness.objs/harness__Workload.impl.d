lib/harness/workload.ml: Dining Net Scenario Sim
