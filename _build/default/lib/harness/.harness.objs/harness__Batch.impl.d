lib/harness/batch.ml: Format Int64 List Monitor Net Run Scenario Stats
