lib/harness/scenario.ml: Cgraph Net Sim
