lib/harness/run_stabilize.ml: Cgraph Dining List Scenario Setup Sim Stabilize
