lib/harness/setup.mli: Cgraph Dining Fd Net Scenario Sim
