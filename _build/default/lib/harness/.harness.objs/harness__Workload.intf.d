lib/harness/workload.mli: Dining Net Scenario Sim
