lib/harness/batch.mli: Format Scenario Stats
