lib/harness/scenario.mli: Cgraph Net Sim
