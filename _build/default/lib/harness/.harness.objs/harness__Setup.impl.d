lib/harness/setup.ml: Array Baselines Cgraph Dining Fd Fun List Net Scenario Sim
