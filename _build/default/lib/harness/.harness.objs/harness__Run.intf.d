lib/harness/run.mli: Cgraph Dining Monitor Net Scenario Sim
