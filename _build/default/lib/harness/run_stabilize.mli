(** Runs a self-stabilizing protocol on top of a scenario's daemon
    (experiment E7 / figure F4). The dining workload is replaced by the
    stabilization scheduler: processes get hungry exactly when they have
    an enabled guarded command. *)

type protocol_kind = Coloring | Token_ring | Matching | Bfs_tree

type spec = {
  scenario : Scenario.t;
      (** Provides topology, seed, delays, detector, daemon and crashes.
          The scenario's workload field is ignored. [Token_ring] requires a
          ring topology. *)
  protocol : protocol_kind;
  transient_faults : (Sim.Time.t * int) list;
      (** (time, victims): transient-fault injections corrupting that many
          random live states. *)
}

type report = {
  spec : spec;
  outcome : Stabilize.Scheduler.outcome;
  convergence : Sim.Time.t;  (** detector convergence, as in {!Run.report} *)
  crashed : (int * Sim.Time.t) list;
  total_eats : int;
  invariant_error : string option;
}

val protocol_name : protocol_kind -> string
val run : spec -> report
