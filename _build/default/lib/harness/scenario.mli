(** Declarative description of one simulation run.

    A scenario pins every stochastic and structural input of an
    experiment: topology, root seed, message-delay model, failure
    detector, daemon implementation, workload, crash plan and run length.
    Two runs of the same scenario are bit-identical. *)

type detector_kind =
  | Never
      (** No oracle — recovers the crash-intolerant Choy-Singh doorway
          algorithm when combined with {!Song_pike}. *)
  | Perfect
      (** Zero-latency perfect detector (perpetual exclusion comparator). *)
  | Oracle of { detection_delay : int; fp_per_edge : int; fp_window : Sim.Time.t; fp_max_len : int }
      (** Scripted ◇P₁: crashes detected after [detection_delay];
          [fp_per_edge] false-positive windows of up to [fp_max_len] ticks
          per directed edge, all before [fp_window]. *)
  | Heartbeat of { period : int; initial_timeout : int; bump : int }
      (** Real adaptive-timeout implementation over the network. *)
  | Unreliable of { period : int; duration : int }
      (** Complete but never accurate: false suspicions recur forever
          (violates exactly the eventual-accuracy half of ◇P₁; used by the
          necessity experiment E9). *)

type algo_kind =
  | Song_pike      (** Algorithm 1 — the paper's contribution. *)
  | Fork_only      (** Doorway ablation baseline. *)
  | Chandy_misra   (** Hygienic dynamic-priority baseline. *)
  | Ordered        (** Hierarchical (total-order) resource allocation baseline. *)

type crash_plan =
  | No_crashes
  | Crash_at of (int * Sim.Time.t) list
      (** Explicit (pid, time) crash schedule. *)
  | Random_crashes of { count : int; from_t : Sim.Time.t; to_t : Sim.Time.t }
      (** [count] distinct random victims crashing at random times in
          [\[from_t, to_t)], drawn from the scenario seed. *)

type workload = {
  think : int * int;
      (** Uniform thinking-time range in ticks; [(0, 0)] means processes
          get hungry again immediately (maximum contention). *)
  eat : int * int;  (** Uniform eating-duration range, >= 1 tick. *)
}

type t = {
  name : string;
  topology : Cgraph.Topology.spec;
  seed : int64;
  delay : Net.Delay.t;
  detector : detector_kind;
  algo : algo_kind;
  workload : workload;
  crashes : crash_plan;
  horizon : Sim.Time.t;  (** Run length in ticks. *)
  check_every : int option;
      (** Run the daemon's executable-invariant check every k ticks. *)
  acks_per_session : int;
      (** Song-Pike doorway fairness knob: acks granted per neighbor per
          hungry session. 1 = the paper's Algorithm 1 (eventual 2-bounded
          waiting); m yields eventual (m+1)-bounded waiting. Ignored by
          the baselines. *)
}

val default : t
(** 8-ring, Song-Pike with a scripted oracle, moderate contention, one
    random crash, horizon 60_000. *)

val default_workload : workload
val contended_workload : workload
(** Zero think time: everyone is hungry again immediately. *)

val detector_name : detector_kind -> string
val algo_name : algo_kind -> string
