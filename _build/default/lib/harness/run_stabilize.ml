type protocol_kind = Coloring | Token_ring | Matching | Bfs_tree

type spec = {
  scenario : Scenario.t;
  protocol : protocol_kind;
  transient_faults : (Sim.Time.t * int) list;
}

type report = {
  spec : spec;
  outcome : Stabilize.Scheduler.outcome;
  convergence : Sim.Time.t;
  crashed : (int * Sim.Time.t) list;
  total_eats : int;
  invariant_error : string option;
}

let protocol_name = function
  | Coloring -> "coloring"
  | Token_ring -> "token-ring"
  | Matching -> "matching"
  | Bfs_tree -> "bfs-tree"

let make_protocol kind ~graph =
  match kind with
  | Coloring -> Stabilize.Coloring_protocol.make ~graph
  | Token_ring ->
      let n = Cgraph.Graph.n graph in
      (* Sanity: the daemon's conflict graph must be the ring the protocol
         assumes. *)
      if Cgraph.Graph.edge_count graph <> n || Cgraph.Graph.max_degree graph <> 2 then
        invalid_arg "Run_stabilize: token ring needs a ring topology";
      Stabilize.Token_ring.make ~n ()
  | Matching -> Stabilize.Matching.make ()
  | Bfs_tree -> Stabilize.Bfs_tree.make ~graph

let run spec =
  let s = spec.scenario in
  let parts = Setup.build s in
  let { Setup.engine; faults; graph; rng; crashed; instance; _ } = parts in
  let protocol = make_protocol spec.protocol ~graph in
  let scheduler =
    Stabilize.Scheduler.attach ~engine ~faults ~graph
      ~rng:(Sim.Rng.split_named rng "stabilize")
      ~protocol instance
  in
  List.iter
    (fun (at, victims) -> Stabilize.Scheduler.schedule_faults scheduler ~at:[ at ] ~victims)
    spec.transient_faults;
  let eats = ref 0 in
  instance.add_listener (fun _ phase -> if phase = Dining.Types.Eating then incr eats);
  Sim.Engine.run engine ~until:s.horizon;
  let invariant_error =
    try
      instance.check_invariants ();
      None
    with Dining.Types.Invariant_violation msg -> Some msg
  in
  let convergence, _ = Setup.convergence parts in
  {
    spec;
    outcome = Stabilize.Scheduler.outcome scheduler;
    convergence;
    crashed;
    total_eats = !eats;
    invariant_error;
  }
