(** The reproduction suite.

    The paper (an algorithms paper) states its results as theorems rather
    than measured tables; every experiment here operationalises one claim
    (see DESIGN.md for the mapping) and regenerates a table or an ASCII
    figure. Experiments are deterministic: same build, same output. *)

type artifact =
  | Table of Stats.Table.t
  | Series of Stats.Series.t
  | Note of string

type t = {
  id : string;       (** "e1" .. "e8", "f1" .. "f4" *)
  title : string;
  claim : string;    (** the paper claim being reproduced *)
  run : unit -> artifact list;
}

val all : t list
(** In presentation order: E1..E8 then F1..F4. *)

val find : string -> t option
(** Lookup by case-insensitive id. *)

val run_and_print : t -> unit
(** Execute and print all artifacts, with a header naming the claim. *)

val print_artifact : artifact -> unit
