type violation = { time : Sim.Time.t; eater : Dining.Types.pid; neighbor : Dining.Types.pid }

type t = {
  engine : Sim.Engine.t;
  graph : Cgraph.Graph.t;
  faults : Net.Faults.t;
  eating : bool array;
  mutable violations : violation list; (* newest first *)
}

let attach engine graph faults (instance : Dining.Instance.t) =
  let t =
    {
      engine;
      graph;
      faults;
      eating = Array.make (Cgraph.Graph.n graph) false;
      violations = [];
    }
  in
  instance.add_listener (fun pid phase ->
      match phase with
      | Dining.Types.Eating ->
          t.eating.(pid) <- true;
          Array.iter
            (fun j ->
              if t.eating.(j) && not (Net.Faults.is_crashed t.faults j) then
                t.violations <-
                  { time = Sim.Engine.now engine; eater = pid; neighbor = j } :: t.violations)
            (Cgraph.Graph.neighbors graph pid)
      | Thinking | Hungry -> t.eating.(pid) <- false);
  t

let violations t = List.rev t.violations
let count t = List.length t.violations
let count_after t time = List.length (List.filter (fun v -> v.time >= time) t.violations)

let last_violation_time t =
  match t.violations with [] -> None | v :: _ -> Some v.time
