(** Runtime verification of (eventual) weak exclusion.

    Watches a daemon's phase transitions and records a violation whenever
    a process starts eating while a live neighbor is already eating. The
    ◇WX property (Theorem 1) predicts finitely many violations, all before
    the failure detector converges; perpetual exclusion predicts none. *)

type violation = { time : Sim.Time.t; eater : Dining.Types.pid; neighbor : Dining.Types.pid }

type t

val attach : Sim.Engine.t -> Cgraph.Graph.t -> Net.Faults.t -> Dining.Instance.t -> t
(** Subscribe to the instance's transitions. Must be attached before the
    run starts. *)

val violations : t -> violation list
(** All recorded violations, oldest first. *)

val count : t -> int

val count_after : t -> Sim.Time.t -> int
(** Violations at or after the given time (e.g. detector convergence). *)

val last_violation_time : t -> Sim.Time.t option
