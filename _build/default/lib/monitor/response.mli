(** Hungry-session latency and starvation detection.

    A session runs from a process's Hungry transition to its Eating
    transition. Wait-freedom (Theorem 2) predicts that every correct
    process's session completes; a starved process is one whose session is
    still open "long" after it began. *)

type session = { pid : Dining.Types.pid; started : Sim.Time.t; served : Sim.Time.t }

type t

val attach : Sim.Engine.t -> Net.Faults.t -> Dining.Instance.t -> t

val completed : t -> session list
(** Completed sessions, oldest first. *)

val durations : t -> int list
(** Completed session latencies in ticks. *)

val summary : t -> Stats.Summary.t

val open_sessions : t -> (Dining.Types.pid * Sim.Time.t) list
(** Sessions of live processes still hungry now: (pid, start time). *)

val starved : t -> older_than:int -> Dining.Types.pid list
(** Live processes whose open session started more than [older_than] ticks
    ago — the wait-freedom failures. *)

val served_count : t -> int

val response_series : t -> bucket:int -> (float * float) list
(** For figure F1: mean completed latency per [bucket]-tick window of the
    {e service} time, (window start, mean latency); empty windows are
    skipped. *)
