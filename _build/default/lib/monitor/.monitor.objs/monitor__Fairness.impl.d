lib/monitor/fairness.ml: Array Cgraph Dining Hashtbl List Net Option Sim
