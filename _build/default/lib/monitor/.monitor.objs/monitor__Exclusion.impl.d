lib/monitor/exclusion.ml: Array Cgraph Dining List Net Sim
