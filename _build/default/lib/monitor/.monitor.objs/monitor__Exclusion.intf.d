lib/monitor/exclusion.mli: Cgraph Dining Net Sim
