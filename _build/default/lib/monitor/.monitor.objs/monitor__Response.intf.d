lib/monitor/response.mli: Dining Net Sim Stats
