lib/monitor/fairness.mli: Cgraph Dining Net Sim
