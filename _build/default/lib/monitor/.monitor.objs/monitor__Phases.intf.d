lib/monitor/phases.mli: Dining Sim Stats
