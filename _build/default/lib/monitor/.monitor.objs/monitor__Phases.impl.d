lib/monitor/phases.ml: Dining Hashtbl List Sim Stats
