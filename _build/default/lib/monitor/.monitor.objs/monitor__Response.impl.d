lib/monitor/response.ml: Dining Hashtbl List Net Option Sim Stats
