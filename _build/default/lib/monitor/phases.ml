type t = {
  engine : Sim.Engine.t;
  hungry_at : (int, Sim.Time.t) Hashtbl.t;
  entered_at : (int, Sim.Time.t) Hashtbl.t;
  mutable doorway : int list;
  mutable fork : int list;
}

let attach engine trace (instance : Dining.Instance.t) =
  let t =
    {
      engine;
      hungry_at = Hashtbl.create 16;
      entered_at = Hashtbl.create 16;
      doorway = [];
      fork = [];
    }
  in
  Sim.Trace.on_record trace (fun r ->
      if r.Sim.Trace.tag = "enter_doorway" then begin
        match Hashtbl.find_opt t.hungry_at r.subject with
        | Some started ->
            Hashtbl.replace t.entered_at r.subject r.time;
            t.doorway <- (r.time - started) :: t.doorway
        | None -> ()
      end);
  instance.add_listener (fun pid phase ->
      let now = Sim.Engine.now engine in
      match phase with
      | Dining.Types.Hungry -> Hashtbl.replace t.hungry_at pid now
      | Dining.Types.Eating -> (
          Hashtbl.remove t.hungry_at pid;
          match Hashtbl.find_opt t.entered_at pid with
          | Some entered ->
              Hashtbl.remove t.entered_at pid;
              t.fork <- (now - entered) :: t.fork
          | None -> ())
      | Dining.Types.Thinking ->
          Hashtbl.remove t.hungry_at pid;
          Hashtbl.remove t.entered_at pid);
  t

let doorway_waits t = List.rev t.doorway
let fork_waits t = List.rev t.fork
let doorway_summary t = Stats.Summary.of_ints t.doorway
let fork_summary t = Stats.Summary.of_ints t.fork
