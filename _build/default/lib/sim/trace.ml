type record = { time : Time.t; subject : int; tag : string; detail : string }

type t = {
  mutable sinks : (record -> unit) list;
  mutable collected : record list; (* newest first *)
  mutable collect : bool;
}

let create () = { sinks = []; collected = []; collect = false }

let collecting () =
  let t = create () in
  t.collect <- true;
  t

let on_record t f = t.sinks <- t.sinks @ [ f ]
let enabled t = t.collect || t.sinks <> []

let emit t ~time ~subject ~tag detail =
  if enabled t then begin
    let r = { time; subject; tag; detail } in
    if t.collect then t.collected <- r :: t.collected;
    List.iter (fun f -> f r) t.sinks
  end

let emitf t ~time ~subject ~tag fmt =
  Format.kasprintf (fun detail -> emit t ~time ~subject ~tag detail) fmt

let records t = List.rev t.collected

let pp_record ppf r =
  Format.fprintf ppf "[%8s] p%-3d %-14s %s" (Time.to_string r.time) r.subject r.tag r.detail
