(** Mutable binary min-heap used as the simulator's event queue.

    Entries are ordered by priority (virtual time) and, among equal
    priorities, by insertion order, giving the engine a deterministic
    event order. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> prio:int -> 'a -> unit
(** Insert an element with the given priority. O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry, FIFO among equal priorities.
    O(log n). *)

val peek_prio : 'a t -> int option
(** Priority of the minimum entry without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
