type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (bits64 t)

let split_named t label =
  (* Hash the label into the current seed without advancing [t]. *)
  let h = ref t.state in
  String.iter (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c)))) label;
  create (mix !h)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let bits53 = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits53 /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
