lib/sim/pqueue.mli:
