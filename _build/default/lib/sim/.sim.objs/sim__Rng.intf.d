lib/sim/rng.mli:
