(** Structured trace of simulation events.

    Components emit timestamped records; sinks either collect them for
    post-hoc assertions (tests, monitors) or pretty-print them live
    (examples, CLI). Tracing is off by default and costs one branch per
    emission when disabled. *)

type record = {
  time : Time.t;
  subject : int;  (** Process id the record is about, or -1 for global. *)
  tag : string;   (** Short machine-readable category, e.g. ["eat_start"]. *)
  detail : string;
}

type t

val create : unit -> t
(** A disabled trace: emissions are dropped until a sink is attached. *)

val collecting : unit -> t
(** A trace that retains every record in memory (see {!records}). *)

val on_record : t -> (record -> unit) -> unit
(** Attach a callback sink; enables the trace. *)

val emit : t -> time:Time.t -> subject:int -> tag:string -> string -> unit
val emitf :
  t -> time:Time.t -> subject:int -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val enabled : t -> bool

val records : t -> record list
(** Records collected so far (oldest first); empty unless {!collecting}
    was used. *)

val pp_record : Format.formatter -> record -> unit
