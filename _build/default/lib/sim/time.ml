type t = int

let zero = 0
let infinity = max_int
let is_finite t = t <> infinity

let add a b =
  if a = infinity || b = infinity then infinity
  else begin
    assert (a >= 0 && b >= 0);
    let s = a + b in
    if s < 0 then infinity else s
  end

let max = Stdlib.max
let compare = Int.compare

let pp ppf t = if is_finite t then Format.fprintf ppf "%d" t else Format.pp_print_string ppf "inf"
let to_string t = Format.asprintf "%a" pp t
