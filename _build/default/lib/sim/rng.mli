(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of a scenario (network delays, workload,
    crash times, ...) draws from its own split of a single root seed, so a
    scenario is fully determined by one [int64] and is insensitive to the
    order in which components happen to consume randomness. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s subsequent output. Both generators remain
    usable. *)

val split_named : t -> string -> t
(** [split_named t label] derives a generator from [t]'s seed and [label]
    without consuming randomness from [t]: same [t] and [label] always give
    the same stream. Use this to hand sub-streams to components. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
