type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

(* Only called with a non-empty heap; slots >= size are never read. *)
let grow t =
  assert (t.size > 0);
  let ncap = Array.length t.heap * 2 in
  let nheap = Array.make ncap t.heap.(0) in
  Array.blit t.heap 0 nheap 0 t.size;
  t.heap <- nheap

let add t ~prio value =
  if t.size >= Array.length t.heap then begin
    if Array.length t.heap = 0 then t.heap <- Array.make 16 { prio; seq = 0; value }
    else grow t
  end;
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t
    end;
    Some (top.prio, top.value)
  end

let peek_prio t = if t.size = 0 then None else Some t.heap.(0).prio
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.heap <- [||]
