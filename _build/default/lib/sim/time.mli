(** Virtual time for the discrete-event simulator.

    Time is a non-negative integer count of abstract "ticks". All protocol
    parameters (message delays, heartbeat periods, eat durations, ...) are
    expressed in ticks, so runs are exactly reproducible across machines. *)

type t = int

val zero : t

val infinity : t
(** A time later than any event the simulator will ever schedule. *)

val add : t -> t -> t
(** Saturating addition: [add t infinity = infinity]. *)

val max : t -> t -> t
val compare : t -> t -> int
val is_finite : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints finite times as the raw tick count and {!infinity} as ["inf"]. *)

val to_string : t -> string
