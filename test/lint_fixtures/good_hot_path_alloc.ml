(* Negatives: allocation-free tail recursion and int arithmetic stay
   silent; a deliberate cons is justified in place. *)
let rec sum_from arr acc i =
  if i >= Array.length arr then acc else sum_from arr (acc + arr.(i)) (i + 1)

let[@lint.hot] sum arr = sum_from arr 0 0

let[@lint.hot] clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let[@lint.hot] push x l = (x :: l) [@lint.allow "hot-path-alloc"]
