(* Fixture: io-in-library — direct stdout writes from library code. *)
let report n = Printf.printf "served %d\n" n

let banner () = print_endline "=== report ==="
