(* Fixture: nondet-iteration. The bare fold and the iter escape in hash
   order and must fire; the fold piped into List.sort must not. *)
let edges tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let sorted_edges tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let visit_all f tbl = Hashtbl.iter (fun k v -> f k v) tbl
