(* Positive fixtures for the domain-escape detector: the local Pool
   stub stands in for Exec.Pool — sink matching is by path suffix. *)
module Pool = struct
  let run_batch (n : int) (body : int -> unit) =
    for i = 0 to n - 1 do body i done
end

(* Two forwarding hops between the submitter and the sink. *)
let tier2 n body = Pool.run_batch n body
let tier1 n body = tier2 n body

let direct_ref n =
  let total = ref 0 in
  Pool.run_batch n (fun i -> total := !total + i);
  !total

let through_two_hops n =
  let total = ref 0 in
  tier1 n (fun i -> total := !total + i);
  !total

let shared_table n =
  let seen = Hashtbl.create 16 in
  Pool.run_batch n (fun i -> Hashtbl.replace seen i true);
  Hashtbl.length seen
