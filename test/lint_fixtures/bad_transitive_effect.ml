(* Positives for transitive effect inference: each flagged binding is
   itself clean but reaches a violation through a helper chain. *)
let clock_leaf () = Unix.gettimeofday ()
let clock_mid x = clock_leaf () +. float_of_int x
let clock_top xs = List.map (fun x -> clock_mid x) xs

let io_leaf msg = print_endline msg
let io_top msg = io_leaf (msg ^ "!")

let counter = ref 0
let bump () = counter := !counter + 1
let bump_top () = bump ()
