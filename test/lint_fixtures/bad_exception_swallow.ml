(* Fixture: exception-swallow — the wildcard handler fires; the
   specific handler below must not. *)
let quietly f = try f () with _ -> ()

let lookup tbl k = try Some (Hashtbl.find tbl k) with Not_found -> None
