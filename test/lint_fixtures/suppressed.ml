(* Fixture: every violation below carries a [@lint.allow] suppression,
   so the whole file must lint clean. *)
let interned = (Hashtbl.create 16 [@lint.allow "mutable-global"])

let histogram tbl =
  (Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 [@lint.allow "nondet-iteration"])

let quietly f = (try f () with _ -> ()) [@lint.allow "exception-swallow"]

let debug_dump n = Printf.printf "%d\n" n [@@lint.allow "io-in-library"]
