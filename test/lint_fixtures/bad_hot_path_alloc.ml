(* Positives for the hot-path allocation guard: every [@lint.hot] body
   below allocates one heap block per call. *)
let[@lint.hot] makes_closure xs = List.iter (fun x -> ignore x) xs
let[@lint.hot] makes_tuple x y = fst (x, y)
let[@lint.hot] makes_ref x = !(ref x)
let[@lint.hot] makes_cons x l = x :: l
let[@lint.hot] makes_copy a = Array.copy a

(* Unannotated: the same allocations are fine off the hot path. *)
let not_hot x y = (x, y)
