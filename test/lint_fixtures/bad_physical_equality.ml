(* Fixture: physical-equality. The boxed comparisons fire; the
   int-literal comparison is the idiomatic immediate case and must
   not. *)
let same_list a b = a == b

let changed old_state new_state = old_state != new_state

let is_zero n = n == 0
