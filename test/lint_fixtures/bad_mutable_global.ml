(* Fixture: mutable-global. The toplevel allocations fire; the
   allocation inside a function happens per call and must not. *)
let cache = Hashtbl.create 16

let hits = ref 0

let scratch = Array.make 64 0

let fresh_table () = Hashtbl.create 16
