(* Fixture: ambient-effects — every binding below reads or mutates
   process-global state and must fire. *)
let roll () = Random.int 6

let wall_clock () = Unix.gettimeofday ()

let cpu_seconds () = Sys.time ()

let bail () = exit 1
