(* Negatives: a sanctioned source must not taint its callers; pure
   chains and function-local mutation acquire nothing. *)
let sanctioned_leaf () = (Unix.gettimeofday () [@lint.allow "ambient-effects"])
let sanctioned_top () = sanctioned_leaf ()

let pure_leaf x = x * 2
let pure_mid x = pure_leaf x + 1
let pure_top x = pure_mid x

(* Mutation of a binding local to the function is not an effect. *)
let local_sum xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) xs;
  !acc
