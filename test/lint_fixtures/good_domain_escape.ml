(* Negative fixtures: every capture here is provably race-free, so the
   domain-escape detector must stay silent. *)
module Pool = struct
  let run_batch (n : int) (body : int -> unit) =
    for i = 0 to n - 1 do body i done
end

let tier2 n body = Pool.run_batch n body
let tier1 n body = tier2 n body

(* Shard-local: the array is written only at the task's own index, so
   the domains' write sets are disjoint. *)
let shard_local n =
  let out = Array.make n 0 in
  tier1 n (fun i -> out.(i) <- i * i);
  out

(* Fresh per task: nothing mutable is captured at all. *)
let fresh_buffer n =
  Pool.run_batch n (fun i ->
      let b = Buffer.create 8 in
      Buffer.add_string b (string_of_int i);
      ignore (Buffer.length b))

(* Read-only: the submitter blocks for the batch; concurrent reads of
   a frozen array cannot race. *)
let read_only n (weights : int array) =
  Pool.run_batch n (fun i -> ignore (weights.(i) + i))
