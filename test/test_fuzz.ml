(* The fuzzing subsystem, tested from both sides: negative self-tests
   prove each oracle *fires* on a scenario engineered to violate it (an
   oracle that always passes would silently void the whole campaign),
   and pipeline tests prove generation, shrinking and replay are
   deterministic and lossless. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let fires name (p : Fuzz.Property.t) r =
  check bool (Printf.sprintf "%s fires on %s" p.name name) true (p.check r <> None)

let holds name (p : Fuzz.Property.t) r =
  check bool
    (Printf.sprintf "%s holds on %s (%s)" p.name name
       (Option.value (p.check r) ~default:""))
    true (p.check r = None)

let quiet_oracle : Harness.Scenario.detector_kind =
  Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }

let scenario ?(topology = Cgraph.Topology.Ring 8) ?(seed = 1L) ?(detector = quiet_oracle)
    ?(algo = Harness.Scenario.Song_pike) ?(crashes = Harness.Scenario.No_crashes)
    ?(workload = Harness.Scenario.default_workload) ?(horizon = 40_000) () : Harness.Scenario.t =
  {
    Harness.Scenario.default with
    name = "fuzz-test";
    topology;
    seed;
    detector;
    algo;
    crashes;
    workload;
    horizon;
    check_every = Some 101;
  }

(* ---------------------- negative self-tests ------------------------ *)

(* An unreliable detector keeps committing false suspicions, so
   exclusion violations never cease — the tail-window cutoff must catch
   them (same scenario as the harness suite's accuracy contrast). *)
let exclusion_oracle_fires () =
  let s =
    scenario
      ~topology:(Cgraph.Topology.Clique 5)
      ~detector:(Harness.Scenario.Unreliable { period = 1_000; duration = 120 })
      ~workload:{ think = (0, 60); eat = (10, 30) }
      ~crashes:(Harness.Scenario.Crash_at [ (1, 5_000) ])
      ()
  in
  check bool "out of hypothesis" false (Fuzz.Property.eventual_weak_exclusion.applicable s);
  fires "unreliable detector" Fuzz.Property.eventual_weak_exclusion (Harness.Run.run s)

(* With the Never detector (the Choy-Singh model) a crash wedges the
   victim's neighborhood: wait-freedom breaks. *)
let wait_freedom_oracle_fires () =
  let s =
    scenario ~detector:Harness.Scenario.Never
      ~crashes:(Harness.Scenario.Crash_at [ (2, 3_000) ])
      ()
  in
  fires "never + crash" Fuzz.Property.wait_freedom (Harness.Run.run s)

(* No simulated daemon keeps sending to a dead process (even the
   baselines request forks at most once per session), so prove the
   quiescence oracle reads real per-victim traffic by grafting
   synthesized link stats — one send to the victim well past the grace
   period — onto a real report. *)
let quiescence_oracle_fires () =
  let r =
    Harness.Run.run (scenario ~crashes:(Harness.Scenario.Crash_at [ (2, 3_000) ]) ~horizon:20_000 ())
  in
  holds "a sound run" Fuzz.Property.quiescence r;
  let noisy =
    Net.Link_stats.create
      ~graph:(Cgraph.Topology.build (Cgraph.Topology.Ring 8))
      ~kinds:[| "request" |] ()
  in
  Net.Link_stats.watch_dst noisy 2;
  Net.Link_stats.record_send noisy ~src:1 ~dst:2 ~kind:0 ~at:15_000;
  fires "post-grace send to a victim" Fuzz.Property.quiescence { r with link_stats = noisy }

(* The fork-only baseline has no doorway, so a hungry process can be
   overtaken unboundedly under contention (experiment E3's claim). *)
let bounded_waiting_oracle_fires () =
  let s =
    scenario ~algo:Harness.Scenario.Fork_only
      ~topology:(Cgraph.Topology.Clique 6)
      ~workload:Harness.Scenario.contended_workload
      ~crashes:(Harness.Scenario.Random_crashes { count = 1; from_t = 5_000; to_t = 15_000 })
      ~seed:37L ~horizon:60_000 ()
  in
  fires "fork-only under contention" Fuzz.Property.bounded_waiting (Harness.Run.run s)

(* No real scenario violates the channel bound (that is Section 7's
   point), so prove the oracle reads real traffic by tightening the
   bound to an impossible 0 on a busy run. *)
let channel_bound_oracle_reads_traffic () =
  let r = Harness.Run.run (scenario ~horizon:10_000 ()) in
  holds "a sound run" Fuzz.Property.channel_bound r;
  fires "bound 0" (Fuzz.Property.channel_bound_with ~bound:0) r

(* Same for the lemma watcher: synthesize a report carrying an
   invariant error. *)
let lemmas_oracle_fires () =
  let r = Harness.Run.run (scenario ~horizon:5_000 ()) in
  holds "a sound run" Fuzz.Property.lemmas r;
  fires "synthetic error" Fuzz.Property.lemmas
    { r with invariant_error = Some "synthetic: lemma 1.1" }

(* Positive control: a fully in-hypothesis scenario passes every
   applicable oracle. *)
let oracles_hold_in_hypothesis () =
  let s =
    scenario
      ~detector:(Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 })
      ~crashes:(Harness.Scenario.Crash_at [ (3, 8_000) ])
      ()
  in
  let props = Fuzz.Property.applicable s in
  check bool "several oracles apply" true (List.length props >= 4);
  let r = Harness.Run.run s in
  List.iter (fun p -> holds "heartbeat + crash" p r) props

(* ----------------------------- gen --------------------------------- *)

let gen_is_deterministic () =
  List.iter
    (fun profile ->
      for case = 0 to 9 do
        let a = Fuzz.Gen.scenario ~profile ~campaign_seed:99L ~case in
        let b = Fuzz.Gen.scenario ~profile ~campaign_seed:99L ~case in
        check bool "same (profile, seed, case), same scenario" true (a = b)
      done)
    [ Fuzz.Gen.Sound; Fuzz.Gen.Hostile ];
  let seeds =
    List.init 20 (fun case -> (Fuzz.Gen.scenario ~profile:Fuzz.Gen.Sound ~campaign_seed:99L ~case).seed)
  in
  check bool "cases draw from independent streams" true
    (List.length (List.sort_uniq compare seeds) = 20)

let gen_sound_stays_in_hypothesis () =
  for case = 0 to 99 do
    let s = Fuzz.Gen.scenario ~profile:Fuzz.Gen.Sound ~campaign_seed:4L ~case in
    check bool "algorithm 1 only" true (s.algo = Harness.Scenario.Song_pike);
    check bool "exclusion hypothesis holds" true
      (Fuzz.Property.eventual_weak_exclusion.applicable s);
    check bool "wait-freedom hypothesis holds" true (Fuzz.Property.wait_freedom.applicable s);
    check bool "bounded horizon" true (s.horizon >= 8_000 && s.horizon <= 16_000)
  done

(* --------------------------- reproducers --------------------------- *)

let codec_roundtrips () =
  List.iter
    (fun profile ->
      for case = 0 to 19 do
        let s = Fuzz.Gen.scenario ~profile ~campaign_seed:123L ~case in
        let jsonl = Fuzz.Repro.to_jsonl ~header:"test" ~property:"exclusion" ~message:"m" s in
        match Fuzz.Repro.of_jsonl jsonl with
        | Error e -> Alcotest.failf "decode failed for case %d: %s" case e
        | Ok (s', prop) ->
            check bool (Printf.sprintf "case %d round-trips" case) true (s' = s);
            check Alcotest.string "property survives" "exclusion" prop
      done)
    [ Fuzz.Gen.Sound; Fuzz.Gen.Hostile ]

let codec_rejects_garbage () =
  (match Fuzz.Repro.of_jsonl "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Fuzz.Repro.of_jsonl "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted"

(* --------------------------- shrinking ----------------------------- *)

(* Known failing scenario: Never + one crash starves the neighborhood.
   The minimizer must keep the failure while shrinking to a bounded
   reproducer, and the reproducer must replay to the same verdict after
   a JSONL round-trip — the full pipeline, end to end. *)
let shrinker_regression () =
  let p = Fuzz.Property.wait_freedom in
  let s0 =
    scenario ~detector:Harness.Scenario.Never
      ~crashes:(Harness.Scenario.Crash_at [ (2, 3_000) ])
      ()
  in
  let still_failing s = p.check (Harness.Run.run s) <> None in
  check bool "starting point fails" true (still_failing s0);
  let m = Fuzz.Shrink.minimize ~still_failing s0 in
  check bool "took shrink steps" true (m.steps > 0);
  check bool "attempt count sane" true (m.attempts >= m.steps && m.attempts <= 300);
  check int "one action per step" m.steps (List.length m.actions);
  let size s = Cgraph.Graph.n (Cgraph.Topology.build s.Harness.Scenario.topology) in
  check bool "reproducer is small" true (size m.scenario <= 4);
  check bool "horizon shrank" true (m.scenario.horizon < s0.horizon);
  check bool "still failing" true (still_failing m.scenario);
  (* Export, re-parse, replay: the verdict must reproduce. *)
  let jsonl = Fuzz.Repro.to_jsonl ~property:p.name ~message:"starved" m.scenario in
  match Fuzz.Repro.of_jsonl jsonl with
  | Error e -> Alcotest.failf "reproducer did not parse: %s" e
  | Ok (s, prop) -> (
      check Alcotest.string "property name survives" p.name prop;
      match Fuzz.Repro.replay p s with
      | Fuzz.Repro.Reproduced _ -> ()
      | Fuzz.Repro.Clean _ -> Alcotest.fail "minimized reproducer did not reproduce")

let shrinker_is_deterministic () =
  let p = Fuzz.Property.wait_freedom in
  let s0 =
    scenario ~detector:Harness.Scenario.Never
      ~crashes:(Harness.Scenario.Crash_at [ (2, 3_000) ])
      ()
  in
  let still_failing s = p.check (Harness.Run.run s) <> None in
  let a = Fuzz.Shrink.minimize ~still_failing s0 in
  let b = Fuzz.Shrink.minimize ~still_failing s0 in
  check bool "same reproducer" true (a.scenario = b.scenario);
  check bool "same path" true (a.actions = b.actions)

(* --------------------------- campaigns ----------------------------- *)

let campaign_domains_invariant () =
  let run domains =
    Fuzz.Campaign.run ~domains ~profile:Fuzz.Gen.Hostile ~shrink:false ~seed:5L ~cases:30 ()
  in
  check bool "domains:1 = domains:2, bit-identical report" true (run 1 = run 2)

let campaign_sound_is_clean () =
  let r = Fuzz.Campaign.run ~domains:2 ~profile:Fuzz.Gen.Sound ~seed:3L ~cases:60 () in
  check int "no failures inside the hypotheses" 0 (List.length r.failures);
  check bool "every oracle got coverage" true
    (List.for_all (fun (_, n) -> n > 0) r.checked);
  check bool "lemmas checked on every case" true (List.assoc "lemmas" r.checked = 60)

let campaign_hostile_finds_and_shrinks () =
  let r = Fuzz.Campaign.run ~domains:2 ~profile:Fuzz.Gen.Hostile ~seed:5L ~cases:10 () in
  check bool "violations found" true (r.failures <> []);
  let f = List.hd r.failures in
  check bool "first failure was minimized" true (f.shrink_attempts > 0);
  let size s = Cgraph.Graph.n (Cgraph.Topology.build s.Harness.Scenario.topology) in
  check bool "shrunk no larger than original" true (size f.shrunk <= size f.scenario);
  match Fuzz.Property.find f.property with
  | None -> Alcotest.failf "failure names unknown property %s" f.property
  | Some p -> (
      match Fuzz.Repro.replay p f.shrunk with
      | Fuzz.Repro.Reproduced _ -> ()
      | Fuzz.Repro.Clean _ -> Alcotest.fail "campaign reproducer did not reproduce")

let property_registry () =
  check int "six oracles" 6 (List.length Fuzz.Property.all);
  List.iter
    (fun (p : Fuzz.Property.t) ->
      match Fuzz.Property.find p.name with
      | Some p' -> check bool "find is identity on names" true (p'.name = p.name)
      | None -> Alcotest.failf "oracle %s not findable" p.name)
    Fuzz.Property.all;
  check bool "unknown name rejected" true (Fuzz.Property.find "no-such-oracle" = None)

let suite =
  [
    Alcotest.test_case "negative: exclusion oracle fires on unreliable" `Slow
      exclusion_oracle_fires;
    Alcotest.test_case "negative: wait-freedom fires on never + crash" `Slow
      wait_freedom_oracle_fires;
    Alcotest.test_case "negative: quiescence reads per-victim traffic" `Quick
      quiescence_oracle_fires;
    Alcotest.test_case "negative: bounded-waiting fires on fork-only" `Slow
      bounded_waiting_oracle_fires;
    Alcotest.test_case "negative: channel-bound reads real traffic" `Quick
      channel_bound_oracle_reads_traffic;
    Alcotest.test_case "negative: lemma watcher fires" `Quick lemmas_oracle_fires;
    Alcotest.test_case "positive control: oracles hold in hypothesis" `Slow
      oracles_hold_in_hypothesis;
    Alcotest.test_case "gen: deterministic per (profile, seed, case)" `Quick
      gen_is_deterministic;
    Alcotest.test_case "gen: sound profile stays in hypothesis" `Quick
      gen_sound_stays_in_hypothesis;
    Alcotest.test_case "repro: codec round-trips generated scenarios" `Quick codec_roundtrips;
    Alcotest.test_case "repro: codec rejects garbage" `Quick codec_rejects_garbage;
    Alcotest.test_case "shrink: known failure minimizes and replays" `Slow shrinker_regression;
    Alcotest.test_case "shrink: deterministic descent" `Slow shrinker_is_deterministic;
    Alcotest.test_case "campaign: report identical for any domains" `Slow
      campaign_domains_invariant;
    Alcotest.test_case "campaign: sound profile is clean" `Slow campaign_sound_is_clean;
    Alcotest.test_case "campaign: hostile finds, shrinks, replays" `Slow
      campaign_hostile_finds_and_shrinks;
    Alcotest.test_case "property registry" `Quick property_registry;
  ]
