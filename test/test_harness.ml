(* End-to-end properties of whole scenarios through the harness: the
   paper's theorems as randomized properties over topologies, seeds,
   crash plans and detectors. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let quiet_oracle : Harness.Scenario.detector_kind =
  Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }

let noisy_oracle : Harness.Scenario.detector_kind =
  Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 2; fp_window = 6_000; fp_max_len = 200 }

let scenario ?(topology = Cgraph.Topology.Ring 8) ?(seed = 1L) ?(detector = quiet_oracle)
    ?(algo = Harness.Scenario.Song_pike) ?(crashes = Harness.Scenario.No_crashes)
    ?(workload = Harness.Scenario.default_workload) ?(horizon = 40_000) () : Harness.Scenario.t =
  {
    Harness.Scenario.default with
    name = "test";
    topology;
    seed;
    detector;
    algo;
    crashes;
    workload;
    horizon;
    check_every = Some 101;
  }

(* -------------------------- basic plumbing ------------------------- *)

let deterministic_replay () =
  let s =
    scenario ~topology:(Cgraph.Topology.Random_gnp (14, 0.25, 2L)) ~detector:noisy_oracle
      ~crashes:(Harness.Scenario.Random_crashes { count = 2; from_t = 1_000; to_t = 9_000 })
      ()
  in
  let a = Harness.Run.run s and b = Harness.Run.run s in
  check int "same eats" a.total_eats b.total_eats;
  check int "same events" a.events_processed b.events_processed;
  check int "same violations" (Monitor.Exclusion.count a.exclusion) (Monitor.Exclusion.count b.exclusion);
  check bool "same crash plan" true (a.crashed = b.crashed)

(* The queue backend is an engine implementation detail: the same scenario
   must produce a bit-identical execution — down to the full trace record
   stream — on the binary heap and on the timing wheel. *)
let backend_equivalence () =
  let s =
    scenario ~topology:(Cgraph.Topology.Random_gnp (14, 0.25, 2L)) ~detector:noisy_oracle
      ~crashes:(Harness.Scenario.Random_crashes { count = 2; from_t = 1_000; to_t = 9_000 })
      ()
  in
  let run backend =
    let trace = Sim.Trace.collecting () in
    let r = Harness.Run.run ~backend ~trace s in
    (r, Sim.Trace.records trace)
  in
  let a, ta = run `Heap and b, tb = run `Wheel in
  check int "same eats" a.total_eats b.total_eats;
  check int "same events" a.events_processed b.events_processed;
  check bool "same per-process eats" true (a.eats_per_process = b.eats_per_process);
  check bool "same crash plan" true (a.crashed = b.crashed);
  check int "same convergence" a.convergence b.convergence;
  check int "same hungry transitions" a.hungry_transitions b.hungry_transitions;
  check int "same exclusion verdict" (Monitor.Exclusion.count a.exclusion)
    (Monitor.Exclusion.count b.exclusion);
  check int "same trace length" (List.length ta) (List.length tb);
  check bool "identical traces" true (ta = tb)

let seed_changes_run () =
  let s1 = scenario ~seed:1L () and s2 = scenario ~seed:2L () in
  let a = Harness.Run.run s1 and b = Harness.Run.run s2 in
  check bool "different seeds differ" true (a.events_processed <> b.events_processed)

let crash_plans () =
  let explicit =
    scenario ~crashes:(Harness.Scenario.Crash_at [ (3, 1_000); (0, 500) ]) ()
  in
  let r = Harness.Run.run explicit in
  check bool "explicit plan sorted" true (r.crashed = [ (0, 500); (3, 1_000) ]);
  let random =
    scenario ~crashes:(Harness.Scenario.Random_crashes { count = 3; from_t = 100; to_t = 5_000 }) ()
  in
  let r2 = Harness.Run.run random in
  check int "three victims" 3 (List.length r2.crashed);
  let pids = List.map fst r2.crashed in
  check int "distinct victims" 3 (List.length (List.sort_uniq compare pids))

let workload_drives_everyone () =
  let r = Harness.Run.run (scenario ()) in
  check bool "every process ate" true (Array.for_all (fun e -> e > 0) r.eats_per_process);
  check bool "hungry transitions >= eats" true (r.hungry_transitions >= r.total_eats)

(* Sharded stepping is an engine implementation detail exactly like the
   queue backend: the same scenario must produce a bit-identical
   execution — report and full trace record stream — for the legacy fire
   loop and for staged stepping at any shard count. The heartbeat +
   crashes scenario routes real message traffic, detector timers and
   cancellations through the staged path. *)
let shard_equivalence () =
  let s =
    scenario ~topology:(Cgraph.Topology.Random_gnp (14, 0.25, 2L))
      ~detector:(Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 })
      ~crashes:(Harness.Scenario.Random_crashes { count = 2; from_t = 1_000; to_t = 9_000 })
      ~horizon:20_000 ()
  in
  let run shards =
    let trace = Sim.Trace.collecting () in
    let r = Harness.Run.run ~trace ~shards s in
    (r, Sim.Trace.records trace)
  in
  let a, ta = run 0 in
  List.iter
    (fun shards ->
      let b, tb = run shards in
      check int (Printf.sprintf "same eats at shards=%d" shards) a.total_eats b.total_eats;
      check int "same events" a.events_processed b.events_processed;
      check int "same convergence" a.convergence b.convergence;
      check int "same detector mistakes" a.detector_mistakes b.detector_mistakes;
      check bool "same per-process eats" true (a.eats_per_process = b.eats_per_process);
      check bool "same crash plan" true (a.crashed = b.crashed);
      check bool "no invariant failures" true (b.invariant_error = None);
      check bool (Printf.sprintf "identical traces at shards=%d" shards) true (ta = tb))
    [ 1; 2; 4 ]

(* The shard-safe ping workload is where sharding buys real parallelism:
   shard-parallel execution on a domain pool must equal the sequential
   run exactly, and the result must not depend on the shard count. *)
let shard_ping_parallel_equality () =
  let topology = Cgraph.Topology.Random_gnp (48, 0.12, 5L) in
  let horizon = 1_500 in
  let seq = Harness.Shard_ping.run ~shards:1 ~topology ~horizon () in
  check bool "traffic flowed" true (seq.Harness.Shard_ping.sent > 0 && seq.received > 0);
  List.iter
    (fun shards ->
      let r = Harness.Shard_ping.run ~shards ~topology ~horizon () in
      check bool (Printf.sprintf "shards=%d equals shards=1" shards) true (r = seq))
    [ 2; 3; 8 ];
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun shards ->
          let r = Harness.Shard_ping.run ~pool ~parallel:true ~shards ~topology ~horizon () in
          check bool
            (Printf.sprintf "parallel shards=%d equals sequential" shards)
            true (r = seq))
        [ 2; 4 ])

(* ----------------------- theorem-shaped checks --------------------- *)

let wait_freedom_property =
  QCheck.Test.make ~name:"harness: wait-freedom on random scenarios (Theorem 2)" ~count:15
    QCheck.(triple (int_bound 10_000) (int_range 0 4) (int_bound 2))
    (fun (seed, crash_count, topo_idx) ->
      let topology =
        match topo_idx with
        | 0 -> Cgraph.Topology.Ring 10
        | 1 -> Cgraph.Topology.Clique 6
        | _ -> Cgraph.Topology.Random_gnp (12, 0.3, Int64.of_int (seed + 1))
      in
      let s =
        scenario ~topology ~seed:(Int64.of_int seed) ~detector:noisy_oracle
          ~crashes:
            (if crash_count = 0 then Harness.Scenario.No_crashes
             else Harness.Scenario.Random_crashes { count = crash_count; from_t = 1_000; to_t = 15_000 })
          ~horizon:50_000 ()
      in
      let r = Harness.Run.run s in
      Harness.Run.starved r ~older_than:10_000 = [] && r.invariant_error = None)

let safety_property =
  QCheck.Test.make ~name:"harness: no violations after convergence (Theorem 1)" ~count:15
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, topo_idx) ->
      let topology =
        match topo_idx with
        | 0 -> Cgraph.Topology.Ring 10
        | 1 -> Cgraph.Topology.Clique 6
        | _ -> Cgraph.Topology.Star 8
      in
      let s =
        scenario ~topology ~seed:(Int64.of_int seed) ~detector:noisy_oracle
          ~crashes:(Harness.Scenario.Random_crashes { count = 1; from_t = 1_000; to_t = 10_000 })
          ~workload:{ think = (0, 100); eat = (5, 30) }
          ~horizon:40_000 ()
      in
      let r = Harness.Run.run s in
      Monitor.Exclusion.count_after r.exclusion r.convergence = 0)

let bounded_waiting_property =
  QCheck.Test.make ~name:"harness: 2-bounded waiting after convergence (Theorem 3)" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let s =
        scenario ~topology:(Cgraph.Topology.Clique 5) ~seed:(Int64.of_int seed)
          ~detector:noisy_oracle ~workload:Harness.Scenario.contended_workload ~horizon:40_000 ()
      in
      let r = Harness.Run.run s in
      Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence <= 2)

let channel_capacity_property =
  QCheck.Test.make ~name:"harness: <= 4 messages per edge (Section 7)" ~count:10
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, topo_idx) ->
      let topology =
        match topo_idx with
        | 0 -> Cgraph.Topology.Torus (3, 3)
        | 1 -> Cgraph.Topology.Clique 6
        | _ -> Cgraph.Topology.Binary_tree 9
      in
      let s =
        scenario ~topology ~seed:(Int64.of_int seed) ~detector:noisy_oracle
          ~workload:Harness.Scenario.contended_workload
          ~crashes:(Harness.Scenario.Random_crashes { count = 1; from_t = 500; to_t = 5_000 })
          ~horizon:20_000 ()
      in
      let r = Harness.Run.run s in
      Net.Link_stats.max_edge_watermark r.link_stats <= 4)

let heartbeat_end_to_end () =
  let s =
    scenario
      ~topology:(Cgraph.Topology.Ring 10)
      ~detector:(Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 })
      ~crashes:(Harness.Scenario.Crash_at [ (4, 10_000) ])
      ~horizon:60_000 ()
  in
  let s = { s with delay = Net.Delay.Partial_synchrony { gst = 15_000; pre = (1, 100); post = (1, 8) } } in
  let r = Harness.Run.run s in
  check bool "wait-free" true (Harness.Run.starved r ~older_than:10_000 = []);
  check int "safe after measured convergence" 0
    (Monitor.Exclusion.count_after r.exclusion r.convergence);
  check bool "invariants held" true (r.invariant_error = None)

let choy_singh_baseline_contrast () =
  let crashes = Harness.Scenario.Crash_at [ (2, 3_000) ] in
  let ours = Harness.Run.run (scenario ~detector:quiet_oracle ~crashes ()) in
  let baseline = Harness.Run.run (scenario ~detector:Harness.Scenario.Never ~crashes ()) in
  check bool "ours wait-free" true (Harness.Run.starved ours ~older_than:10_000 = []);
  check bool "baseline starves" true (Harness.Run.starved baseline ~older_than:10_000 <> []);
  check bool "baseline still safe" true (Monitor.Exclusion.count baseline.exclusion = 0)

let perfect_detector_is_perpetually_safe () =
  let r =
    Harness.Run.run
      (scenario ~detector:Harness.Scenario.Perfect
         ~crashes:(Harness.Scenario.Random_crashes { count = 3; from_t = 1_000; to_t = 10_000 })
         ~workload:Harness.Scenario.contended_workload ())
  in
  check int "zero violations ever" 0 (Monitor.Exclusion.count r.exclusion);
  check bool "wait-free" true (Harness.Run.starved r ~older_than:10_000 = [])

let throughput_sane () =
  let r = Harness.Run.run (scenario ()) in
  check bool "throughput positive" true (Harness.Run.throughput r > 0.0);
  check bool "eats within horizon" true (r.total_eats > 0)

(* ------------------------- stabilize harness ----------------------- *)

let stabilize_run_report () =
  let spec =
    {
      Harness.Run_stabilize.protocol = Harness.Run_stabilize.Coloring;
      transient_faults = [ (8_000, 3) ];
      scenario =
        scenario
          ~topology:(Cgraph.Topology.Random_gnp (12, 0.3, 4L))
          ~detector:noisy_oracle
          ~crashes:(Harness.Scenario.Crash_at [ (1, 2_000) ])
          ~horizon:40_000 ();
    }
  in
  let r = Harness.Run_stabilize.run spec in
  check bool "converged" true (r.outcome.converged_at <> None);
  check int "no residual error" 0 r.outcome.final_error;
  check bool "invariants" true (r.invariant_error = None);
  check bool "error series recorded" true (List.length r.outcome.error_series > 1)

let stabilize_token_ring_requires_ring () =
  let spec =
    {
      Harness.Run_stabilize.protocol = Harness.Run_stabilize.Token_ring;
      transient_faults = [];
      scenario = scenario ~topology:(Cgraph.Topology.Clique 4) ();
    }
  in
  Alcotest.check_raises "non-ring rejected"
    (Invalid_argument "Run_stabilize: token ring needs a ring topology") (fun () ->
      ignore (Harness.Run_stabilize.run spec))

(* ------------------------- experiment registry --------------------- *)

let unreliable_detector_breaks_safety_not_liveness () =
  let s =
    scenario
      ~topology:(Cgraph.Topology.Clique 5)
      ~detector:(Harness.Scenario.Unreliable { period = 1_000; duration = 120 })
      ~workload:{ think = (0, 60); eat = (10, 30) }
      ~crashes:(Harness.Scenario.Crash_at [ (1, 5_000) ])
      ~horizon:40_000 ()
  in
  let r = Harness.Run.run s in
  check bool "still wait-free" true (Harness.Run.starved r ~older_than:10_000 = []);
  check bool "violations never stop (accuracy is load-bearing)" true
    (Monitor.Exclusion.count_after r.exclusion (2 * 40_000 / 3) > 0);
  check bool "structural lemmas still hold" true (r.invariant_error = None)

let batch_aggregates () =
  let s =
    scenario
      ~topology:(Cgraph.Topology.Ring 8)
      ~detector:noisy_oracle
      ~crashes:(Harness.Scenario.Random_crashes { count = 1; from_t = 1_000; to_t = 8_000 })
      ~horizon:25_000 ()
  in
  let a = Harness.Batch.run ~seeds:4 s in
  check int "runs" 4 a.runs;
  check int "eats summary count" 4 a.total_eats.count;
  check int "no post-convergence violations across seeds" 0 a.violations_after_conv_total;
  check bool "bounded overtaking across seeds" true (a.max_overtakes_after_conv <= 2);
  check int "nobody starved across seeds" 0 a.starved_total;
  check bool "watermark" true (a.worst_edge_watermark <= 4);
  check bool "invariants" true (a.invariant_errors = []);
  check bool "pp renders" true (String.length (Format.asprintf "%a" Harness.Batch.pp a) > 0)

let ring16_heartbeat () =
  let s =
    scenario
      ~topology:(Cgraph.Topology.Ring 16)
      ~detector:(Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 })
      ~crashes:(Harness.Scenario.Crash_at [ (5, 6_000) ])
      ~horizon:20_000 ()
  in
  { s with delay = Net.Delay.Partial_synchrony { gst = 8_000; pre = (1, 60); post = (1, 8) } }

let batch_parallel_equals_sequential () =
  let s = ring16_heartbeat () in
  let seq = Harness.Batch.run ~seeds:4 ~domains:1 s in
  let par = Harness.Batch.run ~seeds:4 ~domains:4 s in
  (* Full structural equality: every summary, every fold, and the
     invariant_errors list in seed order. *)
  check bool "aggregates equal" true (seq = par);
  check Alcotest.string "printed form byte-identical"
    (Format.asprintf "%a" Harness.Batch.pp seq)
    (Format.asprintf "%a" Harness.Batch.pp par)

let batch_patience_knob () =
  let s = ring16_heartbeat () in
  let default = Harness.Batch.run ~seeds:2 s in
  let explicit = Harness.Batch.run ~seeds:2 ~patience:(s.horizon / 4) s in
  check bool "default patience is horizon/4" true (default = explicit);
  let impatient = Harness.Batch.run ~seeds:2 ~patience:1 s in
  check bool "tighter patience can only find more stragglers" true
    (impatient.starved_total >= default.starved_total)

let world_staged_advance () =
  let s = ring16_heartbeat () in
  let w = Harness.World.create s in
  check int "fresh world at time zero" 0 (Harness.World.now w);
  Harness.World.advance w ~until:(s.horizon / 3);
  Harness.World.advance w ~until:s.horizon;
  let staged = Harness.World.report w in
  let oneshot = Harness.Run.run s in
  check int "same eats" oneshot.total_eats staged.total_eats;
  check int "same events" oneshot.events_processed staged.events_processed;
  check int "same hungry transitions" oneshot.hungry_transitions staged.hungry_transitions;
  check bool "same convergence" true (oneshot.convergence = staged.convergence);
  check bool "same crash plan" true (oneshot.crashed = staged.crashed);
  check bool "same per-process eats" true (oneshot.eats_per_process = staged.eats_per_process)

let replay_property =
  QCheck.Test.make ~name:"harness: Run.run twice gives identical summaries" ~count:8
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, topo_idx) ->
      let topology =
        match topo_idx with
        | 0 -> Cgraph.Topology.Ring 8
        | 1 -> Cgraph.Topology.Clique 5
        | _ -> Cgraph.Topology.Random_gnp (10, 0.3, Int64.of_int (seed + 1))
      in
      let s =
        scenario ~topology ~seed:(Int64.of_int seed) ~detector:noisy_oracle
          ~crashes:(Harness.Scenario.Random_crashes { count = 1; from_t = 500; to_t = 8_000 })
          ~horizon:15_000 ()
      in
      let a = Harness.Run.run s and b = Harness.Run.run s in
      a.total_eats = b.total_eats
      && a.events_processed = b.events_processed
      && a.hungry_transitions = b.hungry_transitions
      && a.convergence = b.convergence
      && a.crashed = b.crashed
      && a.eats_per_process = b.eats_per_process
      && a.invariant_error = b.invariant_error
      && Monitor.Exclusion.count a.exclusion = Monitor.Exclusion.count b.exclusion
      && Monitor.Response.summary a.response = Monitor.Response.summary b.response
      && Net.Link_stats.max_edge_watermark a.link_stats
         = Net.Link_stats.max_edge_watermark b.link_stats)

let names_stable () =
  check Alcotest.string "algo name" "song-pike" (Harness.Scenario.algo_name Harness.Scenario.Song_pike);
  check Alcotest.string "ordered name" "ordered" (Harness.Scenario.algo_name Harness.Scenario.Ordered);
  check Alcotest.string "never" "never" (Harness.Scenario.detector_name Harness.Scenario.Never);
  check Alcotest.string "oracle" "oracle-evp" (Harness.Scenario.detector_name noisy_oracle);
  check Alcotest.string "unreliable" "unreliable-forever"
    (Harness.Scenario.detector_name (Harness.Scenario.Unreliable { period = 100; duration = 10 }));
  check Alcotest.string "protocol names" "bfs-tree"
    (Harness.Run_stabilize.protocol_name Harness.Run_stabilize.Bfs_tree)

let phases_in_report () =
  let r = Harness.Run.run (scenario ~workload:Harness.Scenario.contended_workload ()) in
  let d = Monitor.Phases.doorway_summary r.phases in
  let f = Monitor.Phases.fork_summary r.phases in
  check bool "doorway samples collected" true (d.count > 100);
  check bool "phase means are plausible" true (d.mean >= 0.0 && f.mean >= 0.0);
  (* Baselines produce no doorway samples. *)
  let rb =
    Harness.Run.run
      (scenario ~algo:Harness.Scenario.Chandy_misra ~detector:Harness.Scenario.Never ())
  in
  check int "no doorway samples for baselines" 0 (Monitor.Phases.doorway_summary rb.phases).count

let experiments_registry () =
  check int "eighteen experiments" 18 (List.length Harness.Experiments.all);
  check bool "find e1" true (Harness.Experiments.find "E1" <> None);
  check bool "unknown id" true (Harness.Experiments.find "zz" = None);
  List.iter
    (fun (e : Harness.Experiments.t) ->
      check bool (e.id ^ " nonempty") true (e.title <> "" && e.claim <> ""))
    Harness.Experiments.all

let suite =
  [
    Alcotest.test_case "deterministic replay" `Quick deterministic_replay;
    Alcotest.test_case "heap and wheel backends are trace-identical" `Quick backend_equivalence;
    Alcotest.test_case "seed sensitivity" `Quick seed_changes_run;
    Alcotest.test_case "crash plans" `Quick crash_plans;
    Alcotest.test_case "workload drives everyone" `Quick workload_drives_everyone;
    Alcotest.test_case "sharded stepping is trace-identical" `Quick shard_equivalence;
    Alcotest.test_case "shard_ping: parallel = sequential for any shards" `Quick
      shard_ping_parallel_equality;
    QCheck_alcotest.to_alcotest wait_freedom_property;
    QCheck_alcotest.to_alcotest safety_property;
    QCheck_alcotest.to_alcotest bounded_waiting_property;
    QCheck_alcotest.to_alcotest channel_capacity_property;
    Alcotest.test_case "heartbeat detector end to end" `Slow heartbeat_end_to_end;
    Alcotest.test_case "Choy-Singh contrast (Theorem 2 motivation)" `Quick choy_singh_baseline_contrast;
    Alcotest.test_case "perfect detector: perpetual exclusion" `Quick perfect_detector_is_perpetually_safe;
    Alcotest.test_case "throughput sanity" `Quick throughput_sane;
    Alcotest.test_case "unreliable detector: wait-free but never safe" `Quick
      unreliable_detector_breaks_safety_not_liveness;
    Alcotest.test_case "stabilize harness report" `Quick stabilize_run_report;
    Alcotest.test_case "stabilize validates topology" `Quick stabilize_token_ring_requires_ring;
    Alcotest.test_case "names are stable" `Quick names_stable;
    Alcotest.test_case "phase breakdown in reports" `Quick phases_in_report;
    Alcotest.test_case "batch: multi-seed aggregation" `Slow batch_aggregates;
    Alcotest.test_case "batch: domains:1 = domains:4 bit-identical" `Slow
      batch_parallel_equals_sequential;
    Alcotest.test_case "batch: ?patience knob" `Slow batch_patience_knob;
    Alcotest.test_case "world: staged advance = one-shot run" `Quick world_staged_advance;
    QCheck_alcotest.to_alcotest replay_property;
    Alcotest.test_case "experiment registry" `Quick experiments_registry;
  ]
