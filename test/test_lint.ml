(* The determinism & domain-safety lint (lib/lint): each fixture under
   lint_fixtures/ must fire exactly the expected (rule, line) pairs, the
   suppression fixture must be silent, and the real deterministic zone
   must be clean after the PR-2 satellite fixes. *)

let fixture name = Filename.concat "lint_fixtures" name

let hits ?rules ?allowlist file =
  let report = Lint.Engine.lint_file ?rules ?allowlist file in
  Alcotest.(check (list string)) "no read/parse errors" [] (List.map fst report.errors);
  List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) report.findings

let check_hits name expected actual =
  Alcotest.(check (list (pair string int))) name expected actual

let test_nondet () =
  check_hits "bare fold and iter fire; sorted fold does not"
    [ ("nondet-iteration", 3); ("nondet-iteration", 8) ]
    (hits (fixture "bad_nondet_iteration.ml"))

let test_ambient () =
  check_hits "Random/Unix/Sys.time/exit all fire"
    [
      ("ambient-effects", 3);
      ("ambient-effects", 5);
      ("ambient-effects", 7);
      ("ambient-effects", 9);
    ]
    (hits (fixture "bad_ambient_effects.ml"))

let test_io () =
  check_hits "printf and print_endline fire"
    [ ("io-in-library", 2); ("io-in-library", 4) ]
    (hits (fixture "bad_io_in_library.ml"))

let test_physical_eq () =
  check_hits "boxed == / != fire; int-literal comparison does not"
    [ ("physical-equality", 4); ("physical-equality", 6) ]
    (hits (fixture "bad_physical_equality.ml"))

let test_mutable_global () =
  check_hits "toplevel allocations fire; per-call allocation does not"
    [ ("mutable-global", 3); ("mutable-global", 5); ("mutable-global", 7) ]
    (hits (fixture "bad_mutable_global.ml"))

let test_exception_swallow () =
  check_hits "wildcard handler fires; Not_found handler does not"
    [ ("exception-swallow", 3) ]
    (hits (fixture "bad_exception_swallow.ml"))

let test_suppressed () =
  check_hits "[@lint.allow] silences every rule" [] (hits (fixture "suppressed.ml"))

let test_rule_selection () =
  (* With only io-in-library enabled, the ambient fixture is silent and
     the io fixture still fires. *)
  check_hits "disabled rules do not fire" []
    (hits ~rules:[ Lint.Rule.Io_in_library ] (fixture "bad_ambient_effects.ml"));
  check_hits "enabled rule still fires"
    [ ("io-in-library", 2); ("io-in-library", 4) ]
    (hits ~rules:[ Lint.Rule.Io_in_library ] (fixture "bad_io_in_library.ml"))

let test_allowlist () =
  let allowlist =
    Lint.Allowlist.of_list [ ("io-in-library", fixture "bad_io_in_library.ml") ]
  in
  check_hits "allowlisted file is silent" [] (hits ~allowlist (fixture "bad_io_in_library.ml"));
  check_hits "allowlist is per-rule"
    [ ("ambient-effects", 3); ("ambient-effects", 5); ("ambient-effects", 7); ("ambient-effects", 9) ]
    (hits ~allowlist (fixture "bad_ambient_effects.ml"))

let test_rng_exemption () =
  (* Random is sanctioned only inside a sim/rng.ml. *)
  let source = "let roll () = Random.int 6\n" in
  let clean = Lint.Engine.lint_source ~file:"lib/sim/rng.ml" source in
  Alcotest.(check int) "sim/rng.ml may use Random" 0 (List.length clean.findings);
  let dirty = Lint.Engine.lint_source ~file:"lib/net/rng_like.ml" source in
  check_hits "elsewhere Random fires"
    [ ("ambient-effects", 1) ]
    (List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) dirty.findings)

let test_parse_error () =
  let report = Lint.Engine.lint_source ~file:"broken.ml" "let = in" in
  Alcotest.(check int) "syntax error reported, not raised" 1 (List.length report.errors)

(* The real tree: the deterministic zone must be clean under the
   repository allowlist. dune copies library sources next to the test
   dir inside _build, so the zone is reachable at ../lib. *)
let test_zone_clean () =
  let dirs = List.map (Filename.concat "..") Lint.Zone.default_dirs in
  let files = Lint.Zone.files ~dirs () in
  if List.length files < 40 then () (* partial checkout: zone not materialised *)
  else begin
    let allowlist =
      Lint.Allowlist.of_list
        [ ("io-in-library", "lib/stats/table.ml"); ("io-in-library", "lib/stats/series.ml") ]
    in
    let report = Lint.Engine.lint_files ~allowlist files in
    Alcotest.(check (list string))
      "no parse errors in the zone" []
      (List.map fst report.errors);
    Alcotest.(check (list string))
      "deterministic zone lints clean" []
      (List.map Lint.Finding.to_text report.findings)
  end

let suite =
  [
    Alcotest.test_case "fixture: nondet-iteration" `Quick test_nondet;
    Alcotest.test_case "fixture: ambient-effects" `Quick test_ambient;
    Alcotest.test_case "fixture: io-in-library" `Quick test_io;
    Alcotest.test_case "fixture: physical-equality" `Quick test_physical_eq;
    Alcotest.test_case "fixture: mutable-global" `Quick test_mutable_global;
    Alcotest.test_case "fixture: exception-swallow" `Quick test_exception_swallow;
    Alcotest.test_case "fixture: [@lint.allow] suppression" `Quick test_suppressed;
    Alcotest.test_case "rule selection (--rules)" `Quick test_rule_selection;
    Alcotest.test_case "allowlist file semantics" `Quick test_allowlist;
    Alcotest.test_case "sim/rng.ml Random exemption" `Quick test_rng_exemption;
    Alcotest.test_case "parse errors are reported" `Quick test_parse_error;
    Alcotest.test_case "deterministic zone is clean" `Quick test_zone_clean;
  ]
