(* The determinism & domain-safety lint (lib/lint): each fixture under
   lint_fixtures/ must fire exactly the expected (rule, line) pairs, the
   suppression fixture must be silent, and the real deterministic zone
   must be clean after the PR-2 satellite fixes.

   The typed fixtures (domain-escape, transitive effects,
   hot-path-alloc) are typechecked in-process against the switch's
   stdlib — no dune, no cmt files — then run through the same
   interprocedural passes `dune build @lint` uses. *)

let fixture name = Filename.concat "lint_fixtures" name

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let typed_graph file =
  let path = fixture file in
  match Lint.Cmt_load.typecheck_source ~file:path (read_file path) with
  | Error msg -> Alcotest.failf "typecheck %s: %s" file msg
  | Ok u -> Lint.Callgraph.build [ u ]

let typed_findings pass file = pass (typed_graph file)

let typed_hits pass file =
  List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) (typed_findings pass file)

let hits ?rules ?allowlist file =
  let report = Lint.Engine.lint_file ?rules ?allowlist file in
  Alcotest.(check (list string)) "no read/parse errors" [] (List.map fst report.errors);
  List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) report.findings

let check_hits name expected actual =
  Alcotest.(check (list (pair string int))) name expected actual

let test_nondet () =
  check_hits "bare fold and iter fire; sorted fold does not"
    [ ("nondet-iteration", 3); ("nondet-iteration", 8) ]
    (hits (fixture "bad_nondet_iteration.ml"))

let test_ambient () =
  check_hits "Random/Unix/Sys.time/exit all fire"
    [
      ("ambient-effects", 3);
      ("ambient-effects", 5);
      ("ambient-effects", 7);
      ("ambient-effects", 9);
    ]
    (hits (fixture "bad_ambient_effects.ml"))

let test_io () =
  check_hits "printf and print_endline fire"
    [ ("io-in-library", 2); ("io-in-library", 4) ]
    (hits (fixture "bad_io_in_library.ml"))

let test_physical_eq () =
  check_hits "boxed == / != fire; int-literal comparison does not"
    [ ("physical-equality", 4); ("physical-equality", 6) ]
    (hits (fixture "bad_physical_equality.ml"))

let test_mutable_global () =
  check_hits "toplevel allocations fire; per-call allocation does not"
    [ ("mutable-global", 3); ("mutable-global", 5); ("mutable-global", 7) ]
    (hits (fixture "bad_mutable_global.ml"))

let test_exception_swallow () =
  check_hits "wildcard handler fires; Not_found handler does not"
    [ ("exception-swallow", 3) ]
    (hits (fixture "bad_exception_swallow.ml"))

let test_suppressed () =
  check_hits "[@lint.allow] silences every rule" [] (hits (fixture "suppressed.ml"))

let test_rule_selection () =
  (* With only io-in-library enabled, the ambient fixture is silent and
     the io fixture still fires. *)
  check_hits "disabled rules do not fire" []
    (hits ~rules:[ Lint.Rule.Io_in_library ] (fixture "bad_ambient_effects.ml"));
  check_hits "enabled rule still fires"
    [ ("io-in-library", 2); ("io-in-library", 4) ]
    (hits ~rules:[ Lint.Rule.Io_in_library ] (fixture "bad_io_in_library.ml"))

let test_allowlist () =
  let allowlist =
    Lint.Allowlist.of_list [ ("io-in-library", fixture "bad_io_in_library.ml") ]
  in
  check_hits "allowlisted file is silent" [] (hits ~allowlist (fixture "bad_io_in_library.ml"));
  check_hits "allowlist is per-rule"
    [ ("ambient-effects", 3); ("ambient-effects", 5); ("ambient-effects", 7); ("ambient-effects", 9) ]
    (hits ~allowlist (fixture "bad_ambient_effects.ml"))

let test_rng_exemption () =
  (* Random is sanctioned only inside a sim/rng.ml. *)
  let source = "let roll () = Random.int 6\n" in
  let clean = Lint.Engine.lint_source ~file:"lib/sim/rng.ml" source in
  Alcotest.(check int) "sim/rng.ml may use Random" 0 (List.length clean.findings);
  let dirty = Lint.Engine.lint_source ~file:"lib/net/rng_like.ml" source in
  check_hits "elsewhere Random fires"
    [ ("ambient-effects", 1) ]
    (List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) dirty.findings)

let test_parse_error () =
  let report = Lint.Engine.lint_source ~file:"broken.ml" "let = in" in
  Alcotest.(check int) "syntax error reported, not raised" 1 (List.length report.errors)

(* ------------------------------------------------------------------ *)
(* Typed interprocedural passes.                                       *)
(* ------------------------------------------------------------------ *)

let test_domain_escape () =
  let findings = typed_findings (fun g -> Lint.Escape.run g) "bad_domain_escape.ml" in
  check_hits "shared ref / shared table reaching run_batch fire"
    [ ("domain-escape", 14); ("domain-escape", 19); ("domain-escape", 24) ]
    (List.map (fun (f : Lint.Finding.t) -> (f.rule, f.line)) findings);
  (* The two-hop finding must name the forwarding chain. *)
  let two_hop = List.find (fun (f : Lint.Finding.t) -> f.line = 19) findings in
  let mentions needle =
    let hay = two_hop.message in
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chain names tier1" true (mentions "tier1");
  Alcotest.(check bool) "chain names tier2" true (mentions "tier2");
  check_hits "shard-local / fresh / read-only captures are silent" []
    (typed_hits (fun g -> Lint.Escape.run g) "good_domain_escape.ml")

let test_transitive_effects () =
  check_hits
    "clean bindings inherit their helpers' effects, at their own binding"
    [
      ("ambient-effects", 4);
      ("ambient-effects", 5);
      ("io-in-library", 8);
      ("mutable-global", 12);
    ]
    (typed_hits (fun g -> Lint.Effects.run g) "bad_transitive_effect.ml");
  check_hits "sanctioned sources do not taint; local mutation is not an effect" []
    (typed_hits (fun g -> Lint.Effects.run g) "good_transitive_effect.ml")

let test_hot_path_alloc () =
  check_hits "every allocation form fires inside [@lint.hot]; not outside"
    [
      ("hot-path-alloc", 3);
      ("hot-path-alloc", 4);
      ("hot-path-alloc", 5);
      ("hot-path-alloc", 6);
      ("hot-path-alloc", 7);
    ]
    (typed_hits (fun g -> Lint.Hotpath.run g) "bad_hot_path_alloc.ml");
  check_hits "toplevel recursion and a justified cons are silent" []
    (typed_hits (fun g -> Lint.Hotpath.run g) "good_hot_path_alloc.ml")

(* ------------------------------------------------------------------ *)
(* Suppression hygiene.                                                *)
(* ------------------------------------------------------------------ *)

let run_hotpath_on ~registry ~file source =
  match Lint.Cmt_load.typecheck_source ~file source with
  | Error msg -> Alcotest.failf "typecheck %s: %s" file msg
  | Ok u -> Lint.Hotpath.run ~registry (Lint.Callgraph.build [ u ])

let test_unused_allow () =
  (* An attribute that suppresses nothing is reported once its rule has
     been checked; one that earns its keep is not. *)
  let registry = Lint.Suppress.create () in
  let idle =
    run_hotpath_on ~registry ~file:"idle_allow.ml"
      "let[@lint.hot] f x = (x + 1 [@lint.allow \"hot-path-alloc\"])\n"
  in
  Alcotest.(check int) "nothing fired to suppress" 0 (List.length idle);
  let busy =
    run_hotpath_on ~registry ~file:"busy_allow.ml"
      "let[@lint.hot] push x l = (x :: l) [@lint.allow \"hot-path-alloc\"]\n"
  in
  Alcotest.(check int) "the justified cons is silent" 0 (List.length busy);
  Alcotest.(check (list (pair string int)))
    "only the idle attribute is stale"
    [ ("idle_allow.ml", 1) ]
    (List.map
       (fun (s : Lint.Suppress.site) -> (s.file, s.line))
       (Lint.Suppress.unused registry ~catalogue:[ "hot-path-alloc" ]))

let test_stale_allowlist_tracking () =
  (* The driver errors on allowlist entries that suppressed nothing;
     the tracking it relies on lives in Allowlist. *)
  let allowlist =
    Lint.Allowlist.of_list
      [
        ("io-in-library", fixture "bad_io_in_library.ml");
        ("io-in-library", fixture "bad_ambient_effects.ml");
      ]
  in
  ignore (hits ~allowlist (fixture "bad_io_in_library.ml"));
  ignore (hits ~allowlist (fixture "bad_ambient_effects.ml"));
  Alcotest.(check (list (pair string string)))
    "only the entry that suppressed nothing is stale"
    [ ("io-in-library", fixture "bad_ambient_effects.ml") ]
    (List.map
       (fun (e : Lint.Allowlist.entry) -> (e.rule, e.path))
       (Lint.Allowlist.unused allowlist))

(* The real tree: the deterministic zone must be clean under the
   repository allowlist. dune copies library sources next to the test
   dir inside _build, so the zone is reachable at ../lib. *)
let test_zone_clean () =
  let dirs = List.map (Filename.concat "..") Lint.Zone.default_dirs in
  let files = Lint.Zone.files ~dirs () in
  if List.length files < 40 then () (* partial checkout: zone not materialised *)
  else begin
    let allowlist =
      Lint.Allowlist.of_list
        [ ("io-in-library", "lib/stats/table.ml"); ("io-in-library", "lib/stats/series.ml") ]
    in
    let report = Lint.Engine.lint_files ~allowlist files in
    Alcotest.(check (list string))
      "no parse errors in the zone" []
      (List.map fst report.errors);
    Alcotest.(check (list string))
      "deterministic zone lints clean" []
      (List.map Lint.Finding.to_text report.findings)
  end

(* Typed counterpart of [test_zone_clean]: load the zone's .cmt
   artifacts (present inside _build because the test links the zone
   libraries) and hold the interprocedural passes to the same bar. *)
let test_typed_zone_clean () =
  let dirs = List.map (Filename.concat "..") Lint.Zone.default_dirs in
  let res = Lint.Cmt_load.load_dirs dirs in
  if res.units = [] then () (* sandboxed run: artifacts not visible *)
  else begin
    Alcotest.(check (list string))
      "no unreadable cmts" [] (List.map fst res.errors);
    let graph = Lint.Callgraph.build res.units in
    let allowlist =
      Lint.Allowlist.of_list
        [ ("io-in-library", "lib/stats/table.ml"); ("io-in-library", "lib/stats/series.ml") ]
    in
    let findings =
      Lint.Escape.run graph
      @ Lint.Effects.run ~allowlist graph
      @ Lint.Hotpath.run graph
    in
    Alcotest.(check (list string))
      "typed passes are clean over the zone" []
      (List.map Lint.Finding.to_text findings)
  end

let suite =
  [
    Alcotest.test_case "fixture: nondet-iteration" `Quick test_nondet;
    Alcotest.test_case "fixture: ambient-effects" `Quick test_ambient;
    Alcotest.test_case "fixture: io-in-library" `Quick test_io;
    Alcotest.test_case "fixture: physical-equality" `Quick test_physical_eq;
    Alcotest.test_case "fixture: mutable-global" `Quick test_mutable_global;
    Alcotest.test_case "fixture: exception-swallow" `Quick test_exception_swallow;
    Alcotest.test_case "fixture: [@lint.allow] suppression" `Quick test_suppressed;
    Alcotest.test_case "rule selection (--rules)" `Quick test_rule_selection;
    Alcotest.test_case "allowlist file semantics" `Quick test_allowlist;
    Alcotest.test_case "sim/rng.ml Random exemption" `Quick test_rng_exemption;
    Alcotest.test_case "parse errors are reported" `Quick test_parse_error;
    Alcotest.test_case "typed fixture: domain-escape" `Quick test_domain_escape;
    Alcotest.test_case "typed fixture: transitive effects" `Quick test_transitive_effects;
    Alcotest.test_case "typed fixture: hot-path-alloc" `Quick test_hot_path_alloc;
    Alcotest.test_case "hygiene: unused [@lint.allow]" `Quick test_unused_allow;
    Alcotest.test_case "hygiene: stale allowlist tracking" `Quick test_stale_allowlist_tracking;
    Alcotest.test_case "deterministic zone is clean" `Quick test_zone_clean;
    Alcotest.test_case "typed passes clean over the zone" `Quick test_typed_zone_clean;
  ]
