let () =
  Alcotest.run "repro"
    [
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("exec", Test_exec.suite);
      ("graph", Test_graph.suite);
      ("net", Test_net.suite);
      ("detector", Test_detector.suite);
      ("dining", Test_dining.suite);
      ("lemmas", Test_lemmas.suite);
      ("baselines", Test_baselines.suite);
      ("monitor", Test_monitor.suite);
      ("stats", Test_stats.suite);
      ("stabilize", Test_stabilize.suite);
      ("harness", Test_harness.suite);
      ("mcheck", Test_mcheck.suite);
      ("lint", Test_lint.suite);
      ("fuzz", Test_fuzz.suite);
      ("soak", Test_soak.suite);
    ]
