(* Tests for the network substrate: Faults, Delay, Link_stats, Network. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let ring4 () = Cgraph.Topology.build (Cgraph.Topology.Ring 4)

let make_net ?(delay = Net.Delay.Uniform (1, 10)) ?(seed = 1L) ?on_drop ~handler () =
  let engine = Sim.Engine.create () in
  let graph = ring4 () in
  let faults = Net.Faults.create engine ~n:4 in
  let rng = Sim.Rng.create seed in
  let net = Net.Network.create ~engine ~graph ~delay ~faults ~rng ?on_drop ~handler () in
  (engine, faults, net)

(* ------------------------------ Faults ----------------------------- *)

let faults_basics () =
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  check bool "initially live" false (Net.Faults.is_crashed faults 0);
  check bool "initially correct" true (Net.Faults.correct faults 0);
  Net.Faults.schedule_crash faults ~pid:1 ~at:50;
  check bool "not crashed yet" false (Net.Faults.is_crashed faults 1);
  check bool "already not correct" false (Net.Faults.correct faults 1);
  ignore (Sim.Engine.schedule engine ~at:100 (fun () -> ()));
  Sim.Engine.run_all engine;
  check bool "crashed after time" true (Net.Faults.is_crashed faults 1);
  check (Alcotest.list int) "crashed_by" [ 1 ] (Net.Faults.crashed_by faults 60)

let faults_earliest_wins () =
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:2 in
  Net.Faults.schedule_crash faults ~pid:0 ~at:100;
  Net.Faults.schedule_crash faults ~pid:0 ~at:50;
  Net.Faults.schedule_crash faults ~pid:0 ~at:200;
  check int "earliest wins" 50 (Net.Faults.crash_time faults 0)

let faults_notifies () =
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:3 in
  let crashes = ref [] in
  Net.Faults.on_crash faults (fun pid -> crashes := (pid, Sim.Engine.now engine) :: !crashes);
  Net.Faults.schedule_crash faults ~pid:2 ~at:30;
  Net.Faults.schedule_crash faults ~pid:0 ~at:10;
  Sim.Engine.run_all engine;
  check bool "both notified in order" true (List.rev !crashes = [ (0, 10); (2, 30) ])

(* Regression: rescheduling a crash earlier used to leave the original
   crash event armed, so listeners fired a second time when it came due. *)
let faults_rescheduled_crash_notifies_once () =
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:2 in
  let crashes = ref [] in
  Net.Faults.on_crash faults (fun pid -> crashes := (pid, Sim.Engine.now engine) :: !crashes);
  Net.Faults.schedule_crash faults ~pid:0 ~at:100;
  Net.Faults.schedule_crash faults ~pid:0 ~at:40;
  Net.Faults.schedule_crash faults ~pid:0 ~at:200 (* later: ignored *);
  Sim.Engine.run_all engine;
  check bool "exactly one notification, at the earliest time" true (!crashes = [ (0, 40) ])

let faults_listeners_fire_in_registration_order () =
  let engine = Sim.Engine.create () in
  let faults = Net.Faults.create engine ~n:1 in
  let order = ref [] in
  Net.Faults.on_crash faults (fun _ -> order := "first" :: !order);
  Net.Faults.on_crash faults (fun _ -> order := "second" :: !order);
  Net.Faults.schedule_crash faults ~pid:0 ~at:5;
  Sim.Engine.run_all engine;
  check (Alcotest.list Alcotest.string) "registration order" [ "first"; "second" ]
    (List.rev !order)

(* ------------------------------ Delay ------------------------------ *)

let delay_bounds () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 200 do
    let d = Net.Delay.sample (Net.Delay.Uniform (2, 9)) rng ~now:0 in
    check bool "uniform in range" true (d >= 2 && d <= 9)
  done;
  check int "fixed" 7 (Net.Delay.sample (Net.Delay.Fixed 7) rng ~now:0);
  check int "fixed clamps to 1" 1 (Net.Delay.sample (Net.Delay.Fixed 0) rng ~now:0);
  for _ = 1 to 200 do
    let d = Net.Delay.sample (Net.Delay.Exponential (5.0, 20)) rng ~now:0 in
    check bool "exponential capped" true (d >= 1 && d <= 20)
  done

let delay_partial_synchrony () =
  let rng = Sim.Rng.create 4L in
  let model = Net.Delay.Partial_synchrony { gst = 100; pre = (1, 50); post = (1, 5) } in
  for _ = 1 to 100 do
    check bool "post-GST bound" true (Net.Delay.sample model rng ~now:100 <= 5)
  done;
  check (Alcotest.option int) "upper bound after GST" (Some 5)
    (Net.Delay.upper_bound_after model 100);
  check (Alcotest.option int) "upper bound before GST" (Some 50)
    (Net.Delay.upper_bound_after model 0)

(* ----------------------------- Network ----------------------------- *)

let network_delivers () =
  let got = ref [] in
  let engine, _, net = make_net ~handler:(fun ~dst ~src msg -> got := (dst, src, msg) :: !got) () in
  Net.Network.send net ~src:0 ~dst:1 "hello";
  Sim.Engine.run_all engine;
  check bool "delivered once" true (!got = [ (1, 0, "hello") ])

let network_fifo_per_channel () =
  let got = ref [] in
  let engine, _, net = make_net ~handler:(fun ~dst:_ ~src:_ msg -> got := msg :: !got) () in
  for i = 1 to 50 do
    Net.Network.send net ~src:0 ~dst:1 i
  done;
  Sim.Engine.run_all engine;
  check (Alcotest.list int) "FIFO order" (List.init 50 (fun i -> i + 1)) (List.rev !got)

let network_fifo_property =
  QCheck.Test.make ~name:"network: per-channel FIFO under random delays" ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 60))
    (fun (seed, count) ->
      let got = ref [] in
      let engine, _, net =
        make_net
          ~delay:(Net.Delay.Uniform (1, 50))
          ~seed:(Int64.of_int seed)
          ~handler:(fun ~dst:_ ~src msg -> got := (src, msg) :: !got)
          ()
      in
      (* Interleave sends on two channels into the same destination. *)
      for i = 1 to count do
        Net.Network.send net ~src:0 ~dst:1 i;
        Net.Network.send net ~src:2 ~dst:1 i
      done;
      Sim.Engine.run_all engine;
      let per_src s = List.rev (List.filter_map (fun (src, m) -> if src = s then Some m else None) !got) in
      per_src 0 = List.init count (fun i -> i + 1) && per_src 2 = List.init count (fun i -> i + 1))

let network_rejects_non_neighbors () =
  let _, _, net = make_net ~handler:(fun ~dst:_ ~src:_ _ -> ()) () in
  Alcotest.check_raises "non-edge rejected"
    (Invalid_argument "Network.send: 0 and 2 are not neighbors") (fun () ->
      Net.Network.send net ~src:0 ~dst:2 ())

let network_drops_to_crashed () =
  let delivered = ref 0 and dropped = ref [] in
  let engine, faults, net =
    make_net
      ~delay:(Net.Delay.Fixed 10)
      ~on_drop:(fun ~src:_ ~dst msg -> dropped := (dst, msg) :: !dropped)
      ~handler:(fun ~dst:_ ~src:_ _ -> incr delivered)
      ()
  in
  Net.Faults.schedule_crash faults ~pid:1 ~at:5;
  ignore
    (Sim.Engine.schedule engine ~at:0 (fun () -> Net.Network.send net ~src:0 ~dst:1 "doomed"));
  Sim.Engine.run_all engine;
  check int "nothing delivered" 0 !delivered;
  check bool "drop hook called" true (!dropped = [ (1, "doomed") ]);
  let stats = Net.Network.stats net in
  check int "recorded as sent" 1 (Net.Link_stats.sent stats ~src:0 ~dst:1);
  check int "not recorded as delivered" 0 (Net.Link_stats.delivered stats ~src:0 ~dst:1);
  check int "no longer in flight" 0 (Net.Link_stats.in_flight stats ~src:0 ~dst:1)

let network_crashed_source_sends_nothing () =
  let delivered = ref 0 in
  let engine, faults, net = make_net ~handler:(fun ~dst:_ ~src:_ _ -> incr delivered) () in
  Net.Faults.schedule_crash faults ~pid:0 ~at:5;
  ignore
    (Sim.Engine.schedule engine ~at:10 (fun () -> Net.Network.send net ~src:0 ~dst:1 "ghost"));
  Sim.Engine.run_all engine;
  check int "silent after crash" 0 !delivered;
  check int "not even counted" 0 (Net.Link_stats.sent (Net.Network.stats net) ~src:0 ~dst:1)

let network_in_flight_messages_survive_sender_crash () =
  let delivered = ref 0 in
  let engine, faults, net =
    make_net ~delay:(Net.Delay.Fixed 20) ~handler:(fun ~dst:_ ~src:_ _ -> incr delivered) ()
  in
  ignore (Sim.Engine.schedule engine ~at:0 (fun () -> Net.Network.send net ~src:0 ~dst:1 "x"));
  Net.Faults.schedule_crash faults ~pid:0 ~at:5;
  Sim.Engine.run_all engine;
  check int "message sent before crash still arrives" 1 !delivered

(* ---------------------------- Link_stats --------------------------- *)

let link_stats_watermarks () =
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let stats = Net.Link_stats.create ~graph ~kinds:[| "a"; "b" |] () in
  Net.Link_stats.record_send stats ~src:0 ~dst:1 ~kind:0 ~at:1;
  Net.Link_stats.record_send stats ~src:1 ~dst:0 ~kind:1 ~at:2;
  Net.Link_stats.record_send stats ~src:0 ~dst:1 ~kind:0 ~at:3;
  check int "edge in flight counts both directions" 3 (Net.Link_stats.edge_in_flight stats 0 1);
  Net.Link_stats.record_delivery stats ~src:0 ~dst:1 ~kind:0 ~at:4;
  check int "delivery decrements" 2 (Net.Link_stats.edge_in_flight stats 0 1);
  check int "watermark keeps max" 3 (Net.Link_stats.edge_watermark stats 0 1);
  check int "global watermark" 3 (Net.Link_stats.max_edge_watermark stats);
  let by_kind = Net.Link_stats.max_edge_watermark_by_kind stats in
  check (Alcotest.list (Alcotest.pair Alcotest.string int)) "per kind" [ ("a", 2); ("b", 1) ] by_kind

let link_stats_watched_windows () =
  let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let stats = Net.Link_stats.create ~graph () in
  Net.Link_stats.watch_dst stats 1;
  List.iter (fun at -> Net.Link_stats.record_send stats ~src:0 ~dst:1 ~kind:0 ~at) [ 5; 15; 25; 35 ];
  check int "window [10,30)" 2 (Net.Link_stats.sends_to_in_window stats ~dst:1 ~from_t:10 ~to_t:30);
  check int "after 20" 2 (Net.Link_stats.sends_to_after stats ~dst:1 ~after:20);
  check int "total to dst" 4 (Net.Link_stats.total_sends_to stats ~dst:1);
  Alcotest.check_raises "unwatched raises" (Invalid_argument "Link_stats: dst 0 is not watched")
    (fun () -> ignore (Net.Link_stats.sends_to_after stats ~dst:0 ~after:0))

let link_stats_last_send () =
  let graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let stats = Net.Link_stats.create ~graph () in
  check bool "none initially" true (Net.Link_stats.last_send_to stats 1 = None);
  Net.Link_stats.record_send stats ~src:0 ~dst:1 ~kind:0 ~at:7;
  Net.Link_stats.record_send stats ~src:1 ~dst:2 ~kind:0 ~at:9;
  check bool "last send to" true (Net.Link_stats.last_send_to stats 1 = Some 7);
  check bool "last send involving" true (Net.Link_stats.last_send_involving stats 1 = Some 9)

let suite =
  [
    Alcotest.test_case "faults: schedule and query" `Quick faults_basics;
    Alcotest.test_case "faults: earliest crash wins" `Quick faults_earliest_wins;
    Alcotest.test_case "faults: crash notifications" `Quick faults_notifies;
    Alcotest.test_case "faults: rescheduled crash notifies once" `Quick
      faults_rescheduled_crash_notifies_once;
    Alcotest.test_case "faults: listeners fire in registration order" `Quick
      faults_listeners_fire_in_registration_order;
    Alcotest.test_case "delay: bounds per model" `Quick delay_bounds;
    Alcotest.test_case "delay: partial synchrony" `Quick delay_partial_synchrony;
    Alcotest.test_case "network: delivers" `Quick network_delivers;
    Alcotest.test_case "network: FIFO per channel" `Quick network_fifo_per_channel;
    QCheck_alcotest.to_alcotest network_fifo_property;
    Alcotest.test_case "network: rejects non-neighbors" `Quick network_rejects_non_neighbors;
    Alcotest.test_case "network: absorbs sends to crashed" `Quick network_drops_to_crashed;
    Alcotest.test_case "network: crashed source is silent" `Quick network_crashed_source_sends_nothing;
    Alcotest.test_case "network: in-flight survives sender crash" `Quick
      network_in_flight_messages_survive_sender_crash;
    Alcotest.test_case "link_stats: watermarks" `Quick link_stats_watermarks;
    Alcotest.test_case "link_stats: watched windows" `Quick link_stats_watched_windows;
    Alcotest.test_case "link_stats: last send" `Quick link_stats_last_send;
  ]
