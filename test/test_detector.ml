(* Tests for the failure detectors: Never, Perfect, Oracle (scripted
   evp-P1), and the heartbeat implementation under partial synchrony. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let ring n = Cgraph.Topology.build (Cgraph.Topology.Ring n)

let never_suspects_nothing () =
  let d = Fd.Never.create () in
  check bool "never suspects" false (d.Fd.Detector.suspects ~observer:0 ~target:1)

let perfect_tracks_crashes () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let d = Fd.Perfect.create engine faults graph in
  let notified = ref [] in
  d.Fd.Detector.subscribe (fun obs -> notified := obs :: !notified);
  Net.Faults.schedule_crash faults ~pid:2 ~at:10;
  Sim.Engine.run_all engine;
  check bool "suspects crashed" true (d.Fd.Detector.suspects ~observer:1 ~target:2);
  check bool "does not suspect live" false (d.Fd.Detector.suspects ~observer:0 ~target:1);
  check (Alcotest.list int) "both neighbors notified" [ 1; 3 ] (List.sort compare !notified)

(* ------------------------------ Oracle ----------------------------- *)

let oracle_completeness () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let _, d = Fd.Oracle.create engine faults graph ~detection_delay:25 () in
  Net.Faults.schedule_crash faults ~pid:0 ~at:100;
  ignore (Sim.Engine.schedule engine ~at:110 (fun () ->
      check bool "not yet detected" false (d.Fd.Detector.suspects ~observer:1 ~target:0)));
  ignore (Sim.Engine.schedule engine ~at:130 (fun () ->
      check bool "detected after delay" true (d.Fd.Detector.suspects ~observer:1 ~target:0);
      check bool "by both neighbors" true (d.Fd.Detector.suspects ~observer:3 ~target:0)));
  Sim.Engine.run_all engine

let oracle_false_positive_windows () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let fps = [ { Fd.Oracle.observer = 1; target = 2; from_t = 50; till_t = 80 } ] in
  let oracle, d = Fd.Oracle.create engine faults graph ~false_positives:fps () in
  let changes = ref 0 in
  d.Fd.Detector.subscribe (fun _ -> incr changes);
  ignore (Sim.Engine.schedule engine ~at:60 (fun () ->
      check bool "suspected inside window" true (d.Fd.Detector.suspects ~observer:1 ~target:2)));
  ignore (Sim.Engine.schedule engine ~at:90 (fun () ->
      check bool "cleared after window" false (d.Fd.Detector.suspects ~observer:1 ~target:2)));
  Sim.Engine.run_all engine;
  check int "two output changes" 2 !changes;
  check int "convergence = window end" 80 (Fd.Oracle.convergence_time oracle)

let oracle_overlapping_windows () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let fps =
    [
      { Fd.Oracle.observer = 0; target = 1; from_t = 10; till_t = 50 };
      { Fd.Oracle.observer = 0; target = 1; from_t = 30; till_t = 70 };
    ]
  in
  let _, d = Fd.Oracle.create engine faults graph ~false_positives:fps () in
  ignore (Sim.Engine.schedule engine ~at:55 (fun () ->
      check bool "still suspected (second window)" true (d.Fd.Detector.suspects ~observer:0 ~target:1)));
  ignore (Sim.Engine.schedule engine ~at:75 (fun () ->
      check bool "cleared after both" false (d.Fd.Detector.suspects ~observer:0 ~target:1)));
  Sim.Engine.run_all engine

let oracle_convergence_accounts_crashes () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let oracle, _ = Fd.Oracle.create engine faults graph ~detection_delay:40 () in
  Net.Faults.schedule_crash faults ~pid:1 ~at:500;
  check int "conv = crash + delay" 540 (Fd.Oracle.convergence_time oracle)

let oracle_rejects_bad_fp () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  Alcotest.check_raises "non-neighbor fp"
    (Invalid_argument "Oracle: false positive between non-neighbors") (fun () ->
      ignore
        (Fd.Oracle.create engine faults graph
           ~false_positives:[ { Fd.Oracle.observer = 0; target = 2; from_t = 0; till_t = 5 } ]
           ()))

let oracle_random_fp_structure () =
  let rng = Sim.Rng.create 21L in
  let graph = ring 6 in
  let fps = Fd.Oracle.random_false_positives rng graph ~before:1000 ~per_edge:2 ~max_len:50 in
  check int "count = 2 per directed edge" (2 * 2 * 6) (List.length fps);
  List.iter
    (fun fp ->
      check bool "window inside horizon" true
        (fp.Fd.Oracle.from_t >= 0 && fp.till_t <= 1000 && fp.from_t < fp.till_t);
      check bool "neighbors only" true (Cgraph.Graph.is_edge graph fp.observer fp.target))
    fps

(* ----------------------------- Heartbeat --------------------------- *)

let heartbeat_setup ?(period = 20) ?(initial_timeout = 30) ?(bump = 25) ~delay ~n () =
  let engine = Sim.Engine.create () in
  let graph = ring n in
  let faults = Net.Faults.create engine ~n in
  let rng = Sim.Rng.create 17L in
  let hb, d =
    Fd.Heartbeat.create ~engine ~faults ~graph ~delay ~rng ~period ~initial_timeout ~bump ()
  in
  (engine, faults, hb, d)

let heartbeat_no_mistakes_when_fast () =
  (* Delays well under the timeout: the detector should never suspect. *)
  let engine, _, hb, d = heartbeat_setup ~delay:(Net.Delay.Fixed 2) ~n:4 () in
  Sim.Engine.run engine ~until:5_000;
  check int "no mistakes" 0 (Fd.Heartbeat.mistakes hb);
  check bool "nobody suspected" false (d.Fd.Detector.suspects ~observer:0 ~target:1)

let heartbeat_completeness () =
  let engine, faults, _, d = heartbeat_setup ~delay:(Net.Delay.Fixed 2) ~n:4 () in
  Net.Faults.schedule_crash faults ~pid:2 ~at:1_000;
  Sim.Engine.run engine ~until:5_000;
  check bool "crashed suspected by 1" true (d.Fd.Detector.suspects ~observer:1 ~target:2);
  check bool "crashed suspected by 3" true (d.Fd.Detector.suspects ~observer:3 ~target:2);
  check bool "live unsuspected" false (d.Fd.Detector.suspects ~observer:0 ~target:1)

let heartbeat_eventual_accuracy_under_ps () =
  (* Pre-GST delays regularly exceed the initial timeout, forcing
     mistakes; adaptive timeouts must converge after GST. *)
  let delay = Net.Delay.Partial_synchrony { gst = 10_000; pre = (1, 120); post = (1, 5) } in
  let engine, _, hb, d = heartbeat_setup ~delay ~n:4 () in
  Sim.Engine.run engine ~until:60_000;
  check bool "made mistakes before GST" true (Fd.Heartbeat.mistakes hb > 0);
  (match Fd.Heartbeat.last_mistake hb with
  | Some t -> check bool "mistakes stop after GST settles" true (t < 20_000)
  | None -> Alcotest.fail "expected some mistakes");
  for i = 0 to 3 do
    check bool "accurate at the end" false (d.Fd.Detector.suspects ~observer:i ~target:((i + 1) mod 4))
  done

let heartbeat_timeout_grows () =
  let delay = Net.Delay.Partial_synchrony { gst = 5_000; pre = (1, 120); post = (1, 5) } in
  let engine, _, hb, _ = heartbeat_setup ~delay ~n:4 () in
  let before = Fd.Heartbeat.timeout hb ~observer:0 ~target:1 in
  Sim.Engine.run engine ~until:30_000;
  check bool "adaptive timeout increased" true (Fd.Heartbeat.timeout hb ~observer:0 ~target:1 >= before);
  check bool "mistakes happened" true (Fd.Heartbeat.mistakes hb > 0)

let heartbeat_notifies_subscribers () =
  let engine, faults, _, d = heartbeat_setup ~delay:(Net.Delay.Fixed 2) ~n:4 () in
  let changes = ref [] in
  d.Fd.Detector.subscribe (fun obs -> changes := obs :: !changes);
  Net.Faults.schedule_crash faults ~pid:0 ~at:500;
  Sim.Engine.run engine ~until:3_000;
  let observers = List.sort_uniq compare !changes in
  check (Alcotest.list int) "both neighbors of the crashed notified" [ 1; 3 ] observers

(* Regression: [Heartbeat.create] used to schedule the first beats and
   timeout checks at absolute times computed from 0, so building a
   detector on an engine whose clock had already advanced raised
   "Engine.schedule: at=... is in the past". All first beats and checks
   are now offset from [Engine.now] at creation. *)
let heartbeat_on_advanced_engine () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  (* Advance well past period and initial_timeout before creating. *)
  ignore (Sim.Engine.schedule engine ~at:500 (fun () -> ()));
  Sim.Engine.run_all engine;
  check int "engine pre-advanced" 500 (Sim.Engine.now engine);
  let hb, d =
    Fd.Heartbeat.create ~engine ~faults ~graph ~delay:(Net.Delay.Fixed 2)
      ~rng:(Sim.Rng.create 17L) ~period:20 ~initial_timeout:30 ~bump:25 ()
  in
  Net.Faults.schedule_crash faults ~pid:2 ~at:1_500;
  Sim.Engine.run engine ~until:5_000;
  check int "no false suspicions" 0 (Fd.Heartbeat.mistakes hb);
  check bool "crash detected from a late start" true
    (d.Fd.Detector.suspects ~observer:1 ~target:2);
  check bool "live pair unsuspected" false (d.Fd.Detector.suspects ~observer:0 ~target:1)

(* The detector's behaviour must not depend on the creation time: a
   world started at 0 and one started at an arbitrary offset see the
   same mistakes and timeouts. *)
let heartbeat_offset_invariant () =
  let run offset =
    let engine = Sim.Engine.create () in
    let graph = ring 4 in
    let faults = Net.Faults.create engine ~n:4 in
    if offset > 0 then begin
      ignore (Sim.Engine.schedule engine ~at:offset (fun () -> ()));
      Sim.Engine.run_all engine
    end;
    let delay =
      Net.Delay.Partial_synchrony { gst = offset + 3_000; pre = (1, 120); post = (1, 5) }
    in
    let hb, _ =
      Fd.Heartbeat.create ~engine ~faults ~graph ~delay ~rng:(Sim.Rng.create 17L) ~period:20
        ~initial_timeout:30 ~bump:25 ()
    in
    Sim.Engine.run engine ~until:(offset + 20_000);
    ( Fd.Heartbeat.mistakes hb,
      List.init 4 (fun i -> Fd.Heartbeat.timeout hb ~observer:i ~target:((i + 1) mod 4)),
      Option.map (fun t -> t - offset) (Fd.Heartbeat.last_mistake hb) )
  in
  let at0 = run 0 in
  check bool "same mistakes/timeouts when created at t=7777" true (run 7_777 = at0);
  let mistakes, _, _ = at0 in
  check bool "scenario exercises the adaptive path" true (mistakes > 0)

(* ---------------------------- Unreliable --------------------------- *)

let unreliable_keeps_lying () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let d =
    Fd.Unreliable.create engine faults graph (Sim.Rng.create 5L) ~period:100 ~duration:20
      ~horizon:10_000 ()
  in
  (* Sample suspicion of a live pair across the whole run: it must recur
     arbitrarily late (no convergence). *)
  let last_lie = ref 0 in
  let rec sample t =
    if t <= 10_000 then
      ignore
        (Sim.Engine.schedule engine ~at:t (fun () ->
             if d.Fd.Detector.suspects ~observer:0 ~target:1 then last_lie := t;
             sample (t + 10)))
  in
  sample 0;
  Sim.Engine.run_all engine;
  check bool "false suspicions recur late in the run" true (!last_lie > 9_000)

let unreliable_still_complete () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  let d =
    Fd.Unreliable.create engine faults graph (Sim.Rng.create 5L) ~detection_delay:30
      ~horizon:5_000 ()
  in
  Net.Faults.schedule_crash faults ~pid:2 ~at:1_000;
  Sim.Engine.run engine ~until:5_000;
  check bool "crashed permanently suspected" true (d.Fd.Detector.suspects ~observer:1 ~target:2)

let unreliable_validates () =
  let engine = Sim.Engine.create () in
  let graph = ring 4 in
  let faults = Net.Faults.create engine ~n:4 in
  Alcotest.check_raises "duration >= period rejected"
    (Invalid_argument "Unreliable.create: need 0 < duration < period") (fun () ->
      ignore
        (Fd.Unreliable.create engine faults graph (Sim.Rng.create 1L) ~period:10 ~duration:10
           ~horizon:100 ()))

let suite =
  [
    Alcotest.test_case "never: constant output" `Quick never_suspects_nothing;
    Alcotest.test_case "unreliable: accuracy violated forever" `Quick unreliable_keeps_lying;
    Alcotest.test_case "unreliable: completeness retained" `Quick unreliable_still_complete;
    Alcotest.test_case "unreliable: parameter validation" `Quick unreliable_validates;
    Alcotest.test_case "perfect: instant completeness, no mistakes" `Quick perfect_tracks_crashes;
    Alcotest.test_case "oracle: local strong completeness" `Quick oracle_completeness;
    Alcotest.test_case "oracle: scripted false positives" `Quick oracle_false_positive_windows;
    Alcotest.test_case "oracle: overlapping windows" `Quick oracle_overlapping_windows;
    Alcotest.test_case "oracle: convergence time with crashes" `Quick oracle_convergence_accounts_crashes;
    Alcotest.test_case "oracle: validates windows" `Quick oracle_rejects_bad_fp;
    Alcotest.test_case "oracle: random window generator" `Quick oracle_random_fp_structure;
    Alcotest.test_case "heartbeat: quiet when delays are short" `Quick heartbeat_no_mistakes_when_fast;
    Alcotest.test_case "heartbeat: completeness" `Quick heartbeat_completeness;
    Alcotest.test_case "heartbeat: eventual accuracy under partial synchrony" `Quick
      heartbeat_eventual_accuracy_under_ps;
    Alcotest.test_case "heartbeat: adaptive timeout grows" `Quick heartbeat_timeout_grows;
    Alcotest.test_case "heartbeat: change notifications" `Quick heartbeat_notifies_subscribers;
    Alcotest.test_case "heartbeat: create on a pre-advanced engine" `Quick
      heartbeat_on_advanced_engine;
    Alcotest.test_case "heartbeat: behaviour independent of creation time" `Quick
      heartbeat_offset_invariant;
  ]
