(* Tests for the simulation substrate: Time, Rng, Pqueue, Engine, Trace. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------- Time ------------------------------ *)

let time_add_saturates () =
  check int "inf + 1 = inf" Sim.Time.infinity (Sim.Time.add Sim.Time.infinity 1);
  check int "1 + inf = inf" Sim.Time.infinity (Sim.Time.add 1 Sim.Time.infinity);
  check int "near-overflow saturates" Sim.Time.infinity (Sim.Time.add (max_int - 1) (max_int - 1));
  check int "ordinary addition" 7 (Sim.Time.add 3 4)

let time_predicates () =
  check bool "zero finite" true (Sim.Time.is_finite Sim.Time.zero);
  check bool "infinity not finite" false (Sim.Time.is_finite Sim.Time.infinity);
  check Alcotest.string "pp finite" "42" (Sim.Time.to_string 42);
  check Alcotest.string "pp infinite" "inf" (Sim.Time.to_string Sim.Time.infinity)

(* ------------------------------- Rng ------------------------------- *)

let rng_deterministic () =
  let a = Sim.Rng.create 99L and b = Sim.Rng.create 99L in
  for _ = 1 to 100 do
    check int "same seed same stream" (Sim.Rng.int a 1_000_000) (Sim.Rng.int b 1_000_000)
  done

let rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 20 do
    if Sim.Rng.int a 1_000_000 <> Sim.Rng.int b 1_000_000 then differs := true
  done;
  check bool "different seeds diverge" true !differs

let rng_split_named_stable () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  let sa = Sim.Rng.split_named a "workload" and sb = Sim.Rng.split_named b "workload" in
  check int "named split deterministic" (Sim.Rng.int sa 1000) (Sim.Rng.int sb 1000);
  (* split_named must not consume parent randomness *)
  check int "parent untouched" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)

let rng_split_named_distinct () =
  let rng = Sim.Rng.create 7L in
  let s1 = Sim.Rng.split_named rng "one" and s2 = Sim.Rng.split_named rng "two" in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.int s1 1_000_000 <> Sim.Rng.int s2 1_000_000 then differs := true
  done;
  check bool "distinct labels diverge" true !differs

let rng_ranges =
  QCheck.Test.make ~name:"rng: int_in stays in range" ~count:500
    QCheck.(triple small_int small_int (int_bound 1000))
    (fun (a, b, seed) ->
      let lo = min a b and hi = max a b in
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let x = Sim.Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let rng_float_range =
  QCheck.Test.make ~name:"rng: float in [0,1)" ~count:500 QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let f = Sim.Rng.float rng in
      f >= 0.0 && f < 1.0)

let rng_shuffle_permutes () =
  let rng = Sim.Rng.create 5L in
  let a = Array.init 100 Fun.id in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "shuffle is a permutation" true (sorted = Array.init 100 Fun.id);
  check bool "shuffle moved something" true (a <> Array.init 100 Fun.id)

let rng_split_independent () =
  let parent = Sim.Rng.create 9L in
  let child = Sim.Rng.split parent in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.int parent 1_000_000 <> Sim.Rng.int child 1_000_000 then differs := true
  done;
  check bool "split stream diverges from parent" true !differs

let rng_pick_uniformish () =
  let rng = Sim.Rng.create 13L in
  let values = [| 10; 20; 30 |] in
  let seen = Hashtbl.create 3 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (Sim.Rng.pick rng values) ()
  done;
  check int "all elements eventually picked" 3 (Hashtbl.length seen)

let rng_exponential_positive () =
  let rng = Sim.Rng.create 11L in
  for _ = 1 to 100 do
    check bool "exponential >= 0" true (Sim.Rng.exponential rng ~mean:10.0 >= 0.0)
  done

(* ------------------------------ Pqueue ----------------------------- *)

let pqueue_orders () =
  let q = Sim.Pqueue.create () in
  List.iter (fun p -> Sim.Pqueue.add q ~prio:p p) [ 5; 1; 4; 1; 3 ];
  let order = List.init 5 (fun _ -> fst (Option.get (Sim.Pqueue.pop q))) in
  check (Alcotest.list int) "min-heap order" [ 1; 1; 3; 4; 5 ] order;
  check bool "now empty" true (Sim.Pqueue.is_empty q)

let pqueue_fifo_ties () =
  let q = Sim.Pqueue.create () in
  List.iteri (fun i label -> Sim.Pqueue.add q ~prio:7 (i, label)) [ "a"; "b"; "c"; "d" ];
  let labels = List.init 4 (fun _ -> snd (snd (Option.get (Sim.Pqueue.pop q)))) in
  check (Alcotest.list Alcotest.string) "FIFO among equal priorities" [ "a"; "b"; "c"; "d" ] labels

let pqueue_interleaved () =
  let q = Sim.Pqueue.create () in
  Sim.Pqueue.add q ~prio:10 10;
  Sim.Pqueue.add q ~prio:1 1;
  check (Alcotest.option int) "peek min" (Some 1) (Sim.Pqueue.peek_prio q);
  ignore (Sim.Pqueue.pop q);
  Sim.Pqueue.add q ~prio:5 5;
  check int "size" 2 (Sim.Pqueue.size q);
  check (Alcotest.option int) "next is 5" (Some 5) (Sim.Pqueue.peek_prio q)

let pqueue_empty_pop () =
  let q = Sim.Pqueue.create () in
  check bool "pop empty" true (Sim.Pqueue.pop q = None);
  check bool "peek empty" true (Sim.Pqueue.peek_prio q = None)

let pqueue_sorts =
  QCheck.Test.make ~name:"pqueue: drains any multiset in sorted order" ~count:200
    QCheck.(list small_nat)
    (fun prios ->
      let q = Sim.Pqueue.create () in
      List.iter (fun p -> Sim.Pqueue.add q ~prio:p p) prios;
      let rec drain acc =
        match Sim.Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

let pqueue_clear () =
  let q = Sim.Pqueue.create () in
  for i = 1 to 50 do
    Sim.Pqueue.add q ~prio:i i
  done;
  Sim.Pqueue.clear q;
  check int "cleared" 0 (Sim.Pqueue.size q);
  Sim.Pqueue.add q ~prio:1 1;
  check int "usable after clear" 1 (Sim.Pqueue.size q)

let pqueue_compacts_when_mostly_dead () =
  let dead = Hashtbl.create 64 in
  let q = Sim.Pqueue.create ~dead:(Hashtbl.mem dead) () in
  for i = 0 to 99 do
    Sim.Pqueue.add q ~prio:i i
  done;
  check int "full before cancellations" 100 (Sim.Pqueue.size q);
  for i = 0 to 59 do
    Hashtbl.replace dead i ();
    Sim.Pqueue.note_dead q
  done;
  check bool "husks reclaimed" true (Sim.Pqueue.size q < 100);
  check bool "live entries kept" true (Sim.Pqueue.size q >= 40);
  let rec drain acc =
    match Sim.Pqueue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (if Hashtbl.mem dead v then acc else v :: acc)
  in
  check (Alcotest.list int) "live order preserved" (List.init 40 (fun i -> 60 + i)) (drain [])

let pqueue_forced_compact () =
  let dead = Hashtbl.create 8 in
  let q = Sim.Pqueue.create ~dead:(Hashtbl.mem dead) () in
  List.iteri (fun i p -> Sim.Pqueue.add q ~prio:p (i, p)) [ 5; 1; 4; 1; 3 ];
  Hashtbl.replace dead (2, 4) ();
  Sim.Pqueue.note_dead q;
  Sim.Pqueue.compact q;
  check int "husk dropped" 4 (Sim.Pqueue.size q);
  let order = List.init 4 (fun _ -> snd (snd (Option.get (Sim.Pqueue.pop q)))) in
  check (Alcotest.list int) "order and FIFO ties survive compaction" [ 1; 1; 3; 5 ] order

let pqueue_compaction_agrees =
  (* Draining a compacting queue after arbitrary cancellations yields the
     same live sequence as filtering a plain queue's drain. *)
  QCheck.Test.make ~name:"pqueue: compaction never changes the live drain" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 0 60) (int_bound 20)) (int_bound 1000))
    (fun (prios, salt) ->
      let dead = Hashtbl.create 16 in
      let is_dead (i, _) = Hashtbl.mem dead i in
      let q = Sim.Pqueue.create ~dead:is_dead () in
      let plain = Sim.Pqueue.create () in
      List.iteri
        (fun i p ->
          Sim.Pqueue.add q ~prio:p (i, p);
          Sim.Pqueue.add plain ~prio:p (i, p))
        prios;
      List.iteri
        (fun i _ ->
          if ((i * 7919) + salt) mod 7 < 4 then begin
            Hashtbl.replace dead i ();
            Sim.Pqueue.note_dead q
          end)
        prios;
      let drain queue =
        let rec go acc =
          match Sim.Pqueue.pop queue with
          | None -> List.rev acc
          | Some (_, v) -> go (if is_dead v then acc else v :: acc)
        in
        go []
      in
      drain q = drain plain)

(* ------------------------------ Wheel ------------------------------ *)

let wheel_orders () =
  let q = Sim.Wheel.create () in
  List.iter (fun p -> Sim.Wheel.add q ~prio:p p) [ 5; 1; 4; 1; 3 ];
  let order = List.init 5 (fun _ -> fst (Option.get (Sim.Wheel.pop q))) in
  check (Alcotest.list int) "sorted" [ 1; 1; 3; 4; 5 ] order;
  check bool "now empty" true (Sim.Wheel.is_empty q)

let wheel_fifo_ties () =
  let q = Sim.Wheel.create () in
  List.iteri (fun i label -> Sim.Wheel.add q ~prio:7 (i, label)) [ "a"; "b"; "c"; "d" ];
  let labels = List.init 4 (fun _ -> snd (snd (Option.get (Sim.Wheel.pop q)))) in
  check (Alcotest.list Alcotest.string) "insertion order at equal prio" [ "a"; "b"; "c"; "d" ]
    labels

(* Priorities spanning every wheel level, including ticks far beyond the
   low levels' horizon, drain in global order with ties FIFO. *)
let wheel_multilevel_spans () =
  let q = Sim.Wheel.create () in
  let prios =
    [ 0; 255; 256; 257; 65_535; 65_536; 1; 16_777_215; 16_777_216; (1 lsl 40) + 3; 1 lsl 40 ]
  in
  List.iteri (fun i p -> Sim.Wheel.add q ~prio:p (i, p)) prios;
  let rec drain acc =
    match Sim.Wheel.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  check (Alcotest.list int) "global order across levels"
    (List.sort compare prios) (drain [])

let wheel_floor_rejects_past () =
  let q = Sim.Wheel.create () in
  Sim.Wheel.add q ~prio:100 "x";
  ignore (Sim.Wheel.pop q);
  check int "floor tracks the last popped tick" 100 (Sim.Wheel.floor q);
  let rejected =
    match Sim.Wheel.add q ~prio:99 "past" with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool "adds below the floor are rejected" true rejected;
  (* Adding exactly at the floor (the engine's "schedule now") is fine. *)
  Sim.Wheel.add q ~prio:100 "now";
  check (Alcotest.option int) "same-tick add lands at the floor" (Some 100)
    (Sim.Wheel.peek_prio q)

let wheel_matches_pqueue =
  (* The engine promises the wheel is a drop-in replacement for the heap:
     identical pop streams — husks included — identical peeks, identical
     sizes, under arbitrary interleavings of add / pop / cancel with the
     shared dead-husk compaction policy. *)
  QCheck.Test.make ~name:"wheel: bit-identical to pqueue on random workloads" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 0 120) (int_bound 100_000)) (int_bound 10_000))
    (fun (codes, salt) ->
      let dead = Hashtbl.create 16 in
      let is_dead (i, _) = Hashtbl.mem dead i in
      let w = Sim.Wheel.create ~dead:is_dead () in
      let p = Sim.Pqueue.create ~dead:is_dead () in
      let now = ref 0 in
      let idx = ref 0 in
      let added = ref [] in
      let ok = ref true in
      let agree () =
        ok :=
          !ok
          && Sim.Wheel.peek_prio w = Sim.Pqueue.peek_prio p
          && Sim.Wheel.size w = Sim.Pqueue.size p
      in
      List.iter
        (fun code ->
          (match code mod 3 with
          | 0 ->
              (* Mostly short hops, occasionally a jump that crosses
                 several wheel levels. *)
              let delta =
                if code mod 5 = 0 then (((code / 3) mod 4) * 1_000_000) + (code mod 97)
                else (code / 3) mod 500
              in
              let prio = !now + delta in
              let v = (!idx, prio) in
              incr idx;
              added := fst v :: !added;
              Sim.Wheel.add w ~prio v;
              Sim.Pqueue.add p ~prio v
          | 1 -> (
              let a = Sim.Wheel.pop w and b = Sim.Pqueue.pop p in
              ok := !ok && a = b;
              match a with Some (t, _) -> now := t | None -> ())
          | _ -> (
              match !added with
              | [] -> ()
              | l ->
                  let k = List.nth l ((code + salt) mod List.length l) in
                  if not (Hashtbl.mem dead k) then begin
                    Hashtbl.replace dead k ();
                    Sim.Wheel.note_dead w;
                    Sim.Pqueue.note_dead p
                  end));
          agree ())
        codes;
      let rec drain () =
        let a = Sim.Wheel.pop w and b = Sim.Pqueue.pop p in
        ok := !ok && a = b;
        if a <> None then drain ()
      in
      drain ();
      !ok)

(* ------------------------------ Engine ----------------------------- *)

let engine_fires_in_order () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.Engine.schedule engine ~at:30 (note "c"));
  ignore (Sim.Engine.schedule engine ~at:10 (note "a"));
  ignore (Sim.Engine.schedule engine ~at:20 (note "b"));
  Sim.Engine.run_all engine;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check int "clock at last event" 30 (Sim.Engine.now engine)

let engine_same_time_fifo () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.Engine.schedule engine ~at:5 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run_all engine;
  check (Alcotest.list int) "scheduling order preserved" (List.init 10 Fun.id) (List.rev !log)

let engine_until_bound () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.Engine.schedule engine ~at:t (fun () -> fired := t :: !fired)))
    [ 5; 10; 15 ];
  Sim.Engine.run engine ~until:10;
  check (Alcotest.list int) "only <= until" [ 5; 10 ] (List.rev !fired);
  check int "one pending left" 1 (Sim.Engine.pending engine)

let engine_cancel () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  let id = Sim.Engine.schedule engine ~at:5 (fun () -> incr fired) in
  ignore (Sim.Engine.schedule engine ~at:6 (fun () -> incr fired));
  Sim.Engine.cancel engine id;
  Sim.Engine.run_all engine;
  check int "cancelled did not fire" 1 !fired;
  check int "processed excludes cancelled" 1 (Sim.Engine.processed engine)

let engine_rejects_past () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.schedule engine ~at:10 (fun () -> ()));
  Sim.Engine.run_all engine;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule: at=5 is in the past (now=10)") (fun () ->
      ignore (Sim.Engine.schedule engine ~at:5 (fun () -> ())))

let engine_nested_scheduling () =
  let engine = Sim.Engine.create () in
  let hits = ref 0 in
  let rec chain n () =
    incr hits;
    if n > 0 then ignore (Sim.Engine.schedule_after engine ~delay:2 (chain (n - 1)))
  in
  ignore (Sim.Engine.schedule engine ~at:0 (chain 9));
  Sim.Engine.run_all engine;
  check int "chain length" 10 !hits;
  check int "clock advanced" 18 (Sim.Engine.now engine)

let engine_mass_cancel () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  let ids =
    List.init 200 (fun i ->
        Sim.Engine.schedule engine ~at:(i + 1) (fun () -> fired := i :: !fired))
  in
  (* Cancel three quarters; the queue should reclaim the husks. *)
  List.iteri (fun i id -> if i mod 4 <> 0 then Sim.Engine.cancel engine id) ids;
  check bool "husks reclaimed from the event queue" true (Sim.Engine.pending engine < 200);
  (* Double-cancel and cancelling a fired event must be harmless. *)
  Sim.Engine.cancel engine (List.nth ids 1);
  Sim.Engine.run_all engine;
  Sim.Engine.cancel engine (List.nth ids 0);
  check (Alcotest.list int) "exactly the survivors fired, in order"
    (List.init 50 (fun k -> 4 * k))
    (List.rev !fired);
  check int "processed counts only real firings" 50 (Sim.Engine.processed engine);
  check int "clock stops at the last live event" 197 (Sim.Engine.now engine)

let engine_infinity_noop () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.schedule engine ~at:Sim.Time.infinity (fun () -> Alcotest.fail "fired"));
  Sim.Engine.run_all engine;
  check int "nothing pending" 0 (Sim.Engine.pending engine)

(* Regression: cancelling an event used to leave its action closure
   reachable from the queue husk until the tick came due; with long
   timeouts that pinned arbitrarily large captured state. The action must
   be collectable the moment it is cancelled. *)
let engine_cancel_releases_closure backend () =
  let engine = Sim.Engine.create ~backend () in
  let weak = Weak.create 1 in
  let id =
    (* Build the closure in a local scope so the only strong reference to
       its captured payload is the scheduled action itself. *)
    let payload = Bytes.make 4096 'x' in
    Weak.set weak 0 (Some payload);
    Sim.Engine.schedule engine ~at:1_000_000 (fun () -> ignore (Bytes.length payload))
  in
  (* A second pending event keeps the queue non-trivial so the husk is
     genuinely retained (no compaction at size 2). *)
  ignore (Sim.Engine.schedule engine ~at:2_000_000 (fun () -> ()));
  Sim.Engine.cancel engine id;
  Gc.full_major ();
  check bool "cancelled action is collectable before its tick" true (Weak.get weak 0 = None)

(* The two queue backends must drive identical executions: same firing
   order, same clock, same processed count, on randomized workloads whose
   handlers reschedule and cancel. *)
let engine_backends_agree =
  QCheck.Test.make ~name:"engine: heap and wheel backends fire identically" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let run backend =
        let engine = Sim.Engine.create ~backend () in
        let rng = Sim.Rng.create (Int64.of_int seed) in
        let log = ref [] in
        let pending = ref [] in
        let budget = ref 0 in
        let rec handler tag () =
          log := (tag, Sim.Engine.now engine) :: !log;
          if !budget < 400 then begin
            let fanout = Sim.Rng.int rng 3 in
            for _ = 1 to fanout do
              incr budget;
              let delay = Sim.Rng.int rng 5_000 in
              let tag = !budget in
              pending := Sim.Engine.schedule_after engine ~delay (handler tag) :: !pending
            done;
            (* Occasionally cancel one of the remembered events (it may
               already have fired; cancel must be idempotent either way). *)
            if Sim.Rng.int rng 4 = 0 then
              match !pending with
              | [] -> ()
              | l -> Sim.Engine.cancel engine (List.nth l (Sim.Rng.int rng (List.length l)))
          end
        in
        for i = 1 to 10 do
          ignore (Sim.Engine.schedule engine ~at:(Sim.Rng.int rng 1_000) (handler (-i)))
        done;
        Sim.Engine.run_all engine;
        (List.rev !log, Sim.Engine.now engine, Sim.Engine.processed engine)
      in
      run `Heap = run `Wheel)

(* ------------------------ Infinity boundary ------------------------ *)

(* Regression: [Time.infinity] is [max_int], and an event inserted at
   that priority used to sit in the queue as a real event that could
   never fire (the wheel's find-min also uses max_int as its sentinel).
   Both backends must reject it outright, while every finite tick up to
   [max_int - 1] stays representable. *)
let queue_rejects_infinity () =
  let w = Sim.Wheel.create () in
  let rejected = match Sim.Wheel.add w ~prio:max_int "inf" with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool "wheel rejects prio = max_int" true rejected;
  Sim.Wheel.add w ~prio:(max_int - 1) "last";
  check (Alcotest.option (Alcotest.pair int Alcotest.string)) "wheel pops max_int - 1"
    (Some (max_int - 1, "last"))
    (Sim.Wheel.pop w);
  let p = Sim.Pqueue.create () in
  let rejected = match Sim.Pqueue.add p ~prio:max_int "inf" with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool "pqueue rejects prio = max_int" true rejected;
  Sim.Pqueue.add p ~prio:(max_int - 1) "last";
  check (Alcotest.option (Alcotest.pair int Alcotest.string)) "pqueue pops max_int - 1"
    (Some (max_int - 1, "last"))
    (Sim.Pqueue.pop p)

(* [Time.add] saturates to infinity, so a huge relative delay is a
   well-defined "never": schedule_after must become the infinity no-op
   rather than overflowing into the past or inserting max_int. *)
let engine_saturated_delay_noop backend () =
  let engine = Sim.Engine.create ~backend () in
  ignore (Sim.Engine.schedule engine ~at:10 (fun () -> ()));
  Sim.Engine.run_all engine;
  ignore (Sim.Engine.schedule_after engine ~delay:max_int (fun () -> Alcotest.fail "fired"));
  ignore (Sim.Engine.schedule_after engine ~delay:(max_int - 5) (fun () -> Alcotest.fail "fired"));
  check int "saturated delays are infinity no-ops" 0 (Sim.Engine.pending engine);
  Sim.Engine.run_all engine;
  check int "clock untouched" 10 (Sim.Engine.now engine)

(* ------------------------- Sharded stepping ------------------------- *)

(* A workload that exercises everything staged stepping must get right:
   nested scheduling, same-tick scheduling (sub-rounds), cancellation of
   both queued and same-tick events, owner tags spread over processes. *)
let staged_workload ~shards () =
  let engine = Sim.Engine.create () in
  if shards > 0 then Sim.Engine.set_sharding engine ~shards ~n:8 ();
  let log = ref [] in
  let victim = ref None in
  let note tag () = log := (tag, Sim.Engine.now engine) :: !log in
  let rec chain owner n () =
    note (100 + n) ();
    if n > 0 then
      ignore (Sim.Engine.schedule_after engine ~owner ~delay:(1 + (n mod 3)) (chain owner (n - 1)))
  in
  for owner = 0 to 7 do
    ignore (Sim.Engine.schedule engine ~owner ~at:(owner mod 3) (chain owner 5))
  done;
  (* Same-tick scheduling: fires in the same step, a sub-round later. *)
  ignore
    (Sim.Engine.schedule engine ~owner:1 ~at:4 (fun () ->
         note 1 ();
         ignore
           (Sim.Engine.schedule engine ~owner:6 ~at:4 (fun () ->
                note 2 ();
                ignore (Sim.Engine.schedule engine ~owner:3 ~at:4 (note 3))))));
  (* Cancel a queued event from another shard's handler... *)
  victim := Some (Sim.Engine.schedule engine ~owner:7 ~at:9 (fun () -> note 666 ()));
  ignore
    (Sim.Engine.schedule engine ~owner:0 ~at:6 (fun () ->
         Sim.Engine.cancel engine (Option.get !victim)));
  (* ...and a same-tick one later in the same batch: the canceller pops
     first (earlier schedule order), so the victim must not fire even
     though it was drained into the batch alongside it. *)
  let batch_victim = ref None in
  ignore
    (Sim.Engine.schedule engine ~owner:2 ~at:2 (fun () ->
         Sim.Engine.cancel engine (Option.get !batch_victim)));
  batch_victim := Some (Sim.Engine.schedule engine ~owner:5 ~at:2 (fun () -> note 667 ()));
  Sim.Engine.run engine ~until:12;
  let mid = (List.rev !log, Sim.Engine.now engine, Sim.Engine.processed engine) in
  Sim.Engine.run_all engine;
  (mid, List.rev !log, Sim.Engine.now engine, Sim.Engine.processed engine)

let engine_staged_matches_legacy () =
  let reference = staged_workload ~shards:0 () in
  List.iter
    (fun shards ->
      let r = staged_workload ~shards () in
      check bool (Printf.sprintf "shards=%d equals the legacy loop" shards) true
        (r = reference))
    [ 1; 2; 3; 8 ];
  (* Sanity on the reference itself: the cancelled events never fired. *)
  let _, log, _, _ = reference in
  check bool "cancelled queued event never fired" true
    (not (List.mem_assoc 666 log));
  check bool "cancelled same-tick event never fired" true
    (not (List.mem_assoc 667 log))

let engine_staged_until_boundary () =
  let engine = Sim.Engine.create () in
  Sim.Engine.set_sharding engine ~shards:4 ~n:4 ();
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule engine ~owner:(t mod 4) ~at:t (fun () -> fired := t :: !fired)))
    [ 5; 10; 15 ];
  Sim.Engine.run engine ~until:10;
  check (Alcotest.list int) "staged run ~until fires only <= until" [ 5; 10 ]
    (List.rev !fired);
  check int "staged clock at last fired event" 10 (Sim.Engine.now engine);
  check int "later event still pending" 1 (Sim.Engine.pending engine)

let engine_staged_traces_identical () =
  let capture shards =
    let recorder = Obs.Recorder.collecting () in
    let engine = Sim.Engine.create ~recorder () in
    if shards > 0 then Sim.Engine.set_sharding engine ~shards ~n:4 ();
    let rec tick owner n () =
      if n > 0 then
        ignore (Sim.Engine.schedule_after engine ~owner ~delay:(1 + owner) (tick owner (n - 1)))
    in
    for owner = 0 to 3 do
      ignore (Sim.Engine.schedule engine ~owner ~at:owner (tick owner 4))
    done;
    Sim.Engine.run_all engine;
    let buf = Buffer.create 256 in
    Obs.Recorder.iter recorder (fun r -> Obs.Jsonl.append buf r);
    Buffer.contents buf
  in
  let reference = capture 0 in
  List.iter
    (fun s ->
      check Alcotest.string
        (Printf.sprintf "full trace identical at shards=%d" s)
        reference (capture s))
    [ 1; 2; 4 ]

(* ------------------------------ Trace ------------------------------ *)

let trace_disabled_by_default () =
  let t = Sim.Trace.create () in
  check bool "disabled" false (Sim.Trace.enabled t);
  Sim.Trace.emit t ~time:1 ~subject:0 ~tag:"x" "dropped";
  check int "no records" 0 (List.length (Sim.Trace.records t))

let trace_collects () =
  let t = Sim.Trace.collecting () in
  Sim.Trace.emit t ~time:1 ~subject:0 ~tag:"a" "first";
  Sim.Trace.emitf t ~time:2 ~subject:1 ~tag:"b" "n=%d" 42;
  match Sim.Trace.records t with
  | [ r1; r2 ] ->
      check Alcotest.string "tag order" "a" r1.Sim.Trace.tag;
      check Alcotest.string "formatted detail" "n=42" r2.Sim.Trace.detail;
      check int "subject" 1 r2.Sim.Trace.subject
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let trace_sink () =
  let t = Sim.Trace.create () in
  let seen = ref [] in
  Sim.Trace.on_record t (fun r -> seen := r.Sim.Trace.tag :: !seen);
  Sim.Trace.emit t ~time:1 ~subject:0 ~tag:"hello" "";
  check (Alcotest.list Alcotest.string) "sink called" [ "hello" ] !seen

let suite =
  [
    Alcotest.test_case "time: saturating addition" `Quick time_add_saturates;
    Alcotest.test_case "time: predicates and printing" `Quick time_predicates;
    Alcotest.test_case "rng: determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick rng_seed_sensitivity;
    Alcotest.test_case "rng: split_named stable" `Quick rng_split_named_stable;
    Alcotest.test_case "rng: split_named distinct" `Quick rng_split_named_distinct;
    Alcotest.test_case "rng: shuffle permutes" `Quick rng_shuffle_permutes;
    Alcotest.test_case "rng: split independence" `Quick rng_split_independent;
    Alcotest.test_case "rng: pick covers the array" `Quick rng_pick_uniformish;
    Alcotest.test_case "rng: exponential positive" `Quick rng_exponential_positive;
    QCheck_alcotest.to_alcotest rng_ranges;
    QCheck_alcotest.to_alcotest rng_float_range;
    Alcotest.test_case "pqueue: orders by priority" `Quick pqueue_orders;
    Alcotest.test_case "pqueue: FIFO ties" `Quick pqueue_fifo_ties;
    Alcotest.test_case "pqueue: interleaved ops" `Quick pqueue_interleaved;
    Alcotest.test_case "pqueue: empty pops" `Quick pqueue_empty_pop;
    Alcotest.test_case "pqueue: clear" `Quick pqueue_clear;
    QCheck_alcotest.to_alcotest pqueue_sorts;
    Alcotest.test_case "pqueue: compacts when mostly dead" `Quick pqueue_compacts_when_mostly_dead;
    Alcotest.test_case "pqueue: forced compaction" `Quick pqueue_forced_compact;
    QCheck_alcotest.to_alcotest pqueue_compaction_agrees;
    Alcotest.test_case "wheel: orders by priority" `Quick wheel_orders;
    Alcotest.test_case "wheel: FIFO ties" `Quick wheel_fifo_ties;
    Alcotest.test_case "wheel: spans every level" `Quick wheel_multilevel_spans;
    Alcotest.test_case "wheel: rejects below the floor" `Quick wheel_floor_rejects_past;
    QCheck_alcotest.to_alcotest wheel_matches_pqueue;
    Alcotest.test_case "engine: fires in time order" `Quick engine_fires_in_order;
    Alcotest.test_case "engine: FIFO at equal times" `Quick engine_same_time_fifo;
    Alcotest.test_case "engine: run ~until" `Quick engine_until_bound;
    Alcotest.test_case "engine: cancellation" `Quick engine_cancel;
    Alcotest.test_case "engine: rejects past events" `Quick engine_rejects_past;
    Alcotest.test_case "engine: handlers schedule more events" `Quick engine_nested_scheduling;
    Alcotest.test_case "engine: mass cancellation compacts" `Quick engine_mass_cancel;
    Alcotest.test_case "engine: infinity is a no-op" `Quick engine_infinity_noop;
    Alcotest.test_case "queues: reject prio = infinity, keep max_int - 1" `Quick
      queue_rejects_infinity;
    Alcotest.test_case "engine: saturated delay is a no-op (heap)" `Quick
      (engine_saturated_delay_noop `Heap);
    Alcotest.test_case "engine: saturated delay is a no-op (wheel)" `Quick
      (engine_saturated_delay_noop `Wheel);
    Alcotest.test_case "engine: staged stepping equals the legacy loop" `Quick
      engine_staged_matches_legacy;
    Alcotest.test_case "engine: staged run ~until boundary" `Quick engine_staged_until_boundary;
    Alcotest.test_case "engine: staged traces byte-identical" `Quick
      engine_staged_traces_identical;
    Alcotest.test_case "engine: cancel releases the closure (heap)" `Quick
      (engine_cancel_releases_closure `Heap);
    Alcotest.test_case "engine: cancel releases the closure (wheel)" `Quick
      (engine_cancel_releases_closure `Wheel);
    QCheck_alcotest.to_alcotest engine_backends_agree;
    Alcotest.test_case "trace: disabled by default" `Quick trace_disabled_by_default;
    Alcotest.test_case "trace: collects records" `Quick trace_collects;
    Alcotest.test_case "trace: callback sink" `Quick trace_sink;
  ]
