(* Tests for the observability subsystem: recorder enablement levels,
   JSONL export, trace diffing, the metrics registry, and the end-to-end
   determinism guarantee (same scenario + seed => byte-identical trace
   at any domain count). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* --------------------------- Recorder ------------------------------ *)

let recorder_disabled_drops_everything () =
  let r = Obs.Recorder.create () in
  check bool "light off" false (Obs.Recorder.enabled r);
  check bool "full off" false (Obs.Recorder.tracing r);
  Obs.Recorder.mark r ~time:0 ~subject:0 ~tag:"x" "";
  Obs.Recorder.sched r ~time:0 ~id:0 ~at:5;
  check int "nothing retained" 0 (Obs.Recorder.count r)

let recorder_light_sink_skips_structural () =
  let r = Obs.Recorder.create () in
  let light = ref 0 in
  Obs.Recorder.on_light r (fun _ -> incr light);
  check bool "light on" true (Obs.Recorder.enabled r);
  check bool "full still off" false (Obs.Recorder.tracing r);
  Obs.Recorder.mark r ~time:1 ~subject:0 ~tag:"x" "";
  Obs.Recorder.sched r ~time:1 ~id:0 ~at:5;
  Obs.Recorder.send r ~time:1 ~src:0 ~dst:1 ~tag:"m" ~deliver_at:2;
  check int "only the light record flowed" 1 !light

let recorder_full_sink_sees_both_levels () =
  let r = Obs.Recorder.create () in
  let light = ref 0 and full = ref 0 in
  Obs.Recorder.on_light r (fun _ -> incr light);
  Obs.Recorder.on_record r (fun _ -> incr full);
  check bool "full tracing on" true (Obs.Recorder.tracing r);
  Obs.Recorder.sched r ~time:2 ~id:1 ~at:9;
  Obs.Recorder.phase r ~time:2 ~pid:1 ~phase:"eating";
  check int "full sink saw structural + light" 2 !full;
  check int "light sink saw only light" 1 !light

let recorder_collecting_retains_in_order () =
  let r = Obs.Recorder.collecting () in
  Obs.Recorder.sched r ~time:0 ~id:0 ~at:3;
  Obs.Recorder.fire r ~time:3 ~id:0;
  Obs.Recorder.crash r ~time:3 ~pid:2;
  let rs = Obs.Recorder.records r in
  check int "all retained" 3 (List.length rs);
  check (Alcotest.list int) "seq is dense and ordered" [ 0; 1; 2 ]
    (List.map (fun (x : Obs.Record.t) -> x.seq) rs);
  check (Alcotest.list int) "times preserved" [ 0; 3; 3 ]
    (List.map (fun (x : Obs.Record.t) -> x.time) rs)

let recorder_sinks_fire_in_subscription_order () =
  let r = Obs.Recorder.create () in
  let order = ref [] in
  Obs.Recorder.on_light r (fun _ -> order := "first" :: !order);
  Obs.Recorder.on_light r (fun _ -> order := "second" :: !order);
  Obs.Recorder.crash r ~time:0 ~pid:0;
  check (Alcotest.list string) "subscription order" [ "first"; "second" ] (List.rev !order)

(* ----------------------------- JSONL ------------------------------- *)

let jsonl_fixed_field_order () =
  let line =
    Obs.Jsonl.to_line { Obs.Record.seq = 4; time = 17; kind = Obs.Record.Sched { id = 2; at = 30 } }
  in
  check string "sched line" {|{"seq":4,"t":17,"k":"sched","id":2,"at":30}|} line;
  let line =
    Obs.Jsonl.to_line
      {
        Obs.Record.seq = 5;
        time = 18;
        kind = Obs.Record.Send { src = 0; dst = 3; tag = "ping"; deliver_at = 25 };
      }
  in
  check string "send line" {|{"seq":5,"t":18,"k":"send","src":0,"dst":3,"tag":"ping","at":25}|} line

let jsonl_escapes_strings () =
  let line =
    Obs.Jsonl.to_line
      {
        Obs.Record.seq = 0;
        time = 0;
        kind = Obs.Record.Mark { subject = 1; tag = "q\"uote"; detail = "a\\b\nc" };
      }
  in
  check bool "stays one line" true (String.index_opt line '\n' = None);
  check string "escaped payload"
    {|{"seq":0,"t":0,"k":"mark","pid":1,"tag":"q\"uote","detail":"a\\b\nc"}|} line

let jsonl_field_int () =
  let line = {|{"seq":12,"t":340,"k":"fire","id":7}|} in
  check (Alcotest.option int) "t" (Some 340) (Obs.Jsonl.field_int line "t");
  check (Alcotest.option int) "seq" (Some 12) (Obs.Jsonl.field_int line "seq");
  check (Alcotest.option int) "missing" None (Obs.Jsonl.field_int line "at")

let jsonl_field_string () =
  (* The scanner must invert [append]'s escaping — round-trip a Mark
     with every escaped character in play. *)
  let line =
    Obs.Jsonl.to_line
      {
        Obs.Record.seq = 0;
        time = 0;
        kind = Obs.Record.Mark { subject = -1; tag = "mcheck.step"; detail = "a\"b\\c\nd" };
      }
  in
  check (Alcotest.option string) "tag" (Some "mcheck.step") (Obs.Jsonl.field_string line "tag");
  check (Alcotest.option string) "detail unescaped" (Some "a\"b\\c\nd")
    (Obs.Jsonl.field_string line "detail");
  check (Alcotest.option string) "missing" None (Obs.Jsonl.field_string line "phase");
  (* An int field is not a string field. *)
  check (Alcotest.option string) "wrong type" None (Obs.Jsonl.field_string line "seq")

(* ----------------------------- Diff -------------------------------- *)

let diff_identical_and_headers () =
  let a = "# header one\n{\"seq\":0}\n{\"seq\":1}\n" in
  let b = "# a different header\n\n{\"seq\":0}\n{\"seq\":1}\n" in
  check bool "headers and blanks ignored" true
    (Obs.Diff.identical (Obs.Diff.lines a) (Obs.Diff.lines b));
  check bool "no divergence" true
    (Obs.Diff.first_divergence (Obs.Diff.lines a) (Obs.Diff.lines b) = None)

let diff_pinpoints_first_divergence () =
  let a = [ "e0"; "e1"; "e2"; "e3" ] and b = [ "e0"; "e1"; "x2"; "e3" ] in
  match Obs.Diff.first_divergence ~context:1 a b with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
      check int "index" 2 d.index;
      check (Alcotest.option string) "a" (Some "e2") d.a;
      check (Alcotest.option string) "b" (Some "x2") d.b;
      check (Alcotest.list string) "context tail" [ "e1" ] d.context

let diff_prefix_divergence_at_end () =
  let a = [ "e0"; "e1" ] and b = [ "e0"; "e1"; "e2" ] in
  match Obs.Diff.first_divergence a b with
  | None -> Alcotest.fail "strict prefix must diverge"
  | Some d ->
      check int "index at shorter end" 2 d.index;
      check (Alcotest.option string) "a ended" None d.a;
      check (Alcotest.option string) "b continues" (Some "e2") d.b

(* ---------------------------- Metrics ------------------------------ *)

let metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a.count" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check int "counter accumulates" 5 (Obs.Metrics.counter_value c);
  (* get-or-create: the same name yields the same cell. *)
  Obs.Metrics.incr (Obs.Metrics.counter m "a.count");
  check int "same cell by name" 6 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge m "b.level" in
  Obs.Metrics.set g 42;
  Obs.Metrics.set g 17;
  check int "gauge holds last" 17 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram m "c.dist" in
  List.iter (Obs.Metrics.observe h) [ 5; 1; 9 ];
  (match Obs.Metrics.find m "c.dist" with
  | Some (Obs.Metrics.Dist d) ->
      check int "count" 3 d.count;
      check int "sum" 15 d.sum;
      check int "min" 1 d.min;
      check int "max" 9 d.max
  | _ -> Alcotest.fail "expected a Dist");
  check (Alcotest.list string) "dump sorted by name" [ "a.count"; "b.level"; "c.dist" ]
    (List.map fst (Obs.Metrics.dump m));
  check bool "kind mismatch rejected" true
    (match Obs.Metrics.gauge m "a.count" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------ End-to-end runs -------------------------- *)

let scenario seed =
  {
    Harness.Scenario.default with
    name = "obs-test";
    topology = Cgraph.Topology.Ring 6;
    seed;
    horizon = 4_000;
    crashes = Harness.Scenario.Random_crashes { count = 1; from_t = 400; to_t = 2_000 };
  }

let capture_jsonl seed =
  let tracer = Sim.Trace.collecting () in
  let (_ : Harness.Run.report) = Harness.Run.run ~trace:tracer (scenario seed) in
  Obs.Jsonl.of_records (Obs.Recorder.records tracer)

let trace_deterministic_across_domains () =
  let capture_all domains =
    Exec.Pool.with_pool ~domains (fun pool ->
        Exec.Pool.init pool 3 (fun k -> capture_jsonl (Int64.of_int (k + 1))))
  in
  let seq = capture_all 1 and par = capture_all 2 in
  check bool "non-trivial traces" true (String.length seq.(0) > 1_000);
  Array.iteri
    (fun k s ->
      if s <> par.(k) then Alcotest.failf "trace for seed %d differs between domain counts" (k + 1))
    seq

let tracediff_pinpoints_seed_divergence () =
  let a = Obs.Diff.lines (capture_jsonl 1L) and b = Obs.Diff.lines (capture_jsonl 2L) in
  match Obs.Diff.first_divergence a b with
  | None -> Alcotest.fail "different seeds must diverge"
  | Some d ->
      (* The divergent line is a real event with a parsable time, not a
         header: seed metadata lives in '#' lines the differ ignores. *)
      let line = match d.a with Some l -> l | None -> Option.get d.b in
      check bool "divergent line has a time field" true (Obs.Jsonl.field_int line "t" <> None)

let report_carries_metrics () =
  let r = Harness.Run.run (scenario 5L) in
  let count name =
    match Obs.Metrics.find r.metrics name with
    | Some (Obs.Metrics.Count c) -> c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check bool "dining traffic counted" true (count "net.sent" > 0);
  check int "eats counter matches report" r.total_eats (count "daemon.eats");
  check bool "engine gauge set" true
    (match Obs.Metrics.find r.metrics "engine.events" with
    | Some (Obs.Metrics.Level n) -> n = r.events_processed
    | _ -> false)

let suite =
  [
    Alcotest.test_case "recorder: disabled drops everything" `Quick
      recorder_disabled_drops_everything;
    Alcotest.test_case "recorder: light sink skips structural" `Quick
      recorder_light_sink_skips_structural;
    Alcotest.test_case "recorder: full sink sees both levels" `Quick
      recorder_full_sink_sees_both_levels;
    Alcotest.test_case "recorder: collecting retains in order" `Quick
      recorder_collecting_retains_in_order;
    Alcotest.test_case "recorder: sinks fire in subscription order" `Quick
      recorder_sinks_fire_in_subscription_order;
    Alcotest.test_case "jsonl: fixed field order" `Quick jsonl_fixed_field_order;
    Alcotest.test_case "jsonl: string escaping" `Quick jsonl_escapes_strings;
    Alcotest.test_case "jsonl: field_int scanner" `Quick jsonl_field_int;
    Alcotest.test_case "jsonl: field_string scanner" `Quick jsonl_field_string;
    Alcotest.test_case "diff: identical modulo headers" `Quick diff_identical_and_headers;
    Alcotest.test_case "diff: pinpoints first divergence" `Quick diff_pinpoints_first_divergence;
    Alcotest.test_case "diff: strict prefix diverges at end" `Quick diff_prefix_divergence_at_end;
    Alcotest.test_case "metrics: registry semantics" `Quick metrics_registry;
    Alcotest.test_case "trace: byte-identical across domain counts" `Quick
      trace_deterministic_across_domains;
    Alcotest.test_case "tracediff: different seeds diverge at a real event" `Quick
      tracediff_pinpoints_seed_divergence;
    Alcotest.test_case "report: metrics registry populated" `Quick report_carries_metrics;
  ]
