(* Tests for conflict graphs, topology generators and coloring. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let graph_basics () =
  let g = Cgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check int "n" 4 (Cgraph.Graph.n g);
  check int "edges" 4 (Cgraph.Graph.edge_count g);
  check bool "edge present" true (Cgraph.Graph.is_edge g 0 1);
  check bool "symmetric" true (Cgraph.Graph.is_edge g 1 0);
  check bool "absent" false (Cgraph.Graph.is_edge g 0 2);
  check bool "no self edge" false (Cgraph.Graph.is_edge g 1 1);
  check int "degree" 2 (Cgraph.Graph.degree g 0);
  check int "max degree" 2 (Cgraph.Graph.max_degree g)

let graph_dedup_and_orientation () =
  let g = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (2, 1) ] in
  check int "deduplicated" 2 (Cgraph.Graph.edge_count g);
  check bool "canonical edge list" true (Cgraph.Graph.edges g = [ (0, 1); (1, 2) ])

let graph_rejects_bad_input () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Cgraph.Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "n = 0" (Invalid_argument "Graph.of_edges: n must be positive")
    (fun () -> ignore (Cgraph.Graph.of_edges ~n:0 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range (0, 7)") (fun () ->
      ignore (Cgraph.Graph.of_edges ~n:3 [ (0, 7) ]))

let graph_neighbors_sorted () =
  let g = Cgraph.Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  check (Alcotest.list int) "sorted" [ 0; 1; 3; 4 ] (Array.to_list (Cgraph.Graph.neighbors g 2))

let graph_connectivity () =
  let connected = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let disconnected = Cgraph.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check bool "connected" true (Cgraph.Graph.is_connected connected);
  check bool "disconnected" false (Cgraph.Graph.is_connected disconnected)

let graph_distances () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 6) in
  check (Alcotest.list int) "from 0" [ 0; 1; 2; 3; 2; 1 ]
    (Array.to_list (Cgraph.Graph.distances_from g 0));
  check (Alcotest.list int) "from 3" [ 3; 2; 1; 0; 1; 2 ]
    (Array.to_list (Cgraph.Graph.distances_from g 3));
  let disconnected = Cgraph.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check (Alcotest.list int) "unreachable = n" [ 0; 1; 4; 4 ]
    (Array.to_list (Cgraph.Graph.distances_from disconnected 0));
  Alcotest.check_raises "bad source" (Invalid_argument "Graph.distances_from: bad vertex")
    (fun () -> ignore (Cgraph.Graph.distances_from g 9))

let graph_to_dot () =
  let g = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot =
    Cgraph.Graph.to_dot g
      ~vertex_label:(fun i -> Printf.sprintf "p%d" i)
      ~vertex_color:(fun i -> if i = 1 then Some "red" else None)
  in
  let contains needle =
    let nl = String.length needle in
    let rec go i = i + nl <= String.length dot && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "edges rendered" true (contains "0 -- 1;" && contains "1 -- 2;");
  check bool "labels rendered" true (contains "label=\"p0\"");
  check bool "colors rendered" true (contains "fillcolor=\"red\"");
  check bool "valid dot skeleton" true (contains "graph conflict {" && contains "}")

(* ----------------------------- Topology ---------------------------- *)

let expected_shape = function
  | Cgraph.Topology.Ring n -> (n, n, 2)
  | Path n -> (n, n - 1, 2)
  | Clique n -> (n, n * (n - 1) / 2, n - 1)
  | Star n -> (n, n - 1, n - 1)
  | Grid (r, c) -> (r * c, (r * (c - 1)) + (c * (r - 1)), if r > 1 && c > 1 then 4 else 2)
  | Torus (r, c) -> (r * c, 2 * r * c, 4)
  | Binary_tree n -> (n, n - 1, -1)
  | Hypercube d -> (1 lsl d, d * (1 lsl (d - 1)), d)
  | Wheel n -> (n, 2 * (n - 1), n - 1)
  | Bipartite (a, b) -> (a + b, a * b, max a b)
  | Random_gnp (n, _, _) -> (n, -1, -1)
  | Scale_free (n, m, _) -> (n, m + ((n - m - 1) * m), -1)

let topology_shapes () =
  List.iter
    (fun spec ->
      let g = Cgraph.Topology.build spec in
      let n, m, delta = expected_shape spec in
      let name = Cgraph.Topology.name spec in
      check int (name ^ " vertices") n (Cgraph.Graph.n g);
      if m >= 0 then check int (name ^ " edges") m (Cgraph.Graph.edge_count g);
      if delta >= 0 && (match spec with Grid _ -> false | _ -> true) then
        check int (name ^ " max degree") delta (Cgraph.Graph.max_degree g);
      check bool (name ^ " connected") true (Cgraph.Graph.is_connected g))
    Cgraph.Topology.all_small

let topology_ring_structure () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Ring 6) in
  for i = 0 to 5 do
    check bool "ring edge" true (Cgraph.Graph.is_edge g i ((i + 1) mod 6))
  done

let topology_torus_regular () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Torus (3, 5)) in
  for i = 0 to Cgraph.Graph.n g - 1 do
    check int "4-regular" 4 (Cgraph.Graph.degree g i)
  done

let topology_wheel_structure () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Wheel 6) in
  for rim = 1 to 5 do
    check bool "hub connected to rim" true (Cgraph.Graph.is_edge g 0 rim);
    check int "rim degree" 3 (Cgraph.Graph.degree g rim)
  done;
  check bool "rim cycle closes" true (Cgraph.Graph.is_edge g 5 1)

let topology_bipartite_structure () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Bipartite (2, 3)) in
  check bool "cross edges" true (Cgraph.Graph.is_edge g 0 2 && Cgraph.Graph.is_edge g 1 4);
  check bool "no intra-side edges" true
    ((not (Cgraph.Graph.is_edge g 0 1)) && not (Cgraph.Graph.is_edge g 2 3));
  (* Bipartite graphs are 2-colorable; greedy achieves it. *)
  check int "2 colors suffice" 2
    (Cgraph.Coloring.color_count (Cgraph.Coloring.greedy g))

let topology_gnp_deterministic () =
  let a = Cgraph.Topology.build (Cgraph.Topology.Random_gnp (20, 0.3, 9L)) in
  let b = Cgraph.Topology.build (Cgraph.Topology.Random_gnp (20, 0.3, 9L)) in
  check bool "same seed same graph" true (Cgraph.Graph.edges a = Cgraph.Graph.edges b);
  let c = Cgraph.Topology.build (Cgraph.Topology.Random_gnp (20, 0.3, 10L)) in
  check bool "different seed different graph" true (Cgraph.Graph.edges a <> Cgraph.Graph.edges c)

let topology_rejects () =
  Alcotest.check_raises "tiny ring" (Invalid_argument "Topology.build: ring needs n >= 3")
    (fun () -> ignore (Cgraph.Topology.build (Cgraph.Topology.Ring 2)));
  Alcotest.check_raises "sf m too small"
    (Invalid_argument "Topology.build: scale_free needs m >= 1") (fun () ->
      ignore (Cgraph.Topology.build (Cgraph.Topology.Scale_free (10, 0, 1L))));
  Alcotest.check_raises "sf n too small"
    (Invalid_argument "Topology.build: scale_free needs n >= m + 1") (fun () ->
      ignore (Cgraph.Topology.build (Cgraph.Topology.Scale_free (3, 3, 1L))))

let topology_scale_free_structure () =
  List.iter
    (fun (n, m) ->
      let g = Cgraph.Topology.build (Cgraph.Topology.Scale_free (n, m, 7L)) in
      let label = Printf.sprintf "sf-%d-%d" n m in
      check int (label ^ " vertices") n (Cgraph.Graph.n g);
      (* Star seed contributes m edges, each later vertex m more; the
         attachment targets are distinct so no edges collapse. *)
      check int (label ^ " edges") (m + ((n - m - 1) * m)) (Cgraph.Graph.edge_count g);
      check bool (label ^ " connected") true (Cgraph.Graph.is_connected g);
      (* Every non-seed vertex attaches with exactly m stubs, so the
         minimum degree is m; preferential attachment must concentrate
         degree well above that somewhere (the hub). *)
      let min_deg = ref max_int in
      for v = 0 to n - 1 do
        min_deg := min !min_deg (Cgraph.Graph.degree g v)
      done;
      check int (label ^ " min degree") m !min_deg;
      check bool (label ^ " has a hub") true (Cgraph.Graph.max_degree g >= 2 * m))
    [ (50, 1); (200, 2); (300, 4) ];
  let a = Cgraph.Topology.build (Cgraph.Topology.Scale_free (120, 2, 5L)) in
  let b = Cgraph.Topology.build (Cgraph.Topology.Scale_free (120, 2, 5L)) in
  let c = Cgraph.Topology.build (Cgraph.Topology.Scale_free (120, 2, 6L)) in
  check bool "same seed same graph" true (Cgraph.Graph.edges a = Cgraph.Graph.edges b);
  check bool "different seed different graph" true (Cgraph.Graph.edges a <> Cgraph.Graph.edges c)

let topology_parse_roundtrip () =
  List.iter
    (fun (s, expected) ->
      match Cgraph.Topology.parse s with
      | Ok spec ->
          check Alcotest.string ("parse " ^ s) (Cgraph.Topology.name expected)
            (Cgraph.Topology.name spec)
      | Error e -> Alcotest.fail e)
    [
      ("ring:8", Cgraph.Topology.Ring 8);
      ("clique:5", Cgraph.Topology.Clique 5);
      ("grid:3x4", Cgraph.Topology.Grid (3, 4));
      ("torus:3x3", Cgraph.Topology.Torus (3, 3));
      ("gnp:10:0.25:4", Cgraph.Topology.Random_gnp (10, 0.25, 4L));
      ("cube:3", Cgraph.Topology.Hypercube 3);
      ("wheel:6", Cgraph.Topology.Wheel 6);
      ("bipartite:3x4", Cgraph.Topology.Bipartite (3, 4));
      ("sf:200:2:42", Cgraph.Topology.Scale_free (200, 2, 42L));
      ("sf:50:3", Cgraph.Topology.Scale_free (50, 3, 1L));
    ];
  check bool "garbage rejected" true (Result.is_error (Cgraph.Topology.parse "blorp:3"));
  check bool "bad dims rejected" true (Result.is_error (Cgraph.Topology.parse "grid:3y4"))

(* ----------------------------- Coloring ---------------------------- *)

let coloring_proper_on_standards () =
  List.iter
    (fun spec ->
      let g = Cgraph.Topology.build spec in
      let colors = Cgraph.Coloring.greedy g in
      check bool (Cgraph.Topology.name spec ^ " proper") true (Cgraph.Coloring.is_proper g colors);
      check bool
        (Cgraph.Topology.name spec ^ " <= delta+1 colors")
        true
        (Cgraph.Coloring.color_count colors <= Cgraph.Graph.max_degree g + 1))
    Cgraph.Topology.all_small

let coloring_proper_random =
  QCheck.Test.make ~name:"coloring: greedy proper on random graphs" ~count:100
    QCheck.(pair (int_range 2 24) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Cgraph.Topology.build (Cgraph.Topology.Random_gnp (n, 0.3, Int64.of_int seed)) in
      let colors = Cgraph.Coloring.greedy g in
      Cgraph.Coloring.is_proper g colors
      && Cgraph.Coloring.color_count colors <= Cgraph.Graph.max_degree g + 1)

let coloring_detects_improper () =
  let g = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  check bool "improper rejected" false (Cgraph.Coloring.is_proper g [| 1; 1 |]);
  check bool "wrong length rejected" false (Cgraph.Coloring.is_proper g [| 1 |]);
  check bool "negative rejected" false (Cgraph.Coloring.is_proper g [| -1; 1 |])

let coloring_clique_needs_n () =
  let g = Cgraph.Topology.build (Cgraph.Topology.Clique 5) in
  check int "clique-5 uses 5 colors" 5 (Cgraph.Coloring.color_count (Cgraph.Coloring.greedy g))

let suite =
  [
    Alcotest.test_case "graph: basics" `Quick graph_basics;
    Alcotest.test_case "graph: dedup and canonical edges" `Quick graph_dedup_and_orientation;
    Alcotest.test_case "graph: rejects bad input" `Quick graph_rejects_bad_input;
    Alcotest.test_case "graph: neighbors sorted" `Quick graph_neighbors_sorted;
    Alcotest.test_case "graph: connectivity" `Quick graph_connectivity;
    Alcotest.test_case "graph: dot export" `Quick graph_to_dot;
    Alcotest.test_case "graph: bfs distances" `Quick graph_distances;
    Alcotest.test_case "topology: vertex/edge/degree counts" `Quick topology_shapes;
    Alcotest.test_case "topology: ring structure" `Quick topology_ring_structure;
    Alcotest.test_case "topology: torus regularity" `Quick topology_torus_regular;
    Alcotest.test_case "topology: wheel structure" `Quick topology_wheel_structure;
    Alcotest.test_case "topology: bipartite structure" `Quick topology_bipartite_structure;
    Alcotest.test_case "topology: gnp determinism" `Quick topology_gnp_deterministic;
    Alcotest.test_case "topology: scale-free structure" `Quick topology_scale_free_structure;
    Alcotest.test_case "topology: size validation" `Quick topology_rejects;
    Alcotest.test_case "topology: parser round-trips" `Quick topology_parse_roundtrip;
    Alcotest.test_case "coloring: proper on standard topologies" `Quick coloring_proper_on_standards;
    QCheck_alcotest.to_alcotest coloring_proper_random;
    Alcotest.test_case "coloring: improper detection" `Quick coloring_detects_improper;
    Alcotest.test_case "coloring: clique lower bound" `Quick coloring_clique_needs_n;
  ]
