(* Long-horizon stress runs ("soak" tests): large random graphs, many
   crashes, heartbeat detector, invariants checked continuously. These
   are the closest the suite comes to the paper's "every run" claims.

   All assertions go through the shared Fuzz.Property oracles — the same
   predicates backing the fuzzer and `bench fuzz` — so the soak suite,
   the campaigns and the negative self-tests cannot drift apart. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Run the scenario and assert every oracle whose hypotheses it
   satisfies. *)
let assert_clean label (s : Harness.Scenario.t) =
  let r = Harness.Run.run s in
  (match Fuzz.Property.failures (Fuzz.Property.applicable s) r with
  | [] -> ()
  | fails ->
      Alcotest.failf "%s: %s" label
        (String.concat "; " (List.map (fun (n, m) -> n ^ ": " ^ m) fails)));
  r

let soak ~seed ~algo ~detector ~topology ?(crashes = 6) ?(horizon = 150_000) () :
    Harness.Scenario.t =
  {
    name = "soak";
    topology;
    seed;
    algo;
    detector;
    delay = Net.Delay.Partial_synchrony { gst = 30_000; pre = (1, 80); post = (1, 8) };
    workload = { think = (0, 120); eat = (5, 35) };
    crashes = Harness.Scenario.Random_crashes { count = crashes; from_t = 2_000; to_t = 80_000 };
    horizon;
    check_every = Some 499;
    acks_per_session = 1;
  }

let heartbeat = Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }

let soak_song_pike_heartbeat () =
  let s = soak ~seed:5150L ~algo:Harness.Scenario.Song_pike ~detector:heartbeat
      ~topology:(Cgraph.Topology.Random_gnp (32, 0.15, 51L)) () in
  let r = assert_clean "gnp-32 + heartbeat" s in
  check bool "substantial run" true (r.total_eats > 5_000)

let soak_song_pike_torus () =
  let s = soak ~seed:99L ~algo:Harness.Scenario.Song_pike ~detector:heartbeat
      ~topology:(Cgraph.Topology.Torus (5, 5)) () in
  let r = assert_clean "torus-5x5 + heartbeat" s in
  check int "safe after measured convergence" 0
    (Monitor.Exclusion.count_after r.exclusion r.convergence)

let soak_quiescence_everywhere () =
  let s = soak ~seed:7L ~algo:Harness.Scenario.Song_pike
      ~detector:(Harness.Scenario.Oracle
                   { detection_delay = 60; fp_per_edge = 1; fp_window = 10_000; fp_max_len = 150 })
      ~topology:(Cgraph.Topology.Random_gnp (24, 0.2, 13L)) () in
  let r = assert_clean "gnp-24 + noisy oracle" s in
  check bool "crashes actually realised" true (r.crashed <> [])

let soak_fairness_holds_at_scale () =
  let s = soak ~seed:12L ~algo:Harness.Scenario.Song_pike
      ~detector:(Harness.Scenario.Oracle
                   { detection_delay = 60; fp_per_edge = 2; fp_window = 12_000; fp_max_len = 200 })
      ~topology:(Cgraph.Topology.Clique 8) ~crashes:2 () in
  let r = assert_clean "clique-8 + noisy oracle" s in
  check bool "2-bounded after convergence at scale" true
    (Monitor.Fairness.max_consecutive_for_sessions_from r.fairness r.convergence <= 2)

(* ------------------- cross-product soak matrix --------------------- *)

(* Every (algorithm, detector, topology, crash plan) combination at a
   medium horizon, each cell checked against exactly the oracles whose
   hypotheses it satisfies: Algorithm 1 cells assert the full theorem
   set, baseline cells assert what a baseline still promises (lemmas;
   wait-freedom only when crash-free). One seed per cell, derived from
   its coordinates, so a matrix failure pins the cell. *)

let matrix_algos =
  [
    ("song-pike", Harness.Scenario.Song_pike);
    ("chandy-misra", Harness.Scenario.Chandy_misra);
    ("ordered", Harness.Scenario.Ordered);
  ]

let matrix_detectors =
  [
    ("heartbeat", heartbeat);
    ( "oracle-quiet",
      Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 } );
    ( "oracle-noisy",
      Harness.Scenario.Oracle
        { detection_delay = 60; fp_per_edge = 2; fp_window = 8_000; fp_max_len = 150 } );
    ("perfect", Harness.Scenario.Perfect);
  ]

let matrix_topologies =
  [
    ("ring-12", Cgraph.Topology.Ring 12);
    ("gnp-16", Cgraph.Topology.Random_gnp (16, 0.2, 3L));
    ("torus-4x4", Cgraph.Topology.Torus (4, 4));
  ]

let matrix_crashes =
  [
    ("crash-free", Harness.Scenario.No_crashes);
    ("2-crashes", Harness.Scenario.Random_crashes { count = 2; from_t = 2_000; to_t = 12_000 });
  ]

let matrix_cell ~ai ~di ~ti ~ci (aname, algo) (dname, detector) (tname, topology)
    (cname, crashes) =
  let label = Printf.sprintf "%s/%s/%s/%s" aname dname tname cname in
  let s : Harness.Scenario.t =
    {
      name = "soak-matrix";
      topology;
      seed = Int64.of_int (1 + ai + (7 * di) + (41 * ti) + (163 * ci));
      algo;
      detector;
      delay = Net.Delay.Partial_synchrony { gst = 6_000; pre = (1, 50); post = (1, 8) };
      workload = { think = (0, 120); eat = (5, 35) };
      crashes;
      horizon = 30_000;
      check_every = Some 499;
      acks_per_session = 1;
    }
  in
  ignore (assert_clean label s)

let soak_matrix () =
  let checked = ref 0 in
  List.iteri
    (fun ai a ->
      List.iteri
        (fun di d ->
          List.iteri
            (fun ti t ->
              List.iteri
                (fun ci c ->
                  matrix_cell ~ai ~di ~ti ~ci a d t c;
                  incr checked)
                matrix_crashes)
            matrix_topologies)
        matrix_detectors)
    matrix_algos;
  check int "all cells ran" 72 !checked

let suite =
  [
    Alcotest.test_case "soak: gnp-32 + heartbeat, 150k ticks" `Slow soak_song_pike_heartbeat;
    Alcotest.test_case "soak: torus-5x5 + heartbeat" `Slow soak_song_pike_torus;
    Alcotest.test_case "soak: quiescence for every victim" `Slow soak_quiescence_everywhere;
    Alcotest.test_case "soak: fairness bound at scale" `Slow soak_fairness_holds_at_scale;
    Alcotest.test_case "soak: algo x detector x topology x crash matrix" `Slow soak_matrix;
  ]
