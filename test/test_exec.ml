(* Tests for the domain pool: deterministic ordering, exception
   propagation, and the sequential fallback. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let init_ordered () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let a = Exec.Pool.init pool 100 (fun i -> i * i) in
      check bool "results in index order" true (a = Array.init 100 (fun i -> i * i)))

let map_preserves_order () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let l = Exec.Pool.map_list pool (fun x -> 2 * x) [ 5; 1; 9; 3 ] in
      check (Alcotest.list int) "map_list order" [ 10; 2; 18; 6 ] l;
      let a = Exec.Pool.map_array pool String.length [| "a"; "bcd"; "" |] in
      check bool "map_array order" true (a = [| 1; 3; 0 |]))

let sequential_fallback_same_results () =
  let f i = (i * 7919) mod 1000 in
  let par = Exec.Pool.with_pool ~domains:4 (fun p -> Exec.Pool.init p 50 f) in
  let seq = Exec.Pool.with_pool ~domains:1 (fun p -> Exec.Pool.init p 50 f) in
  check bool "domains:4 = domains:1" true (par = seq)

let exception_propagates () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      match Exec.Pool.init pool 10 (fun i -> if i >= 3 then failwith (string_of_int i) else i) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          (* Lowest failing index wins, no matter which domain ran it. *)
          check Alcotest.string "lowest-index exception" "3" msg);
  (* The pool survives a failing batch. *)
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let a = Exec.Pool.init pool 5 Fun.id in
      check bool "usable after failure" true (a = [| 0; 1; 2; 3; 4 |]))

let empty_and_size () =
  Exec.Pool.with_pool ~domains:3 (fun pool ->
      check int "size" 3 (Exec.Pool.size pool);
      check bool "empty batch" true (Exec.Pool.init pool 0 (fun _ -> assert false) = [||]));
  check bool "default domains >= 1" true (Exec.Pool.default_domains () >= 1)

let shutdown_idempotent () =
  let pool = Exec.Pool.create ~domains:2 () in
  let a = Exec.Pool.init pool 8 Fun.id in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  check bool "results before shutdown" true (a = Array.init 8 Fun.id)

let successive_batches () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      for n = 1 to 20 do
        let a = Exec.Pool.init pool n (fun i -> i + n) in
        if a <> Array.init n (fun i -> i + n) then Alcotest.failf "batch %d wrong" n
      done)

(* Regression: a body raising inside [run_batch] used to skip the
   completion count, leaving the submitter waiting on [completed = n]
   forever. Run the batch on a helper domain and fail via watchdog
   rather than hanging the whole suite if the deadlock comes back. *)
let run_batch_exception_safe () =
  let outcome = Atomic.make None in
  let worker =
    Domain.spawn (fun () ->
        Exec.Pool.with_pool ~domains:4 (fun pool ->
            let ran = Array.make 12 false in
            let result =
              try
                Exec.Pool.run_batch pool 12 (fun i ->
                    ran.(i) <- true;
                    if i mod 3 = 1 then failwith (string_of_int i));
                Error "no exception"
              with Failure msg -> Ok (msg, Array.for_all Fun.id ran)
            in
            (* The pool survives a failing batch. *)
            let again = Exec.Pool.init pool 5 Fun.id in
            Atomic.set outcome (Some (result, again = [| 0; 1; 2; 3; 4 |]))))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get outcome = None && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  match Atomic.get outcome with
  | None -> Alcotest.fail "run_batch deadlocked on a raising body"
  | Some (result, reusable) ->
      Domain.join worker;
      (match result with
      | Ok (msg, all_ran) ->
          check Alcotest.string "lowest-index exception" "1" msg;
          check bool "every index still ran" true all_ran
      | Error what -> Alcotest.failf "expected Failure, got %s" what);
      check bool "pool reusable after failure" true reusable

let run_batch_sequential_exception_safe () =
  Exec.Pool.with_pool ~domains:1 (fun pool ->
      let ran = Array.make 7 false in
      (match
         Exec.Pool.run_batch pool 7 (fun i ->
             ran.(i) <- true;
             if i = 2 || i = 5 then failwith (string_of_int i))
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg -> check Alcotest.string "lowest-index exception" "2" msg);
      check bool "every index still ran" true (Array.for_all Fun.id ran))

(* Regression: submitting a batch from inside a running batch used to
   silently overwrite the pool's current-batch slot — workers of the
   outer batch picked up the inner one's tasks and both completion
   counts went wrong (lost tasks, or a submitter stuck forever). The
   pool must reject nested and concurrent submissions loudly instead.
   Watchdog-guarded: on pre-fix code this test hangs rather than
   fails. *)
let run_batch_rejects_nested () =
  let outcome = Atomic.make None in
  let worker =
    Domain.spawn (fun () ->
        Exec.Pool.with_pool ~domains:4 (fun pool ->
            let nested =
              try
                Exec.Pool.run_batch pool 4 (fun i ->
                    if i = 2 then Exec.Pool.run_batch pool 3 (fun _ -> ()));
                Error "no exception"
              with
              | Invalid_argument _ -> Ok ()
              | e -> Error (Printexc.to_string e)
            in
            (* The pool survives the rejected submission. *)
            let again = Exec.Pool.init pool 5 Fun.id in
            Atomic.set outcome (Some (nested, again = [| 0; 1; 2; 3; 4 |]))))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get outcome = None && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  match Atomic.get outcome with
  | None -> Alcotest.fail "nested run_batch deadlocked instead of raising"
  | Some (nested, reusable) ->
      Domain.join worker;
      (match nested with
      | Ok () -> ()
      | Error what -> Alcotest.failf "expected Invalid_argument, got %s" what);
      check bool "pool reusable after rejection" true reusable

(* Same guard for the sequential fallback (domains = 1): nesting there
   would reenter the submitter's own drain loop. *)
let run_batch_rejects_nested_sequential () =
  Exec.Pool.with_pool ~domains:1 (fun pool ->
      let rejected =
        match
          Exec.Pool.run_batch pool 3 (fun i ->
              if i = 0 then Exec.Pool.run_batch pool 2 (fun _ -> ()))
        with
        | () -> false
        | exception Invalid_argument _ -> true
      in
      check bool "sequential nesting rejected" true rejected;
      check (Alcotest.array int) "pool reusable" [| 0; 1 |] (Exec.Pool.init pool 2 Fun.id))

(* Two distinct pools may nest freely — only same-pool reentrancy is a
   bug. *)
let run_batch_distinct_pools_nest () =
  Exec.Pool.with_pool ~domains:2 (fun outer ->
      Exec.Pool.with_pool ~domains:2 (fun inner ->
          let hits = Atomic.make 0 in
          Exec.Pool.run_batch outer 3 (fun _ ->
              Exec.Pool.run_batch inner 2 (fun _ -> Atomic.incr hits));
          check int "all inner tasks ran" 6 (Atomic.get hits)))

let merge_by_canonical () =
  let buffers =
    [|
      [| (0, "a"); (2, "b"); (2, "c") |];
      [| (1, "d"); (2, "e") |];
      [||];
      [| (0, "f"); (3, "g") |];
    |]
  in
  let merged = Exec.Pool.merge_by ~rank:fst buffers in
  (* Sorted by rank; ties keep buffer-index order then intra-buffer
     order — the canonical (rank, program order) merge. *)
  check
    (Alcotest.array (Alcotest.pair int Alcotest.string))
    "stable rank merge"
    [| (0, "a"); (0, "f"); (1, "d"); (2, "b"); (2, "c"); (2, "e"); (3, "g") |]
    merged

let matches_array_init =
  QCheck.Test.make ~name:"exec: init = Array.init for any size/domains" ~count:50
    QCheck.(pair (int_bound 200) (int_range 1 6))
    (fun (n, domains) ->
      let f i = (i * 31) lxor n in
      Exec.Pool.with_pool ~domains (fun p -> Exec.Pool.init p n f) = Array.init n f)

let suite =
  [
    Alcotest.test_case "pool: init keeps index order" `Quick init_ordered;
    Alcotest.test_case "pool: maps preserve order" `Quick map_preserves_order;
    Alcotest.test_case "pool: sequential fallback agrees" `Quick sequential_fallback_same_results;
    Alcotest.test_case "pool: lowest-index exception propagates" `Quick exception_propagates;
    Alcotest.test_case "pool: empty batch and size" `Quick empty_and_size;
    Alcotest.test_case "pool: shutdown idempotent" `Quick shutdown_idempotent;
    Alcotest.test_case "pool: many successive batches" `Quick successive_batches;
    Alcotest.test_case "pool: run_batch survives raising bodies" `Quick run_batch_exception_safe;
    Alcotest.test_case "pool: sequential run_batch survives raising bodies" `Quick
      run_batch_sequential_exception_safe;
    Alcotest.test_case "pool: rejects nested submission" `Quick run_batch_rejects_nested;
    Alcotest.test_case "pool: rejects nested submission (sequential)" `Quick
      run_batch_rejects_nested_sequential;
    Alcotest.test_case "pool: distinct pools nest freely" `Quick run_batch_distinct_pools_nest;
    Alcotest.test_case "pool: merge_by is the canonical rank merge" `Quick merge_by_canonical;
    QCheck_alcotest.to_alcotest matches_array_init;
  ]
