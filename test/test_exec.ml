(* Tests for the domain pool: deterministic ordering, exception
   propagation, and the sequential fallback. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let init_ordered () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let a = Exec.Pool.init pool 100 (fun i -> i * i) in
      check bool "results in index order" true (a = Array.init 100 (fun i -> i * i)))

let map_preserves_order () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let l = Exec.Pool.map_list pool (fun x -> 2 * x) [ 5; 1; 9; 3 ] in
      check (Alcotest.list int) "map_list order" [ 10; 2; 18; 6 ] l;
      let a = Exec.Pool.map_array pool String.length [| "a"; "bcd"; "" |] in
      check bool "map_array order" true (a = [| 1; 3; 0 |]))

let sequential_fallback_same_results () =
  let f i = (i * 7919) mod 1000 in
  let par = Exec.Pool.with_pool ~domains:4 (fun p -> Exec.Pool.init p 50 f) in
  let seq = Exec.Pool.with_pool ~domains:1 (fun p -> Exec.Pool.init p 50 f) in
  check bool "domains:4 = domains:1" true (par = seq)

let exception_propagates () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      match Exec.Pool.init pool 10 (fun i -> if i >= 3 then failwith (string_of_int i) else i) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          (* Lowest failing index wins, no matter which domain ran it. *)
          check Alcotest.string "lowest-index exception" "3" msg);
  (* The pool survives a failing batch. *)
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let a = Exec.Pool.init pool 5 Fun.id in
      check bool "usable after failure" true (a = [| 0; 1; 2; 3; 4 |]))

let empty_and_size () =
  Exec.Pool.with_pool ~domains:3 (fun pool ->
      check int "size" 3 (Exec.Pool.size pool);
      check bool "empty batch" true (Exec.Pool.init pool 0 (fun _ -> assert false) = [||]));
  check bool "default domains >= 1" true (Exec.Pool.default_domains () >= 1)

let shutdown_idempotent () =
  let pool = Exec.Pool.create ~domains:2 () in
  let a = Exec.Pool.init pool 8 Fun.id in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  check bool "results before shutdown" true (a = Array.init 8 Fun.id)

let successive_batches () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      for n = 1 to 20 do
        let a = Exec.Pool.init pool n (fun i -> i + n) in
        if a <> Array.init n (fun i -> i + n) then Alcotest.failf "batch %d wrong" n
      done)

(* Regression: a body raising inside [run_batch] used to skip the
   completion count, leaving the submitter waiting on [completed = n]
   forever. Run the batch on a helper domain and fail via watchdog
   rather than hanging the whole suite if the deadlock comes back. *)
let run_batch_exception_safe () =
  let outcome = Atomic.make None in
  let worker =
    Domain.spawn (fun () ->
        Exec.Pool.with_pool ~domains:4 (fun pool ->
            let ran = Array.make 12 false in
            let result =
              try
                Exec.Pool.run_batch pool 12 (fun i ->
                    ran.(i) <- true;
                    if i mod 3 = 1 then failwith (string_of_int i));
                Error "no exception"
              with Failure msg -> Ok (msg, Array.for_all Fun.id ran)
            in
            (* The pool survives a failing batch. *)
            let again = Exec.Pool.init pool 5 Fun.id in
            Atomic.set outcome (Some (result, again = [| 0; 1; 2; 3; 4 |]))))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get outcome = None && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  match Atomic.get outcome with
  | None -> Alcotest.fail "run_batch deadlocked on a raising body"
  | Some (result, reusable) ->
      Domain.join worker;
      (match result with
      | Ok (msg, all_ran) ->
          check Alcotest.string "lowest-index exception" "1" msg;
          check bool "every index still ran" true all_ran
      | Error what -> Alcotest.failf "expected Failure, got %s" what);
      check bool "pool reusable after failure" true reusable

let run_batch_sequential_exception_safe () =
  Exec.Pool.with_pool ~domains:1 (fun pool ->
      let ran = Array.make 7 false in
      (match
         Exec.Pool.run_batch pool 7 (fun i ->
             ran.(i) <- true;
             if i = 2 || i = 5 then failwith (string_of_int i))
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg -> check Alcotest.string "lowest-index exception" "2" msg);
      check bool "every index still ran" true (Array.for_all Fun.id ran))

let matches_array_init =
  QCheck.Test.make ~name:"exec: init = Array.init for any size/domains" ~count:50
    QCheck.(pair (int_bound 200) (int_range 1 6))
    (fun (n, domains) ->
      let f i = (i * 31) lxor n in
      Exec.Pool.with_pool ~domains (fun p -> Exec.Pool.init p n f) = Array.init n f)

let suite =
  [
    Alcotest.test_case "pool: init keeps index order" `Quick init_ordered;
    Alcotest.test_case "pool: maps preserve order" `Quick map_preserves_order;
    Alcotest.test_case "pool: sequential fallback agrees" `Quick sequential_fallback_same_results;
    Alcotest.test_case "pool: lowest-index exception propagates" `Quick exception_propagates;
    Alcotest.test_case "pool: empty batch and size" `Quick empty_and_size;
    Alcotest.test_case "pool: shutdown idempotent" `Quick shutdown_idempotent;
    Alcotest.test_case "pool: many successive batches" `Quick successive_batches;
    Alcotest.test_case "pool: run_batch survives raising bodies" `Quick run_batch_exception_safe;
    Alcotest.test_case "pool: sequential run_batch survives raising bodies" `Quick
      run_batch_sequential_exception_safe;
    QCheck_alcotest.to_alcotest matches_array_init;
  ]
