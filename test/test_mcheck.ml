(* Tests for the explicit-state model checker: transition enumeration
   sanity plus exhaustive verification on small instances. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let pair_cfg ?(sessions = 1) ?(crash_budget = 0) ?(fp_budget = 0) () =
  {
    Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ];
    colors = [| 0; 1 |];
    sessions;
    crash_budget;
    fp_budget;
  }

let labels cfg state = List.map fst (Mcheck.Model.successors cfg state)

let initial_transitions () =
  let cfg = pair_cfg () in
  let init = Mcheck.Model.initial cfg in
  (* From the start: each process may become hungry, nothing else. *)
  check (Alcotest.list Alcotest.string) "only hungry transitions" [ "hungry(0)"; "hungry(1)" ]
    (List.sort compare (labels cfg init));
  check bool "initial state is clean" true (Mcheck.Model.check cfg init = None)

let crash_and_fp_budgets_add_transitions () =
  let cfg = pair_cfg ~crash_budget:1 ~fp_budget:1 () in
  let init = Mcheck.Model.initial cfg in
  let ls = labels cfg init in
  check bool "crash transitions offered" true (List.mem "crash(0)" ls && List.mem "crash(1)" ls);
  check bool "fp transitions offered" true (List.mem "fp(0,1)" ls && List.mem "fp(1,0)" ls)

let hungry_leads_to_ping () =
  let cfg = pair_cfg () in
  let init = Mcheck.Model.initial cfg in
  let after_hungry =
    List.assoc "hungry(0)" (Mcheck.Model.successors cfg init)
  in
  let ls = labels cfg after_hungry in
  check bool "a2 enabled for the hungry process" true (List.mem "a2(0)" ls);
  check bool "a5 not enabled before the ack" true (not (List.mem "a5(0)" ls))

let rejects_improper_colors () =
  let cfg = { (pair_cfg ()) with colors = [| 1; 1 |] } in
  Alcotest.check_raises "improper coloring" (Invalid_argument "Mcheck: colors must be proper")
    (fun () -> ignore (Mcheck.Model.initial cfg))

(* ------------------------ exhaustive checking ---------------------- *)

let exhaustive_pair_accurate () =
  let r = Mcheck.Explore.bfs (pair_cfg ~sessions:2 ()) in
  check bool "complete" true r.complete;
  check bool "no violation" true (r.violation = None);
  check bool "nontrivial space" true (r.states > 100)

let exhaustive_pair_with_faults () =
  let r = Mcheck.Explore.bfs (pair_cfg ~sessions:1 ~crash_budget:1 ~fp_budget:2 ()) in
  check bool "complete" true r.complete;
  check bool "structural lemmas hold under crashes and lies" true (r.violation = None)

let exhaustive_path3 () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ];
      colors = [| 0; 1; 0 |];
      sessions = 1;
      crash_budget = 0;
      fp_budget = 0;
    }
  in
  let r = Mcheck.Explore.bfs cfg in
  check bool "complete" true r.complete;
  check bool "no violation" true (r.violation = None)

let exhaustive_triangle_with_crash () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ];
      colors = [| 0; 1; 2 |];
      sessions = 1;
      crash_budget = 1;
      fp_budget = 0;
    }
  in
  let r = Mcheck.Explore.bfs ~max_states:400_000 cfg in
  check bool "no violation in explored space" true (r.violation = None);
  check bool "substantial exploration" true (r.states > 10_000)

let state_cap_respected () =
  let r = Mcheck.Explore.bfs ~max_states:50 (pair_cfg ~sessions:3 ()) in
  check bool "truncated" true (not r.complete);
  check int "capped" 50 r.states

let depth_cap_respected () =
  let r = Mcheck.Explore.bfs ~max_depth:3 (pair_cfg ~sessions:3 ()) in
  check bool "depth bounded" true (r.depth <= 3);
  check bool "marked incomplete" true (not r.complete)

let depth_cap_at_diameter_is_complete () =
  (* Regression: popping any state at the depth cap used to flag the
     search incomplete even when every successor was already visited. A
     cap equal to the space's diameter must yield a complete result
     identical to the unbounded one — including the deadlock count from
     terminal states sitting exactly on the cap. *)
  let cfg = pair_cfg ~sessions:1 () in
  let r0 = Mcheck.Explore.bfs cfg in
  check bool "reference run complete" true r0.complete;
  let r1 = Mcheck.Explore.bfs ~max_depth:r0.depth cfg in
  check bool "complete at the diameter" true r1.complete;
  check int "same states" r0.states r1.states;
  check int "same transitions" r0.transitions r1.transitions;
  check int "same depth" r0.depth r1.depth;
  check int "same deadlocks" r0.deadlocks r1.deadlocks;
  let r2 = Mcheck.Explore.bfs ~max_depth:(r0.depth - 1) cfg in
  check bool "incomplete below the diameter" true (not r2.complete)

(* The checker must actually be able to find violations: feed it a bogus
   initial coloring bypass by corrupting the invariant check via a state
   with two forks. Easiest faithful negative test: a model where both
   endpoints claim the fork is unreachable, so instead check that the
   exclusion invariant trips when the fp budget is 0 but we seed suspicion
   through a crash + detect + a9 path. That path is legitimate (eating next
   to a crashed eater is allowed), so assert it does NOT trip. *)
let exclusion_check_is_live_aware () =
  let r = Mcheck.Explore.bfs ~max_states:150_000 (pair_cfg ~sessions:1 ~crash_budget:1 ()) in
  (* With one crash allowed, a live process may eat while its crashed
     neighbor is frozen mid-eating; the live-aware exclusion check must
     not flag that. *)
  check bool "no spurious exclusion violation" true (r.violation = None)

(* A scripted walkthrough of one full hungry session in the model,
   following Algorithm 1's actions label by label — an executable version
   of the paper's prose description. *)
let scripted_session () =
  let cfg = pair_cfg () in
  let step state label =
    match List.assoc_opt label (Mcheck.Model.successors cfg state) with
    | Some next -> next
    | None ->
        Alcotest.failf "transition %s not enabled; available: %s" label
          (String.concat ", " (List.map fst (Mcheck.Model.successors cfg state)))
  in
  let s = Mcheck.Model.initial cfg in
  (* Process 0 (low color, holds the token) gets hungry and runs the
     whole protocol while process 1 stays thinking. *)
  let s = step s "hungry(0)" in
  check bool "hungry" true (Mcheck.Model.phase s 0 = `Hungry);
  let s = step s "a2(0)" in          (* ping 1 *)
  let s = step s "deliver(0->1)" in  (* 1 (thinking) acks immediately *)
  let s = step s "deliver(1->0)" in  (* ack arrives *)
  let s = step s "a5(0)" in          (* enter the doorway *)
  check bool "inside" true (Mcheck.Model.inside s 0);
  let s = step s "a6(0)" in          (* request the fork with the token *)
  let s = step s "deliver(0->1)" in  (* 1 (outside) yields the fork *)
  let s = step s "deliver(1->0)" in  (* fork arrives *)
  let s = step s "a9(0)" in
  check bool "eating" true (Mcheck.Model.phase s 0 = `Eating);
  let s = step s "a10(0)" in
  check bool "back to thinking" true (Mcheck.Model.phase s 0 = `Thinking);
  check bool "no dangling invariant" true (Mcheck.Model.check cfg s = None);
  (* The session budget is spent: no second hungry(0). *)
  check bool "session budget consumed" true
    (List.assoc_opt "hungry(0)" (Mcheck.Model.successors cfg s) = None)

(* ------------------------- reachability ---------------------------- *)

let eating_is_reachable () =
  let cfg = pair_cfg () in
  (match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.phase s 0 = `Eating) cfg with
  | Mcheck.Explore.Found depth -> check bool "reasonable depth" true (depth > 3)
  | Unreachable | Truncated -> Alcotest.fail "process 0 can never eat in the model");
  match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.phase s 1 = `Eating) cfg with
  | Mcheck.Explore.Found _ -> ()
  | Unreachable | Truncated -> Alcotest.fail "process 1 can never eat in the model"

let eating_reachable_past_crash () =
  (* 0 can reach eating even in runs where 1 crashed: the suspicion
     substitution path exists in the model. *)
  let cfg = pair_cfg ~crash_budget:1 () in
  let pred s = Mcheck.Model.phase s 0 = `Eating && Mcheck.Model.crashed s 1 in
  match Mcheck.Explore.reach ~pred cfg with
  | Mcheck.Explore.Found _ -> ()
  | Unreachable | Truncated -> Alcotest.fail "no eat-past-crash run found"

let doorway_reachable () =
  let cfg = pair_cfg () in
  match Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.inside s 0) cfg with
  | Mcheck.Explore.Found _ -> ()
  | Unreachable | Truncated -> Alcotest.fail "doorway unreachable"

let unreachable_predicate () =
  let cfg = pair_cfg () in
  (* With no crash budget nobody can be crashed — and the full space fits
     in the default budget, so the negative answer is trustworthy. *)
  check bool "correctly unreachable" true
    (Mcheck.Explore.reach ~pred:(fun s -> Mcheck.Model.crashed s 0) cfg
    = Mcheck.Explore.Unreachable)

let truncated_is_not_unreachable () =
  (* Regression: a search cut short by [max_states] used to report the
     same [None] as a genuinely exhausted search. The predicate here is
     impossible, but with a 10-state budget the checker cannot know
     that — it must answer [Truncated], never [Unreachable]. *)
  let cfg = pair_cfg ~sessions:2 () in
  let pred s = Mcheck.Model.crashed s 0 in
  check bool "capped search admits ignorance" true
    (Mcheck.Explore.reach ~max_states:10 ~pred cfg = Mcheck.Explore.Truncated);
  check bool "depth-capped search admits ignorance" true
    (Mcheck.Explore.reach ~max_depth:2 ~pred cfg = Mcheck.Explore.Truncated)

(* ------------------------- progress (liveness) --------------------- *)

let progress_pair () =
  let r = Mcheck.Explore.progress ~pid:0 (pair_cfg ~sessions:2 ()) in
  check bool "complete" true r.progress_complete;
  check bool "hungry states exist" true (r.hungry_states > 0);
  check int "no stuck hungry state (Theorem 2, possibility form)" 0 r.stuck_states

let progress_pair_with_faults () =
  (* Even with a crash of the peer and oracle lies in the graph, every
     hungry-live state of 0 retains a path to eating. *)
  let r = Mcheck.Explore.progress ~pid:0 (pair_cfg ~sessions:1 ~crash_budget:1 ~fp_budget:2 ()) in
  check bool "complete" true r.progress_complete;
  check int "no stuck state under crash + lies" 0 r.stuck_states

let progress_triangle () =
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ];
      colors = [| 0; 1; 2 |];
      sessions = 1;
      crash_budget = 0;
      fp_budget = 0;
    }
  in
  List.iter
    (fun pid ->
      let r = Mcheck.Explore.progress ~pid cfg in
      check bool "complete" true r.progress_complete;
      check int (Printf.sprintf "p%d never stuck" pid) 0 r.stuck_states)
    [ 0; 1; 2 ]

(* ------------------------- random walks ---------------------------- *)

let random_walk_clean_on_pair () =
  let r = Mcheck.Explore.random_walk ~walks:32 ~steps:200 ~seed:3L (pair_cfg ~sessions:3 ()) in
  check int "all walks ran" 32 r.walks_done;
  check bool "many transitions" true (r.steps_taken > 1_000);
  check bool "no violation" true (r.walk_violation = None)

let random_walk_scales_to_ring4 () =
  (* ring-4 with crashes and lies is beyond exhaustive BFS budgets; the
     walker still covers hundreds of thousands of transitions. *)
  let cfg =
    {
      Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ];
      colors = [| 0; 1; 0; 1 |];
      sessions = 2;
      crash_budget = 1;
      fp_budget = 2;
    }
  in
  (* Walks end early once every budget is spent and the system quiesces,
     so the expected yield is roughly (session cost * budget) per walk. *)
  let r = Mcheck.Explore.random_walk ~walks:64 ~steps:500 ~seed:11L cfg in
  check bool "substantial coverage" true (r.steps_taken > 4_000);
  check bool "no violation on ring-4" true (r.walk_violation = None)

let random_walk_deterministic () =
  let cfg = pair_cfg ~sessions:2 ~fp_budget:1 () in
  let a = Mcheck.Explore.random_walk ~walks:8 ~steps:100 ~seed:5L cfg in
  let b = Mcheck.Explore.random_walk ~walks:8 ~steps:100 ~seed:5L cfg in
  check int "same seed same trajectory count" a.steps_taken b.steps_taken

(* An injected invariant that flags a state every sound run reaches —
   used to exercise the violation/counterexample machinery, since the
   real invariants never trip on a proper coloring. *)
let flag_eating cfg s =
  let n = Cgraph.Graph.n cfg.Mcheck.Model.graph in
  let rec go i =
    if i >= n then None
    else if (not (Mcheck.Model.crashed s i)) && Mcheck.Model.phase s i = `Eating then
      Some (Printf.sprintf "injected: %d eating" i)
    else go (i + 1)
  in
  go 0

let random_walk_checks_initial_state () =
  (* Regression: walks used to check only the states they stepped INTO,
     never the shared initial state. With zero sessions nothing is ever
     enabled, so a violation planted in [Model.initial] is visible only
     through the initial check. *)
  let cfg = pair_cfg ~sessions:0 () in
  let inject _cfg _s = Some "injected: initial" in
  let r = Mcheck.Explore.random_walk ~walks:4 ~steps:10 ~check:inject ~seed:1L cfg in
  match r.walk_violation with
  | Some (msg, _) -> check Alcotest.string "found at step zero" "injected: initial" msg
  | None -> Alcotest.fail "initial-state violation missed by the walker"

(* ------------------------- DPOR ------------------------------------ *)

let path3_cfg ?(sessions = 1) ?(crash_budget = 0) ?(fp_budget = 0) () =
  {
    Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ];
    colors = [| 0; 1; 0 |];
    sessions;
    crash_budget;
    fp_budget;
  }

let dpor_agrees_with_bfs_and_reduces () =
  (* Sleep sets prune transitions, never states: DPOR must visit the
     same state space with the same verdict and deadlock count, through
     strictly fewer transitions (path-3 has the non-adjacent pair 0/2
     whose interleavings collapse). *)
  let cfg = path3_cfg () in
  let b = Mcheck.Explore.bfs cfg in
  let d = Mcheck.Dpor.explore cfg in
  check bool "both complete" true (b.complete && d.complete);
  check int "same states" b.states d.states;
  check int "same deadlocks" b.deadlocks d.deadlocks;
  check bool "same (clean) verdict" true (b.violation = None && d.violation = None);
  check bool
    (Printf.sprintf "strictly fewer transitions (%d < %d)" d.transitions b.transitions)
    true
    (d.transitions < b.transitions)

let dpor_agrees_under_faults () =
  (* crash only: adding the fp budget as well pushes path-3 to ~1.5M
     states — the agreement there is covered by the bench table. *)
  let cfg = path3_cfg ~crash_budget:1 () in
  let b = Mcheck.Explore.bfs ~max_states:400_000 cfg in
  let d = Mcheck.Dpor.explore ~max_states:400_000 cfg in
  check bool "both complete" true (b.complete && d.complete);
  check int "same states under faults" b.states d.states;
  check int "same deadlocks under faults" b.deadlocks d.deadlocks;
  check bool "reduced under faults" true (d.transitions < b.transitions)

let dpor_finds_injected_violation () =
  let cfg = pair_cfg () in
  let d = Mcheck.Dpor.explore ~check:flag_eating cfg in
  (match d.violation with
  | Some (msg, _) -> check bool "flags eating" true (String.length msg > 0)
  | None -> Alcotest.fail "DPOR missed the injected violation");
  match d.trace with
  | Some t ->
      (* the schedule must actually reproduce it *)
      (match Mcheck.Replay.run ~check:flag_eating cfg t with
      | Mcheck.Replay.Reproduced _ -> ()
      | o -> Alcotest.failf "DPOR schedule does not replay: %a" Mcheck.Replay.pp_outcome o)
  | None -> Alcotest.fail "violation without a schedule"

let preemption_bound_prunes_and_relaxes () =
  let cfg = path3_cfg () in
  let b = Mcheck.Explore.bfs cfg in
  (* A zero budget forbids every context switch away from an enabled
     process: the search is pruned and must say so. *)
  let tight = Mcheck.Dpor.explore ~preemption_bound:0 cfg in
  check bool "bounded search admits incompleteness" true (not tight.complete);
  check bool "bounded search is smaller" true (tight.states < b.states);
  (* A budget no schedule can exceed changes nothing. *)
  let loose = Mcheck.Dpor.explore ~preemption_bound:10_000 cfg in
  check bool "loose bound complete" true loose.complete;
  check int "loose bound, full space" b.states loose.states

(* ------------------------- parallel frontier ----------------------- *)

let frontier_matches_bfs () =
  let cfg = path3_cfg () in
  let b = Mcheck.Explore.bfs cfg in
  let f = Mcheck.Frontier.explore ~domains:1 cfg in
  check int "states" b.states f.states;
  check int "transitions" b.transitions f.transitions;
  check int "depth" b.depth f.depth;
  check int "deadlocks" b.deadlocks f.deadlocks;
  check bool "complete" b.complete f.complete;
  check bool "verdict" true (f.violation = None)

let frontier_bit_identical_across_domains () =
  (* The acceptance bar for parallel exploration: every result field is
     bit-identical whatever the domain count. *)
  let cfg = path3_cfg ~fp_budget:1 () in
  let r1 = Mcheck.Frontier.explore ~domains:1 cfg in
  List.iter
    (fun domains ->
      let rn = Mcheck.Frontier.explore ~domains cfg in
      let tag s = Printf.sprintf "%s (domains=%d)" s domains in
      check int (tag "states") r1.states rn.states;
      check int (tag "transitions") r1.transitions rn.transitions;
      check int (tag "depth") r1.depth rn.depth;
      check int (tag "deadlocks") r1.deadlocks rn.deadlocks;
      check bool (tag "complete") r1.complete rn.complete;
      check bool (tag "verdict") true (r1.violation = rn.violation))
    [ 2; 3; 4 ]

let frontier_violation_deterministic_across_domains () =
  (* With a violation in play the FIRST one in BFS order must win no
     matter how the level was chunked, schedule included. *)
  let cfg = pair_cfg () in
  let r1 = Mcheck.Frontier.explore ~domains:1 ~check:flag_eating cfg in
  let r2 = Mcheck.Frontier.explore ~domains:3 ~check:flag_eating cfg in
  check bool "violation found" true (r1.violation <> None);
  check bool "same violation" true (r1.violation = r2.violation);
  check bool "same schedule" true (r1.trace = r2.trace);
  match r1.trace with
  | Some t -> (
      match Mcheck.Replay.run ~check:flag_eating cfg t with
      | Mcheck.Replay.Reproduced _ -> ()
      | o -> Alcotest.failf "frontier schedule does not replay: %a" Mcheck.Replay.pp_outcome o)
  | None -> Alcotest.fail "violation without a schedule"

(* ------------------------- replay ---------------------------------- *)

let replay_reproduces_bfs_counterexample () =
  let cfg = pair_cfg () in
  let b = Mcheck.Explore.bfs ~check:flag_eating cfg in
  match (b.violation, b.trace) with
  | Some (msg, _), Some t -> (
      match Mcheck.Replay.run ~check:flag_eating cfg t with
      | Mcheck.Replay.Reproduced r ->
          check Alcotest.string "same message" msg r.message;
          check int "at the schedule's end" (List.length t) r.step
      | o -> Alcotest.failf "did not reproduce: %a" Mcheck.Replay.pp_outcome o)
  | _ -> Alcotest.fail "BFS found no injected violation to replay"

let replay_jsonl_roundtrip () =
  let labels = [ "hungry(0)"; "a2(0)"; "deliver(0->1)"; "deliver(1->0)"; "a5(0)" ] in
  let exported = Mcheck.Replay.to_jsonl ~header:"test schedule" labels in
  check bool "has a comment header" true (String.length exported > 0 && exported.[0] = '#');
  check (Alcotest.list Alcotest.string) "roundtrip" labels (Mcheck.Replay.of_jsonl exported)

let replay_clean_and_stuck () =
  let cfg = pair_cfg () in
  (match Mcheck.Replay.run cfg [ "hungry(0)"; "a2(0)" ] with
  | Mcheck.Replay.Clean 2 -> ()
  | o -> Alcotest.failf "expected Clean 2, got %a" Mcheck.Replay.pp_outcome o);
  match Mcheck.Replay.run cfg [ "hungry(0)"; "a9(0)" ] with
  | Mcheck.Replay.Stuck { step = 1; label = "a9(0)"; available } ->
      check bool "alternatives listed" true (available <> [])
  | o -> Alcotest.failf "expected Stuck at 1, got %a" Mcheck.Replay.pp_outcome o

let key_is_canonical () =
  let cfg = pair_cfg () in
  let a = Mcheck.Model.initial cfg and b = Mcheck.Model.initial cfg in
  check bool "equal states equal keys" true (Mcheck.Model.key a = Mcheck.Model.key b);
  let succ = Mcheck.Model.successors cfg a in
  let _, after = List.hd succ in
  check bool "different states different keys" true (Mcheck.Model.key a <> Mcheck.Model.key after)

let key_path_independent () =
  (* Regression for the Marshal-based key: structurally equal states
     built along different execution paths could serialize differently
     (sharing, allocation history), splitting one state into several.
     hungry(0);hungry(1) and hungry(1);hungry(0) commute into the same
     state — their canonical keys must collide. *)
  let cfg = pair_cfg () in
  let step s label = List.assoc label (Mcheck.Model.successors cfg s) in
  let init = Mcheck.Model.initial cfg in
  let via01 = step (step init "hungry(0)") "hungry(1)" in
  let via10 = step (step init "hungry(1)") "hungry(0)" in
  check bool "commuted paths, one key" true
    (Mcheck.Model.key via01 = Mcheck.Model.key via10);
  (* And the canonical encoding is smaller than Marshal even on the
     smallest instance (the gap widens with n: Marshal spends a header
     and block tags per field, the encoding packs bools into bits). *)
  check bool "compact" true
    (String.length (Mcheck.Model.key init)
    < String.length (Marshal.to_string init []))

let describe_mentions_phases () =
  let cfg = pair_cfg () in
  let s = Mcheck.Model.initial cfg in
  let d = Mcheck.Model.describe s in
  check bool "describes both processes" true
    (String.length d > 0 && String.split_on_char 'p' d |> List.length >= 3)

let suite =
  [
    Alcotest.test_case "initial transitions" `Quick initial_transitions;
    Alcotest.test_case "budgets add fault transitions" `Quick crash_and_fp_budgets_add_transitions;
    Alcotest.test_case "doorway progression" `Quick hungry_leads_to_ping;
    Alcotest.test_case "validates colors" `Quick rejects_improper_colors;
    Alcotest.test_case "scripted full session walkthrough" `Quick scripted_session;
    Alcotest.test_case "exhaustive: pair, accurate oracle" `Quick exhaustive_pair_accurate;
    Alcotest.test_case "exhaustive: pair with crash and lies" `Slow exhaustive_pair_with_faults;
    Alcotest.test_case "exhaustive: path-3" `Quick exhaustive_path3;
    Alcotest.test_case "exhaustive: triangle with crash" `Slow exhaustive_triangle_with_crash;
    Alcotest.test_case "bounds: state cap" `Quick state_cap_respected;
    Alcotest.test_case "bounds: depth cap" `Quick depth_cap_respected;
    Alcotest.test_case "bounds: depth cap at diameter stays complete" `Quick
      depth_cap_at_diameter_is_complete;
    Alcotest.test_case "exclusion check is liveness-aware" `Slow exclusion_check_is_live_aware;
    Alcotest.test_case "reach: eating reachable for both" `Quick eating_is_reachable;
    Alcotest.test_case "reach: eating past a crash" `Quick eating_reachable_past_crash;
    Alcotest.test_case "reach: doorway reachable" `Quick doorway_reachable;
    Alcotest.test_case "reach: impossible predicate" `Quick unreachable_predicate;
    Alcotest.test_case "reach: truncation is not unreachability" `Quick
      truncated_is_not_unreachable;
    Alcotest.test_case "progress: pair (Theorem 2 possibility form)" `Quick progress_pair;
    Alcotest.test_case "progress: pair under crash and lies" `Slow progress_pair_with_faults;
    Alcotest.test_case "progress: triangle, all diners" `Slow progress_triangle;
    Alcotest.test_case "walk: clean on the pair" `Quick random_walk_clean_on_pair;
    Alcotest.test_case "walk: ring-4 with crash and lies" `Slow random_walk_scales_to_ring4;
    Alcotest.test_case "walk: deterministic in the seed" `Quick random_walk_deterministic;
    Alcotest.test_case "walk: initial state is checked" `Quick random_walk_checks_initial_state;
    Alcotest.test_case "dpor: same space, fewer transitions" `Quick
      dpor_agrees_with_bfs_and_reduces;
    Alcotest.test_case "dpor: agrees under crash and lies" `Slow dpor_agrees_under_faults;
    Alcotest.test_case "dpor: finds and replays injected violation" `Quick
      dpor_finds_injected_violation;
    Alcotest.test_case "dpor: preemption bounding" `Quick preemption_bound_prunes_and_relaxes;
    Alcotest.test_case "frontier: matches bfs field for field" `Quick frontier_matches_bfs;
    Alcotest.test_case "frontier: bit-identical across domains" `Slow
      frontier_bit_identical_across_domains;
    Alcotest.test_case "frontier: deterministic counterexample" `Quick
      frontier_violation_deterministic_across_domains;
    Alcotest.test_case "replay: reproduces a bfs counterexample" `Quick
      replay_reproduces_bfs_counterexample;
    Alcotest.test_case "replay: jsonl roundtrip" `Quick replay_jsonl_roundtrip;
    Alcotest.test_case "replay: clean and stuck outcomes" `Quick replay_clean_and_stuck;
    Alcotest.test_case "canonical keys" `Quick key_is_canonical;
    Alcotest.test_case "canonical keys: path independent and compact" `Quick
      key_path_independent;
    Alcotest.test_case "describe" `Quick describe_mentions_phases;
  ]
