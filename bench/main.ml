(* Benchmark harness.

   Two halves:
   - the reproduction suite: one table/figure per paper claim plus the
     extensions (E1..E12, F1..F5), the exhaustive model-checking runs
     (MC) and the fuzzing-campaign summaries (FZ), regenerated
     deterministically — run with no arguments, or pass ids to select;
   - Bechamel microbenchmarks ("perf") measuring the substrate and the
     algorithm itself, one Test.make per benchmark. *)

open Bechamel
open Toolkit

let scenario_bench name scenario =
  Test.make ~name (Staged.stage (fun () -> ignore (Harness.Run.run scenario)))

let quiet_oracle : Harness.Scenario.detector_kind =
  Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }

let short (topology : Cgraph.Topology.spec) algo detector : Harness.Scenario.t =
  {
    Harness.Scenario.default with
    name = "bench";
    topology;
    algo;
    detector;
    workload = Harness.Scenario.default_workload;
    crashes = Harness.Scenario.No_crashes;
    horizon = 4_000;
    check_every = None;
    seed = 9L;
  }

let perf_tests () =
  [
    Test.make ~name:"engine:100k-events"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create () in
           let count = ref 0 in
           let rec tick () =
             incr count;
             if !count < 100_000 then ignore (Sim.Engine.schedule_after engine ~delay:1 tick)
           in
           ignore (Sim.Engine.schedule engine ~at:0 tick);
           Sim.Engine.run_all engine));
    Test.make ~name:"pqueue:10k-mixed"
      (Staged.stage (fun () ->
           let q = Sim.Pqueue.create () in
           for i = 0 to 9_999 do
             Sim.Pqueue.add q ~prio:((i * 7919) mod 1000) i
           done;
           while not (Sim.Pqueue.is_empty q) do
             ignore (Sim.Pqueue.pop q)
           done));
    Test.make ~name:"rng:100k-draws"
      (Staged.stage (fun () ->
           let rng = Sim.Rng.create 7L in
           for _ = 1 to 100_000 do
             ignore (Sim.Rng.int rng 1000)
           done));
    scenario_bench "dining:ring-32"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Song_pike quiet_oracle);
    scenario_bench "dining:clique-8-contended"
      {
        (short (Cgraph.Topology.Clique 8) Harness.Scenario.Song_pike quiet_oracle) with
        workload = Harness.Scenario.contended_workload;
      };
    scenario_bench "dining:ring-32-heartbeat"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Song_pike
         (Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }));
    scenario_bench "baseline:chandy-misra-ring-32"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Chandy_misra Harness.Scenario.Never);
    Test.make ~name:"mcheck:pair-2sessions"
      (Staged.stage (fun () ->
           let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
           ignore
             (Mcheck.Explore.bfs
                {
                  Mcheck.Model.graph;
                  colors = [| 0; 1 |];
                  sessions = 2;
                  crash_budget = 0;
                  fp_budget = 0;
                })));
  ]

let run_perf () =
  print_endline "### PERF — Bechamel microbenchmarks (OLS on the monotonic clock)\n";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"perf" ~fmt:"%s %s" (perf_tests ()))
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Stats.Table.create ~title:"PERF: wall-clock per run"
      ~columns:
        [ ("benchmark", Stats.Table.Left); ("time/run", Stats.Table.Right); ("r^2", Stats.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter (fun name est -> rows := (name, est) :: !rows) results;
  List.iter
    (fun (name, est) ->
      let ns = match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> Float.nan in
      let pretty =
        if Float.is_nan ns then "-"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      let r2 =
        match Analyze.OLS.r_square est with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Stats.Table.add_row table [ name; pretty; r2 ])
    (List.sort compare !rows);
  Stats.Table.print table

let run_mc () =
  print_endline
    "### MC — exhaustive model checking of Algorithm 1 (Lemmas 1.1/1.2/2.2, capacity, exclusion)\n";
  let table =
    Stats.Table.create ~title:"MC: explicit-state exploration"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("sessions", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("states", Stats.Table.Right);
          ("transitions", Stats.Table.Right);
          ("complete", Stats.Table.Left);
          ("violation", Stats.Table.Left);
        ]
  in
  let pair = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let path3 = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let tri = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, max_states) ->
      let r =
        Mcheck.Explore.bfs ~max_states
          { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget }
      in
      Stats.Table.add_row table
        [
          label;
          Stats.Table.cell_int sessions;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int r.states;
          Stats.Table.cell_int r.transitions;
          Stats.Table.cell_bool r.complete;
          (match r.violation with None -> "none" | Some (m, _) -> m);
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 300_000);
      ("pair", pair, [| 0; 1 |], 2, 1, 2, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 1, 1, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 1, 0, 300_000);
    ];
  Stats.Table.print table;
  print_endline
    "note: 'complete = yes' rows exhaust every reachable interleaving; capped rows\n\
     verify the explored prefix. No violation is the expected result on every row.\n";
  (* BFS vs sleep-set DPOR: same states, same verdict, fewer transitions.
     The reduction factor grows with the number of non-adjacent process
     pairs (pair has none: every pair of actions interferes). *)
  let reduction_table =
    Stats.Table.create ~title:"MC: BFS vs DPOR (sleep-set partial-order reduction)"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("sessions", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("states", Stats.Table.Right);
          ("bfs trans", Stats.Table.Right);
          ("dpor trans", Stats.Table.Right);
          ("reduction", Stats.Table.Right);
          ("bfs s", Stats.Table.Right);
          ("dpor s", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, max_states) ->
      let cfg = { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget } in
      let timed f =
        let t0 = Sys.time () in
        let r = f () in
        (r, Sys.time () -. t0)
      in
      let b, bfs_t = timed (fun () -> Mcheck.Explore.bfs ~max_states cfg) in
      let d, dpor_t = timed (fun () -> Mcheck.Dpor.explore ~max_states cfg) in
      assert (b.Mcheck.Explore.states = d.Mcheck.Explore.states);
      assert (b.violation = None && d.violation = None);
      Stats.Table.add_row reduction_table
        [
          label;
          Stats.Table.cell_int sessions;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int b.states;
          Stats.Table.cell_int b.transitions;
          Stats.Table.cell_int d.transitions;
          Printf.sprintf "%.2fx" (float_of_int b.transitions /. float_of_int d.transitions);
          Printf.sprintf "%.2f" bfs_t;
          Printf.sprintf "%.2f" dpor_t;
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 300_000);
      ("pair", pair, [| 0; 1 |], 2, 1, 2, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 1, 0, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 300_000);
    ];
  Stats.Table.print reduction_table;
  print_endline
    "note: identical state counts and verdicts are asserted per row; DPOR explores the\n\
     same space through fewer interleavings. Wall-clock is a single measurement.\n";
  (* Liveness in possibility form (Theorem 2): from every reachable state
     in which a process is hungry and live, some continuation eats. *)
  let progress_table =
    Stats.Table.create ~title:"MC: exhaustive progress check (Theorem 2, possibility form)"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("pid", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("reachable", Stats.Table.Right);
          ("hungry_states", Stats.Table.Right);
          ("stuck", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, pid) ->
      let r =
        Mcheck.Explore.progress ~max_states:300_000 ~pid
          { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget }
      in
      Stats.Table.add_row progress_table
        [
          label;
          Stats.Table.cell_int pid;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int r.reachable;
          Stats.Table.cell_int r.hungry_states;
          Stats.Table.cell_int r.stuck_states;
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 0);
      ("pair", pair, [| 0; 1 |], 1, 1, 2, 0);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 1);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 0);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 2);
    ];
  Stats.Table.print progress_table;
  print_endline
    "note: stuck = 0 on every row means no reachable hungry-live state has lost all\n\
     paths to eating — wait-freedom's possibility form, verified exhaustively.\n"

let run_fuzz () =
  print_endline
    "### FZ — property-based fuzzing campaigns (shared oracles for Theorems 1-3 + Section 7)\n";
  let domains = (Harness.Experiments.default_ctx ()).domains in
  (* Fixed seeds and case counts: the tables are deterministic, like
     every other reproduction artifact. *)
  let sound = Fuzz.Campaign.run ~domains ~profile:Fuzz.Gen.Sound ~seed:11L ~cases:400 () in
  let hostile =
    Fuzz.Campaign.run ~domains ~profile:Fuzz.Gen.Hostile ~seed:11L ~cases:60 ()
  in
  let summary =
    Stats.Table.create ~title:"FZ: campaign summary (seed 11)"
      ~columns:
        [
          ("profile", Stats.Table.Left);
          ("cases", Stats.Table.Right);
          ("failures", Stats.Table.Right);
          ("eats", Stats.Table.Right);
          ("events", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (r : Fuzz.Campaign.report) ->
      Stats.Table.add_row summary
        [
          Fuzz.Gen.profile_name r.profile;
          Stats.Table.cell_int r.cases;
          Stats.Table.cell_int (List.length r.failures);
          Stats.Table.cell_int r.total_eats;
          Stats.Table.cell_int r.total_events;
        ])
    [ sound; hostile ];
  Stats.Table.print summary;
  let coverage =
    Stats.Table.create ~title:"FZ: per-oracle coverage"
      ~columns:
        [
          ("oracle", Stats.Table.Left);
          ("sound checked", Stats.Table.Right);
          ("sound failures", Stats.Table.Right);
          ("hostile checked", Stats.Table.Right);
          ("hostile failures", Stats.Table.Right);
        ]
  in
  let fail_count (r : Fuzz.Campaign.report) name =
    List.length (List.filter (fun (f : Fuzz.Campaign.failure) -> f.property = name) r.failures)
  in
  List.iter
    (fun (p : Fuzz.Property.t) ->
      Stats.Table.add_row coverage
        [
          p.name;
          Stats.Table.cell_int (List.assoc p.name sound.checked);
          Stats.Table.cell_int (fail_count sound p.name);
          Stats.Table.cell_int (List.assoc p.name hostile.checked);
          Stats.Table.cell_int (fail_count hostile p.name);
        ])
    Fuzz.Property.all;
  Stats.Table.print coverage;
  print_endline
    "note: the sound profile stays inside the theorems' hypotheses — 0 failures is the\n\
     expected (and asserted-in-CI) result. The hostile profile adds baseline daemons and\n\
     bad detectors, so its failures are the oracles catching designed violations.\n";
  let shrunk =
    Stats.Table.create ~title:"FZ: delta-debugging effectiveness (hostile failures)"
      ~columns:
        [
          ("case", Stats.Table.Right);
          ("property", Stats.Table.Left);
          ("topology", Stats.Table.Left);
          ("shrunk to", Stats.Table.Left);
          ("horizon", Stats.Table.Right);
          ("shrunk to ", Stats.Table.Right);
          ("steps", Stats.Table.Right);
          ("attempts", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (f : Fuzz.Campaign.failure) ->
      if f.shrink_steps > 0 || f.shrink_attempts > 0 then
        Stats.Table.add_row shrunk
          [
            Stats.Table.cell_int f.case;
            f.property;
            Cgraph.Topology.name f.scenario.topology;
            Cgraph.Topology.name f.shrunk.topology;
            Stats.Table.cell_int f.scenario.horizon;
            Stats.Table.cell_int f.shrunk.horizon;
            Stats.Table.cell_int f.shrink_steps;
            Stats.Table.cell_int f.shrink_attempts;
          ])
    hostile.failures;
  Stats.Table.print shrunk;
  print_endline
    "note: every failing case minimizes to a few processes and a short horizon; each\n\
     reproducer replays to the same verdict from its scenario fields alone.\n"

(* ------------------------------------------------------------------ *)
(* scale: simulator-core scaling sweep                                  *)
(* ------------------------------------------------------------------ *)

(* Scenario for the scaling table: no crashes, no invariant polling, a
   scripted detector — the run exercises exactly the engine + network +
   daemon hot path. The horizon gives every process a handful of
   complete think/eat sessions. *)
let scale_scenario topology : Harness.Scenario.t =
  {
    Harness.Scenario.default with
    name = "scale";
    topology;
    seed = 42L;
    delay = Net.Delay.Uniform (1, 8);
    detector = Harness.Scenario.Never;
    algo = Harness.Scenario.Song_pike;
    workload = Harness.Scenario.default_workload;
    crashes = Harness.Scenario.No_crashes;
    horizon = 1_200;
    check_every = None;
  }

let scale_spec kind n : Cgraph.Topology.spec =
  match kind with
  | `Ring -> Cgraph.Topology.Ring n
  | `Grid ->
      let r = int_of_float (Float.round (sqrt (float_of_int n))) in
      Cgraph.Topology.Grid (r, (n + r - 1) / r)
  | `Scale_free -> Cgraph.Topology.Scale_free (n, 2, 42L)

type scale_cell = {
  label : string;
  cell_n : int;
  cell_edges : int;
  cell_events : int;
  cell_eats : int;
  alloc_words : int;  (* words allocated by create+run+report: exact *)
  live_words : int;   (* live-heap delta while the world is alive: advisory *)
  seconds : float;
}

let words_of_bytes b = int_of_float (b /. float_of_int (Sys.word_size / 8))

(* Cells run sequentially on the calling domain: Gc counters are the
   measurement, and only a single-domain run keeps the allocation deltas
   exact and reproducible. *)
let run_scale_cell ~measure_live spec =
  let scenario = scale_scenario spec in
  let live0 =
    if measure_live then begin
      Gc.full_major ();
      (Gc.stat ()).Gc.live_words
    end
    else 0
  in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Sys.time () in
  let w = Harness.World.create scenario in
  Harness.World.advance w ~until:scenario.horizon;
  let r = Harness.World.report w in
  let seconds = Sys.time () -. t0 in
  let alloc_words = words_of_bytes (Gc.allocated_bytes () -. alloc0) in
  let live_words =
    if measure_live then begin
      Gc.full_major ();
      max 0 ((Gc.stat ()).Gc.live_words - live0)
    end
    else 0
  in
  {
    label = Cgraph.Topology.name spec;
    cell_n = Cgraph.Graph.n r.graph;
    cell_edges = Cgraph.Graph.edge_count r.graph;
    cell_events = r.events_processed;
    cell_eats = r.total_eats;
    alloc_words;
    live_words;
    seconds;
  }

(* Engine-only throughput: a self-rescheduling event storm with spread
   delays, per queue backend. *)
let engine_micro backend =
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Sys.time () in
  let engine = Sim.Engine.create ~backend () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 200_000 then
      ignore (Sim.Engine.schedule_after engine ~delay:(1 + ((!count * 7) mod 50)) tick)
  in
  ignore (Sim.Engine.schedule engine ~at:0 tick);
  Sim.Engine.run_all engine;
  let seconds = Sys.time () -. t0 in
  (Sim.Engine.processed engine, words_of_bytes (Gc.allocated_bytes () -. alloc0), seconds)

let run_scale ~(ctx : Harness.Experiments.ctx) ~smoke ~json ~baseline () =
  print_endline
    (if smoke then
       "### SCALE — simulator-core scaling sweep (smoke: deterministic columns only)\n"
     else "### SCALE — simulator-core scaling sweep\n");
  let sizes = if smoke then [ 100; 1_000 ] else [ 100; 1_000; 10_000; 100_000 ] in
  let cells =
    List.concat_map
      (fun kind -> List.map (fun n -> scale_spec kind n) sizes)
      [ `Ring; `Grid; `Scale_free ]
    (* The 10^6 step, ring only: the constant-degree topology isolates
       pure table scaling. *)
    @ (if smoke then [] else [ scale_spec `Ring 1_000_000 ])
  in
  let report = Report.create () in
  Report.str report "schema" "daemon-sim-bench/1";
  (* Engine micro, both backends: same event count, different queue. *)
  let wheel_events, wheel_alloc, wheel_s = engine_micro `Wheel in
  let heap_events, heap_alloc, heap_s = engine_micro `Heap in
  assert (wheel_events = heap_events);
  Report.int report "engine.wheel.events" wheel_events;
  Report.int report "engine.wheel.alloc_words" wheel_alloc;
  Report.float report "engine.wheel.run_seconds" wheel_s;
  Report.int report "engine.heap.events" heap_events;
  Report.int report "engine.heap.alloc_words" heap_alloc;
  Report.float report "engine.heap.run_seconds" heap_s;
  (* Model-checker throughput. *)
  let mc_alloc0 = Gc.allocated_bytes () in
  let mc_t0 = Sys.time () in
  let mc =
    Mcheck.Explore.bfs
      {
        Mcheck.Model.graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ];
        colors = [| 0; 1 |];
        sessions = 2;
        crash_budget = 0;
        fp_budget = 0;
      }
  in
  let mc_s = Sys.time () -. mc_t0 in
  Report.int report "mcheck.pair2.states" mc.Mcheck.Explore.states;
  Report.int report "mcheck.pair2.transitions" mc.transitions;
  Report.int report "mcheck.pair2.alloc_words"
    (words_of_bytes (Gc.allocated_bytes () -. mc_alloc0));
  Report.float report "mcheck.pair2.run_seconds" mc_s;
  (* The sweep itself. *)
  let columns =
    [
      ("topology", Stats.Table.Left);
      ("n", Stats.Table.Right);
      ("edges", Stats.Table.Right);
      ("events", Stats.Table.Right);
      ("eats", Stats.Table.Right);
      ("alloc w/proc", Stats.Table.Right);
    ]
    @
    if smoke then []
    else
      [
        ("events/s", Stats.Table.Right);
        ("live B/proc", Stats.Table.Right);
        ("time", Stats.Table.Right);
      ]
  in
  let table = Stats.Table.create ~title:"SCALE: one world per cell, hot path only" ~columns in
  List.iter
    (fun spec ->
      let c = run_scale_cell ~measure_live:(not smoke) spec in
      let prefix = Printf.sprintf "scale.%s" c.label in
      Report.int report (prefix ^ ".n") c.cell_n;
      Report.int report (prefix ^ ".edges") c.cell_edges;
      Report.int report (prefix ^ ".events") c.cell_events;
      Report.int report (prefix ^ ".eats") c.cell_eats;
      Report.int report (prefix ^ ".alloc_words") c.alloc_words;
      Report.float report (prefix ^ ".run_seconds") c.seconds;
      Report.float report (prefix ^ ".events_per_sec")
        (if c.seconds > 0.0 then float_of_int c.cell_events /. c.seconds else 0.0);
      if not smoke then Report.int report (prefix ^ ".live_words") c.live_words;
      Stats.Table.add_row table
        ([
           c.label;
           Stats.Table.cell_int c.cell_n;
           Stats.Table.cell_int c.cell_edges;
           Stats.Table.cell_int c.cell_events;
           Stats.Table.cell_int c.cell_eats;
           Stats.Table.cell_int (c.alloc_words / max 1 c.cell_n);
         ]
        @
        if smoke then []
        else
          [
            Printf.sprintf "%.0f" (float_of_int c.cell_events /. Float.max 1e-9 c.seconds);
            Stats.Table.cell_int (8 * c.live_words / max 1 c.cell_n);
            Printf.sprintf "%.2f s" c.seconds;
          ]))
    cells;
  (* Fuzzing throughput, last: it runs on the context's domain count, and
     once a domain has been spawned and joined, OCaml 5's GC merges the
     dead domain's counters into [Gc.allocated_bytes] at an arbitrary
     later point — so every exact allocation delta above must be measured
     before the first spawn. The campaign counts themselves are identical
     for any --domains (the pool's contract), so no allocation metric is
     recorded for this section. *)
  let fz_t0 = Sys.time () in
  let fz = Fuzz.Campaign.run ~domains:ctx.domains ~profile:Fuzz.Gen.Sound ~seed:11L ~cases:40 () in
  let fz_s = Sys.time () -. fz_t0 in
  Report.int report "fuzz.sound40.cases" fz.Fuzz.Campaign.cases;
  Report.int report "fuzz.sound40.failures" (List.length fz.failures);
  Report.int report "fuzz.sound40.total_events" fz.total_events;
  Report.float report "fuzz.sound40.run_seconds" fz_s;
  (* Sharded stepping on the shard-safe ping workload: the exact keys
     must agree for every shard count (the engine's merge contract), and
     the parallel pool run must equal the sequential one. Runs after the
     alloc measurements above because the pool spawns domains. *)
  let shard_topo = Cgraph.Topology.Ring 1_000 in
  let shard_horizon = 400 in
  let shard_ref = ref None in
  List.iter
    (fun s ->
      let r = Harness.Shard_ping.run ~shards:s ~topology:shard_topo ~horizon:shard_horizon () in
      let prefix = Printf.sprintf "shard.ring-1000.s%d" s in
      Report.int report (prefix ^ ".events") r.Harness.Shard_ping.events;
      Report.int report (prefix ^ ".sent") r.sent;
      Report.int report (prefix ^ ".checksum") r.checksum;
      Report.int report (prefix ^ ".worst_watermark") r.worst_watermark;
      (match !shard_ref with
      | None -> shard_ref := Some r
      | Some r0 -> assert (r = r0)))
    [ 1; 2; 4 ];
  let seq = Option.get !shard_ref in
  let par =
    Exec.Pool.with_pool ~domains:ctx.domains (fun pool ->
        Harness.Shard_ping.run ~pool ~parallel:true ~shards:4 ~topology:shard_topo
          ~horizon:shard_horizon ())
  in
  assert (par = seq);
  Report.int report "shard.ring-1000.parallel_matches" 1;
  if not smoke then begin
    (* Advisory wall-clock for the 10^6-process sharded step. *)
    let t0 = Sys.time () in
    let big =
      Exec.Pool.with_pool ~domains:ctx.domains (fun pool ->
          Harness.Shard_ping.run ~pool ~parallel:true ~shards:(max 2 ctx.domains)
            ~topology:(Cgraph.Topology.Ring 1_000_000) ~horizon:30 ())
    in
    let dt = Sys.time () -. t0 in
    Report.int report "shard.ring-1m.events" big.Harness.Shard_ping.events;
    Report.int report "shard.ring-1m.checksum" big.checksum;
    Report.float report "shard.ring-1m.run_seconds" dt
  end;
  Stats.Table.print table;
  print_endline
    "note: alloc w/proc is the exact per-process allocation of a whole run (engine +\n\
     network + daemon); live B/proc is the resident footprint while the world is\n\
     alive — both should track the degree, not n. Wall-clock columns are advisory.\n";
  (match json with
  | None -> ()
  | Some path ->
      Report.write report path;
      Printf.printf "wrote %s\n" path);
  match baseline with
  | None -> ()
  | Some path ->
      let verdict =
        Report.compare_metrics ~baseline:(Report.read path) ~current:(Report.parse (Report.to_string report)) ()
      in
      List.iter (fun w -> Printf.printf "advisory: %s\n" w) verdict.Report.warnings;
      List.iter (fun f -> Printf.printf "FAIL: %s\n" f) verdict.Report.failures;
      if verdict.Report.failures = [] then
        Printf.printf "baseline %s: deterministic metrics match\n" path
      else begin
        Printf.printf "baseline %s: %d deterministic metric(s) changed\n" path
          (List.length verdict.Report.failures);
        exit 1
      end

let usage () =
  prerr_endline
    "usage: main.exe [ID ...] [--domains N] [--seeds N] [--smoke] [--json FILE] [--baseline FILE]\n\
     IDs: e1..e12, f1..f6, mc, fuzz, perf, scale (all but scale when omitted).\n\
     --domains caps batch/sweep parallelism (default: recommended domain count;\n\
     output is identical for any value); --seeds sets seeds per batch row.\n\
     scale sweeps the simulator core over n x topology; --smoke restricts it to\n\
     n <= 1000 and deterministic columns, --json writes the machine-readable\n\
     report, --baseline compares against a committed report (exit 1 when a\n\
     deterministic metric diverges; wall-clock deltas are advisory).";
  exit 2

type opts = { smoke : bool; json : string option; baseline : string option }

let () =
  let default = Harness.Experiments.default_ctx () in
  let rec parse args (ctx : Harness.Experiments.ctx) (opts : opts) ids =
    match args with
    | [] -> (ctx, opts, List.rev ids)
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 -> parse rest { ctx with domains = d } opts ids
        | _ -> usage ())
    | "--seeds" :: v :: rest -> (
        match int_of_string_opt v with
        | Some s when s >= 1 -> parse rest { ctx with seeds = s } opts ids
        | _ -> usage ())
    | "--smoke" :: rest -> parse rest ctx { opts with smoke = true } ids
    | "--json" :: v :: rest -> parse rest ctx { opts with json = Some v } ids
    | "--baseline" :: v :: rest -> parse rest ctx { opts with baseline = Some v } ids
    | ("--domains" | "--seeds" | "--json" | "--baseline" | "--help" | "-h") :: _ -> usage ()
    | id :: rest -> parse rest ctx opts (id :: ids)
  in
  let ctx, opts, ids =
    parse
      (List.tl (Array.to_list Sys.argv))
      default
      { smoke = false; json = None; baseline = None }
      []
  in
  (* "scale" runs only when asked for: the 100k-process cells are not
     part of the default reproduction sweep. *)
  let wants x = ids = [] || List.mem x ids in
  List.iter
    (fun (e : Harness.Experiments.t) ->
      if wants e.id then Harness.Experiments.run_and_print ~ctx e)
    Harness.Experiments.all;
  if wants "mc" then run_mc ();
  if wants "fuzz" then run_fuzz ();
  if wants "perf" then run_perf ();
  if List.mem "scale" ids then
    run_scale ~ctx ~smoke:opts.smoke ~json:opts.json ~baseline:opts.baseline ()
